#!/usr/bin/env bash
# Tier-1 gate: everything a PR must keep green. Run from anywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
# Sweep the process worker budget: DSZ_THREADS=1 exercises every inline
# fallback, DSZ_THREADS=4 exercises pooled dispatch + budget nesting.
DSZ_THREADS=1 cargo test -q
DSZ_THREADS=4 cargo test -q
cargo clippy --workspace -q -- -D warnings
cargo fmt --check
echo "tier1: OK"
