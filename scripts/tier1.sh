#!/usr/bin/env bash
# Tier-1 gate: everything a PR must keep green. Run from anywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo build --release --examples
# Sweep the process worker budget: DSZ_THREADS=1 exercises every inline
# fallback, DSZ_THREADS=4 exercises pooled dispatch + budget nesting.
DSZ_THREADS=1 cargo test -q
DSZ_THREADS=4 cargo test -q
# Robustness gate (docs/ROBUSTNESS.md): the seeded fault-injection
# campaign over every format generation must stay green — no panics
# anywhere, no silent success on checksummed DSZM v3/v4 containers.
# Already part of the workspace sweeps above; run it by name so a failure
# here is unmistakable in the log.
cargo test -q -p dsz_core --test fault_injection
# Random-access + spill gate: the seekable reader's lazy-verify agreement
# campaign and the disk-spill bit-identity/poisoned-file suites, under
# both worker budgets (the spill path must be byte-stable regardless of
# DSZ_THREADS, and the thread_clamp suite pins the container bytes both
# ways).
for t in 1 4; do
  DSZ_THREADS=$t cargo test -q -p dsz_core --test seekable
  DSZ_THREADS=$t cargo test -q -p dsz_core --test spill_streaming
  DSZ_THREADS=$t cargo test -q -p dsz_core --test thread_clamp
done
# Streaming-encode gate (docs/STREAMING_ENCODE.md): the operator-pipeline
# encoder must stay bit-identical to the materializing encoder at every
# worker count and buffer budget, and the encode-bytes-budget high-water
# mark must hold. The sz-level chunk streaming suite rides along under
# the same sweep.
for t in 1 4; do
  DSZ_THREADS=$t cargo test -q -p dsz_core --test streaming_encode
  DSZ_THREADS=$t cargo test -q -p dsz_sz stream
done
# Serving gate (docs/SERVING.md): the shared decoded-layer cache must
# keep forwards bit-identical to the uncached serial path at every quota
# (including 0) and never let the ledger exceed the quota; the batched
# matmul must stay bit-identical to per-sample calls; and the registry /
# micro-batch scheduler suites ride the same two worker budgets.
# Resilience gate (docs/ROBUSTNESS.md, "Serving resilience"): the seeded
# chaos campaign (injected decode faults, slow layers, mid-batch cancels
# under deadlines, retries, and bounded queues) and the degraded-load /
# quarantine / hot-swap-rollback suites must stay green under both
# worker budgets — no panics, exactly-once ticket resolution,
# bit-identical successes.
for t in 1 4; do
  DSZ_THREADS=$t cargo test -q -p dsz_core --test shared_cache
  DSZ_THREADS=$t cargo test -q -p dsz_tensor --test batch_equivalence
  DSZ_THREADS=$t cargo test -q -p dsz_serve --test serve
  DSZ_THREADS=$t cargo test -q -p dsz_serve --test batching
  DSZ_THREADS=$t cargo test -q -p dsz_serve --test chaos
  DSZ_THREADS=$t cargo test -q -p dsz_serve --test degraded
done
# Smoke-test the full user-facing pipeline (train → prune → assess →
# optimize → encode → decode) exactly as the README-level docs run it.
cargo run --release --example quickstart >/dev/null
# Smoke-run the multi-tenant serving demo (load → batch → hot-swap →
# cancel against two tenants sharing one cache).
cargo run --release --example serve_demo >/dev/null
# Smoke-run the perf-trajectory bench: refreshes BENCH_encode_decode.json
# (encode/decode scaling, pool reuse, and the incremental-vs-full
# assessment speedup, which also re-proves the two engines agree).
cargo run --release -p dsz_bench --bin bench_encode_decode >/dev/null
# Smoke-run the serving bench: refreshes BENCH_serve.json (requests/sec,
# tail latency, shared-cache hit rate, batched-vs-unbatched speedup in
# warm and cold cache regimes, plus the resilience regime: shed /
# deadline-miss / retry-success rates and degraded-vs-healthy p99).
cargo run --release -p dsz_bench --bin bench_serve >/dev/null
# This also enforces the panic-free-decode lints: the decode modules of
# sz/lossless/zfp/sparse/core (plus the whole dsz_serve crate and the
# shared layer cache) carry scoped in-source
# `deny(clippy::unwrap_used, clippy::expect_used)` attributes, so any new
# unwrap/expect there fails this line.
cargo clippy --workspace -q -- -D warnings
cargo fmt --check
echo "tier1: OK"
