#!/usr/bin/env bash
# Tier-1 gate: everything a PR must keep green. Run from anywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo build --release --examples
# Sweep the process worker budget: DSZ_THREADS=1 exercises every inline
# fallback, DSZ_THREADS=4 exercises pooled dispatch + budget nesting.
DSZ_THREADS=1 cargo test -q
DSZ_THREADS=4 cargo test -q
# Smoke-test the full user-facing pipeline (train → prune → assess →
# optimize → encode → decode) exactly as the README-level docs run it.
cargo run --release --example quickstart >/dev/null
# Smoke-run the perf-trajectory bench: refreshes BENCH_encode_decode.json
# (encode/decode scaling, pool reuse, and the incremental-vs-full
# assessment speedup, which also re-proves the two engines agree).
cargo run --release -p dsz_bench --bin bench_encode_decode >/dev/null
cargo clippy --workspace -q -- -D warnings
cargo fmt --check
echo "tier1: OK"
