#!/usr/bin/env bash
# Tier-1 gate: everything a PR must keep green. Run from anywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo fmt --check
echo "tier1: OK"
