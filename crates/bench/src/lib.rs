//! Shared infrastructure for the table/figure harnesses.
//!
//! Every binary in this crate regenerates one table or figure from the
//! paper's evaluation (§5). Trained networks are expensive to produce on a
//! laptop-class CPU, so [`workloads`] trains each evaluation network once
//! and caches it under `target/dsz-cache/`; all harnesses share the cache.

pub mod tables;
pub mod workloads;

/// Formats a byte count the way the paper's tables do (KB / MB).
pub fn fmt_bytes(b: usize) -> String {
    const KB: f64 = 1024.0;
    const MB: f64 = 1024.0 * 1024.0;
    let b = b as f64;
    if b >= MB {
        format!("{:.1} MB", b / MB)
    } else if b >= KB {
        format!("{:.1} KB", b / KB)
    } else {
        format!("{b:.0} B")
    }
}

/// Formats a ratio like the paper ("45.5x").
pub fn fmt_ratio(r: f64) -> String {
    format!("{r:.1}x")
}

/// Formats a fraction as a percentage.
pub fn fmt_pct(f: f64) -> String {
    format!("{:.2}%", f * 100.0)
}
