//! Ablation: ratio *and* speed of each lossless codec on index arrays —
//! the Figure 4 companion that shows why a best-fit selection (rather than
//! a fixed codec) is worth having.

use dsz_bench::tables::print_table;
use dsz_bench::workloads::full_size_pruned_layers;
use dsz_lossless::LosslessKind;
use dsz_nn::Arch;
use dsz_sparse::PairArray;
use std::time::Instant;

fn main() {
    let layers = full_size_pruned_layers(Arch::AlexNet);
    let (name, rows_dim, cols, _, dense) = &layers[0]; // fc6
    let pair = PairArray::from_dense(dense, *rows_dim, *cols);
    println!("layer {name}: {} index bytes", pair.index.len());
    let mut rows = Vec::new();
    for kind in LosslessKind::ALL {
        let codec = kind.codec();
        let t0 = Instant::now();
        let blob = codec.compress(&pair.index);
        let c_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t0 = Instant::now();
        let back = codec.decompress(&blob).expect("roundtrip");
        let d_ms = t0.elapsed().as_secs_f64() * 1e3;
        assert_eq!(back, pair.index);
        let mbps = pair.index.len() as f64 / 1e6;
        rows.push(vec![
            kind.name().to_string(),
            format!("{:.2}x", pair.index.len() as f64 / blob.len() as f64),
            format!("{c_ms:.0} ms ({:.0} MB/s)", mbps / (c_ms / 1e3)),
            format!("{d_ms:.0} ms ({:.0} MB/s)", mbps / (d_ms / 1e3)),
        ]);
    }
    print_table(
        "Ablation: lossless codec ratio vs speed on the AlexNet fc6 index array",
        &["codec", "ratio", "compress", "decompress"],
        &rows,
    );
    println!("\nexpectation: blosc-class is fastest but weakest; zstd-class best ratio");
}
