//! Encode/decode scaling bench: 1-thread vs N-thread wall time for the
//! full container pipeline on a VGG-16-surrogate fc stack, plus the
//! chunk-parallel SZ stream on the largest layer alone, plus the
//! error-bound assessment (Algorithm 1) — the pipeline's dominant cost —
//! through both its engines (incremental vs. the preserved full-clone
//! baseline; see `docs/ASSESSMENT.md`).
//!
//! Emits a human-readable table and a machine-readable
//! `BENCH_encode_decode.json` in the working directory so the perf
//! trajectory is tracked across PRs.

use dsz_bench::tables::print_table;
use dsz_bench::workloads::{paper_error_bounds, reduced_pruning_densities};
use dsz_core::optimizer::{ChosenLayer, Plan};
use dsz_core::{
    assess_network, assess_network_full, decode_model, encode_to_writer, encode_to_writer_config,
    encode_with_plan, encode_with_plan_config, encode_with_plan_v2, verify_container,
    AssessmentConfig, DataCodecKind, DatasetEvaluator, EncodeStreamConfig, LayerAssessment,
    SeekableContainer, SharedLayerCache, SpillCache,
};
use dsz_datagen::features;
use dsz_nn::{zoo, Arch, DenseLayer, Layer, Network, Scale};
use dsz_sparse::PairArray;
use dsz_sz::{ErrorBound, SzConfig, SzFormat};
use dsz_tensor::parallel::{
    clamp_to_host, layout_workers, parallel_map, with_workers, worker_count,
};
use dsz_tensor::{Matrix, VolShape};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Median wall time (ms) of `runs` calls to `f`.
fn median_ms<F: FnMut()>(runs: usize, mut f: F) -> f64 {
    let mut times: Vec<f64> = (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    times[times.len() / 2]
}

/// The pre-pool per-call `std::thread::scope` parallel map, preserved here
/// as the fresh-spawn baseline that `pool_reuse_speedup` compares the
/// persistent pool against. Work distribution matches `parallel_map` (an
/// atomic claim queue); only the execution substrate differs.
fn scoped_spawn_map<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let workers = workers.min(n.max(1));
    if workers <= 1 {
        return items.iter().map(&f).collect();
    }
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                *slots[i].lock().expect("slot") = Some(f(&items[i]));
            });
        }
    });
    slots
        .into_iter()
        .map(|m| m.into_inner().expect("slot").expect("job completed"))
        .collect()
}

/// Measures pool-vs-fresh-spawn wall time on a small-layer workload, where
/// per-call thread-spawn overhead dominates the actual compression work.
/// Returns `(pooled_ms, scoped_ms)`.
fn pool_reuse_times(workers: usize) -> (f64, f64) {
    // A dozen tiny layers of 64 weights each: well under the 16 Ki
    // adaptive chunk floor, so each job is a single-chunk compress with no
    // nested fan-out — the parallel-map dispatch itself is a large share
    // of the measured cost.
    let jobs: Vec<Vec<f32>> = (0..12)
        .map(|i| dsz_datagen::weights::trained_fc_weights(8, 8, 0xF00D ^ (i as u64) << 4))
        .collect();
    let cfg = SzConfig::default();
    let compress = |d: &Vec<f32>| cfg.compress(d, ErrorBound::Abs(1e-3)).expect("compress");
    let pooled_ms = with_workers(workers, || {
        median_ms(15, || {
            let _ = parallel_map(&jobs, compress);
        })
    });
    let scoped_ms = median_ms(15, || {
        let _ = scoped_spawn_map(&jobs, workers, compress);
    });
    (pooled_ms, scoped_ms)
}

fn main() {
    // VGG-16 surrogate: the reduced fc head's shapes with trained-like
    // pruned weights (no training loop needed for a throughput bench).
    let arch = Arch::Vgg16;
    let net = zoo::build(arch, Scale::Reduced, 0xBE7C);
    let densities = reduced_pruning_densities(arch);
    let ebs = paper_error_bounds(arch);

    let mut assessments: Vec<LayerAssessment> = Vec::new();
    let mut chosen: Vec<ChosenLayer> = Vec::new();
    let mut head_layers: Vec<Layer> = Vec::new();
    for (li, fc) in net.fc_layers().into_iter().enumerate() {
        let mut dense =
            dsz_datagen::weights::trained_fc_weights(fc.rows, fc.cols, 0x5EED ^ (li as u64) << 8);
        dsz_prune::prune_to_density(&mut dense, densities[li % densities.len()]);
        let pair = PairArray::from_dense(&dense, fc.rows, fc.cols);
        // The same pruned stack as a runnable fc head, for the assessment
        // bench below.
        if li > 0 {
            head_layers.push(Layer::ReLU);
        }
        head_layers.push(Layer::Dense(DenseLayer {
            name: fc.name.clone(),
            w: Matrix::from_vec(fc.rows, fc.cols, dense.clone()),
            b: vec![0.0; fc.rows],
        }));
        let (index_codec, index_blob) = dsz_lossless::best_fit(&pair.index);
        let eb = ebs[li % ebs.len()];
        // Per-layer codec competition through the same rule the
        // assessment applies (smallest stream wins, SZ tie-break).
        let candidates: Vec<_> = DataCodecKind::ALL
            .iter()
            .map(|k| k.instance(&SzConfig::default()))
            .collect();
        let (winner, _) = dsz_core::codec::compete(&candidates, &pair.data, ErrorBound::Abs(eb))
            .expect("codec competition");
        let codec = candidates[winner].kind();
        chosen.push(ChosenLayer {
            fc: fc.clone(),
            eb,
            degradation: 0.0,
            data_bytes: 0,
            index_bytes: index_blob.len(),
            codec,
            point_index: 0,
        });
        assessments.push(LayerAssessment {
            fc,
            pair,
            index_codec,
            index_bytes: index_blob.len(),
            points: Vec::new(),
        });
    }
    let plan = Plan {
        layers: chosen,
        predicted_loss: 0.0,
        total_bytes: 0,
    };

    let n_weights: usize = assessments.iter().map(|a| a.pair.rows * a.pair.cols).sum();
    let host = worker_count();
    // Always measure 1/2/4 so single-core hosts still show (absence of)
    // oversubscription overhead; add the full host width when larger.
    let mut thread_counts: Vec<usize> = vec![1, 2, 4, host];
    thread_counts.sort_unstable();
    thread_counts.dedup();

    println!(
        "VGG-16 surrogate fc stack: {} layers, {:.1}M dense weights, host parallelism {}",
        assessments.len(),
        n_weights as f64 / 1e6,
        host
    );

    // Container pipeline at each worker count.
    struct Row {
        workers: usize,
        encode_ms: f64,
        decode_ms: f64,
        lossy_decode_ms: f64,
    }
    let mut rows: Vec<Row> = Vec::new();
    let (model, report) = encode_with_plan(&assessments, &plan).expect("encode");
    // Same stack through the SZ v2 layout at the same (adaptive) chunk
    // geometry, so the ratio isolates exactly what the default (v4)
    // changes — one shared, backend-compressed Huffman table instead of a
    // code book per chunk — and tracks it across PRs. Layers whose codec
    // competition picked ZFP are identical on both sides.
    let v2_cfg = SzConfig {
        format: SzFormat::V2,
        ..SzConfig::default()
    };
    let (_, v2_report) = encode_with_plan_config(&assessments, &plan, &v2_cfg).expect("v2 encode");
    // Container-generation overhead: the same layer streams in a DSZM v2
    // container (no footer/checksums) vs the default v3, plus the cost of
    // the full integrity pass (`verify_container`: trailer + whole-container
    // FNV + footer cross-checks, no decompression). Distinct from the SZ
    // *stream* v4-vs-v2 ratio above — this one isolates the container
    // framing itself.
    let (v2_container, _) = encode_with_plan_v2(&assessments, &plan, &SzConfig::default())
        .expect("v2 container encode");
    let container_v3_over_v2_size_ratio =
        model.bytes.len() as f64 / (v2_container.bytes.len().max(1)) as f64;
    let checksum_verify_ms = median_ms(9, || {
        let _ = verify_container(&model).expect("intact container verifies");
    });
    println!(
        "container integrity: verify_container {:.3} ms; v3 container {} bytes vs v2 {} bytes (v3/v2 = {:.4})",
        checksum_verify_ms,
        model.bytes.len(),
        v2_container.bytes.len(),
        container_v3_over_v2_size_ratio
    );
    // Largest layer's SZ stream alone (chunk-level parallelism, no
    // container framing or sparse reconstruction).
    let biggest = assessments
        .iter()
        .max_by_key(|a| a.pair.data.len())
        .expect("nonempty");
    let sz_blob = SzConfig::default()
        .compress(&biggest.pair.data, ErrorBound::Abs(1e-2))
        .expect("sz compress");

    for &w in &thread_counts {
        let encode_ms = with_workers(w, || {
            median_ms(3, || {
                let _ = encode_with_plan(&assessments, &plan).expect("encode");
            })
        });
        let decode_ms = with_workers(w, || {
            median_ms(5, || {
                let _ = decode_model(&model).expect("decode");
            })
        });
        let lossy_decode_ms = with_workers(w, || {
            median_ms(5, || {
                let _ = dsz_sz::decompress(&sz_blob).expect("sz decode");
            })
        });
        rows.push(Row {
            workers: w,
            encode_ms,
            decode_ms,
            lossy_decode_ms,
        });
    }

    // Streaming operator-pipeline encode (docs/STREAMING_ENCODE.md):
    // wall time of the direct-to-writer path, the buffer-ring ledger's
    // peak for the materializing configuration (unbounded budget — what
    // `encode_with_plan` holds) vs the tightest budget (one mandatory
    // floor), and how much container-write time overlapped in-flight
    // layer compression when streaming to a real file.
    let streaming_encode_ms = median_ms(3, || {
        let mut sink = Vec::with_capacity(model.bytes.len());
        let _ = encode_to_writer(&assessments, &plan, &mut sink).expect("streaming encode");
    });
    let stream_path =
        std::env::temp_dir().join(format!("dsz-bench-stream-{}.dszm", std::process::id()));
    let stream_file =
        std::io::BufWriter::new(std::fs::File::create(&stream_path).expect("bench stream file"));
    let unbounded_report =
        encode_to_writer(&assessments, &plan, stream_file).expect("streaming encode");
    std::fs::remove_file(&stream_path).ok();
    let tight_cfg = EncodeStreamConfig {
        encode_bytes_budget: Some(1),
    };
    let tight_report = encode_to_writer_config(
        &assessments,
        &plan,
        &SzConfig::default(),
        &tight_cfg,
        std::io::sink(),
    )
    .expect("bounded streaming encode");
    let encode_peak_bytes_materializing = unbounded_report.peak_buffered_bytes;
    let encode_peak_bytes_streaming = tight_report.peak_buffered_bytes;
    let encode_io_overlap_ratio = unbounded_report.io_overlap_ratio;
    println!(
        "streaming encode: {:.1} ms to writer; peak buffered bytes {} materializing vs {} at the tightest budget ({:.2}x less); io overlap {:.2}",
        streaming_encode_ms,
        encode_peak_bytes_materializing,
        encode_peak_bytes_streaming,
        encode_peak_bytes_materializing as f64 / (encode_peak_bytes_streaming.max(1)) as f64,
        encode_io_overlap_ratio
    );

    // Random access through the seekable reader: open cost (trailer +
    // footer only, no payload work) and a single mid-stack layer decode,
    // vs the full sequential decode above. The half-decode acceptance
    // bound is deliberately loose — on this 3-layer stack one layer is
    // roughly a third of the work.
    let seek_open_ms = median_ms(9, || {
        let _ = SeekableContainer::open_slice(&model.bytes).expect("seek open");
    });
    let seek = SeekableContainer::open_slice(&model.bytes).expect("seek open");
    let mid = seek.layer_count() / 2;
    let random_access_layer_ms = median_ms(5, || {
        let _ = seek.layer(mid).expect("random access layer");
    });
    // Spill rehydration: quota 0 parks the decoded payload on disk, so
    // every fetch is a read + FNV verify + f32 reassembly — the cost a
    // repeat forward pays instead of a container re-decode.
    let spill_payload = seek.layer(mid).expect("mid layer").dense;
    let spill_dir = std::env::temp_dir().join(format!("dsz-bench-spill-{}", std::process::id()));
    let spill = SpillCache::new(&spill_dir, 0).expect("spill cache");
    let mut spill_times: Vec<f64> = (0..9)
        .map(|_| {
            spill
                .store(mid, spill_payload.clone())
                .expect("spill store");
            let t0 = Instant::now();
            let got = spill.fetch(mid).expect("spill fetch").expect("parked");
            assert_eq!(got.len(), spill_payload.len());
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    spill_times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let spill_rehydrate_ms = spill_times[spill_times.len() / 2];
    std::fs::remove_dir_all(&spill_dir).ok();
    // Shared decoded-layer cache (the serving layer's hot-path allocation,
    // `docs/SERVING.md`): park the whole stack once, then a hot pass per
    // layer — a hit is a pointer clone instead of a container decode. The
    // hit rate comes from the same `CacheStats::hit_rate` plumbing
    // `BENCH_serve.json` records, so the two benches track one metric.
    let shared_cache = SharedLayerCache::new(n_weights * 4);
    let cache_handle = shared_cache.handle();
    let layer_fetch = |i: usize| {
        cache_handle
            .get_or_decode(i, i as u64, || seek.layer(i).map(|d| d.dense))
            .expect("layer decode")
    };
    let t0 = Instant::now();
    for i in 0..seek.layer_count() {
        let _ = layer_fetch(i);
    }
    let shared_cache_cold_ms = t0.elapsed().as_secs_f64() * 1e3;
    let shared_cache_hot_ms = median_ms(9, || {
        for i in 0..seek.layer_count() {
            let _ = layer_fetch(i);
        }
    });
    let cache_hit_rate = shared_cache.stats().hit_rate();
    println!(
        "random access: seek open {:.3} ms, layer {}/{} decode {:.3} ms (full decode {:.1} ms); spill rehydrate {:.3} ms for {} weights",
        seek_open_ms,
        mid,
        seek.layer_count(),
        random_access_layer_ms,
        rows[0].decode_ms,
        spill_rehydrate_ms,
        spill_payload.len()
    );
    println!(
        "shared layer cache: cold stack pass {:.3} ms, hot pass {:.3} ms, hit rate {:.3}",
        shared_cache_cold_ms, shared_cache_hot_ms, cache_hit_rate
    );

    let base = &rows[0];
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.workers.to_string(),
                format!(
                    "{:.1} ms ({:.2}x)",
                    r.encode_ms,
                    base.encode_ms / r.encode_ms
                ),
                format!(
                    "{:.1} ms ({:.2}x)",
                    r.decode_ms,
                    base.decode_ms / r.decode_ms
                ),
                format!(
                    "{:.1} ms ({:.2}x)",
                    r.lossy_decode_ms,
                    base.lossy_decode_ms / r.lossy_decode_ms
                ),
            ]
        })
        .collect();
    print_table(
        "Encode/decode scaling (speedup vs 1 thread)",
        &[
            "threads",
            "container encode",
            "container decode",
            "SZ stream decode",
        ],
        &table,
    );
    let zfp_win_layers = report
        .layers
        .iter()
        .filter(|l| l.data_codec == DataCodecKind::Zfp)
        .count();
    println!(
        "container: {} bytes (default SZ v4), fc compression ratio {:.1}x; SZ v2 layout would be {} bytes (default/v2 = {:.4})",
        report.total_bytes,
        report.ratio(),
        v2_report.total_bytes,
        report.total_bytes as f64 / v2_report.total_bytes.max(1) as f64
    );
    println!(
        "per-layer codec competition: {} of {} layers chose ZFP ({})",
        zfp_win_layers,
        report.layers.len(),
        report
            .layers
            .iter()
            .map(|l| format!("{}={}", l.name, l.data_codec.name()))
            .collect::<Vec<_>>()
            .join(", ")
    );
    if host == 1 {
        println!("note: single-core host — speedups are expected to be ~1.0x here");
    }

    // Pool-reuse benefit on spawn-overhead-dominated work. Request 4
    // workers, clamped to the host's parallelism: oversubscribing a
    // smaller host would measure scheduler churn, not pool reuse (the
    // same clamp rule as the scaling rows above).
    let pool_bench_workers = clamp_to_host(4);
    let (pooled_ms, scoped_ms) = pool_reuse_times(pool_bench_workers);
    let pool_reuse_speedup = scoped_ms / pooled_ms.max(1e-9);
    println!(
        "pool reuse ({} workers, 12 × 64-weight layers): pooled {:.3} ms vs fresh-spawn {:.3} ms ({:.2}x)",
        pool_bench_workers, pooled_ms, scoped_ms, pool_reuse_speedup
    );

    // Error-bound assessment (Algorithm 1) — the paper's dominant cost —
    // on the same pruned stack as a runnable fc head: incremental engine
    // (prefix cache + suffix pass + scratch arenas) vs. the preserved
    // full-clone path. Both walk identical points; the wall-clock ratio is
    // the trajectory metric.
    let head = Network {
        input_shape: VolShape {
            c: net.fc_layers()[0].cols,
            h: 1,
            w: 1,
        },
        layers: head_layers,
    };
    let (_, eval_data) =
        features::train_test(&features::FeatureSpec::vgg16_reduced(), 0, 256, 0xA55E55);
    let eval = DatasetEvaluator::new(eval_data);
    let assess_cfg = AssessmentConfig::default();
    let t0 = Instant::now();
    let (full_assess, full_base) = assess_network_full(&head, &assess_cfg, &eval).expect("full");
    let assessment_full_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t0 = Instant::now();
    let (incr_assess, incr_base) = assess_network(&head, &assess_cfg, &eval).expect("incremental");
    let assessment_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        full_base.to_bits(),
        incr_base.to_bits(),
        "baseline diverged"
    );
    for (a, b) in full_assess.iter().zip(&incr_assess) {
        assert_eq!(a.points, b.points, "{}: engines diverged", a.fc.name);
    }
    let assessment_points: usize = incr_assess.iter().map(|a| a.points.len()).sum();
    let assessment_incremental_speedup = assessment_full_ms / assessment_ms.max(1e-9);
    println!(
        "assessment ({} points over {} layers, {} eval samples): incremental {:.1} ms vs full-clone {:.1} ms ({:.2}x)",
        assessment_points,
        incr_assess.len(),
        256,
        assessment_ms,
        assessment_full_ms,
        assessment_incremental_speedup
    );

    // Machine-readable trajectory record.
    let mut json = String::from("{\n");
    json.push_str("  \"workload\": \"vgg16_reduced_fc_surrogate\",\n");
    json.push_str(&format!("  \"layers\": {},\n", assessments.len()));
    json.push_str(&format!("  \"dense_weights\": {},\n", n_weights));
    json.push_str(&format!("  \"container_bytes\": {},\n", report.total_bytes));
    json.push_str(&format!(
        "  \"container_bytes_v2\": {},\n",
        v2_report.total_bytes
    ));
    json.push_str(&format!(
        "  \"default_over_v2_size_ratio\": {:.4},\n",
        report.total_bytes as f64 / v2_report.total_bytes.max(1) as f64
    ));
    json.push_str(&format!(
        "  \"container_bytes_dszm_v2\": {},\n",
        v2_container.bytes.len()
    ));
    json.push_str(&format!(
        "  \"container_v3_over_v2_size_ratio\": {:.4},\n",
        container_v3_over_v2_size_ratio
    ));
    json.push_str(&format!(
        "  \"checksum_verify_ms\": {:.3},\n",
        checksum_verify_ms
    ));
    json.push_str(&format!("  \"seek_open_ms\": {:.3},\n", seek_open_ms));
    json.push_str(&format!(
        "  \"random_access_layer_ms\": {:.3},\n",
        random_access_layer_ms
    ));
    json.push_str(&format!(
        "  \"spill_rehydrate_ms\": {:.3},\n",
        spill_rehydrate_ms
    ));
    json.push_str(&format!(
        "  \"shared_cache_cold_ms\": {:.3},\n",
        shared_cache_cold_ms
    ));
    json.push_str(&format!(
        "  \"shared_cache_hot_ms\": {:.3},\n",
        shared_cache_hot_ms
    ));
    json.push_str(&format!("  \"cache_hit_rate\": {:.4},\n", cache_hit_rate));
    json.push_str(&format!(
        "  \"streaming_encode_ms\": {:.3},\n",
        streaming_encode_ms
    ));
    json.push_str(&format!(
        "  \"encode_peak_bytes_materializing\": {},\n",
        encode_peak_bytes_materializing
    ));
    json.push_str(&format!(
        "  \"encode_peak_bytes_streaming\": {},\n",
        encode_peak_bytes_streaming
    ));
    json.push_str(&format!(
        "  \"encode_io_overlap_ratio\": {:.3},\n",
        encode_io_overlap_ratio
    ));
    json.push_str(&format!(
        "  \"codec_choice\": [{}],\n",
        report
            .layers
            .iter()
            .map(|l| format!(
                "{{\"layer\": \"{}\", \"codec\": \"{}\"}}",
                l.name,
                l.data_codec.name()
            ))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    json.push_str(&format!("  \"zfp_win_layers\": {},\n", zfp_win_layers));
    json.push_str(&format!(
        "  \"compression_ratio\": {:.3},\n",
        report.ratio()
    ));
    json.push_str(&format!("  \"host_parallelism\": {},\n", host));
    json.push_str(&format!("  \"layout_workers\": {},\n", layout_workers()));
    json.push_str(&format!(
        "  \"pool_bench_workers\": {},\n",
        pool_bench_workers
    ));
    json.push_str(&format!("  \"pool_reuse_pooled_ms\": {:.3},\n", pooled_ms));
    json.push_str(&format!("  \"pool_reuse_scoped_ms\": {:.3},\n", scoped_ms));
    json.push_str(&format!(
        "  \"pool_reuse_speedup\": {:.3},\n",
        pool_reuse_speedup
    ));
    json.push_str(&format!(
        "  \"assessment_points\": {},\n",
        assessment_points
    ));
    json.push_str(&format!("  \"assessment_ms\": {:.3},\n", assessment_ms));
    json.push_str(&format!(
        "  \"assessment_full_ms\": {:.3},\n",
        assessment_full_ms
    ));
    json.push_str(&format!(
        "  \"assessment_incremental_speedup\": {:.3},\n",
        assessment_incremental_speedup
    ));
    json.push_str("  \"runs\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"threads\": {}, \"encode_ms\": {:.3}, \"decode_ms\": {:.3}, \"lossy_decode_ms\": {:.3}}}{}\n",
            r.workers,
            r.encode_ms,
            r.decode_ms,
            r.lossy_decode_ms,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"decode_ms\": {:.3},\n", base.decode_ms));
    // Speedup at "max threads" means max *effective* threads: requests
    // above the host's parallelism are clamped, so oversubscribed rows
    // are re-runs of the widest real configuration and comparing against
    // them only measures noise. On a 1-core host every row collapses to
    // the base row and both speedups are exactly 1.0 by construction —
    // that IS the fix (the pre-clamp code oversubscribed and landed
    // below 1.0).
    let max_effective = rows
        .iter()
        .map(|r| clamp_to_host(r.workers))
        .max()
        .expect("at least one run");
    let widest = rows
        .iter()
        .find(|r| clamp_to_host(r.workers) == max_effective)
        .expect("at least one run");
    let (decode_speedup, encode_speedup) = if widest.workers == base.workers {
        (1.0, 1.0)
    } else {
        (
            base.decode_ms / widest.decode_ms,
            base.encode_ms / widest.encode_ms,
        )
    };
    json.push_str(&format!(
        "  \"effective_max_threads\": {},\n",
        max_effective
    ));
    json.push_str(&format!(
        "  \"decode_speedup_max_threads\": {:.3},\n  \"encode_speedup_max_threads\": {:.3}\n",
        decode_speedup, encode_speedup
    ));
    json.push_str("}\n");
    std::fs::write("BENCH_encode_decode.json", &json).expect("write BENCH_encode_decode.json");
    println!("wrote BENCH_encode_decode.json");
}
