//! Figure 4 — compression ratios of the three lossless codecs (gzip /
//! Zstandard / Blosc roles) on the 8-bit `index` arrays of the pruned fc
//! layers in AlexNet and VGG-16.
//!
//! The paper's claim to reproduce: Zstandard consistently yields the best
//! ratio, which is why DeepSZ's best-fit selection picks it.

use dsz_bench::tables::print_table;
use dsz_bench::workloads::full_size_pruned_layers;
use dsz_lossless::LosslessKind;
use dsz_nn::Arch;
use dsz_sparse::PairArray;

fn main() {
    for arch in [Arch::AlexNet, Arch::Vgg16] {
        let mut rows = Vec::new();
        for (name, layer_rows, cols, _density, dense) in full_size_pruned_layers(arch) {
            let pair = PairArray::from_dense(&dense, layer_rows, cols);
            let raw = pair.index.len();
            let mut cells = vec![name.clone(), format!("{}", raw)];
            let mut best = (0f64, "");
            for kind in LosslessKind::ALL {
                let blob = kind.codec().compress(&pair.index);
                let ratio = raw as f64 / blob.len() as f64;
                if ratio > best.0 {
                    best = (ratio, kind.name());
                }
                cells.push(format!("{ratio:.2}"));
            }
            cells.push(best.1.to_string());
            rows.push(cells);
        }
        print_table(
            &format!("Figure 4: lossless codecs on {} index arrays", arch.name()),
            &["layer", "index bytes", "gzip", "zstd", "blosc", "best"],
            &rows,
        );
    }
    println!("\npaper: Zstandard always gives the highest ratio on index arrays");
}
