//! Figure 2 — compression ratios of SZ vs ZFP on the condensed (1-D)
//! pruned-weight data arrays of each fc layer in AlexNet and VGG-16, at
//! absolute error bounds 1e-2 / 1e-3 / 1e-4.
//!
//! The paper's claim to reproduce: SZ consistently out-compresses ZFP on
//! these 1-D arrays at every bound.

use dsz_bench::tables::print_table;
use dsz_bench::workloads::full_size_pruned_layers;
use dsz_nn::Arch;
use dsz_sparse::PairArray;
use dsz_sz::{ErrorBound, SzConfig};

fn main() {
    let bounds = [1e-2f64, 1e-3, 1e-4];
    for arch in [Arch::AlexNet, Arch::Vgg16] {
        let mut rows = Vec::new();
        for (name, layer_rows, cols, _density, dense) in full_size_pruned_layers(arch) {
            let pair = PairArray::from_dense(&dense, layer_rows, cols);
            let raw = pair.data.len() * 4;
            for &eb in &bounds {
                let sz = SzConfig::default()
                    .compress(&pair.data, ErrorBound::Abs(eb))
                    .expect("sz compress");
                let zfp = dsz_zfp::compress(&pair.data, eb).expect("zfp compress");
                let r_sz = raw as f64 / sz.len() as f64;
                let r_zfp = raw as f64 / zfp.len() as f64;
                rows.push(vec![
                    name.clone(),
                    format!("{eb:.0e}"),
                    format!("{r_sz:.2}"),
                    format!("{r_zfp:.2}"),
                    format!("{:.2}x", r_sz / r_zfp),
                    if r_sz > r_zfp {
                        "SZ".into()
                    } else {
                        "ZFP".into()
                    },
                ]);
            }
        }
        print_table(
            &format!(
                "Figure 2: SZ vs ZFP compression ratio on {} fc data arrays",
                arch.name()
            ),
            &[
                "layer",
                "error bound",
                "SZ ratio",
                "ZFP ratio",
                "SZ/ZFP",
                "winner",
            ],
            &rows,
        );
    }
    println!("\npaper: SZ consistently outperforms ZFP on 1-D fc-layer arrays at 1e-2..1e-4");
}
