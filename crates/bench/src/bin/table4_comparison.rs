//! Table 4 — per-layer and overall compression-ratio comparison:
//! Deep Compression (5-bit codebook) vs Weightless (Bloomier filter,
//! largest layer only, like the original) vs DeepSZ.
//!
//! All three consume identical pruned layers. Full-size synthesized layers
//! are used for AlexNet/VGG-16 (ratio depends only on value statistics);
//! the trained networks are used for the LeNets.

use dsz_baselines::deep_compression::{self, DcConfig};
use dsz_baselines::weightless::{self, WlConfig};
use dsz_bench::tables::print_table;
use dsz_bench::workloads::{full_size_pruned_layers, paper_error_bounds, workload};
use dsz_lossless::best_fit;
use dsz_nn::Arch;
use dsz_sparse::PairArray;
use dsz_sz::{ErrorBound, SzConfig};

/// `(name, rows, cols, pruned dense matrix, deepsz error bound)`.
fn layers_for(arch: Arch) -> Vec<(String, usize, usize, Vec<f32>, f64)> {
    let ebs = paper_error_bounds(arch);
    match arch {
        Arch::LeNet300 | Arch::LeNet5 => {
            let w = workload(arch);
            w.net
                .fc_layers()
                .iter()
                .zip(ebs)
                .map(|(fc, &eb)| {
                    let d = w.net.dense(fc.layer_index);
                    (fc.name.clone(), d.w.rows, d.w.cols, d.w.data.clone(), eb)
                })
                .collect()
        }
        Arch::AlexNet | Arch::Vgg16 => full_size_pruned_layers(arch)
            .into_iter()
            .zip(ebs)
            .map(|((name, r, c, _d, dense), &eb)| (name, r, c, dense, eb))
            .collect(),
    }
}

fn main() {
    for arch in Arch::ALL {
        let layers = layers_for(arch);
        let largest = layers
            .iter()
            .enumerate()
            .max_by_key(|(_, l)| l.1 * l.2)
            .map(|(i, _)| i)
            .expect("at least one layer");
        let mut rows_out = Vec::new();
        let (mut dense_total, mut dc_total, mut dsz_total) = (0usize, 0usize, 0usize);
        let mut wl_largest_ratio = None;
        for (i, (name, rows, cols, dense, eb)) in layers.iter().enumerate() {
            let dense_bytes = rows * cols * 4;
            // Deep Compression: 5-bit codebook + Huffman streams.
            let dc = deep_compression::encode_layer(dense, *rows, *cols, &DcConfig::default());
            let dc_bytes = deep_compression::compressed_bytes(&dc);
            // DeepSZ: SZ data array + best-fit lossless index array.
            let pair = PairArray::from_dense(dense, *rows, *cols);
            let sz = SzConfig::default()
                .compress(&pair.data, ErrorBound::Abs(*eb))
                .expect("sz compress");
            let (_, idx) = best_fit(&pair.index);
            let dsz_bytes = sz.len() + idx.len();
            // Weightless: only the largest layer, like the original system.
            let wl_cell = if i == largest {
                let enc = weightless::encode_layer(dense, *rows, *cols, &WlConfig::default())
                    .expect("bloomier build");
                let b = weightless::compressed_bytes(&enc);
                let r = dense_bytes as f64 / b as f64;
                wl_largest_ratio = Some(r);
                format!("{r:.1}")
            } else {
                "-".into()
            };
            let dc_r = dense_bytes as f64 / dc_bytes as f64;
            let dsz_r = dense_bytes as f64 / dsz_bytes as f64;
            rows_out.push(vec![
                name.clone(),
                format!("{dc_r:.1}"),
                wl_cell,
                format!("{dsz_r:.1}"),
                format!("{:.2}x", dsz_r / dc_r),
            ]);
            dense_total += dense_bytes;
            dc_total += dc_bytes;
            dsz_total += dsz_bytes;
        }
        rows_out.push(vec![
            "overall".into(),
            format!("{:.1}", dense_total as f64 / dc_total as f64),
            wl_largest_ratio.map_or("-".into(), |r| format!("({r:.1} largest only)")),
            format!("{:.1}", dense_total as f64 / dsz_total as f64),
            format!(
                "{:.2}x",
                (dense_total as f64 / dsz_total as f64) / (dense_total as f64 / dc_total as f64)
            ),
        ]);
        print_table(
            &format!("Table 4 ({}): compression-ratio comparison", arch.name()),
            &[
                "layer",
                "Deep Compression",
                "Weightless",
                "DeepSZ",
                "DeepSZ/DC",
            ],
            &rows_out,
        );
    }
    println!("\npaper: DeepSZ improves the overall ratio by 1.21x–1.43x over the second best");
}
