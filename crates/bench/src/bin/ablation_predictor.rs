//! Ablation: SZ predictor policy (Lorenzo-only vs regression-only vs
//! adaptive) on pruned fc-layer weights. The paper credits SZ's adaptive
//! best-fit prediction for its edge over plain vector quantization (§1,
//! §4.3); this harness quantifies that choice on DNN weight data.

use dsz_bench::tables::print_table;
use dsz_datagen::weights;
use dsz_sz::{ErrorBound, PredictorMode, SzConfig};

fn main() {
    let (values, _) = weights::pruned_nonzeros(4096, 4096, 0.09, 5);
    let raw = values.len() * 4;
    let mut rows = Vec::new();
    for eb in [1e-2f64, 1e-3, 1e-4] {
        let mut cells = vec![format!("{eb:.0e}")];
        for mode in [
            PredictorMode::LorenzoOnly,
            PredictorMode::RegressionOnly,
            PredictorMode::Adaptive,
        ] {
            let cfg = SzConfig {
                predictor: mode,
                ..SzConfig::default()
            };
            let (blob, stats) = cfg
                .compress_with_stats(&values, ErrorBound::Abs(eb))
                .expect("sz compress");
            cells.push(format!(
                "{:.2}x ({} reg blocks)",
                raw as f64 / blob.len() as f64,
                stats.regression_blocks
            ));
        }
        rows.push(cells);
    }
    print_table(
        "Ablation: SZ predictor policy on pruned fc weights (AlexNet fc6-sized)",
        &["error bound", "Lorenzo only", "regression only", "adaptive"],
        &rows,
    );
    println!("\nexpectation: adaptive ≥ max(single-predictor) at every bound");
}
