//! Ablation: compressing the pruned layer as a condensed 1-D data array
//! (DeepSZ's choice) vs compressing the dense 2-D weight matrix directly.
//!
//! The paper reports that lossy-compressing the pruned *matrices*
//! collapses inference accuracy to ~20% (§3.2, footnote on sparse
//! representation): every pruned-away zero gets perturbed by up to eb,
//! silently re-activating millions of dead connections. This harness
//! reproduces both sides: ratio and accuracy.

use dsz_bench::tables::print_table;
use dsz_bench::workloads::workload;
use dsz_core::{AccuracyEvaluator, DatasetEvaluator};
use dsz_nn::Arch;
use dsz_sparse::PairArray;
use dsz_sz::{ErrorBound, SzConfig};

fn main() {
    let w = workload(Arch::LeNet300);
    let eval = DatasetEvaluator::new(w.test.clone());
    println!("baseline top-1: {:.2}%", w.base_top1 * 100.0);
    let mut rows = Vec::new();
    for eb in [1e-3f64, 1e-2, 3e-2] {
        // --- condensed 1-D route (DeepSZ) ---
        let mut net_1d = w.net.clone();
        let mut bytes_1d = 0usize;
        let mut raw = 0usize;
        for fc in w.net.fc_layers() {
            let d = w.net.dense(fc.layer_index);
            let pair = PairArray::from_dense(&d.w.data, d.w.rows, d.w.cols);
            let blob = SzConfig::default()
                .compress(&pair.data, ErrorBound::Abs(eb))
                .expect("sz compress");
            bytes_1d += blob.len() + pair.index.len(); // index shipped raw here
            raw += d.w.data.len() * 4;
            let restored = dsz_sz::decompress(&blob).expect("roundtrip");
            net_1d.dense_mut(fc.layer_index).w.data = pair
                .with_data(restored)
                .expect("structure")
                .to_dense()
                .expect("pair");
        }
        let acc_1d = eval.evaluate(&net_1d);

        // --- dense 2-D route (what the paper warns against) ---
        let mut net_2d = w.net.clone();
        let mut bytes_2d = 0usize;
        for fc in w.net.fc_layers() {
            let d = w.net.dense(fc.layer_index);
            let blob = SzConfig::default()
                .compress(&d.w.data, ErrorBound::Abs(eb))
                .expect("sz compress");
            bytes_2d += blob.len();
            net_2d.dense_mut(fc.layer_index).w.data = dsz_sz::decompress(&blob).expect("roundtrip");
        }
        let acc_2d = eval.evaluate(&net_2d);

        rows.push(vec![
            format!("{eb:.0e}"),
            format!(
                "{:.1}x / {:.2}%",
                raw as f64 / bytes_1d as f64,
                acc_1d * 100.0
            ),
            format!(
                "{:.1}x / {:.2}%",
                raw as f64 / bytes_2d as f64,
                acc_2d * 100.0
            ),
        ]);
    }
    print_table(
        "Ablation: condensed 1-D arrays vs dense 2-D matrices (ratio / top-1)",
        &["error bound", "1-D condensed (DeepSZ)", "2-D dense"],
        &rows,
    );
    println!("\npaper: the 2-D route wrecks accuracy (≈20%) because pruned zeros get reactivated");
}
