//! Ablation: SZ entropy stage and lossless backend. Quantifies what the
//! Huffman stage and the byte-codec backend each contribute to the final
//! ratio — the design choices that let linear-scaling quantization beat the
//! baselines' plain codebook quantization.

use dsz_bench::tables::print_table;
use dsz_datagen::weights;
use dsz_sz::{ErrorBound, SzConfig};

fn main() {
    let (values, _) = weights::pruned_nonzeros(4096, 4096, 0.09, 11);
    let raw = values.len() * 4;
    let variants: Vec<(&str, SzConfig)> = vec![
        ("huffman + zstd backend (default)", SzConfig::default()),
        (
            "huffman, no backend",
            SzConfig {
                backend: None,
                ..SzConfig::default()
            },
        ),
        (
            "raw codes + zstd backend",
            SzConfig {
                entropy: dsz_sz::EntropyStage::Raw,
                ..SzConfig::default()
            },
        ),
        (
            "raw codes, no backend",
            SzConfig {
                entropy: dsz_sz::EntropyStage::Raw,
                backend: None,
                ..SzConfig::default()
            },
        ),
    ];
    let mut rows = Vec::new();
    for eb in [1e-2f64, 1e-3] {
        for (label, cfg) in &variants {
            let blob = cfg
                .compress(&values, ErrorBound::Abs(eb))
                .expect("sz compress");
            rows.push(vec![
                format!("{eb:.0e}"),
                (*label).into(),
                blob.len().to_string(),
                format!("{:.2}x", raw as f64 / blob.len() as f64),
            ]);
        }
    }
    print_table(
        "Ablation: SZ entropy stage / lossless backend",
        &["error bound", "variant", "bytes", "ratio"],
        &rows,
    );
    println!("\nexpectation: Huffman carries most of the ratio; the backend adds a final squeeze");
}
