//! Table 1 — architectures of the example neural networks: layer counts,
//! fc dimensions, forward times, total size and fc-layer share.
//!
//! Forward times are measured on this machine's CPU substrate (the paper
//! used a GPU; only the *relationship* — convs dominate time, fc layers
//! dominate storage — is expected to hold). Set `DSZ_SKIP_SLOW=1` to skip
//! the full-size AlexNet/VGG-16 forward timing.

use dsz_bench::tables::print_table;
use dsz_bench::{fmt_bytes, fmt_pct};
use dsz_nn::{zoo, Arch, Batch, Layer, Network, Scale};
use std::time::Instant;

/// One timed forward pass of a single image, split at the first dense
/// layer into (conv time, fc time).
fn forward_times(net: &Network) -> (f64, f64) {
    let (prefix, head) = net.split_feature_head();
    let x = Batch {
        n: 1,
        shape: net.input_shape,
        data: vec![0.5; net.input_shape.len()],
    };
    let t0 = Instant::now();
    let feats = prefix.forward(&x);
    let conv_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t1 = Instant::now();
    let _ = head.forward(&feats);
    let fc_ms = t1.elapsed().as_secs_f64() * 1e3;
    (conv_ms, fc_ms)
}

fn main() {
    let skip_slow = std::env::var("DSZ_SKIP_SLOW").is_ok();
    let mut rows = Vec::new();
    for arch in Arch::ALL {
        let slow = matches!(arch, Arch::AlexNet | Arch::Vgg16);
        let net = zoo::build(arch, Scale::Full, 1);
        let convs = net
            .layers
            .iter()
            .filter(|l| matches!(l, Layer::Conv(_)))
            .count();
        let fcs = net.fc_layers();
        let fc_dims: Vec<String> = fcs
            .iter()
            .map(|f| format!("{}:{}x{}", f.name, f.rows, f.cols))
            .collect();
        let (conv_ms, fc_ms) = if slow && skip_slow {
            (f64::NAN, f64::NAN)
        } else {
            forward_times(&net)
        };
        let total = net.param_bytes();
        let fc_share = net.fc_bytes() as f64 / total as f64;
        rows.push(vec![
            arch.name().to_string(),
            convs.to_string(),
            fcs.len().to_string(),
            fc_dims.join(" "),
            if conv_ms.is_nan() {
                "skipped".into()
            } else {
                format!("{conv_ms:.1} ms")
            },
            if fc_ms.is_nan() {
                "skipped".into()
            } else {
                format!("{fc_ms:.2} ms")
            },
            fmt_bytes(total),
            fmt_pct(fc_share),
        ]);
    }
    print_table(
        "Table 1: architectures of example neural networks",
        &[
            "network",
            "conv layers",
            "fc layers",
            "fc dims",
            "conv fwd",
            "fc fwd",
            "total size",
            "fc share",
        ],
        &rows,
    );
    println!(
        "\npaper: conv layers dominate compute while fc layers hold 89.4%–100% of the weights"
    );
}
