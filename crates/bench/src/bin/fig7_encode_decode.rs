//! Figure 7 — encoding time (7a) and decoding-time breakdown (7b) of
//! DeepSZ vs Deep Compression vs Weightless on the trained workloads.
//!
//! * Encoding: DeepSZ = assessment + optimization + final compression
//!   (no retraining); Deep Compression and Weightless both require masked
//!   retraining to recover accuracy after their lossy stages — measured
//!   here as one retraining epoch on this substrate (the paper charges
//!   them multiple epochs, so this is conservative).
//! * Decoding: per-stage wall time — DeepSZ's lossless + SZ + sparse
//!   reconstruction; Deep Compression's stream decode + codebook expand;
//!   Weightless's query-every-position Bloomier decode.

use dsz_baselines::deep_compression::{self, DcConfig};
use dsz_baselines::weightless::{self, WlConfig};
use dsz_bench::tables::print_table;
use dsz_bench::workloads::workload;
use dsz_core::{
    assess_network, decode_model, encode_with_plan, optimize_for_accuracy, AssessmentConfig,
    DatasetEvaluator,
};
use dsz_nn::{train, Arch, TrainConfig};
use std::time::Instant;

fn main() {
    let mut enc_rows = Vec::new();
    let mut dec_rows = Vec::new();
    for arch in Arch::ALL {
        let expected_loss = match arch {
            Arch::LeNet300 | Arch::LeNet5 => 0.002,
            _ => 0.004,
        };
        let w = workload(arch);
        let eval = DatasetEvaluator::new(w.test.clone());

        // ---- encoding: DeepSZ ----
        let t0 = Instant::now();
        let cfg = AssessmentConfig {
            expected_loss,
            ..Default::default()
        };
        let (assessments, _) = assess_network(&w.net, &cfg, &eval).expect("assessment");
        let plan = optimize_for_accuracy(&assessments, expected_loss).expect("plan");
        let (model, _) = encode_with_plan(&assessments, &plan).expect("encode");
        let dsz_enc = t0.elapsed().as_secs_f64();

        // ---- encoding: Deep Compression (quantize + 1 retrain epoch) ----
        let t0 = Instant::now();
        let mut dc_layers = Vec::new();
        for fc in w.net.fc_layers() {
            let d = w.net.dense(fc.layer_index);
            dc_layers.push(deep_compression::encode_layer(
                &d.w.data,
                d.w.rows,
                d.w.cols,
                &DcConfig::default(),
            ));
        }
        let mut retrain_net = w.net.clone();
        train(
            &mut retrain_net,
            &w.train,
            &TrainConfig {
                epochs: 1,
                ..Default::default()
            },
            None,
        );
        let dc_enc = t0.elapsed().as_secs_f64();

        // ---- encoding: Weightless (bloomier + 1 retrain epoch) ----
        let t0 = Instant::now();
        let mut wl_layers = Vec::new();
        for fc in w.net.fc_layers() {
            let d = w.net.dense(fc.layer_index);
            wl_layers.push(
                weightless::encode_layer(&d.w.data, d.w.rows, d.w.cols, &WlConfig::default())
                    .expect("bloomier build"),
            );
        }
        let mut retrain_net = w.net.clone();
        train(
            &mut retrain_net,
            &w.train,
            &TrainConfig {
                epochs: 1,
                ..Default::default()
            },
            None,
        );
        let wl_enc = t0.elapsed().as_secs_f64();

        enc_rows.push(vec![
            arch.name().to_string(),
            format!("{dsz_enc:.2} s (1.0x)"),
            format!("{dc_enc:.2} s ({:.1}x)", dc_enc / dsz_enc),
            format!("{wl_enc:.2} s ({:.1}x)", wl_enc / dsz_enc),
        ]);

        // ---- decoding breakdown ----
        let (_, t) = decode_model(&model).expect("deepsz decode");
        let t0 = Instant::now();
        for l in &dc_layers {
            deep_compression::decode_layer(l).expect("dc decode");
        }
        let dc_dec = t0.elapsed().as_secs_f64() * 1e3;
        let t0 = Instant::now();
        for l in &wl_layers {
            weightless::decode_layer(l);
        }
        let wl_dec = t0.elapsed().as_secs_f64() * 1e3;
        dec_rows.push(vec![
            arch.name().to_string(),
            // Wall clock for the cross-system comparison; the stage figures
            // are summed across concurrently-decoded layers (CPU-time-like),
            // so they can legitimately exceed the wall total.
            format!(
                "{:.1} ms wall (stage sums: lossless {:.1} + lossy {:.1} + reconstruct {:.1})",
                t.wall_ms, t.lossless_ms, t.lossy_ms, t.reconstruct_ms
            ),
            format!("{dc_dec:.1} ms"),
            format!("{wl_dec:.1} ms"),
        ]);
    }
    print_table(
        "Figure 7a: encoding time (normalized to DeepSZ)",
        &["network", "DeepSZ", "Deep Compression", "Weightless"],
        &enc_rows,
    );
    print_table(
        "Figure 7b: decoding time breakdown",
        &["network", "DeepSZ", "Deep Compression", "Weightless"],
        &dec_rows,
    );
    println!(
        "\npaper: DeepSZ encodes 1.8x–4.0x faster (no retraining) and decodes 4.5x–6.2x faster"
    );
    println!("note: baselines are charged only ONE retraining epoch here — a conservative floor");
}
