//! Table 3 — inference accuracy before/after DeepSZ at the user-set
//! expected loss (0.2% for the LeNets, 0.4% for AlexNet/VGG-16), plus fc
//! sizes and compression ratios. Runs the complete four-step pipeline on
//! each trained workload.

use dsz_bench::tables::print_table;
use dsz_bench::workloads::workload;
use dsz_bench::{fmt_bytes, fmt_ratio};
use dsz_core::{
    apply_decoded, assess_network, decode_model, encode_with_plan, optimize_for_accuracy,
    AccuracyEvaluator, AssessmentConfig, DatasetEvaluator,
};
use dsz_nn::Arch;

fn main() {
    let mut rows = Vec::new();
    for arch in Arch::ALL {
        let expected_loss = match arch {
            Arch::LeNet300 | Arch::LeNet5 => 0.002,
            Arch::AlexNet | Arch::Vgg16 => 0.004,
        };
        let w = workload(arch);
        let eval = DatasetEvaluator::new(w.test.clone());
        let cfg = AssessmentConfig {
            expected_loss,
            ..Default::default()
        };
        let (assessments, _) = assess_network(&w.net, &cfg, &eval).expect("assessment");
        let plan = optimize_for_accuracy(&assessments, expected_loss).expect("plan");
        let (model, report) = encode_with_plan(&assessments, &plan).expect("encode");
        let (decoded, _) = decode_model(&model).expect("decode");
        let mut net = w.net.clone();
        apply_decoded(&mut net, decoded).expect("apply");
        let (top1, top5) = eval.evaluate_topk(&net);

        rows.push(vec![
            format!("{} original", arch.name()),
            format!("{:.2}%", w.base_top1 * 100.0),
            format!("{:.2}%", w.base_top5 * 100.0),
            fmt_bytes(report.total_dense_bytes),
            String::new(),
        ]);
        rows.push(vec![
            format!("{} DeepSZ (ε*={:.1}%)", arch.name(), expected_loss * 100.0),
            format!("{:.2}%", top1 * 100.0),
            format!("{:.2}%", top5 * 100.0),
            fmt_bytes(report.total_bytes),
            fmt_ratio(report.ratio()),
        ]);
    }
    print_table(
        "Table 3: inference accuracy of DeepSZ-compressed networks",
        &["network", "top-1", "top-5", "fc size", "ratio"],
        &rows,
    );
    println!("\npaper: ≤ 0.3% top-1 loss in all cases (top-5 sometimes improves)");
    println!("note: AlexNet/VGG-16 run at reduced scale on the feature surrogate (DESIGN.md §2)");
}
