//! Ablation: Algorithm 2's knapsack DP vs brute-force search vs a naive
//! uniform error bound, on a real assessment. Certifies that the DP's
//! discretized solution is near-optimal at a tiny fraction of the cost and
//! beats the uniform-bound strawman.

use dsz_bench::tables::print_table;
use dsz_bench::workloads::workload;
use dsz_core::optimizer::brute_force_for_accuracy;
use dsz_core::{assess_network, optimize_for_accuracy, AssessmentConfig, DatasetEvaluator};
use dsz_nn::Arch;
use std::time::Instant;

fn main() {
    let w = workload(Arch::LeNet300);
    let eval = DatasetEvaluator::new(w.test.clone());
    let cfg = AssessmentConfig {
        expected_loss: 0.005,
        ..Default::default()
    };
    let (assessments, _) = assess_network(&w.net, &cfg, &eval).expect("assessment");

    let t0 = Instant::now();
    let dp = optimize_for_accuracy(&assessments, cfg.expected_loss).expect("dp plan");
    let dp_us = t0.elapsed().as_micros();

    let t0 = Instant::now();
    let brute = brute_force_for_accuracy(&assessments, cfg.expected_loss).expect("brute plan");
    let brute_us = t0.elapsed().as_micros();

    // Uniform strawman: the loosest single bound every layer tolerates.
    let uniform = {
        let mut best: Option<(f64, usize)> = None;
        // Candidate bounds: any eb tested on every layer.
        let candidates: Vec<f64> = assessments[0].points.iter().map(|p| p.eb).collect();
        for eb in candidates {
            let mut total = 0usize;
            let mut loss = 0f64;
            let mut ok = true;
            for a in &assessments {
                match a.points.iter().find(|p| (p.eb - eb).abs() < 1e-15) {
                    Some(p) => {
                        total += p.data_bytes + a.index_bytes;
                        loss += p.degradation.max(0.0);
                    }
                    None => ok = false,
                }
            }
            if ok && loss <= cfg.expected_loss && best.is_none_or(|(_, b)| total < b) {
                best = Some((eb, total));
            }
        }
        best
    };

    let rows = vec![
        vec![
            "Algorithm 2 (DP)".into(),
            dp.total_bytes.to_string(),
            format!("{:.3}%", dp.predicted_loss * 100.0),
            format!("{dp_us} µs"),
        ],
        vec![
            "brute force (optimal)".into(),
            brute.total_bytes.to_string(),
            format!("{:.3}%", brute.predicted_loss * 100.0),
            format!("{brute_us} µs"),
        ],
        match uniform {
            Some((eb, total)) => vec![
                format!("uniform eb {eb:.0e}"),
                total.to_string(),
                "-".into(),
                "-".into(),
            ],
            None => vec![
                "uniform (no feasible bound)".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ],
        },
    ];
    print_table(
        "Ablation: error-bound configuration strategies (LeNet-300-100)",
        &["strategy", "total bytes", "predicted loss", "time"],
        &rows,
    );
    let gap = dp.total_bytes as f64 / brute.total_bytes as f64;
    println!("\nDP vs optimal size gap: {gap:.3} (1.0 = optimal; DP discretizes Δ conservatively)");
}
