//! Table 2 (a–d) — per-layer compression statistics for the four networks:
//! original size, pruning ratio (kept density), two-array "CSR" size, and
//! the final DeepSZ-compressed size, plus overall ratios.
//!
//! LeNets run the full accuracy-driven pipeline (Algorithms 1+2 pick the
//! bounds). AlexNet/VGG-16 sizes are reproduced at full scale on
//! synthesized trained-weight distributions using the paper's final error
//! bounds (accuracy for those networks lives in Table 3 at reduced scale —
//! see DESIGN.md §2).

use dsz_bench::tables::print_table;
use dsz_bench::workloads::{full_size_pruned_layers, paper_error_bounds, workload};
use dsz_bench::{fmt_bytes, fmt_ratio};
use dsz_core::{assess_network, optimize_for_accuracy, AssessmentConfig, DatasetEvaluator};
use dsz_lossless::best_fit;
use dsz_nn::Arch;
use dsz_sparse::PairArray;
use dsz_sz::{ErrorBound, SzConfig};

struct LayerRow {
    name: String,
    original: usize,
    density: f64,
    pair_bytes: usize,
    deepsz_bytes: usize,
}

fn print_arch(arch: Arch, rows: &[LayerRow]) {
    let mut table = Vec::new();
    let (mut tot_orig, mut tot_pair, mut tot_dsz) = (0usize, 0usize, 0usize);
    let mut weighted_density = 0f64;
    for r in rows {
        table.push(vec![
            r.name.clone(),
            fmt_bytes(r.original),
            format!("{:.0}%", r.density * 100.0),
            fmt_bytes(r.pair_bytes),
            fmt_bytes(r.deepsz_bytes),
            fmt_ratio(r.original as f64 / r.deepsz_bytes.max(1) as f64),
        ]);
        tot_orig += r.original;
        tot_pair += r.pair_bytes;
        tot_dsz += r.deepsz_bytes;
        weighted_density += r.density * r.original as f64;
    }
    table.push(vec![
        "overall".into(),
        fmt_bytes(tot_orig),
        format!("{:.1}%", weighted_density / tot_orig as f64 * 100.0),
        format!(
            "{} ({})",
            fmt_bytes(tot_pair),
            fmt_ratio(tot_orig as f64 / tot_pair.max(1) as f64)
        ),
        format!(
            "{} ({})",
            fmt_bytes(tot_dsz),
            fmt_ratio(tot_orig as f64 / tot_dsz.max(1) as f64)
        ),
        String::new(),
    ]);
    print_table(
        &format!(
            "Table 2: fc-layer compression statistics for {}",
            arch.name()
        ),
        &[
            "layer",
            "original",
            "pruning ratio",
            "pair-array size",
            "DeepSZ",
            "ratio",
        ],
        &table,
    );
}

/// Full pipeline for the trainable networks.
fn pipeline_rows(arch: Arch, expected_loss: f64) -> Vec<LayerRow> {
    let w = workload(arch);
    let eval = DatasetEvaluator::new(w.test.clone());
    let cfg = AssessmentConfig {
        expected_loss,
        ..Default::default()
    };
    let (assessments, _) = assess_network(&w.net, &cfg, &eval).expect("assessment");
    let plan = optimize_for_accuracy(&assessments, cfg.expected_loss).expect("plan");
    assessments
        .iter()
        .zip(&plan.layers)
        .map(|(a, c)| LayerRow {
            name: format!("{} (eb {:.0e})", a.fc.name, c.eb),
            original: a.pair.dense_bytes(),
            density: a.pair.nnz() as f64 / (a.pair.rows * a.pair.cols) as f64,
            pair_bytes: a.pair.size_bytes(),
            deepsz_bytes: c.total_bytes(),
        })
        .collect()
}

/// Storage-only reproduction at full scale with the paper's bounds.
fn full_size_rows(arch: Arch) -> Vec<LayerRow> {
    let ebs = paper_error_bounds(arch);
    full_size_pruned_layers(arch)
        .into_iter()
        .zip(ebs)
        .map(|((name, rows, cols, density, dense), &eb)| {
            let pair = PairArray::from_dense(&dense, rows, cols);
            let sz = SzConfig::default()
                .compress(&pair.data, ErrorBound::Abs(eb))
                .expect("sz compress");
            let (_, idx) = best_fit(&pair.index);
            LayerRow {
                name: format!("{name} (eb {eb:.0e})"),
                original: pair.dense_bytes(),
                density,
                pair_bytes: pair.size_bytes(),
                deepsz_bytes: sz.len() + idx.len(),
            }
        })
        .collect()
}

fn main() {
    for arch in [Arch::LeNet300, Arch::LeNet5] {
        let rows = pipeline_rows(arch, 0.002);
        print_arch(arch, &rows);
    }
    for arch in [Arch::AlexNet, Arch::Vgg16] {
        let rows = full_size_rows(arch);
        print_arch(arch, &rows);
    }
    println!(
        "\npaper overall ratios: LeNet-300-100 55.8x, LeNet-5 57.3x, AlexNet 45.5x, VGG-16 115.6x"
    );
}
