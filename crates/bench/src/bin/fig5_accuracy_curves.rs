//! Figures 3 & 5 — inference accuracy vs per-layer error bound for all four
//! networks, with exactly one fc layer compressed per test (the paper's
//! single-layer reconstruction methodology, §3.3).
//!
//! Expected shape: accuracy is flat up to a per-layer threshold bound, then
//! collapses; earlier (larger) layers tolerate smaller bounds.

use dsz_bench::tables::print_table;
use dsz_bench::workloads::workload;
use dsz_core::{AccuracyEvaluator, DatasetEvaluator};
use dsz_nn::Arch;
use dsz_sparse::PairArray;
use dsz_sz::{ErrorBound, SzConfig};

fn main() {
    let bounds: Vec<f64> = vec![1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1];
    for arch in Arch::ALL {
        let w = workload(arch);
        let eval = DatasetEvaluator::new(w.test.clone());
        let mut rows = Vec::new();
        for fc in w.net.fc_layers() {
            let d = w.net.dense(fc.layer_index);
            let pair = PairArray::from_dense(&d.w.data, d.w.rows, d.w.cols);
            let mut cells = vec![fc.name.clone()];
            for &eb in &bounds {
                let blob = SzConfig::default()
                    .compress(&pair.data, ErrorBound::Abs(eb))
                    .expect("sz compress");
                let restored = dsz_sz::decompress(&blob).expect("sz roundtrip");
                let dense = pair
                    .with_data(restored)
                    .expect("structure preserved")
                    .to_dense()
                    .expect("valid pair array");
                let mut candidate = w.net.clone();
                candidate.dense_mut(fc.layer_index).w.data = dense;
                let acc = eval.evaluate(&candidate);
                cells.push(format!("{:.2}%", acc * 100.0));
            }
            rows.push(cells);
        }
        let mut headers: Vec<String> = vec!["layer".into()];
        headers.extend(bounds.iter().map(|b| format!("{b:.0e}")));
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        print_table(
            &format!(
                "Figure 5 ({}): top-1 accuracy vs error bound (baseline {:.2}%)",
                arch.name(),
                w.base_top1 * 100.0
            ),
            &header_refs,
            &rows,
        );
    }
    println!("\npaper: accuracy holds to a per-layer threshold then collapses; 1e-1 is ruinous");
}
