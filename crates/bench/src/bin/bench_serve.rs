//! Multi-tenant serving bench: N compressed models × M concurrent
//! request streams through the `dsz_serve` stack (`docs/SERVING.md`) —
//! requests/sec, tail latency, shared-cache hit rate, and the
//! batched-vs-unbatched speedup of count-bounded micro-batching.
//!
//! Emits a human-readable summary and a machine-readable
//! `BENCH_serve.json` in the working directory so the serving trajectory
//! is tracked across PRs alongside `BENCH_encode_decode.json` (both
//! record `cache_hit_rate` from the same `CacheStats::hit_rate`
//! plumbing).

use dsz_bench::workloads::{paper_error_bounds, reduced_pruning_densities};
use dsz_core::optimizer::{ChosenLayer, Plan};
use dsz_core::{encode_with_plan, rewrite_layer_data, DataCodecKind, ForwardHook, LayerAssessment};
use dsz_nn::{zoo, Arch, Network, Scale};
use dsz_serve::{
    BatchConfig, ChaosConfig, FaultPlan, ModelRegistry, RetryPolicy, ServeError, Server,
    ServerConfig, ShedConfig, ShedPolicy, SubmitOptions,
};
use dsz_sparse::PairArray;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tenants sharing one registry/cache.
const MODELS: usize = 2;
/// Concurrent request streams (client threads). More streams than
/// host cores is the point: queues deepen while a leader executes, so
/// micro-batches actually form.
const STREAMS: usize = 8;
/// Requests each stream issues.
const REQUESTS_PER_STREAM: usize = 64;

/// A LeNet-300-100 (full scale) with seed-distinct pruned weights,
/// encoded into a DSZM container — one serving tenant. Returns the
/// skeleton, the container bytes, and the stack's dense weight bytes.
fn build_tenant(seed: u64) -> (Network, Vec<u8>, usize) {
    let arch = Arch::LeNet300;
    let net = zoo::build(arch, Scale::Full, seed);
    let densities = reduced_pruning_densities(arch);
    let ebs = paper_error_bounds(arch);
    let mut assessments: Vec<LayerAssessment> = Vec::new();
    let mut chosen: Vec<ChosenLayer> = Vec::new();
    let mut dense_bytes = 0usize;
    for (li, fc) in net.fc_layers().into_iter().enumerate() {
        let mut dense =
            dsz_datagen::weights::trained_fc_weights(fc.rows, fc.cols, seed ^ (li as u64) << 8);
        dsz_prune::prune_to_density(&mut dense, densities[li % densities.len()]);
        dense_bytes += dense.len() * 4;
        let pair = PairArray::from_dense(&dense, fc.rows, fc.cols);
        let (index_codec, index_blob) = dsz_lossless::best_fit(&pair.index);
        chosen.push(ChosenLayer {
            fc: fc.clone(),
            eb: ebs[li % ebs.len()],
            degradation: 0.0,
            data_bytes: 0,
            index_bytes: index_blob.len(),
            codec: DataCodecKind::Sz,
            point_index: 0,
        });
        assessments.push(LayerAssessment {
            fc,
            pair,
            index_codec,
            index_bytes: index_blob.len(),
            points: Vec::new(),
        });
    }
    let plan = Plan {
        layers: chosen,
        predicted_loss: 0.0,
        total_bytes: 0,
    };
    let (model, _) = encode_with_plan(&assessments, &plan).expect("encode tenant");
    (net, model.bytes, dense_bytes)
}

fn probe(dim: usize, seed: u64) -> Vec<f32> {
    let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..dim)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            ((s >> 40) as f32 / (1u64 << 24) as f32) - 0.5
        })
        .collect()
}

/// `p`-th percentile (0..=1) of an unsorted latency sample, by rank.
fn percentile(lat: &mut [f64], p: f64) -> f64 {
    lat.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let rank = ((lat.len() as f64 * p).ceil() as usize).max(1) - 1;
    lat[rank.min(lat.len() - 1)]
}

struct WorkloadResult {
    wall_ms: f64,
    rps: f64,
    p50_ms: f64,
    p99_ms: f64,
    cache_hit_rate: f64,
    batches: u64,
    avg_batch: f64,
}

/// Drives STREAMS threads, each issuing REQUESTS_PER_STREAM single-sample
/// requests round-robin across the loaded models.
fn run_workload(server: &Arc<Server>, inputs: &[Vec<f32>]) -> WorkloadResult {
    let t0 = Instant::now();
    let mut latencies: Vec<f64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..STREAMS)
            .map(|t| {
                let server = Arc::clone(server);
                s.spawn(move || {
                    let mut lats = Vec::with_capacity(REQUESTS_PER_STREAM);
                    for i in 0..REQUESTS_PER_STREAM {
                        let id = format!("m{}", (t + i) % MODELS);
                        let input = inputs[(t * 31 + i * 7) % inputs.len()].clone();
                        let r0 = Instant::now();
                        server.infer(&id, input).expect("infer");
                        lats.push(r0.elapsed().as_secs_f64() * 1e3);
                    }
                    lats
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("stream thread"))
            .collect()
    });
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let total = latencies.len() as f64;
    let stats = server.stats();
    WorkloadResult {
        wall_ms,
        rps: total / (wall_ms / 1e3),
        p50_ms: percentile(&mut latencies, 0.50),
        p99_ms: percentile(&mut latencies, 0.99),
        cache_hit_rate: server.registry().cache_stats().hit_rate(),
        batches: stats.batches,
        avg_batch: stats.avg_batch(),
    }
}

struct ResilienceResult {
    shed_rate: f64,
    deadline_miss_rate: f64,
    retry_success_rate: f64,
    p99_ms: f64,
}

/// The resilience regime (`docs/ROBUSTNESS.md`): a seeded [`FaultPlan`]
/// injects transient decode faults and slow layers while every request
/// carries a deadline and a retry budget and the queue is bounded.
/// Records how the server degrades — what fraction shed, missed, and
/// recovered — rather than peak throughput.
fn run_resilience(tenants: &[(Network, Vec<u8>, usize)], inputs: &[Vec<f32>]) -> ResilienceResult {
    let quota: usize = tenants.iter().map(|t| t.2 * 2).sum();
    let registry = Arc::new(ModelRegistry::new(quota));
    let plan = FaultPlan::new(
        0xC4A0_5EED,
        ChaosConfig {
            transient_decode_per_mille: 40,
            slow_layer_per_mille: 20,
            slow_layer_ms: 1,
            ..ChaosConfig::default()
        },
    );
    registry.set_forward_hook(Some(plan as Arc<dyn ForwardHook>));
    for (m, (net, container, _)) in tenants.iter().enumerate() {
        registry
            .load(format!("m{m}"), net, container)
            .expect("load tenant");
    }
    let server = Arc::new(Server::with_config(
        Arc::clone(&registry),
        ServerConfig {
            batch: BatchConfig { max_batch: 8 },
            shed: ShedConfig {
                max_queue_depth: 4,
                policy: ShedPolicy::RejectNew,
            },
            retry: RetryPolicy::default(),
            quarantine_after: 0,
        },
    ));
    // The deadline sits near the workload's fault-free p99, so misses
    // happen (the metric is live) without dominating the outcome mix.
    let opts = SubmitOptions {
        deadline: Some(Duration::from_millis(6)),
        retries: 2,
    };
    let mut latencies: Vec<f64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..STREAMS)
            .map(|t| {
                let server = Arc::clone(&server);
                s.spawn(move || {
                    let mut lats = Vec::with_capacity(REQUESTS_PER_STREAM);
                    for i in 0..REQUESTS_PER_STREAM {
                        let id = format!("m{}", (t + i) % MODELS);
                        let input = inputs[(t * 31 + i * 7) % inputs.len()].clone();
                        let r0 = Instant::now();
                        // Every outcome is legal under fire; the server
                        // must only resolve each request exactly once.
                        let _ = server.infer_with(&id, input, opts);
                        lats.push(r0.elapsed().as_secs_f64() * 1e3);
                    }
                    lats
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("stream thread"))
            .collect()
    });
    let stats = server.stats();
    let attempts = (STREAMS * REQUESTS_PER_STREAM) as f64;
    ResilienceResult {
        shed_rate: (stats.rejected + stats.shed) as f64 / attempts,
        deadline_miss_rate: stats.deadline_misses as f64 / (stats.submitted.max(1)) as f64,
        retry_success_rate: stats.retry_successes as f64 / (stats.retried.max(1)) as f64,
        p99_ms: percentile(&mut latencies, 0.99),
    }
}

/// One healthy and one degraded tenant side by side: the degraded model
/// fails fast at submit (no forward pass), so its p99 should sit far
/// below the healthy p99 — and healthy traffic should be unaffected.
/// Returns `(healthy_p99_ms, degraded_p99_ms)`.
fn run_degraded_split(tenants: &[(Network, Vec<u8>, usize)], inputs: &[Vec<f32>]) -> (f64, f64) {
    let quota: usize = tenants.iter().map(|t| t.2 * 2).sum();
    let registry = Arc::new(ModelRegistry::new(quota));
    registry
        .load("healthy", &tenants[0].0, &tenants[0].1)
        .expect("load healthy tenant");
    let bad = rewrite_layer_data(&tenants[1].1, 0, |data| {
        data.truncate(data.len() / 2);
    })
    .expect("corrupt tenant container");
    registry
        .load_degraded("degraded", &tenants[1].0, &bad)
        .expect("load degraded tenant");
    let server = Arc::new(Server::new(
        Arc::clone(&registry),
        BatchConfig { max_batch: 8 },
    ));
    let lat_pairs: Vec<(Vec<f64>, Vec<f64>)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..STREAMS)
            .map(|t| {
                let server = Arc::clone(&server);
                s.spawn(move || {
                    let mut healthy = Vec::new();
                    let mut degraded = Vec::new();
                    for i in 0..REQUESTS_PER_STREAM {
                        let input = inputs[(t * 31 + i * 7) % inputs.len()].clone();
                        let r0 = Instant::now();
                        if (t + i) % 2 == 0 {
                            server.infer("healthy", input).expect("healthy infer");
                            healthy.push(r0.elapsed().as_secs_f64() * 1e3);
                        } else {
                            match server.infer("degraded", input) {
                                Err(ServeError::Degraded { .. }) => {}
                                other => panic!("expected fast Degraded failure, got {other:?}"),
                            }
                            degraded.push(r0.elapsed().as_secs_f64() * 1e3);
                        }
                    }
                    (healthy, degraded)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("stream thread"))
            .collect()
    });
    let mut healthy: Vec<f64> = lat_pairs.iter().flat_map(|p| p.0.iter().copied()).collect();
    let mut degraded: Vec<f64> = lat_pairs.iter().flat_map(|p| p.1.iter().copied()).collect();
    (
        percentile(&mut healthy, 0.99),
        percentile(&mut degraded, 0.99),
    )
}

fn main() {
    let tenants: Vec<(Network, Vec<u8>, usize)> = (0..MODELS)
        .map(|m| build_tenant(0x7E4A_4711 + m as u64))
        .collect();
    let total_dense: usize = tenants.iter().map(|t| t.2 * 2).sum();
    let input_dim = tenants[0].0.input_shape.len();
    let inputs: Vec<Vec<f32>> = (0..8).map(|i| probe(input_dim, 0x5EED + i)).collect();

    println!(
        "serving workload: {} models (LeNet-300-100 full) x {} streams x {} requests, shared cache quota {} KiB",
        MODELS,
        STREAMS,
        REQUESTS_PER_STREAM,
        total_dense / 1024
    );

    // Each configuration gets a fresh registry + cache so hit rates and
    // counters are independent. Two quota regimes:
    //
    // * *warm* — quota fits every tenant; steady state is all-hits (a hit
    //   is a pointer clone), so batched and unbatched do the same flops
    //   and the win shows up in tail latency, not throughput (on a
    //   saturated host the kernel already parallelizes one request across
    //   the pool).
    // * *cold* — quota 0, every layer fetch is a container decode. This
    //   is where count-bounded batching earns its keep: one decode serves
    //   the whole batch, so the per-request fixed cost divides by the
    //   batch width.
    let mut results: Vec<(&str, usize, WorkloadResult)> = Vec::new();
    for (label, max_batch, quota) in [
        ("batched_warm", 8usize, total_dense),
        ("unbatched_warm", 1, total_dense),
        ("batched_cold", 8, 0),
        ("unbatched_cold", 1, 0),
    ] {
        let registry = Arc::new(ModelRegistry::new(quota));
        for (m, (net, container, _)) in tenants.iter().enumerate() {
            registry
                .load(format!("m{m}"), net, container)
                .expect("load tenant");
        }
        let server = Arc::new(Server::new(
            Arc::clone(&registry),
            BatchConfig { max_batch },
        ));
        let r = run_workload(&server, &inputs);
        println!(
            "{label:14} (max_batch {max_batch}): {:.1} req/s, p50 {:.3} ms, p99 {:.3} ms, wall {:.1} ms, cache hit rate {:.3}, {} batches (avg width {:.2})",
            r.rps, r.p50_ms, r.p99_ms, r.wall_ms, r.cache_hit_rate, r.batches, r.avg_batch
        );
        results.push((label, max_batch, r));
    }
    let batched = &results[0].2;
    let unbatched = &results[1].2;
    let warm_speedup = unbatched.wall_ms / batched.wall_ms.max(1e-9);
    let cold_speedup = results[3].2.wall_ms / results[2].2.wall_ms.max(1e-9);
    println!(
        "micro-batching speedup (unbatched wall / batched wall): {:.2}x warm (all cache hits), {:.2}x cold (every layer decoded)",
        warm_speedup, cold_speedup
    );

    let resilience = run_resilience(&tenants, &inputs);
    println!(
        "resilience     (faults+deadlines+bounded queue): shed rate {:.3}, deadline miss rate {:.3}, retry success rate {:.3}, p99 {:.3} ms",
        resilience.shed_rate,
        resilience.deadline_miss_rate,
        resilience.retry_success_rate,
        resilience.p99_ms
    );
    let (healthy_p99, degraded_p99) = run_degraded_split(&tenants, &inputs);
    println!(
        "degraded split (healthy vs degraded tenant): healthy p99 {:.3} ms, degraded fast-fail p99 {:.3} ms",
        healthy_p99, degraded_p99
    );

    let mut json = String::from("{\n");
    json.push_str("  \"workload\": \"lenet300_full_multi_tenant\",\n");
    json.push_str(&format!("  \"models\": {MODELS},\n"));
    json.push_str(&format!("  \"streams\": {STREAMS},\n"));
    json.push_str(&format!(
        "  \"requests\": {},\n",
        STREAMS * REQUESTS_PER_STREAM
    ));
    json.push_str(&format!("  \"cache_quota_bytes\": {total_dense},\n"));
    for (label, max_batch, r) in &results {
        json.push_str(&format!(
            "  \"{label}\": {{\"max_batch\": {max_batch}, \"wall_ms\": {:.3}, \"requests_per_sec\": {:.1}, \"p50_latency_ms\": {:.4}, \"p99_latency_ms\": {:.4}, \"cache_hit_rate\": {:.4}, \"batches\": {}, \"avg_batch\": {:.3}}},\n",
            r.wall_ms, r.rps, r.p50_ms, r.p99_ms, r.cache_hit_rate, r.batches, r.avg_batch
        ));
    }
    json.push_str(&format!(
        "  \"requests_per_sec\": {:.1},\n  \"p99_latency_ms\": {:.4},\n  \"cache_hit_rate\": {:.4},\n",
        batched.rps, batched.p99_ms, batched.cache_hit_rate
    ));
    json.push_str(&format!(
        "  \"batched_vs_unbatched_speedup_warm\": {:.3},\n",
        warm_speedup
    ));
    json.push_str(&format!(
        "  \"batched_vs_unbatched_speedup\": {:.3},\n",
        cold_speedup
    ));
    json.push_str(&format!(
        "  \"shed_rate\": {:.4},\n  \"deadline_miss_rate\": {:.4},\n  \"retry_success_rate\": {:.4},\n  \"resilience_p99_ms\": {:.4},\n",
        resilience.shed_rate,
        resilience.deadline_miss_rate,
        resilience.retry_success_rate,
        resilience.p99_ms
    ));
    json.push_str(&format!(
        "  \"healthy_p99_ms\": {healthy_p99:.4},\n  \"degraded_p99_ms\": {degraded_p99:.4}\n"
    ));
    json.push_str("}\n");
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("wrote BENCH_serve.json");
}
