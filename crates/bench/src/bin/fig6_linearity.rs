//! Figure 6 — approximate linearity of accuracy loss: expected loss
//! (Σ single-layer degradations, Eq. 1) vs actual loss (all fc layers
//! compressed simultaneously), over random error-bound combinations.
//!
//! Expected shape: points hug the identity line for losses ≲ 2%.

use dsz_bench::tables::print_table;
use dsz_bench::workloads::workload;
use dsz_core::linearity::fit_line;
use dsz_core::{linearity_experiment, DatasetEvaluator};
use dsz_nn::Arch;
use dsz_sz::SzConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    for arch in [Arch::AlexNet, Arch::Vgg16] {
        let w = workload(arch);
        let eval = DatasetEvaluator::new(w.test.clone());
        let n_layers = w.net.fc_layers().len();

        // Random per-layer bounds within the paper's < 0.1 regime, biased
        // toward each layer's collapse threshold so expected losses span
        // the 0–2% band Figure 6 plots (tighter bounds measure only test-
        // set noise).
        let mut rng = StdRng::seed_from_u64(0xF16);
        let combos: Vec<Vec<f64>> = (0..24)
            .map(|_| {
                (0..n_layers)
                    .map(|_| 10f64.powf(rng.gen_range(-2.6f64..-1.55)))
                    .collect()
            })
            .collect();

        let points = linearity_experiment(&w.net, &eval, &combos, &SzConfig::default())
            .expect("linearity experiment");
        let rows: Vec<Vec<String>> = points
            .iter()
            .map(|p| {
                vec![
                    format!("{:.3}%", p.expected * 100.0),
                    format!("{:.3}%", p.actual * 100.0),
                ]
            })
            .collect();
        print_table(
            &format!(
                "Figure 6 ({}): expected vs actual accuracy loss",
                arch.name()
            ),
            &["expected (sum of per-layer)", "actual (all layers)"],
            &rows,
        );
        let small: Vec<_> = points.iter().filter(|p| p.actual < 0.02).copied().collect();
        let (slope, r2) = fit_line(&small);
        println!(
            "fit over losses < 2%: slope {slope:.2} (paper ≈ 1.0), R² {r2:.3}  [{} points]",
            small.len()
        );
    }
    println!("\npaper: clear linear relationship while overall loss stays below ~2%");
}
