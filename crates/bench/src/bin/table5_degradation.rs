//! Table 5 — accuracy degradation at *comparable* compression ratios:
//! Deep Compression's codebook is shrunk to DeepSZ's effective bits per
//! weight (2–3 bits), and Weightless runs with a loose checksum, so all
//! systems land near the same size while their accuracy cost diverges.
//!
//! Expected shape: DeepSZ stays within its expected-loss budget while
//! codebook quantization at matched bits degrades sharply.

use dsz_baselines::deep_compression::{self, DcConfig};
use dsz_baselines::weightless::{self, WlConfig};
use dsz_bench::tables::print_table;
use dsz_bench::workloads::workload;
use dsz_core::{
    apply_decoded, assess_network, decode_model, encode_with_plan, optimize_for_accuracy,
    AccuracyEvaluator, AssessmentConfig, DatasetEvaluator,
};
use dsz_nn::Arch;

fn main() {
    let mut rows = Vec::new();
    for arch in Arch::ALL {
        let expected_loss = match arch {
            Arch::LeNet300 | Arch::LeNet5 => 0.002,
            Arch::AlexNet | Arch::Vgg16 => 0.004,
        };
        let w = workload(arch);
        let eval = DatasetEvaluator::new(w.test.clone());

        // --- DeepSZ at its optimized configuration ---
        let cfg = AssessmentConfig {
            expected_loss,
            ..Default::default()
        };
        let (assessments, _) = assess_network(&w.net, &cfg, &eval).expect("assessment");
        let plan = optimize_for_accuracy(&assessments, expected_loss).expect("plan");
        let (model, report) = encode_with_plan(&assessments, &plan).expect("encode");
        let (decoded, _) = decode_model(&model).expect("decode");
        let mut dsz_net = w.net.clone();
        apply_decoded(&mut dsz_net, decoded).expect("apply");
        let dsz_drop = w.base_top1 - eval.evaluate(&dsz_net);

        // Effective bits per surviving weight under DeepSZ.
        let nnz: usize = assessments.iter().map(|a| a.pair.nnz()).sum();
        let bits_per_weight = report.total_bytes as f64 * 8.0 / nnz.max(1) as f64;
        let dc_bits = (bits_per_weight.round() as u8).clamp(2, 5);

        // --- Deep Compression at the matched bit width ---
        let mut dc_net = w.net.clone();
        for fc in w.net.fc_layers() {
            let d = w.net.dense(fc.layer_index);
            let enc = deep_compression::encode_layer(
                &d.w.data,
                d.w.rows,
                d.w.cols,
                &DcConfig {
                    bits: dc_bits,
                    kmeans_iters: 25,
                },
            );
            let (dense, ..) = deep_compression::decode_layer(&enc).expect("dc decode");
            dc_net.dense_mut(fc.layer_index).w.data = dense;
        }
        let dc_drop = w.base_top1 - eval.evaluate(&dc_net);

        // --- Weightless on every layer with a small checksum ---
        let mut wl_net = w.net.clone();
        for fc in w.net.fc_layers() {
            let d = w.net.dense(fc.layer_index);
            let enc = weightless::encode_layer(
                &d.w.data,
                d.w.rows,
                d.w.cols,
                &WlConfig {
                    quant_bits: 4,
                    check_bits: 4,
                    ..Default::default()
                },
            )
            .expect("bloomier build");
            wl_net.dense_mut(fc.layer_index).w.data = weightless::decode_layer(&enc);
        }
        let wl_drop = w.base_top1 - eval.evaluate(&wl_net);

        rows.push(vec![
            arch.name().to_string(),
            format!("{bits_per_weight:.1} ({dc_bits}-bit DC)"),
            format!("{:+.2}%", dc_drop * 100.0),
            format!("{:+.2}%", wl_drop * 100.0),
            format!("{:+.2}%", dsz_drop * 100.0),
        ]);
    }
    print_table(
        "Table 5: top-1 degradation at comparable compression ratios",
        &[
            "network",
            "bits/weight",
            "Deep Compression",
            "Weightless",
            "DeepSZ (SZ)",
        ],
        &rows,
    );
    println!(
        "\npaper: DC at DeepSZ's bit width drops 1.56% (AlexNet) / 2.81% (VGG-16); DeepSZ ≤ 0.25%"
    );
}
