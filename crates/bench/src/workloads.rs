//! Trained + pruned evaluation networks, cached on disk.
//!
//! Each of the paper's four networks is trained on its synthetic workload
//! (LeNets on the digit renderer at full scale; AlexNet/VGG-16 fc heads at
//! reduced scale on the ImageNet-feature surrogate — see DESIGN.md), pruned
//! with the paper's per-layer densities, and retrained with masks. The
//! result is cached under `target/dsz-cache/` so the many harness binaries
//! share one training run per network.

use dsz_datagen::{digits, features};
use dsz_nn::{accuracy, io, train, zoo, Arch, Dataset, Network, Scale, TrainConfig};
use dsz_prune::{prune_network, retrain};
use std::path::PathBuf;

/// A ready-to-compress workload: pruned + retrained network and its test
/// set (features already cached for conv architectures).
pub struct Workload {
    /// Which paper network.
    pub arch: Arch,
    /// The network DeepSZ operates on (fc head for conv architectures,
    /// with conv features pre-applied to the datasets).
    pub net: Network,
    /// Held-out evaluation data, matched to `net`'s input.
    pub test: Dataset,
    /// Training data (for retraining-cost measurements), matched likewise.
    pub train: Dataset,
    /// Top-1 accuracy of `net` on `test` after pruning + retraining.
    pub base_top1: f64,
    /// Top-5 accuracy likewise.
    pub base_top5: f64,
}

fn cache_dir() -> PathBuf {
    let dir = PathBuf::from("target/dsz-cache");
    std::fs::create_dir_all(&dir).ok();
    dir
}

/// Deterministic datasets per architecture (train, test).
pub fn datasets(arch: Arch) -> (Dataset, Dataset) {
    match arch {
        Arch::LeNet300 => (digits::dataset(3000, 101), digits::dataset(1000, 102)),
        Arch::LeNet5 => (digits::dataset(1200, 103), digits::dataset(600, 104)),
        Arch::AlexNet => {
            let spec = features::FeatureSpec::alexnet_reduced();
            features::train_test(&spec, 4000, 2000, 105)
        }
        Arch::Vgg16 => {
            let spec = features::FeatureSpec::vgg16_reduced();
            features::train_test(&spec, 3000, 1500, 106)
        }
    }
}

fn train_config(arch: Arch) -> TrainConfig {
    match arch {
        Arch::LeNet300 => TrainConfig {
            epochs: 3,
            lr: 0.08,
            ..Default::default()
        },
        Arch::LeNet5 => TrainConfig {
            epochs: 2,
            lr: 0.05,
            ..Default::default()
        },
        Arch::AlexNet => TrainConfig {
            epochs: 4,
            lr: 0.02,
            batch: 100,
            ..Default::default()
        },
        // The 3136-d VGG head diverges at lr 0.02; 0.005 converges to the
        // calibrated accuracy regime.
        Arch::Vgg16 => TrainConfig {
            epochs: 4,
            lr: 0.005,
            batch: 100,
            ..Default::default()
        },
    }
}

fn scale(arch: Arch) -> Scale {
    match arch {
        Arch::LeNet300 | Arch::LeNet5 => Scale::Full,
        Arch::AlexNet | Arch::Vgg16 => Scale::Reduced,
    }
}

/// Pruning densities for the *accuracy* workloads. The paper's VGG-16
/// densities (3%/4%) presume the enormous redundancy of the full-size fc6
/// (25088×4096); the 1/8-width reduced head cannot survive them, so the
/// reduced VGG uses the AlexNet-class densities. Full-size storage
/// experiments (Table 2, Fig. 2/4) keep the paper's densities.
pub fn reduced_pruning_densities(arch: Arch) -> Vec<f64> {
    match arch {
        Arch::Vgg16 => vec![0.09, 0.09, 0.25],
        _ => arch.pruning_densities().to_vec(),
    }
}

/// Masked-retraining schedule after pruning. The reduced VGG head needs a
/// longer recovery than one gentle epoch.
fn retrain_config(arch: Arch, cfg: &TrainConfig) -> TrainConfig {
    match arch {
        Arch::Vgg16 => TrainConfig {
            epochs: 5,
            lr: 0.01,
            ..*cfg
        },
        _ => TrainConfig {
            epochs: 1,
            lr: cfg.lr * 0.25,
            ..*cfg
        },
    }
}

/// Builds (or loads from cache) the pruned + retrained workload for `arch`.
pub fn workload(arch: Arch) -> Workload {
    let cache = cache_dir().join(format!("{}.dsnn", arch.name()));
    let (train_raw, test_raw) = datasets(arch);

    let pruned = if cache.exists() {
        io::load_from_file(&cache).expect("cached model readable")
    } else {
        eprintln!("[workloads] training {} (cached afterwards)…", arch.name());
        let mut net = zoo::build(arch, scale(arch), 0xD5_2019);
        let cfg = train_config(arch);
        train(&mut net, &train_raw, &cfg, None);
        let (masks, _) = prune_network(&mut net, &reduced_pruning_densities(arch));
        let retrain_cfg = retrain_config(arch, &cfg);
        retrain(&mut net, &train_raw, &retrain_cfg, &masks);
        io::save_to_file(&net, &cache).expect("cache writable");
        net
    };

    // Cache conv features so assessments only run the fc head.
    let (head, test) = dsz_core::cache_features(&pruned, &test_raw, 128);
    let (_, train_feats) = dsz_core::cache_features(&pruned, &train_raw, 128);
    let (base_top1, base_top5) = accuracy(&head, &test, 256, 5);
    Workload {
        arch,
        net: head,
        test,
        train: train_feats,
        base_top1,
        base_top5,
    }
}

/// Full-size synthesized pruned fc layers for the storage experiments
/// (Fig. 2, Fig. 4, Table 2's size columns): per layer, the dense pruned
/// matrix is never materialized for accuracy, only its value distribution
/// matters. Returns `(name, rows, cols, density, dense_pruned_weights)`.
pub fn full_size_pruned_layers(arch: Arch) -> Vec<(String, usize, usize, f64, Vec<f32>)> {
    let dims = arch.fc_dims();
    let densities = arch.pruning_densities();
    dims.iter()
        .zip(densities)
        .enumerate()
        .map(|(i, (&(name, rows, cols), &density))| {
            let mut dense = dsz_datagen::weights::trained_fc_weights(
                rows,
                cols,
                0xFEED ^ (i as u64) << 8 ^ arch_seed(arch),
            );
            dsz_prune::prune_to_density(&mut dense, density);
            (name.to_string(), rows, cols, density, dense)
        })
        .collect()
}

fn arch_seed(arch: Arch) -> u64 {
    match arch {
        Arch::LeNet300 => 1,
        Arch::LeNet5 => 2,
        Arch::AlexNet => 3,
        Arch::Vgg16 => 4,
    }
}

/// The paper's final chosen error bounds per fc layer (§5.2.2), used when
/// reproducing full-size storage numbers without an accuracy loop.
pub fn paper_error_bounds(arch: Arch) -> &'static [f64] {
    match arch {
        Arch::LeNet300 => &[2e-2, 3e-2, 4e-2],
        Arch::LeNet5 => &[3e-2, 8e-2],
        Arch::AlexNet => &[7e-3, 7e-3, 5e-3],
        Arch::Vgg16 => &[1e-2, 9e-3, 5e-3],
    }
}
