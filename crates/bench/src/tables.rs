//! Plain-text aligned table rendering for harness output.

use std::io::Write;

/// Prints a titled, column-aligned table to stdout.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line_len = widths.iter().sum::<usize>() + widths.len() * 3;
    let _ = writeln!(out, "\n=== {title} ===");
    let mut header_line = String::new();
    for (h, w) in headers.iter().zip(&widths) {
        header_line.push_str(&format!("{h:<w$} | ", w = w));
    }
    let _ = writeln!(out, "{header_line}");
    let _ = writeln!(out, "{}", "-".repeat(line_len));
    for row in rows {
        let mut line = String::new();
        for (c, w) in row.iter().zip(&widths) {
            line.push_str(&format!("{c:<w$} | ", w = w));
        }
        let _ = writeln!(out, "{line}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn print_table_does_not_panic_on_ragged_rows() {
        print_table(
            "demo",
            &["a", "b"],
            &[
                vec!["1".into()],
                vec!["22".into(), "333".into(), "extra".into()],
            ],
        );
    }
}
