//! Criterion microbenchmarks for the decode path (Fig. 7b's stages as one
//! unit), encode/decode thread scaling over the chunked v2 SZ format, the
//! Bloomier filter (Weightless's bottleneck), and the tensor substrate
//! (matmul / forward pass).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dsz_baselines::bloomier::Bloomier;
use dsz_baselines::weightless::{self, WlConfig};
use dsz_datagen::weights;
use dsz_nn::{zoo, Arch, Batch, Scale};
use dsz_sparse::PairArray;
use dsz_sz::{ErrorBound, SzConfig};
use dsz_tensor::parallel::{with_workers, worker_count};
use dsz_tensor::{matmul_transb, Matrix};

fn decode_path(c: &mut Criterion) {
    // A pruned fc7-sized layer through the full DeepSZ decode pipeline.
    let dense = {
        let mut d = weights::trained_fc_weights(1024, 1024, 9);
        dsz_prune::prune_to_density(&mut d, 0.09);
        d
    };
    let pair = PairArray::from_dense(&dense, 1024, 1024);
    let sz_blob = SzConfig::default()
        .compress(&pair.data, ErrorBound::Abs(1e-2))
        .unwrap();
    let (idx_kind, idx_blob) = dsz_lossless::best_fit(&pair.index);
    let mut g = c.benchmark_group("decode_path");
    g.sample_size(10);
    g.bench_function("deepsz_layer_decode", |b| {
        b.iter(|| {
            let index = idx_kind.codec().decompress(&idx_blob).unwrap();
            let data = dsz_sz::decompress(&sz_blob).unwrap();
            let p = PairArray {
                rows: 1024,
                cols: 1024,
                data,
                index,
            };
            p.to_dense().unwrap()
        })
    });
    // Weightless must touch every position: structurally slower.
    let wl = weightless::encode_layer(&dense, 1024, 1024, &WlConfig::default()).unwrap();
    g.bench_function("weightless_layer_decode", |b| {
        b.iter(|| weightless::decode_layer(&wl))
    });
    g.finish();
}

fn thread_scaling(c: &mut Criterion) {
    // Chunk-parallel SZ encode/decode on a pruned fc7-sized layer: 1 thread
    // vs all available workers (identical bytes either way — only time
    // should differ).
    let dense = {
        let mut d = weights::trained_fc_weights(2048, 2048, 11);
        dsz_prune::prune_to_density(&mut d, 0.09);
        d
    };
    let pair = PairArray::from_dense(&dense, 2048, 2048);
    let blob = SzConfig::default()
        .compress(&pair.data, ErrorBound::Abs(1e-2))
        .unwrap();
    let mut counts = vec![1usize, worker_count()];
    counts.dedup();
    let mut g = c.benchmark_group("thread_scaling");
    g.sample_size(10);
    g.throughput(Throughput::Bytes((pair.data.len() * 4) as u64));
    for &w in &counts {
        g.bench_function(BenchmarkId::new("sz_encode", w), |b| {
            b.iter(|| {
                with_workers(w, || {
                    SzConfig::default()
                        .compress(&pair.data, ErrorBound::Abs(1e-2))
                        .unwrap()
                })
            })
        });
        g.bench_function(BenchmarkId::new("sz_decode", w), |b| {
            b.iter(|| with_workers(w, || dsz_sz::decompress(&blob).unwrap()))
        });
    }
    g.finish();
}

fn bloomier_ops(c: &mut Criterion) {
    let pairs: Vec<(u64, u64)> = (0..50_000u64).map(|k| (k * 37, k % 16)).collect();
    let mut g = c.benchmark_group("bloomier");
    g.sample_size(10);
    g.bench_function("build_50k", |b| {
        b.iter(|| Bloomier::build(&pairs, 4, 8, 1.3).unwrap())
    });
    let filter = Bloomier::build(&pairs, 4, 8, 1.3).unwrap();
    g.throughput(Throughput::Elements(1_000_000));
    g.bench_function("query_1m", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for k in 0..1_000_000u64 {
                if let Some(v) = filter.query(k) {
                    acc ^= v;
                }
            }
            acc
        })
    });
    g.finish();
}

fn substrate(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrate");
    g.sample_size(10);
    let a = Matrix::from_vec(64, 784, vec![0.3; 64 * 784]);
    let w = Matrix::from_vec(300, 784, vec![0.1; 300 * 784]);
    g.throughput(Throughput::Elements(64 * 784 * 300));
    g.bench_function("dense_matmul_64x784x300", |b| {
        b.iter(|| matmul_transb(&a, &w))
    });

    let net = zoo::build(Arch::LeNet5, Scale::Full, 3);
    let x = Batch {
        n: 16,
        shape: net.input_shape,
        data: vec![0.4; 16 * 784],
    };
    g.bench_function("lenet5_forward_16", |b| b.iter(|| net.forward(&x)));
    g.finish();
}

criterion_group!(
    benches,
    decode_path,
    thread_scaling,
    bloomier_ops,
    substrate
);
criterion_main!(benches);
