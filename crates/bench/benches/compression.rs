//! Criterion microbenchmarks: compressor throughput (SZ compress /
//! decompress, ZFP, lossless codecs) on pruned-weight workloads. These are
//! the building blocks behind the paper's encode/decode timing claims
//! (Fig. 7); absolute numbers are machine-specific, relative order is the
//! reproducible part.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dsz_datagen::weights;
use dsz_lossless::LosslessKind;
use dsz_sparse::PairArray;
use dsz_sz::{ErrorBound, SzConfig};

fn sz_throughput(c: &mut Criterion) {
    let (values, _) = weights::pruned_nonzeros(1024, 4096, 0.09, 3);
    let bytes = (values.len() * 4) as u64;
    let mut g = c.benchmark_group("sz");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(bytes));
    for eb in [1e-2f64, 1e-3] {
        g.bench_with_input(
            BenchmarkId::new("compress", format!("{eb:.0e}")),
            &eb,
            |b, &eb| {
                b.iter(|| {
                    SzConfig::default()
                        .compress(&values, ErrorBound::Abs(eb))
                        .unwrap()
                })
            },
        );
        let blob = SzConfig::default()
            .compress(&values, ErrorBound::Abs(eb))
            .unwrap();
        g.bench_with_input(
            BenchmarkId::new("decompress", format!("{eb:.0e}")),
            &blob,
            |b, blob| b.iter(|| dsz_sz::decompress(blob).unwrap()),
        );
    }
    g.finish();
}

fn zfp_throughput(c: &mut Criterion) {
    let (values, _) = weights::pruned_nonzeros(1024, 4096, 0.09, 5);
    let bytes = (values.len() * 4) as u64;
    let mut g = c.benchmark_group("zfp");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(bytes));
    g.bench_function("compress/1e-3", |b| {
        b.iter(|| dsz_zfp::compress(&values, 1e-3).unwrap())
    });
    let blob = dsz_zfp::compress(&values, 1e-3).unwrap();
    g.bench_function("decompress/1e-3", |b| {
        b.iter(|| dsz_zfp::decompress(&blob).unwrap())
    });
    g.finish();
}

fn lossless_codecs(c: &mut Criterion) {
    let dense = weights::trained_fc_weights(1024, 1024, 7);
    let mut pruned = dense;
    dsz_prune::prune_to_density(&mut pruned, 0.09);
    let pair = PairArray::from_dense(&pruned, 1024, 1024);
    let bytes = pair.index.len() as u64;
    let mut g = c.benchmark_group("lossless_index");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(bytes));
    for kind in LosslessKind::ALL {
        g.bench_function(BenchmarkId::new("compress", kind.name()), |b| {
            b.iter(|| kind.codec().compress(&pair.index))
        });
        let blob = kind.codec().compress(&pair.index);
        g.bench_function(BenchmarkId::new("decompress", kind.name()), |b| {
            b.iter(|| kind.codec().decompress(&blob).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, sz_throughput, zfp_throughput, lossless_codecs);
criterion_main!(benches);
