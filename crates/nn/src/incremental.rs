//! Incremental inference: prefix-activation caching and the suffix pass.
//!
//! DeepSZ's error-bound assessment (Algorithm 1) evaluates the network
//! hundreds of times, each time with exactly *one* fc layer's weights
//! perturbed. Everything upstream of that layer is unchanged between
//! tests, so its activations can be computed once and replayed — the same
//! structure COMET exploits for repeated lossy-compression evaluation.
//! This module provides the two halves:
//!
//! * [`PrefixCache`] — one full forward sweep over an evaluation set that
//!   records, per evaluation batch, the activations entering every
//!   requested layer boundary (plus the final network output, so the
//!   baseline accuracy costs nothing extra).
//! * [`Network::forward_from`] — the suffix pass: resume the forward pass
//!   at a boundary from its cached input, optionally substituting the
//!   boundary layer itself, writing every intermediate activation into
//!   caller-owned [`SuffixScratch`] buffers so steady-state evaluation
//!   allocates nothing.
//!
//! Both halves run the *same* layer arithmetic as [`Network::forward`]
//! (the dense kernel is shared via [`dsz_tensor::matmul_transb_into`]), so
//! a suffix pass over a cached prefix is bit-identical to a full pass —
//! the property `dsz_core`'s incremental assessment relies on and pins in
//! its equivalence suite. Ownership rules and the memory model are
//! documented in `docs/ASSESSMENT.md`.

use crate::{Batch, Dataset, DenseLayer, Layer, Network};
use dsz_tensor::{matmul_transb_into, VolShape};

/// Activations recorded for one evaluation batch.
struct CachedBatch {
    /// Samples in this batch.
    n: usize,
    /// Input activations at each cached boundary, in [`PrefixCache`]
    /// boundary order.
    per_boundary: Vec<Vec<f32>>,
    /// The full network's output for this batch.
    output: Vec<f32>,
}

/// Per-batch activations at a fixed set of layer boundaries, recorded by
/// one forward sweep over an evaluation set.
///
/// Memory: every boundary holds `samples × boundary_features × 4` bytes
/// for the whole dataset — for fc heads this is a few activation vectors
/// per sample, far below the weight matrices being assessed. Use
/// [`PrefixCache::cached_bytes`] to audit.
pub struct PrefixCache {
    /// Cached layer indices, ascending.
    boundaries: Vec<usize>,
    /// Activation shape entering each boundary.
    shapes: Vec<VolShape>,
    /// Shape of the network output.
    out_shape: VolShape,
    /// One record per evaluation batch, in dataset order.
    batches: Vec<CachedBatch>,
}

impl PrefixCache {
    /// Runs `net` over `data` in batches of `batch`, recording the input
    /// activations at every layer index in `boundaries` plus the final
    /// output. Boundary indices must be strictly ascending and in range.
    pub fn build(net: &Network, data: &Dataset, batch: usize, boundaries: &[usize]) -> Self {
        assert!(
            boundaries.windows(2).all(|w| w[0] < w[1]),
            "boundaries must be strictly ascending"
        );
        assert!(
            boundaries.iter().all(|&b| b < net.layers.len()),
            "boundary beyond layer count"
        );
        let mut shapes = Vec::with_capacity(boundaries.len());
        {
            let mut shape = net.input_shape;
            let mut bi = 0usize;
            for (li, layer) in net.layers.iter().enumerate() {
                if bi < boundaries.len() && boundaries[bi] == li {
                    shapes.push(shape);
                    bi += 1;
                }
                shape = layer.output_shape(shape);
            }
        }
        let mut batches = Vec::new();
        let mut lo = 0usize;
        while lo < data.len() {
            let hi = (lo + batch.max(1)).min(data.len());
            let mut cur = data.batch(lo, hi);
            assert_eq!(cur.shape, net.input_shape, "input shape mismatch");
            let mut per_boundary = Vec::with_capacity(boundaries.len());
            let mut bi = 0usize;
            for (li, layer) in net.layers.iter().enumerate() {
                if bi < boundaries.len() && boundaries[bi] == li {
                    per_boundary.push(cur.data.clone());
                    bi += 1;
                }
                let (next, _aux) = layer.forward(&cur);
                cur = next;
            }
            batches.push(CachedBatch {
                n: cur.n,
                per_boundary,
                output: cur.data,
            });
            lo = hi;
        }
        Self {
            boundaries: boundaries.to_vec(),
            shapes,
            out_shape: net.output_shape(),
            batches,
        }
    }

    /// The cached layer boundaries, ascending.
    pub fn boundaries(&self) -> &[usize] {
        &self.boundaries
    }

    /// Number of evaluation batches recorded.
    pub fn batch_count(&self) -> usize {
        self.batches.len()
    }

    /// Cached input to layer `layer_index` for evaluation batch `batch`:
    /// `(samples, per-sample shape, activations)`. Panics when the layer
    /// was not requested at build time.
    pub fn batch_input(&self, layer_index: usize, batch: usize) -> (usize, VolShape, &[f32]) {
        let bi = self
            .boundaries
            .iter()
            .position(|&b| b == layer_index)
            .expect("layer boundary not cached");
        let cb = &self.batches[batch];
        (cb.n, self.shapes[bi], &cb.per_boundary[bi])
    }

    /// The full network's output for evaluation batch `batch`:
    /// `(samples, per-sample output features, values)`.
    pub fn batch_output(&self, batch: usize) -> (usize, usize, &[f32]) {
        let cb = &self.batches[batch];
        (cb.n, self.out_shape.len(), &cb.output)
    }

    /// Total bytes held by the cached activations.
    pub fn cached_bytes(&self) -> usize {
        self.batches
            .iter()
            .map(|b| {
                (b.output.len() + b.per_boundary.iter().map(Vec::len).sum::<usize>())
                    * std::mem::size_of::<f32>()
            })
            .sum()
    }
}

/// Caller-owned activation buffers for [`Network::forward_from`]. The two
/// buffers are ping-ponged between consecutive layers; after the first few
/// calls they reach the suffix's widest activation size and no further
/// allocation occurs (capacity is only ever grown, never shrunk).
#[derive(Default)]
pub struct SuffixScratch {
    a: Vec<f32>,
    b: Vec<f32>,
}

/// Which storage currently holds the running activation.
#[derive(Clone, Copy, PartialEq)]
enum Cur {
    /// Still the borrowed cached input (no layer has produced output yet).
    Input,
    /// `SuffixScratch::a`.
    A,
    /// `SuffixScratch::b`.
    B,
}

impl Network {
    /// Resumes the forward pass at layer `from`, given `input` — the
    /// activations entering that layer (`n` samples of `shape`, typically
    /// from a [`PrefixCache`]) — and returns the network output slice.
    ///
    /// `replace_first`, when set, is used *in place of* `self.layers[from]`
    /// (which must be dense): this is how assessment tests a candidate
    /// weight reconstruction without cloning the network — the scratch
    /// [`DenseLayer`]'s weight buffer is overwritten per test and the
    /// original network is never touched.
    ///
    /// All intermediate activations live in `scratch`; aside from buffer
    /// growth (and the conv/pool fallback below) the pass allocates
    /// nothing. Dense, ReLU, and Flatten suffixes — every fc head — are
    /// fully scratch-resident; a Conv/MaxPool layer appearing *after* the
    /// resume point (never the case for DeepSZ's fc suffixes) falls back
    /// to the allocating [`Layer::forward`].
    ///
    /// The output is bit-identical to `self.forward(x)` with the same
    /// candidate layer swapped in, because both paths run the same kernel
    /// per layer.
    pub fn forward_from<'s>(
        &self,
        from: usize,
        replace_first: Option<&DenseLayer>,
        n: usize,
        shape: VolShape,
        input: &[f32],
        scratch: &'s mut SuffixScratch,
    ) -> &'s [f32] {
        assert!(from < self.layers.len(), "suffix start beyond layer count");
        assert_eq!(input.len(), n * shape.len(), "suffix input length mismatch");
        if replace_first.is_some() {
            assert!(
                matches!(self.layers[from], Layer::Dense(_)),
                "replace_first requires a dense boundary layer"
            );
        }
        let mut cur = Cur::Input;
        let mut cur_shape = shape;
        for (off, layer) in self.layers[from..].iter().enumerate() {
            // The candidate substitutes the boundary layer by reference —
            // cloning it here would defeat the scratch design.
            if off == 0 {
                if let Some(d) = replace_first {
                    let out_shape = VolShape {
                        c: d.w.rows,
                        h: 1,
                        w: 1,
                    };
                    step_dense(d, &mut cur, cur_shape, n, input, scratch);
                    cur_shape = out_shape;
                    continue;
                }
            }
            let out_shape = layer.output_shape(cur_shape);
            step_layer(layer, &mut cur, cur_shape, n, input, scratch);
            cur_shape = out_shape;
        }
        finish(cur, input, scratch)
    }
}

/// Runs one suffix layer, advancing `cur` to whichever scratch buffer the
/// output landed in. Flatten is a pure shape change and leaves the data
/// where it is.
fn step_layer(
    layer: &Layer,
    cur: &mut Cur,
    cur_shape: VolShape,
    n: usize,
    input: &[f32],
    scratch: &mut SuffixScratch,
) {
    match layer {
        Layer::Flatten => {}
        Layer::Dense(d) => step_dense(d, cur, cur_shape, n, input, scratch),
        Layer::ReLU => {
            let (src, dst, next): (&[f32], &mut Vec<f32>, Cur) = match *cur {
                Cur::Input => (input, &mut scratch.a, Cur::A),
                Cur::A => (&scratch.a, &mut scratch.b, Cur::B),
                Cur::B => (&scratch.b, &mut scratch.a, Cur::A),
            };
            dst.clear();
            dst.extend(src.iter().map(|&v| v.max(0.0)));
            *cur = next;
        }
        Layer::Conv(_) | Layer::MaxPool2 { .. } => {
            // Never part of an fc suffix in practice; correctness fallback
            // through the allocating forward.
            let src = match *cur {
                Cur::Input => input,
                Cur::A => &scratch.a,
                Cur::B => &scratch.b,
            };
            let x = Batch {
                n,
                shape: cur_shape,
                data: src.to_vec(),
            };
            let (y, _aux) = layer.forward(&x);
            let (dst, next) = match *cur {
                Cur::Input | Cur::B => (&mut scratch.a, Cur::A),
                Cur::A => (&mut scratch.b, Cur::B),
            };
            dst.clear();
            dst.extend_from_slice(&y.data);
            *cur = next;
        }
    }
}

/// The dense step, shared by the in-place layer walk and the candidate
/// substitution. The source is one scratch buffer (or the cached input);
/// the destination is always the *other* buffer, so the borrows split.
fn step_dense(
    d: &DenseLayer,
    cur: &mut Cur,
    cur_shape: VolShape,
    n: usize,
    input: &[f32],
    scratch: &mut SuffixScratch,
) {
    let feats = cur_shape.len();
    assert_eq!(feats, d.w.cols, "dense {}: input features", d.name);
    let (src, dst, next): (&[f32], &mut Vec<f32>, Cur) = match *cur {
        Cur::Input => (input, &mut scratch.a, Cur::A),
        Cur::A => (&scratch.a, &mut scratch.b, Cur::B),
        Cur::B => (&scratch.b, &mut scratch.a, Cur::A),
    };
    matmul_transb_into(src, n, feats, &d.w, dst);
    // Identical bias application to `Layer::forward`'s dense arm.
    for row in dst.chunks_exact_mut(d.w.rows) {
        for (v, &bias) in row.iter_mut().zip(&d.b) {
            *v += bias;
        }
    }
    *cur = next;
}

/// Returns the final activation from scratch storage. An all-Flatten (or
/// empty) suffix never left the borrowed input; copy it into scratch so
/// the return lifetime is uniform.
fn finish<'s>(cur: Cur, input: &[f32], scratch: &'s mut SuffixScratch) -> &'s [f32] {
    match cur {
        Cur::Input => {
            scratch.a.clear();
            scratch.a.extend_from_slice(input);
            &scratch.a
        }
        Cur::A => &scratch.a,
        Cur::B => &scratch.b,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{zoo, Arch, Scale};
    use dsz_tensor::VolShape;

    fn digitish_dataset(n: usize, shape: VolShape, seed: u64) -> Dataset {
        let mut s = seed;
        let mut x = Vec::with_capacity(n * shape.len());
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            for _ in 0..shape.len() {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                x.push(((s >> 33) as f32 / (1u64 << 31) as f32).abs().min(1.0));
            }
            labels.push((i % 10) as u16);
        }
        Dataset { shape, x, labels }
    }

    /// The cache + suffix pass must reproduce the full forward pass
    /// bit-for-bit at every dense boundary, including past a conv prefix.
    #[test]
    fn suffix_pass_is_bit_identical_to_full_forward() {
        for arch in [Arch::LeNet300, Arch::LeNet5] {
            let net = zoo::build(arch, Scale::Full, 11);
            let data = digitish_dataset(37, net.input_shape, 5);
            let boundaries: Vec<usize> = net.fc_layers().iter().map(|fc| fc.layer_index).collect();
            let cache = PrefixCache::build(&net, &data, 16, &boundaries);
            assert!(cache.cached_bytes() > 0);
            let mut scratch = SuffixScratch::default();
            let mut lo = 0usize;
            for bi in 0..cache.batch_count() {
                let hi = (lo + 16).min(data.len());
                let full = net.forward(&data.batch(lo, hi));
                let (n_out, feats, cached_out) = cache.batch_output(bi);
                assert_eq!((n_out, feats), (full.n, full.features()));
                assert_eq!(cached_out, &full.data[..], "{arch:?} cached output");
                for &b in &boundaries {
                    let (n, shape, input) = cache.batch_input(b, bi);
                    let out = net.forward_from(b, None, n, shape, input, &mut scratch);
                    assert_eq!(out, &full.data[..], "{arch:?} suffix from layer {b}");
                }
                lo = hi;
            }
        }
    }

    /// Substituting a perturbed dense layer through the suffix pass must
    /// equal mutating a cloned network and running it end to end.
    #[test]
    fn candidate_substitution_matches_mutated_network() {
        let net = zoo::build(Arch::LeNet300, Scale::Full, 23);
        let data = digitish_dataset(21, net.input_shape, 9);
        let fcs = net.fc_layers();
        let boundaries: Vec<usize> = fcs.iter().map(|fc| fc.layer_index).collect();
        let cache = PrefixCache::build(&net, &data, 8, &boundaries);
        let mut scratch = SuffixScratch::default();
        for fc in &fcs {
            let mut candidate = net.dense(fc.layer_index).clone();
            for (i, w) in candidate.w.data.iter_mut().enumerate() {
                *w += (i % 7) as f32 * 1e-3;
            }
            let mut mutated = net.clone();
            *mutated.dense_mut(fc.layer_index) = candidate.clone();
            let mut lo = 0usize;
            for bi in 0..cache.batch_count() {
                let hi = (lo + 8).min(data.len());
                let want = mutated.forward(&data.batch(lo, hi));
                let (n, shape, input) = cache.batch_input(fc.layer_index, bi);
                let got = net.forward_from(
                    fc.layer_index,
                    Some(&candidate),
                    n,
                    shape,
                    input,
                    &mut scratch,
                );
                assert_eq!(got, &want.data[..], "layer {}", fc.name);
                lo = hi;
            }
        }
    }

    /// Steady-state suffix evaluation must not grow the scratch buffers.
    #[test]
    fn scratch_reaches_steady_state() {
        let net = zoo::build(Arch::LeNet300, Scale::Full, 31);
        let data = digitish_dataset(16, net.input_shape, 3);
        let b = net.fc_layers()[0].layer_index;
        let cache = PrefixCache::build(&net, &data, 16, &[b]);
        let mut scratch = SuffixScratch::default();
        let (n, shape, input) = cache.batch_input(b, 0);
        net.forward_from(b, None, n, shape, input, &mut scratch);
        let caps = (scratch.a.capacity(), scratch.b.capacity());
        for _ in 0..3 {
            net.forward_from(b, None, n, shape, input, &mut scratch);
            assert_eq!(
                (scratch.a.capacity(), scratch.b.capacity()),
                caps,
                "steady-state pass must not reallocate"
            );
        }
    }
}
