//! The four evaluation networks (paper Table 1) plus reduced-scale variants.
//!
//! * **Full** scale reproduces the paper's exact layer dimensions — used for
//!   storage/ratio experiments and forward-time measurement (weights can be
//!   synthesized; ImageNet training is out of scope, see DESIGN.md).
//! * **Reduced** scale keeps each network's *shape* (relative fc-layer
//!   sizes, depth, activation structure) at roughly 1/8 width for AlexNet
//!   and VGG-16 so the accuracy experiments can train the fc head on
//!   synthetic features in CPU-tractable time. LeNets are small enough to
//!   use at full scale everywhere.

use crate::{ConvLayer, DenseLayer, Layer, Network};
use dsz_tensor::{Matrix, VolShape};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The evaluated architectures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Arch {
    /// 3 fc layers on 28×28 inputs (MNIST-class).
    LeNet300,
    /// 3 conv + 2 fc layers on 28×28 inputs (MNIST-class).
    LeNet5,
    /// 5 conv + 3 fc layers on 227×227×3 inputs (ImageNet-class).
    AlexNet,
    /// 13 conv + 3 fc layers on 224×224×3 inputs (ImageNet-class).
    Vgg16,
}

impl Arch {
    /// All four, in the paper's order.
    pub const ALL: [Arch; 4] = [Arch::LeNet300, Arch::LeNet5, Arch::AlexNet, Arch::Vgg16];

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            Arch::LeNet300 => "LeNet-300-100",
            Arch::LeNet5 => "LeNet-5",
            Arch::AlexNet => "AlexNet",
            Arch::Vgg16 => "VGG-16",
        }
    }

    /// Full-scale fc-layer dimensions `(name, rows, cols)` — Table 1.
    pub fn fc_dims(self) -> &'static [(&'static str, usize, usize)] {
        match self {
            Arch::LeNet300 => &[("ip1", 300, 784), ("ip2", 100, 300), ("ip3", 10, 100)],
            Arch::LeNet5 => &[("ip1", 500, 800), ("ip2", 10, 500)],
            Arch::AlexNet => &[
                ("fc6", 4096, 9216),
                ("fc7", 4096, 4096),
                ("fc8", 1000, 4096),
            ],
            Arch::Vgg16 => &[
                ("fc6", 4096, 25088),
                ("fc7", 4096, 4096),
                ("fc8", 1000, 4096),
            ],
        }
    }

    /// Conv-layer count (Table 1).
    pub fn conv_layers(self) -> usize {
        match self {
            Arch::LeNet300 => 0,
            Arch::LeNet5 => 3,
            Arch::AlexNet => 5,
            Arch::Vgg16 => 13,
        }
    }

    /// Paper-suggested per-fc-layer pruning densities (kept fraction),
    /// Table 2.
    pub fn pruning_densities(self) -> &'static [f64] {
        match self {
            Arch::LeNet300 => &[0.08, 0.09, 0.26],
            Arch::LeNet5 => &[0.08, 0.19],
            Arch::AlexNet => &[0.09, 0.09, 0.25],
            Arch::Vgg16 => &[0.03, 0.04, 0.24],
        }
    }
}

/// Build scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Paper-exact dimensions.
    Full,
    /// ~1/8-width fc heads for the ImageNet-class nets (see module docs).
    Reduced,
}

/// Reduced-scale fc head dims `(name, rows, cols)` for the ImageNet-class
/// networks; LeNets are unchanged.
pub fn reduced_fc_dims(arch: Arch) -> Vec<(&'static str, usize, usize)> {
    match arch {
        Arch::LeNet300 | Arch::LeNet5 => arch.fc_dims().to_vec(),
        Arch::AlexNet => vec![("fc6", 512, 1152), ("fc7", 512, 512), ("fc8", 100, 512)],
        Arch::Vgg16 => vec![("fc6", 512, 3136), ("fc7", 512, 512), ("fc8", 100, 512)],
    }
}

fn he_dense(name: &str, rows: usize, cols: usize, rng: &mut StdRng) -> Layer {
    let std = (2.0 / cols as f64).sqrt() as f32;
    let data = (0..rows * cols).map(|_| sample_normal(rng) * std).collect();
    Layer::Dense(DenseLayer {
        name: name.to_string(),
        w: Matrix::from_vec(rows, cols, data),
        b: vec![0.0; rows],
    })
}

#[allow(clippy::too_many_arguments)]
fn he_conv(
    name: &str,
    out_c: usize,
    in_c: usize,
    k: usize,
    stride: usize,
    pad: usize,
    rng: &mut StdRng,
) -> Layer {
    let fan_in = in_c * k * k;
    let std = (2.0 / fan_in as f64).sqrt() as f32;
    let data = (0..out_c * fan_in)
        .map(|_| sample_normal(rng) * std)
        .collect();
    Layer::Conv(ConvLayer {
        name: name.to_string(),
        w: Matrix::from_vec(out_c, fan_in, data),
        b: vec![0.0; out_c],
        in_c,
        kh: k,
        kw: k,
        stride,
        pad,
    })
}

/// Box–Muller standard normal.
fn sample_normal(rng: &mut StdRng) -> f32 {
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
}

/// Builds an architecture at the requested scale with He-initialized
/// weights (deterministic per `seed`).
pub fn build(arch: Arch, scale: Scale, seed: u64) -> Network {
    let mut rng = StdRng::seed_from_u64(seed);
    match (arch, scale) {
        (Arch::LeNet300, _) => Network {
            input_shape: VolShape { c: 1, h: 28, w: 28 },
            layers: vec![
                Layer::Flatten,
                he_dense("ip1", 300, 784, &mut rng),
                Layer::ReLU,
                he_dense("ip2", 100, 300, &mut rng),
                Layer::ReLU,
                he_dense("ip3", 10, 100, &mut rng),
            ],
        },
        (Arch::LeNet5, _) => Network {
            input_shape: VolShape { c: 1, h: 28, w: 28 },
            layers: vec![
                he_conv("conv1", 20, 1, 5, 1, 0, &mut rng), // 28→24
                Layer::ReLU,
                Layer::MaxPool2 { size: 2 },                 // 24→12
                he_conv("conv2", 50, 20, 5, 1, 0, &mut rng), // 12→8
                Layer::ReLU,
                Layer::MaxPool2 { size: 2 },                 // 8→4
                he_conv("conv3", 50, 50, 3, 1, 1, &mut rng), // 4→4 (3rd conv, Table 1)
                Layer::ReLU,
                Layer::Flatten, // 50·4·4 = 800
                he_dense("ip1", 500, 800, &mut rng),
                Layer::ReLU,
                he_dense("ip2", 10, 500, &mut rng),
            ],
        },
        (Arch::AlexNet, Scale::Full) => Network {
            input_shape: VolShape {
                c: 3,
                h: 227,
                w: 227,
            },
            layers: vec![
                he_conv("conv1", 96, 3, 11, 4, 0, &mut rng), // 227→55
                Layer::ReLU,
                Layer::MaxPool2 { size: 2 },                  // 55→27
                he_conv("conv2", 256, 96, 5, 1, 2, &mut rng), // 27→27
                Layer::ReLU,
                Layer::MaxPool2 { size: 2 }, // 27→13
                he_conv("conv3", 384, 256, 3, 1, 1, &mut rng),
                Layer::ReLU,
                he_conv("conv4", 384, 384, 3, 1, 1, &mut rng),
                Layer::ReLU,
                he_conv("conv5", 256, 384, 3, 1, 1, &mut rng),
                Layer::ReLU,
                Layer::MaxPool2 { size: 2 }, // 13→6
                Layer::Flatten,              // 256·6·6 = 9216
                he_dense("fc6", 4096, 9216, &mut rng),
                Layer::ReLU,
                he_dense("fc7", 4096, 4096, &mut rng),
                Layer::ReLU,
                he_dense("fc8", 1000, 4096, &mut rng),
            ],
        },
        (Arch::Vgg16, Scale::Full) => {
            let mut layers = Vec::new();
            let blocks: [(usize, usize); 5] = [(64, 2), (128, 2), (256, 3), (512, 3), (512, 3)];
            let mut in_c = 3;
            let mut li = 0;
            for (ch, reps) in blocks {
                for _ in 0..reps {
                    li += 1;
                    layers.push(he_conv(&format!("conv{li}"), ch, in_c, 3, 1, 1, &mut rng));
                    layers.push(Layer::ReLU);
                    in_c = ch;
                }
                layers.push(Layer::MaxPool2 { size: 2 });
            }
            layers.push(Layer::Flatten); // 512·7·7 = 25088
            layers.push(he_dense("fc6", 4096, 25088, &mut rng));
            layers.push(Layer::ReLU);
            layers.push(he_dense("fc7", 4096, 4096, &mut rng));
            layers.push(Layer::ReLU);
            layers.push(he_dense("fc8", 1000, 4096, &mut rng));
            Network {
                input_shape: VolShape {
                    c: 3,
                    h: 224,
                    w: 224,
                },
                layers,
            }
        }
        (arch @ (Arch::AlexNet | Arch::Vgg16), Scale::Reduced) => {
            let dims = reduced_fc_dims(arch);
            let mut layers = Vec::with_capacity(dims.len() * 2 - 1);
            for (i, &(name, rows, cols)) in dims.iter().enumerate() {
                layers.push(he_dense(name, rows, cols, &mut rng));
                if i + 1 < dims.len() {
                    layers.push(Layer::ReLU);
                }
            }
            Network {
                input_shape: VolShape {
                    c: dims[0].2,
                    h: 1,
                    w: 1,
                },
                layers,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Batch;

    #[test]
    fn table1_fc_dims_match_paper() {
        // Spot-check the exact numbers in Table 1.
        assert_eq!(Arch::LeNet300.fc_dims()[0], ("ip1", 300, 784));
        assert_eq!(Arch::LeNet5.fc_dims()[0], ("ip1", 500, 800));
        assert_eq!(Arch::AlexNet.fc_dims()[0], ("fc6", 4096, 9216));
        assert_eq!(Arch::Vgg16.fc_dims()[0], ("fc6", 4096, 25088));
        assert_eq!(Arch::Vgg16.conv_layers(), 13);
    }

    #[test]
    fn lenet300_shapes() {
        let net = build(Arch::LeNet300, Scale::Full, 1);
        assert_eq!(net.fc_layers().len(), 3);
        assert_eq!(net.output_shape().len(), 10);
        // fc storage = whole storage (Table 1: 100%).
        assert_eq!(net.fc_bytes(), 4 * (300 * 784 + 100 * 300 + 10 * 100));
        let x = Batch {
            n: 2,
            shape: net.input_shape,
            data: vec![0.1; 2 * 784],
        };
        assert_eq!(net.forward(&x).features(), 10);
    }

    #[test]
    fn lenet5_flattens_to_800() {
        let net = build(Arch::LeNet5, Scale::Full, 2);
        let fcs = net.fc_layers();
        assert_eq!(fcs.len(), 2);
        assert_eq!((fcs[0].rows, fcs[0].cols), (500, 800));
        let convs = net
            .layers
            .iter()
            .filter(|l| matches!(l, Layer::Conv(_)))
            .count();
        assert_eq!(convs, 3);
        let x = Batch {
            n: 1,
            shape: net.input_shape,
            data: vec![0.5; 784],
        };
        assert_eq!(net.forward(&x).features(), 10);
    }

    #[test]
    fn alexnet_full_feature_dim_is_9216() {
        let net = build(Arch::AlexNet, Scale::Full, 3);
        let (prefix, head) = net.split_feature_head();
        assert_eq!(prefix.output_shape().len(), 9216);
        assert_eq!(head.fc_layers().len(), 3);
    }

    #[test]
    fn vgg16_full_feature_dim_is_25088() {
        let net = build(Arch::Vgg16, Scale::Full, 4);
        let (prefix, _) = net.split_feature_head();
        assert_eq!(prefix.output_shape().len(), 25088);
        assert_eq!(net.fc_layers().len(), 3);
        // Table 1: total ≈ 553 MB, fc share ≈ 89.4%.
        let total_mb = net.param_bytes() as f64 / (1024.0 * 1024.0);
        assert!((500.0..600.0).contains(&total_mb), "total {total_mb} MB");
        let share = net.fc_bytes() as f64 / net.param_bytes() as f64;
        assert!((0.85..0.93).contains(&share), "fc share {share}");
    }

    #[test]
    fn reduced_heads_preserve_size_skew() {
        for arch in [Arch::AlexNet, Arch::Vgg16] {
            let net = build(arch, Scale::Reduced, 5);
            let fcs = net.fc_layers();
            assert_eq!(fcs.len(), 3);
            // fc6 must dominate like at full scale.
            assert!(fcs[0].weights() > 4 * fcs[2].weights());
            let x = Batch::from_features(
                2,
                net.input_shape.len(),
                vec![0.1; 2 * net.input_shape.len()],
            );
            assert_eq!(net.forward(&x).features(), fcs[2].rows);
        }
    }

    #[test]
    fn builds_are_deterministic_per_seed() {
        let a = build(Arch::LeNet300, Scale::Full, 42);
        let b = build(Arch::LeNet300, Scale::Full, 42);
        let c = build(Arch::LeNet300, Scale::Full, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn pruning_density_tables() {
        for arch in Arch::ALL {
            assert_eq!(arch.pruning_densities().len(), arch.fc_dims().len());
        }
    }
}
