//! Layer definitions with forward and backward implementations.

use crate::Batch;
use dsz_tensor::{
    col2im, conv_out_dim, im2col, matmul, matmul_transa, matmul_transb, matmul_transb_raw, Matrix,
    VolShape,
};

/// Forward pass of a dense layer with its weights supplied as a borrowed
/// row-major slice (`d.w.rows × d.w.cols`) instead of `d.w.data`.
///
/// This is the kernel the serving layer uses to multiply against weights
/// shared out of the cross-model decoded-layer cache (`Arc<Vec<f32>>`)
/// without copying them into the layer struct. [`Layer::forward`] on a
/// dense layer routes through this same function with `&d.w.data`, so the
/// two paths are one code path and their outputs are bit-identical.
pub fn dense_forward_with_weights(d: &DenseLayer, weights: &[f32], x: &Batch) -> Batch {
    assert_eq!(x.features(), d.w.cols, "dense {}: input features", d.name);
    assert_eq!(
        weights.len(),
        d.w.rows * d.w.cols,
        "dense {}: weight slice shape",
        d.name
    );
    let mut out = Vec::new();
    matmul_transb_raw(&x.data, x.n, x.features(), weights, d.w.rows, &mut out);
    for row in out.chunks_exact_mut(d.w.rows) {
        for (v, &bias) in row.iter_mut().zip(&d.b) {
            *v += bias;
        }
    }
    Batch::from_features(x.n, d.w.rows, out)
}

/// A fully-connected layer: `y = W·x + b` with `W` as `out × in`.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseLayer {
    /// Layer name, used to match the paper's tables (`ip1`, `fc6`, …).
    pub name: String,
    /// Weights, `out × in` row-major.
    pub w: Matrix,
    /// Per-output bias.
    pub b: Vec<f32>,
}

/// A 2-D convolution layer; weights are stored im2col-ready as an
/// `out_c × (in_c·kh·kw)` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvLayer {
    /// Layer name (`conv1`, …).
    pub name: String,
    /// Filter bank, `out_c × (in_c·kh·kw)`.
    pub w: Matrix,
    /// Per-filter bias.
    pub b: Vec<f32>,
    /// Input channels.
    pub in_c: usize,
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Stride (same in both dimensions).
    pub stride: usize,
    /// Zero padding (same in both dimensions).
    pub pad: usize,
}

/// Parameter gradients of one layer.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerGrad {
    /// Gradient wrt weights, same shape as the layer's `w`.
    pub dw: Matrix,
    /// Gradient wrt biases.
    pub db: Vec<f32>,
}

/// Pooling argmax cache: for each pooled output, the flat input offset the
/// maximum came from.
#[derive(Debug, Clone)]
pub struct PoolAux {
    /// One entry per pooled output value, batch-major.
    pub argmax: Vec<u32>,
}

/// One network layer.
#[derive(Debug, Clone, PartialEq)]
pub enum Layer {
    /// Fully-connected layer.
    Dense(DenseLayer),
    /// Convolution layer.
    Conv(ConvLayer),
    /// Elementwise `max(0, x)`.
    ReLU,
    /// Non-overlapping max pooling with window = stride = `size`.
    MaxPool2 {
        /// Window/stride size.
        size: usize,
    },
    /// Reshapes `c×h×w` to `(c·h·w)×1×1`.
    Flatten,
}

impl Layer {
    /// Output volume shape for a given input shape.
    pub fn output_shape(&self, s: VolShape) -> VolShape {
        match self {
            Layer::Dense(d) => VolShape {
                c: d.w.rows,
                h: 1,
                w: 1,
            },
            Layer::Conv(c) => VolShape {
                c: c.w.rows,
                h: conv_out_dim(s.h, c.kh, c.stride, c.pad),
                w: conv_out_dim(s.w, c.kw, c.stride, c.pad),
            },
            Layer::ReLU => s,
            Layer::MaxPool2 { size } => VolShape {
                c: s.c,
                h: s.h / size,
                w: s.w / size,
            },
            Layer::Flatten => VolShape {
                c: s.len(),
                h: 1,
                w: 1,
            },
        }
    }

    /// Forward pass over a batch; returns output and optional aux state.
    pub fn forward(&self, x: &Batch) -> (Batch, Option<PoolAux>) {
        match self {
            Layer::Dense(d) => (dense_forward_with_weights(d, &d.w.data, x), None),
            Layer::Conv(c) => {
                let s = x.shape;
                assert_eq!(s.c, c.in_c, "conv {}: input channels", c.name);
                let out_shape = self.output_shape(s);
                let (oh, ow) = (out_shape.h, out_shape.w);
                let mut out = vec![0f32; x.n * out_shape.len()];
                let mut cols = Matrix::zeros(c.in_c * c.kh * c.kw, oh * ow);
                for i in 0..x.n {
                    im2col(x.sample(i), s, c.kh, c.kw, c.stride, c.pad, &mut cols);
                    let y = matmul(&c.w, &cols); // out_c × (oh·ow)
                    let dst = &mut out[i * out_shape.len()..(i + 1) * out_shape.len()];
                    for (ci, drow) in dst.chunks_exact_mut(oh * ow).enumerate() {
                        let bias = c.b[ci];
                        for (v, &yv) in drow.iter_mut().zip(y.row(ci)) {
                            *v = yv + bias;
                        }
                    }
                }
                (
                    Batch {
                        n: x.n,
                        shape: out_shape,
                        data: out,
                    },
                    None,
                )
            }
            Layer::ReLU => {
                let data = x.data.iter().map(|&v| v.max(0.0)).collect();
                (
                    Batch {
                        n: x.n,
                        shape: x.shape,
                        data,
                    },
                    None,
                )
            }
            Layer::MaxPool2 { size } => {
                let s = x.shape;
                let out_shape = self.output_shape(s);
                let (oh, ow) = (out_shape.h, out_shape.w);
                let mut out = vec![0f32; x.n * out_shape.len()];
                let mut argmax = vec![0u32; out.len()];
                for i in 0..x.n {
                    let img = x.sample(i);
                    for ci in 0..s.c {
                        let plane = &img[ci * s.h * s.w..(ci + 1) * s.h * s.w];
                        for oy in 0..oh {
                            for ox in 0..ow {
                                let mut best = f32::NEG_INFINITY;
                                let mut bidx = 0usize;
                                for dy in 0..*size {
                                    for dx in 0..*size {
                                        let iy = oy * size + dy;
                                        let ix = ox * size + dx;
                                        let v = plane[iy * s.w + ix];
                                        if v > best {
                                            best = v;
                                            bidx = iy * s.w + ix;
                                        }
                                    }
                                }
                                let o = i * out_shape.len() + ci * oh * ow + oy * ow + ox;
                                out[o] = best;
                                argmax[o] = (ci * s.h * s.w + bidx) as u32;
                            }
                        }
                    }
                }
                (
                    Batch {
                        n: x.n,
                        shape: out_shape,
                        data: out,
                    },
                    Some(PoolAux { argmax }),
                )
            }
            Layer::Flatten => (
                Batch {
                    n: x.n,
                    shape: self.output_shape(x.shape),
                    data: x.data.clone(),
                },
                None,
            ),
        }
    }

    /// Backward pass: given the layer's forward input, aux state, and the
    /// gradient wrt its output, returns the gradient wrt its input and the
    /// parameter gradients (if any).
    pub fn backward(
        &self,
        input: &Batch,
        aux: &Option<PoolAux>,
        gout: &Batch,
    ) -> (Batch, Option<LayerGrad>) {
        match self {
            Layer::Dense(d) => {
                let gm = Matrix::from_vec(gout.n, d.w.rows, gout.data.clone());
                let xm = Matrix::from_vec(input.n, d.w.cols, input.data.clone());
                // dX = dY · W ; dW = dYᵀ · X ; db = column sums of dY.
                let gin = matmul(&gm, &d.w);
                let dw = matmul_transa(&gm, &xm);
                let mut db = vec![0f32; d.w.rows];
                for row in gm.data.chunks_exact(d.w.rows) {
                    for (s, &g) in db.iter_mut().zip(row) {
                        *s += g;
                    }
                }
                (
                    Batch {
                        n: input.n,
                        shape: input.shape,
                        data: gin.data,
                    },
                    Some(LayerGrad { dw, db }),
                )
            }
            Layer::Conv(c) => {
                let s = input.shape;
                let out_shape = self.output_shape(s);
                let (oh, ow) = (out_shape.h, out_shape.w);
                let k = c.in_c * c.kh * c.kw;
                let mut dw = Matrix::zeros(c.w.rows, k);
                let mut db = vec![0f32; c.w.rows];
                let mut gin = vec![0f32; input.data.len()];
                let mut cols = Matrix::zeros(k, oh * ow);
                let mut dimg = vec![0f32; s.len()];
                for i in 0..input.n {
                    im2col(input.sample(i), s, c.kh, c.kw, c.stride, c.pad, &mut cols);
                    let gslice = &gout.data[i * out_shape.len()..(i + 1) * out_shape.len()];
                    let gy = Matrix::from_vec(c.w.rows, oh * ow, gslice.to_vec());
                    // dW += gY · colsᵀ  (gY: oc×L, cols: K×L → oc×K)
                    let d = matmul_transb(&gy, &cols);
                    for (a, &g) in dw.data.iter_mut().zip(&d.data) {
                        *a += g;
                    }
                    for (ci, grow) in gslice.chunks_exact(oh * ow).enumerate() {
                        db[ci] += grow.iter().sum::<f32>();
                    }
                    // dcols = Wᵀ · gY, then scatter back to image space.
                    let dcols = matmul_transa(&c.w, &gy);
                    col2im(&dcols, s, c.kh, c.kw, c.stride, c.pad, &mut dimg);
                    gin[i * s.len()..(i + 1) * s.len()].copy_from_slice(&dimg);
                }
                (
                    Batch {
                        n: input.n,
                        shape: s,
                        data: gin,
                    },
                    Some(LayerGrad { dw, db }),
                )
            }
            Layer::ReLU => {
                let data = input
                    .data
                    .iter()
                    .zip(&gout.data)
                    .map(|(&x, &g)| if x > 0.0 { g } else { 0.0 })
                    .collect();
                (
                    Batch {
                        n: input.n,
                        shape: input.shape,
                        data,
                    },
                    None,
                )
            }
            Layer::MaxPool2 { .. } => {
                let aux = aux.as_ref().expect("pool backward requires aux");
                let mut gin = vec![0f32; input.data.len()];
                let per_out = gout.shape.len();
                let per_in = input.shape.len();
                for i in 0..input.n {
                    for j in 0..per_out {
                        let o = i * per_out + j;
                        gin[i * per_in + aux.argmax[o] as usize] += gout.data[o];
                    }
                }
                (
                    Batch {
                        n: input.n,
                        shape: input.shape,
                        data: gin,
                    },
                    None,
                )
            }
            Layer::Flatten => (
                Batch {
                    n: input.n,
                    shape: input.shape,
                    data: gout.data.clone(),
                },
                None,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rand_vec(n: usize, seed: u64, scale: f32) -> Vec<f32> {
        let mut s = seed;
        (0..n)
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                (((s >> 33) as f32 / (1u64 << 31) as f32) - 0.5) * 2.0 * scale
            })
            .collect()
    }

    /// Central-difference check of input and weight gradients for `layer`.
    fn check_gradients(layer: Layer, in_shape: VolShape, n: usize) {
        let x = Batch {
            n,
            shape: in_shape,
            data: rand_vec(n * in_shape.len(), 3, 0.8),
        };
        let (y, aux) = layer.forward(&x);
        // Loss = Σ cᵢ·yᵢ with fixed random c, so dL/dy = c.
        let c = rand_vec(y.data.len(), 5, 1.0);
        let gout = Batch {
            n: y.n,
            shape: y.shape,
            data: c.clone(),
        };
        let (gin, lg) = layer.backward(&x, &aux, &gout);

        let loss = |layer: &Layer, x: &Batch| -> f64 {
            let (y, _) = layer.forward(x);
            y.data
                .iter()
                .zip(&c)
                .map(|(&a, &b)| a as f64 * b as f64)
                .sum()
        };

        let eps = 1e-2f32;
        // Input gradient spot-check.
        for probe in [0usize, x.data.len() / 2, x.data.len() - 1] {
            let mut xp = x.clone();
            xp.data[probe] += eps;
            let mut xm = x.clone();
            xm.data[probe] -= eps;
            let num = (loss(&layer, &xp) - loss(&layer, &xm)) / (2.0 * eps as f64);
            let ana = gin.data[probe] as f64;
            assert!(
                (num - ana).abs() < 2e-2 * (1.0 + num.abs()),
                "input grad at {probe}: num {num} vs ana {ana}"
            );
        }
        // Weight gradient spot-check.
        if let Some(lg) = lg {
            let probes = [0usize, lg.dw.data.len() / 2, lg.dw.data.len() - 1];
            for probe in probes {
                let perturb = |delta: f32| -> Layer {
                    let mut l2 = layer.clone();
                    match &mut l2 {
                        Layer::Dense(d) => d.w.data[probe] += delta,
                        Layer::Conv(c) => c.w.data[probe] += delta,
                        _ => unreachable!(),
                    }
                    l2
                };
                let num = (loss(&perturb(eps), &x) - loss(&perturb(-eps), &x)) / (2.0 * eps as f64);
                let ana = lg.dw.data[probe] as f64;
                assert!(
                    (num - ana).abs() < 2e-2 * (1.0 + num.abs()),
                    "weight grad at {probe}: num {num} vs ana {ana}"
                );
            }
        }
    }

    #[test]
    fn dense_gradients() {
        let layer = Layer::Dense(DenseLayer {
            name: "d".into(),
            w: Matrix::from_vec(3, 5, rand_vec(15, 7, 0.5)),
            b: rand_vec(3, 9, 0.1),
        });
        check_gradients(layer, VolShape { c: 5, h: 1, w: 1 }, 4);
    }

    #[test]
    fn conv_gradients() {
        let layer = Layer::Conv(ConvLayer {
            name: "c".into(),
            w: Matrix::from_vec(2, 2 * 3 * 3, rand_vec(36, 11, 0.4)),
            b: rand_vec(2, 13, 0.1),
            in_c: 2,
            kh: 3,
            kw: 3,
            stride: 1,
            pad: 1,
        });
        check_gradients(layer, VolShape { c: 2, h: 5, w: 5 }, 2);
    }

    #[test]
    fn relu_gradients() {
        check_gradients(Layer::ReLU, VolShape { c: 9, h: 1, w: 1 }, 3);
    }

    #[test]
    fn maxpool_forward_and_routing() {
        let x = Batch {
            n: 1,
            shape: VolShape { c: 1, h: 4, w: 4 },
            data: vec![
                1., 2., 3., 4., //
                5., 6., 7., 8., //
                9., 10., 11., 12., //
                13., 14., 15., 16.,
            ],
        };
        let layer = Layer::MaxPool2 { size: 2 };
        let (y, aux) = layer.forward(&x);
        assert_eq!(y.data, vec![6., 8., 14., 16.]);
        let gout = Batch {
            n: 1,
            shape: y.shape,
            data: vec![1., 2., 3., 4.],
        };
        let (gin, _) = layer.backward(&x, &aux, &gout);
        assert_eq!(gin.data[5], 1.0); // value 6
        assert_eq!(gin.data[7], 2.0); // value 8
        assert_eq!(gin.data[13], 3.0); // value 14
        assert_eq!(gin.data[15], 4.0); // value 16
        assert_eq!(gin.data.iter().filter(|&&g| g != 0.0).count(), 4);
    }

    #[test]
    fn conv_known_values() {
        // Single 2×2 averaging-ish filter over a 3×3 image.
        let layer = Layer::Conv(ConvLayer {
            name: "c".into(),
            w: Matrix::from_vec(1, 4, vec![1., 1., 1., 1.]),
            b: vec![0.5],
            in_c: 1,
            kh: 2,
            kw: 2,
            stride: 1,
            pad: 0,
        });
        let x = Batch {
            n: 1,
            shape: VolShape { c: 1, h: 3, w: 3 },
            data: vec![1., 2., 3., 4., 5., 6., 7., 8., 9.],
        };
        let (y, _) = layer.forward(&x);
        assert_eq!(y.data, vec![12.5, 16.5, 24.5, 28.5]);
    }

    #[test]
    fn flatten_roundtrip() {
        let layer = Layer::Flatten;
        let x = Batch {
            n: 2,
            shape: VolShape { c: 2, h: 2, w: 2 },
            data: rand_vec(16, 17, 1.0),
        };
        let (y, _) = layer.forward(&x);
        assert_eq!(y.shape, VolShape { c: 8, h: 1, w: 1 });
        assert_eq!(y.data, x.data);
    }
}
