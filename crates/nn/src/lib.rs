//! A small DNN library (the workspace's Caffe substitute).
//!
//! Provides exactly what the DeepSZ framework needs from its DL framework:
//! forward inference (to measure accuracy under reconstructed layers),
//! SGD backprop (to train the LeNets and retrain after pruning), and
//! introspection/mutation of fully-connected layers (to swap in
//! decompressed weights).
//!
//! Networks are flat [`Layer`] sequences; activations flow as [`Batch`]es of
//! CHW volumes. Dense layers store weights as an `out × in` row-major
//! [`dsz_tensor::Matrix`], matching the paper's `ip/fc` dimension tables.
//!
//! Layer forward/backward matmuls parallelize over output rows on the
//! persistent worker pool (`dsz_tensor::pool`) and respect the calling
//! thread's `with_workers` budget — which is how streaming inference
//! shares cores between a matmul and concurrent prefetch decodes (see
//! `docs/PARALLEL.md`).
//!
//! The [`incremental`] module splits inference into a cached prefix and a
//! scratch-resident suffix pass ([`PrefixCache`], [`Network::forward_from`])
//! so that repeated single-layer perturbation tests — DeepSZ's error-bound
//! assessment — pay only the network downstream of the perturbed layer;
//! `docs/ASSESSMENT.md` documents the model.

pub mod incremental;
pub mod io;
pub mod layers;
pub mod train;
pub mod zoo;

pub use incremental::{PrefixCache, SuffixScratch};
pub use layers::{dense_forward_with_weights, ConvLayer, DenseLayer, Layer, LayerGrad, PoolAux};
pub use train::{
    accuracy, count_topk_hits, softmax_xent, train, Dataset, Sgd, TrainConfig, TrainStats,
};
pub use zoo::{Arch, Scale};

use dsz_tensor::VolShape;

/// A mini-batch of activations: `n` samples, each a CHW volume.
#[derive(Debug, Clone, PartialEq)]
pub struct Batch {
    /// Sample count.
    pub n: usize,
    /// Per-sample volume shape.
    pub shape: VolShape,
    /// `n * shape.len()` values, sample-major.
    pub data: Vec<f32>,
}

impl Batch {
    /// Wraps flat feature vectors as a batch of `dim×1×1` volumes.
    pub fn from_features(n: usize, dim: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), n * dim, "batch data length mismatch");
        Self {
            n,
            shape: VolShape { c: dim, h: 1, w: 1 },
            data,
        }
    }

    /// Features per sample.
    pub fn features(&self) -> usize {
        self.shape.len()
    }

    /// Slice of one sample's volume.
    pub fn sample(&self, i: usize) -> &[f32] {
        let len = self.shape.len();
        &self.data[i * len..(i + 1) * len]
    }
}

/// Boolean keep-mask over a dense layer's weights (row-major, `out × in`).
pub type WeightMask = Vec<bool>;

/// Reference to a fully-connected layer inside a [`Network`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FcLayerRef {
    /// Index into `Network::layers`.
    pub layer_index: usize,
    /// Layer name (paper naming: `ip1`, `fc6`, …).
    pub name: String,
    /// Output neurons (weight matrix rows).
    pub rows: usize,
    /// Input neurons (weight matrix columns).
    pub cols: usize,
}

impl FcLayerRef {
    /// Weight count.
    pub fn weights(&self) -> usize {
        self.rows * self.cols
    }

    /// Dense storage in bytes (f32 weights; biases excluded like the paper).
    pub fn dense_bytes(&self) -> usize {
        self.weights() * 4
    }
}

/// A feed-forward network: an input shape plus a layer pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct Network {
    /// Expected per-sample input shape.
    pub input_shape: VolShape,
    /// The layer pipeline.
    pub layers: Vec<Layer>,
}

impl Network {
    /// Runs the forward pass.
    pub fn forward(&self, x: &Batch) -> Batch {
        assert_eq!(x.shape, self.input_shape, "input shape mismatch");
        let mut cur = x.clone();
        for layer in &self.layers {
            let (next, _aux) = layer.forward(&cur);
            cur = next;
        }
        cur
    }

    /// Forward pass retaining per-layer inputs and auxiliary data for
    /// [`Network::backward`]. Returns the output batch and the cache.
    pub fn forward_cached(&self, x: &Batch) -> (Batch, ForwardCache) {
        assert_eq!(x.shape, self.input_shape, "input shape mismatch");
        let mut inputs = Vec::with_capacity(self.layers.len());
        let mut auxes = Vec::with_capacity(self.layers.len());
        let mut cur = x.clone();
        for layer in &self.layers {
            let (next, aux) = layer.forward(&cur);
            inputs.push(cur);
            auxes.push(aux);
            cur = next;
        }
        (cur, ForwardCache { inputs, auxes })
    }

    /// Backpropagates `grad_out` (gradient of the loss wrt the network
    /// output) through the cached forward pass, returning per-layer
    /// parameter gradients (None for parameterless layers).
    pub fn backward(&self, cache: &ForwardCache, grad_out: &Batch) -> Vec<Option<LayerGrad>> {
        let mut grads = vec![None; self.layers.len()];
        let mut g = grad_out.clone();
        for (i, layer) in self.layers.iter().enumerate().rev() {
            let (gin, lg) = layer.backward(&cache.inputs[i], &cache.auxes[i], &g);
            grads[i] = lg;
            g = gin;
        }
        grads
    }

    /// All fully-connected layers, in network order.
    pub fn fc_layers(&self) -> Vec<FcLayerRef> {
        self.layers
            .iter()
            .enumerate()
            .filter_map(|(i, l)| match l {
                Layer::Dense(d) => Some(FcLayerRef {
                    layer_index: i,
                    name: d.name.clone(),
                    rows: d.w.rows,
                    cols: d.w.cols,
                }),
                _ => None,
            })
            .collect()
    }

    /// Immutable access to a dense layer by index. Panics on non-dense.
    pub fn dense(&self, layer_index: usize) -> &DenseLayer {
        match &self.layers[layer_index] {
            Layer::Dense(d) => d,
            other => panic!("layer {layer_index} is not dense: {other:?}"),
        }
    }

    /// Mutable access to a dense layer by index. Panics on non-dense.
    pub fn dense_mut(&mut self, layer_index: usize) -> &mut DenseLayer {
        match &mut self.layers[layer_index] {
            Layer::Dense(d) => d,
            other => panic!("layer {layer_index} is not dense: {other:?}"),
        }
    }

    /// Index of the first dense layer (start of the fc head).
    pub fn first_dense_index(&self) -> Option<usize> {
        self.layers
            .iter()
            .position(|l| matches!(l, Layer::Dense(_)))
    }

    /// Splits into `(feature prefix, fc head)` at the first dense layer.
    /// The prefix computes the conv features the paper leaves uncompressed;
    /// the head contains every fc layer DeepSZ operates on. Running
    /// `head.forward(prefix.forward(x))` equals `self.forward(x)`.
    pub fn split_feature_head(&self) -> (Network, Network) {
        let split = self.first_dense_index().unwrap_or(self.layers.len());
        let prefix = Network {
            input_shape: self.input_shape,
            layers: self.layers[..split].to_vec(),
        };
        let head_input = prefix.output_shape();
        let head = Network {
            input_shape: head_input,
            layers: self.layers[split..].to_vec(),
        };
        (prefix, head)
    }

    /// Shape produced by the layer pipeline for a single sample.
    pub fn output_shape(&self) -> VolShape {
        let mut shape = self.input_shape;
        for layer in &self.layers {
            shape = layer.output_shape(shape);
        }
        shape
    }

    /// Total parameter count (weights + biases).
    pub fn param_count(&self) -> usize {
        self.layers
            .iter()
            .map(|l| match l {
                Layer::Dense(d) => d.w.data.len() + d.b.len(),
                Layer::Conv(c) => c.w.data.len() + c.b.len(),
                _ => 0,
            })
            .sum()
    }

    /// Total parameter bytes (f32).
    pub fn param_bytes(&self) -> usize {
        self.param_count() * 4
    }

    /// Bytes held by fc-layer weights only.
    pub fn fc_bytes(&self) -> usize {
        self.fc_layers().iter().map(FcLayerRef::dense_bytes).sum()
    }
}

/// Saved activations from [`Network::forward_cached`].
pub struct ForwardCache {
    /// Input batch of each layer.
    pub inputs: Vec<Batch>,
    /// Per-layer auxiliary state (pooling argmaxes).
    pub auxes: Vec<Option<PoolAux>>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsz_tensor::Matrix;

    fn tiny_mlp() -> Network {
        let mut w1 = Matrix::zeros(3, 4);
        w1.data
            .iter_mut()
            .enumerate()
            .for_each(|(i, v)| *v = (i as f32 - 5.0) * 0.1);
        let mut w2 = Matrix::zeros(2, 3);
        w2.data
            .iter_mut()
            .enumerate()
            .for_each(|(i, v)| *v = (i as f32 - 2.0) * 0.2);
        Network {
            input_shape: VolShape { c: 4, h: 1, w: 1 },
            layers: vec![
                Layer::Dense(DenseLayer {
                    name: "ip1".into(),
                    w: w1,
                    b: vec![0.1, -0.1, 0.0],
                }),
                Layer::ReLU,
                Layer::Dense(DenseLayer {
                    name: "ip2".into(),
                    w: w2,
                    b: vec![0.0, 0.0],
                }),
            ],
        }
    }

    #[test]
    fn forward_shapes() {
        let net = tiny_mlp();
        let x = Batch::from_features(5, 4, vec![0.3; 20]);
        let y = net.forward(&x);
        assert_eq!(y.n, 5);
        assert_eq!(y.features(), 2);
        assert_eq!(net.output_shape().len(), 2);
    }

    #[test]
    fn fc_layer_listing() {
        let net = tiny_mlp();
        let fcs = net.fc_layers();
        assert_eq!(fcs.len(), 2);
        assert_eq!(fcs[0].name, "ip1");
        assert_eq!((fcs[0].rows, fcs[0].cols), (3, 4));
        assert_eq!(fcs[1].layer_index, 2);
        assert_eq!(net.fc_bytes(), (12 + 6) * 4);
    }

    #[test]
    fn split_feature_head_identity_for_mlp() {
        let net = tiny_mlp();
        let (prefix, head) = net.split_feature_head();
        assert!(prefix.layers.is_empty());
        assert_eq!(head.layers.len(), 3);
        let x = Batch::from_features(2, 4, vec![0.5; 8]);
        let full = net.forward(&x);
        let via = head.forward(&prefix.forward(&x));
        assert_eq!(full, via);
    }

    #[test]
    fn param_accounting() {
        let net = tiny_mlp();
        assert_eq!(net.param_count(), 12 + 3 + 6 + 2);
        assert_eq!(net.param_bytes(), (12 + 3 + 6 + 2) * 4);
    }
}
