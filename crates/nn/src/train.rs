//! Loss, accuracy evaluation, and SGD training (with optional pruning masks).

use crate::{Batch, Layer, LayerGrad, Network, WeightMask};
use dsz_tensor::{Matrix, VolShape};

/// A labelled dataset of flat samples.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Per-sample volume shape.
    pub shape: VolShape,
    /// Sample-major values, `n · shape.len()` long.
    pub x: Vec<f32>,
    /// Class labels, one per sample.
    pub labels: Vec<u16>,
}

impl Dataset {
    /// Sample count.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Copies samples `[lo, hi)` into a batch.
    pub fn batch(&self, lo: usize, hi: usize) -> Batch {
        let f = self.shape.len();
        Batch {
            n: hi - lo,
            shape: self.shape,
            data: self.x[lo * f..hi * f].to_vec(),
        }
    }

    /// Borrowed label slice for samples `[lo, hi)`.
    pub fn label_slice(&self, lo: usize, hi: usize) -> &[u16] {
        &self.labels[lo..hi]
    }

    /// A new dataset holding the first `n` samples.
    pub fn take(&self, n: usize) -> Dataset {
        let n = n.min(self.len());
        let f = self.shape.len();
        Dataset {
            shape: self.shape,
            x: self.x[..n * f].to_vec(),
            labels: self.labels[..n].to_vec(),
        }
    }
}

/// Softmax cross-entropy: returns mean loss and the gradient wrt logits.
pub fn softmax_xent(logits: &Batch, labels: &[u16]) -> (f64, Batch) {
    assert_eq!(logits.n, labels.len(), "label count mismatch");
    let k = logits.features();
    let mut grad = vec![0f32; logits.data.len()];
    let mut loss = 0f64;
    for (i, &label) in labels.iter().enumerate() {
        let row = &logits.data[i * k..(i + 1) * k];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut denom = 0f64;
        for &v in row {
            denom += ((v - max) as f64).exp();
        }
        let g = &mut grad[i * k..(i + 1) * k];
        for (j, &v) in row.iter().enumerate() {
            let p = ((v - max) as f64).exp() / denom;
            g[j] =
                (p - if j == usize::from(label) { 1.0 } else { 0.0 }) as f32 / labels.len() as f32;
        }
        let pl = ((row[usize::from(label)] - max) as f64).exp() / denom;
        loss -= pl.max(1e-300).ln();
    }
    (
        loss / labels.len() as f64,
        Batch {
            n: logits.n,
            shape: logits.shape,
            data: grad,
        },
    )
}

/// Top-k hit test for one logit row.
fn in_top_k(row: &[f32], label: u16, k: usize) -> bool {
    let lv = row[usize::from(label)];
    let better = row.iter().filter(|&&v| v > lv).count();
    better < k
}

/// Counts labels hit by the top-`k` of their logit row. `out` is a flat
/// `labels.len() × features` logit buffer — the shared scoring primitive
/// behind [`accuracy`] and the incremental suffix evaluation, kept in one
/// place so the two paths cannot diverge.
pub fn count_topk_hits(out: &[f32], features: usize, labels: &[u16], k: usize) -> usize {
    assert_eq!(out.len(), labels.len() * features, "logit buffer mismatch");
    labels
        .iter()
        .enumerate()
        .filter(|&(i, &label)| in_top_k(&out[i * features..(i + 1) * features], label, k))
        .count()
}

/// Accuracy over a dataset, evaluated in batches. Returns `(top1, topk)`
/// fractions in `[0, 1]`; `topk` uses `k` (the paper reports top-5).
pub fn accuracy(net: &Network, data: &Dataset, batch: usize, k: usize) -> (f64, f64) {
    let n = data.len();
    if n == 0 {
        return (0.0, 0.0);
    }
    let mut hit1 = 0usize;
    let mut hitk = 0usize;
    let mut lo = 0usize;
    while lo < n {
        let hi = (lo + batch).min(n);
        let out = net.forward(&data.batch(lo, hi));
        let kk = out.features();
        let labels = data.label_slice(lo, hi);
        hit1 += count_topk_hits(&out.data, kk, labels, 1);
        hitk += count_topk_hits(&out.data, kk, labels, k);
        lo = hi;
    }
    (hit1 as f64 / n as f64, hitk as f64 / n as f64)
}

/// SGD with momentum. Velocity slots mirror the network's layer list.
#[derive(Debug)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 disables).
    pub momentum: f32,
    velocity: Vec<Option<LayerGrad>>,
}

impl Sgd {
    /// Creates an optimizer for `net`.
    pub fn new(net: &Network, lr: f32, momentum: f32) -> Self {
        Self {
            lr,
            momentum,
            velocity: vec![None; net.layers.len()],
        }
    }

    /// Applies one gradient step. `masks[i]`, when present for a dense
    /// layer, freezes pruned weights at zero (the paper's masked
    /// retraining, §3.2).
    pub fn step(
        &mut self,
        net: &mut Network,
        grads: &[Option<LayerGrad>],
        masks: Option<&[Option<WeightMask>]>,
    ) {
        for (i, grad) in grads.iter().enumerate() {
            let Some(g) = grad else { continue };
            let vel = self.velocity[i].get_or_insert_with(|| LayerGrad {
                dw: Matrix::zeros(g.dw.rows, g.dw.cols),
                db: vec![0.0; g.db.len()],
            });
            for (v, &d) in vel.dw.data.iter_mut().zip(&g.dw.data) {
                *v = self.momentum * *v + d;
            }
            for (v, &d) in vel.db.iter_mut().zip(&g.db) {
                *v = self.momentum * *v + d;
            }
            let mask = masks.and_then(|m| m[i].as_ref());
            match &mut net.layers[i] {
                Layer::Dense(d) => {
                    for (j, (w, v)) in d.w.data.iter_mut().zip(&vel.dw.data).enumerate() {
                        *w -= self.lr * v;
                        if let Some(m) = mask {
                            if !m[j] {
                                *w = 0.0;
                            }
                        }
                    }
                    for (b, v) in d.b.iter_mut().zip(&vel.db) {
                        *b -= self.lr * v;
                    }
                }
                Layer::Conv(c) => {
                    for (w, v) in c.w.data.iter_mut().zip(&vel.dw.data) {
                        *w -= self.lr * v;
                    }
                    for (b, v) in c.b.iter_mut().zip(&vel.db) {
                        *b -= self.lr * v;
                    }
                }
                _ => {}
            }
        }
    }
}

/// Training hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient.
    pub momentum: f32,
    /// Mini-batch size.
    pub batch: usize,
    /// Full passes over the data.
    pub epochs: usize,
    /// Print progress to stderr.
    pub verbose: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            lr: 0.05,
            momentum: 0.9,
            batch: 64,
            epochs: 3,
            verbose: false,
        }
    }
}

/// Per-epoch training record.
#[derive(Debug, Clone, Default)]
pub struct TrainStats {
    /// Mean loss of each epoch.
    pub epoch_loss: Vec<f64>,
}

/// Trains `net` on `data` with mini-batch SGD. When `masks` is provided,
/// pruned dense weights stay zero throughout (masked retraining).
pub fn train(
    net: &mut Network,
    data: &Dataset,
    cfg: &TrainConfig,
    masks: Option<&[Option<WeightMask>]>,
) -> TrainStats {
    let mut opt = Sgd::new(net, cfg.lr, cfg.momentum);
    let n = data.len();
    let mut stats = TrainStats::default();
    for epoch in 0..cfg.epochs {
        let mut loss_sum = 0f64;
        let mut batches = 0usize;
        let mut lo = 0usize;
        while lo < n {
            let hi = (lo + cfg.batch).min(n);
            let x = data.batch(lo, hi);
            let (out, cache) = net.forward_cached(&x);
            let (loss, grad) = softmax_xent(&out, data.label_slice(lo, hi));
            let grads = net.backward(&cache, &grad);
            opt.step(net, &grads, masks);
            loss_sum += loss;
            batches += 1;
            lo = hi;
        }
        let mean = loss_sum / batches.max(1) as f64;
        stats.epoch_loss.push(mean);
        if cfg.verbose {
            eprintln!("epoch {epoch}: loss {mean:.4}");
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DenseLayer;

    fn xor_like_dataset(n: usize, seed: u64) -> Dataset {
        // Two interleaved Gaussian blobs per class — linearly separable
        // after one hidden layer.
        let mut s = seed;
        let mut next = || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((s >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        };
        let mut x = Vec::with_capacity(n * 2);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = (i % 2) as u16;
            let (cx, cy) = if class == 0 { (0.5, 0.5) } else { (-0.5, -0.5) };
            x.push(cx + 0.2 * next());
            x.push(cy + 0.2 * next());
            labels.push(class);
        }
        Dataset {
            shape: VolShape { c: 2, h: 1, w: 1 },
            x,
            labels,
        }
    }

    fn small_net(seed: u64) -> Network {
        let mut s = seed;
        let mut next = || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            (((s >> 33) as f32 / (1u64 << 31) as f32) - 0.5) * 0.6
        };
        Network {
            input_shape: VolShape { c: 2, h: 1, w: 1 },
            layers: vec![
                Layer::Dense(DenseLayer {
                    name: "h".into(),
                    w: Matrix::from_vec(8, 2, (0..16).map(|_| next()).collect()),
                    b: vec![0.0; 8],
                }),
                Layer::ReLU,
                Layer::Dense(DenseLayer {
                    name: "out".into(),
                    w: Matrix::from_vec(2, 8, (0..16).map(|_| next()).collect()),
                    b: vec![0.0; 2],
                }),
            ],
        }
    }

    #[test]
    fn softmax_xent_gradient_is_numerically_correct() {
        let logits = Batch::from_features(2, 3, vec![0.2, -0.5, 1.0, 0.0, 0.3, -0.8]);
        let labels = [2u16, 1];
        let (_, grad) = softmax_xent(&logits, &labels);
        let eps = 1e-3f32;
        for probe in 0..6 {
            let mut lp = logits.clone();
            lp.data[probe] += eps;
            let mut lm = logits.clone();
            lm.data[probe] -= eps;
            let (fp, _) = softmax_xent(&lp, &labels);
            let (fm, _) = softmax_xent(&lm, &labels);
            let num = (fp - fm) / (2.0 * eps as f64);
            assert!(
                (num - grad.data[probe] as f64).abs() < 1e-4,
                "probe {probe}: {num} vs {}",
                grad.data[probe]
            );
        }
    }

    #[test]
    fn training_learns_separable_data() {
        let data = xor_like_dataset(512, 7);
        let mut net = small_net(3);
        let (before, _) = accuracy(&net, &data, 64, 2);
        train(
            &mut net,
            &data,
            &TrainConfig {
                epochs: 8,
                ..Default::default()
            },
            None,
        );
        let (after, _) = accuracy(&net, &data, 64, 2);
        assert!(
            after > 0.95,
            "accuracy after training {after} (before {before})"
        );
    }

    #[test]
    fn masked_training_keeps_pruned_weights_zero() {
        let data = xor_like_dataset(256, 9);
        let mut net = small_net(5);
        // Prune half of the hidden layer's weights.
        let mut mask = vec![true; 16];
        for (i, m) in mask.iter_mut().enumerate() {
            if i % 2 == 0 {
                *m = false;
            }
        }
        if let Layer::Dense(d) = &mut net.layers[0] {
            for (w, &m) in d.w.data.iter_mut().zip(&mask) {
                if !m {
                    *w = 0.0;
                }
            }
        }
        let masks: Vec<Option<WeightMask>> = vec![Some(mask.clone()), None, None];
        train(
            &mut net,
            &data,
            &TrainConfig {
                epochs: 4,
                ..Default::default()
            },
            Some(&masks),
        );
        if let Layer::Dense(d) = &net.layers[0] {
            for (i, (&w, &m)) in d.w.data.iter().zip(&mask).enumerate() {
                if !m {
                    assert_eq!(w, 0.0, "pruned weight {i} drifted");
                }
            }
            // And unmasked weights actually moved.
            assert!(d.w.data.iter().any(|&w| w != 0.0));
        }
    }

    #[test]
    fn top_k_accuracy_ordering() {
        let data = xor_like_dataset(128, 11);
        let net = small_net(13);
        let (t1, t2) = accuracy(&net, &data, 32, 2);
        assert!(t2 >= t1);
        assert!(t2 <= 1.0 + 1e-9);
        // With 2 classes, top-2 is always 1.
        assert!((t2 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dataset_take_and_batch() {
        let data = xor_like_dataset(100, 13);
        let sub = data.take(10);
        assert_eq!(sub.len(), 10);
        let b = sub.batch(2, 5);
        assert_eq!(b.n, 3);
        assert_eq!(b.data, data.x[4..10]);
    }
}
