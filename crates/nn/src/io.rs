//! Binary model serialization (the stand-in for Caffe's `.caffemodel`).
//!
//! A simple self-describing little-endian format: layer-type tags followed
//! by shapes and raw f32 parameter buffers. Used by the benchmark harness
//! to train each evaluation network once and share it across table/figure
//! binaries, and by the examples to demonstrate model shipping.

use crate::{Batch, ConvLayer, DenseLayer, Layer, Network};
use dsz_tensor::{Matrix, VolShape};
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"DSNN";
const VERSION: u8 = 1;

fn write_usize(w: &mut impl Write, v: usize) -> io::Result<()> {
    w.write_all(&(v as u64).to_le_bytes())
}

fn read_usize(r: &mut impl Read) -> io::Result<usize> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf) as usize)
}

fn write_f32s(w: &mut impl Write, data: &[f32]) -> io::Result<()> {
    write_usize(w, data.len())?;
    for &v in data {
        w.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

fn read_f32s(r: &mut impl Read) -> io::Result<Vec<f32>> {
    let n = read_usize(r)?;
    if n > 1 << 30 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "parameter buffer too large",
        ));
    }
    let mut bytes = vec![0u8; n * 4];
    r.read_exact(&mut bytes)?;
    Ok(bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().expect("len 4")))
        .collect())
}

fn write_str(w: &mut impl Write, s: &str) -> io::Result<()> {
    write_usize(w, s.len())?;
    w.write_all(s.as_bytes())
}

fn read_str(r: &mut impl Read) -> io::Result<String> {
    let n = read_usize(r)?;
    if n > 1 << 16 {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "name too long"));
    }
    let mut bytes = vec![0u8; n];
    r.read_exact(&mut bytes)?;
    String::from_utf8(bytes).map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad utf8"))
}

/// Serializes `net` to `w`.
pub fn save_network(net: &Network, w: &mut impl Write) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&[VERSION])?;
    write_usize(w, net.input_shape.c)?;
    write_usize(w, net.input_shape.h)?;
    write_usize(w, net.input_shape.w)?;
    write_usize(w, net.layers.len())?;
    for layer in &net.layers {
        match layer {
            Layer::Dense(d) => {
                w.write_all(&[0u8])?;
                write_str(w, &d.name)?;
                write_usize(w, d.w.rows)?;
                write_usize(w, d.w.cols)?;
                write_f32s(w, &d.w.data)?;
                write_f32s(w, &d.b)?;
            }
            Layer::Conv(c) => {
                w.write_all(&[1u8])?;
                write_str(w, &c.name)?;
                write_usize(w, c.w.rows)?;
                write_usize(w, c.w.cols)?;
                write_f32s(w, &c.w.data)?;
                write_f32s(w, &c.b)?;
                for v in [c.in_c, c.kh, c.kw, c.stride, c.pad] {
                    write_usize(w, v)?;
                }
            }
            Layer::ReLU => w.write_all(&[2u8])?,
            Layer::MaxPool2 { size } => {
                w.write_all(&[3u8])?;
                write_usize(w, *size)?;
            }
            Layer::Flatten => w.write_all(&[4u8])?,
        }
    }
    Ok(())
}

/// Deserializes a network written by [`save_network`].
pub fn load_network(r: &mut impl Read) -> io::Result<Network> {
    let mut magic = [0u8; 5];
    r.read_exact(&mut magic)?;
    if &magic[..4] != MAGIC || magic[4] != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "bad model header",
        ));
    }
    let c = read_usize(r)?;
    let h = read_usize(r)?;
    let wdim = read_usize(r)?;
    let n_layers = read_usize(r)?;
    if n_layers > 4096 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "too many layers",
        ));
    }
    let mut layers = Vec::with_capacity(n_layers);
    for _ in 0..n_layers {
        let mut tag = [0u8; 1];
        r.read_exact(&mut tag)?;
        layers.push(match tag[0] {
            0 => {
                let name = read_str(r)?;
                let rows = read_usize(r)?;
                let cols = read_usize(r)?;
                let data = read_f32s(r)?;
                let b = read_f32s(r)?;
                if data.len() != rows * cols || b.len() != rows {
                    return Err(io::Error::new(io::ErrorKind::InvalidData, "dense shape"));
                }
                Layer::Dense(DenseLayer {
                    name,
                    w: Matrix::from_vec(rows, cols, data),
                    b,
                })
            }
            1 => {
                let name = read_str(r)?;
                let rows = read_usize(r)?;
                let cols = read_usize(r)?;
                let data = read_f32s(r)?;
                let b = read_f32s(r)?;
                let in_c = read_usize(r)?;
                let kh = read_usize(r)?;
                let kw = read_usize(r)?;
                let stride = read_usize(r)?;
                let pad = read_usize(r)?;
                if data.len() != rows * cols || b.len() != rows || cols != in_c * kh * kw {
                    return Err(io::Error::new(io::ErrorKind::InvalidData, "conv shape"));
                }
                Layer::Conv(ConvLayer {
                    name,
                    w: Matrix::from_vec(rows, cols, data),
                    b,
                    in_c,
                    kh,
                    kw,
                    stride,
                    pad,
                })
            }
            2 => Layer::ReLU,
            3 => Layer::MaxPool2 {
                size: read_usize(r)?,
            },
            4 => Layer::Flatten,
            t => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unknown layer tag {t}"),
                ))
            }
        });
    }
    Ok(Network {
        input_shape: VolShape { c, h, w: wdim },
        layers,
    })
}

/// Convenience: save to a file path.
pub fn save_to_file(net: &Network, path: &std::path::Path) -> io::Result<()> {
    let mut f = io::BufWriter::new(std::fs::File::create(path)?);
    save_network(net, &mut f)?;
    f.flush()
}

/// Convenience: load from a file path.
pub fn load_from_file(path: &std::path::Path) -> io::Result<Network> {
    let mut f = io::BufReader::new(std::fs::File::open(path)?);
    load_network(&mut f)
}

/// Sanity check: two networks produce identical outputs on a probe batch.
pub fn outputs_match(a: &Network, b: &Network, probe: &Batch) -> bool {
    a.forward(probe) == b.forward(probe)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{zoo, Arch, Scale};

    #[test]
    fn roundtrip_all_layer_types() {
        let net = zoo::build(Arch::LeNet5, Scale::Full, 7);
        let mut buf = Vec::new();
        save_network(&net, &mut buf).unwrap();
        let back = load_network(&mut buf.as_slice()).unwrap();
        assert_eq!(net, back);
    }

    #[test]
    fn roundtrip_mlp() {
        let net = zoo::build(Arch::LeNet300, Scale::Full, 9);
        let mut buf = Vec::new();
        save_network(&net, &mut buf).unwrap();
        let back = load_network(&mut buf.as_slice()).unwrap();
        let probe = Batch {
            n: 2,
            shape: net.input_shape,
            data: vec![0.3; 2 * 784],
        };
        assert!(outputs_match(&net, &back, &probe));
    }

    #[test]
    fn corrupt_header_rejected() {
        let net = zoo::build(Arch::LeNet300, Scale::Full, 9);
        let mut buf = Vec::new();
        save_network(&net, &mut buf).unwrap();
        buf[0] = b'X';
        assert!(load_network(&mut buf.as_slice()).is_err());
        // Truncation.
        let half = &buf[..buf.len() / 2];
        assert!(load_network(&mut &half[1..]).is_err());
    }
}
