//! Shared test fixture: a tiny two-fc-layer network encoded into a DSZM
//! container, mirroring `crates/core/tests/spill_streaming.rs`.

use dsz_core::optimizer::{ChosenLayer, Plan};
use dsz_core::{encode_with_plan_config, DataCodecKind, LayerAssessment};
use dsz_nn::FcLayerRef;
use dsz_sparse::PairArray;
use dsz_sz::SzConfig;

/// Input feature count of every fixture model.
pub const FEATURES: usize = 32;

/// Builds a 24×32 → 16×24 fc network (seed-distinct weights) and its
/// encoded container bytes.
pub fn fixture(seed: u64) -> (dsz_nn::Network, Vec<u8>) {
    let shapes = [(24usize, 32usize), (16, 24)];
    let ebs = [1e-2f64, 1e-3];
    let mut assessments = Vec::new();
    let mut chosen = Vec::new();
    let mut net = dsz_nn::Network {
        input_shape: dsz_tensor::VolShape {
            c: FEATURES,
            h: 1,
            w: 1,
        },
        layers: Vec::new(),
    };
    for (li, &(rows, cols)) in shapes.iter().enumerate() {
        let mut dense = dsz_datagen::weights::trained_fc_weights(rows, cols, seed + li as u64);
        dsz_prune::prune_to_density(&mut dense, 0.35);
        let pair = PairArray::from_dense(&dense, rows, cols);
        let (index_codec, index_blob) = dsz_lossless::best_fit(&pair.index);
        let fc = FcLayerRef {
            layer_index: li,
            name: format!("fc{li}"),
            rows,
            cols,
        };
        net.layers.push(dsz_nn::Layer::Dense(dsz_nn::DenseLayer {
            name: fc.name.clone(),
            w: dsz_tensor::Matrix {
                rows,
                cols,
                data: dense,
            },
            b: vec![0.0; rows],
        }));
        chosen.push(ChosenLayer {
            fc: fc.clone(),
            eb: ebs[li],
            degradation: 0.0,
            data_bytes: 0,
            index_bytes: index_blob.len(),
            codec: DataCodecKind::Sz,
            point_index: 0,
        });
        assessments.push(LayerAssessment {
            fc,
            pair,
            index_codec,
            index_bytes: index_blob.len(),
            points: Vec::new(),
        });
    }
    let plan = Plan {
        layers: chosen,
        predicted_loss: 0.0,
        total_bytes: 0,
    };
    let sz = SzConfig {
        chunk_elems: 4096,
        ..SzConfig::default()
    };
    let (model, _) = encode_with_plan_config(&assessments, &plan, &sz).unwrap();
    (net, model.bytes)
}

/// Deterministic per-sample input vector.
pub fn probe(seed: u64) -> Vec<f32> {
    let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..FEATURES)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            ((s >> 40) as f32 / (1u64 << 24) as f32) - 0.5
        })
        .collect()
}

/// Reference output for one sample through the *uncached serial* path —
/// the bit-identity baseline every serving result must match.
pub fn serial_reference(net: &dsz_nn::Network, container: &[u8], input: &[f32]) -> Vec<f32> {
    let model = dsz_core::CompressedModel {
        bytes: container.to_vec(),
    };
    let streaming = dsz_core::CompressedFcModel::new(net, &model)
        .unwrap()
        .with_prefetch(false);
    let x = dsz_nn::Batch::from_features(1, FEATURES, input.to_vec());
    streaming.forward(&x).unwrap().0.data
}

/// f32 slice → bit pattern, for exact comparisons.
pub fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|f| f.to_bits()).collect()
}
