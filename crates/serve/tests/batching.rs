//! Micro-batch semantics: deterministic count-bounded coalescing,
//! bit-identity of batched vs unbatched serving, drain-time cancellation
//! inside a batch (`docs/SERVING.md`).
//!
//! Determinism is what makes these tests possible at all: submission
//! never executes, so a test builds an exact batch by submitting k
//! tickets and then waiting one — no timing, no sleeps.

mod util;

use dsz_serve::{BatchConfig, ModelRegistry, ServeError, Server};
use std::sync::Arc;
use util::{bits, fixture, probe, serial_reference};

fn server(max_batch: usize) -> Server {
    Server::new(
        Arc::new(ModelRegistry::new(1 << 20)),
        BatchConfig { max_batch },
    )
}

#[test]
fn submitted_tickets_coalesce_into_one_batch() {
    let (net, container) = fixture(1);
    let srv = server(8);
    srv.registry().load("m", &net, &container).unwrap();
    let inputs: Vec<Vec<f32>> = (0..5).map(|i| probe(0x51 + i)).collect();
    let tickets: Vec<_> = inputs
        .iter()
        .map(|x| srv.submit("m", x.clone()).unwrap())
        .collect();
    // Nothing executes at submit time.
    assert_eq!(srv.stats().batches, 0);
    for (i, (t, x)) in tickets.into_iter().zip(&inputs).enumerate() {
        let out = t.wait().unwrap();
        assert_eq!(
            bits(&out),
            bits(&serial_reference(&net, &container, x)),
            "request {i} diverged from its per-sample reference"
        );
    }
    let stats = srv.stats();
    // The first wait drained all five pending requests into one batch.
    assert_eq!(stats.batches, 1, "expected one coalesced batch");
    assert_eq!(stats.batched_samples, 5);
    assert_eq!(stats.max_batch_seen, 5);
    assert_eq!(stats.completed, 5);
}

#[test]
fn batches_split_at_max_batch() {
    let (net, container) = fixture(1);
    let srv = server(4);
    srv.registry().load("m", &net, &container).unwrap();
    let tickets: Vec<_> = (0..10)
        .map(|i| srv.submit("m", probe(0x900 + i)).unwrap())
        .collect();
    for t in tickets {
        t.wait().unwrap();
    }
    let stats = srv.stats();
    assert_eq!(stats.batched_samples, 10);
    assert_eq!(stats.batches, 3, "10 requests at max_batch 4 → 4+4+2");
    assert_eq!(stats.max_batch_seen, 4, "cap respected");
}

#[test]
fn batched_output_matches_unbatched_server_bit_for_bit() {
    let (net, container) = fixture(1);
    let inputs: Vec<Vec<f32>> = (0..6).map(|i| probe(0xB00 + i)).collect();

    // Unbatched baseline: max_batch 1, every request runs alone.
    let unbatched = server(1);
    unbatched.registry().load("m", &net, &container).unwrap();
    let baseline: Vec<Vec<u32>> = inputs
        .iter()
        .map(|x| bits(&unbatched.infer("m", x.clone()).unwrap()))
        .collect();
    assert_eq!(unbatched.stats().max_batch_seen, 1);

    // Batched: all six coalesce.
    let batched = server(8);
    batched.registry().load("m", &net, &container).unwrap();
    let tickets: Vec<_> = inputs
        .iter()
        .map(|x| batched.submit("m", x.clone()).unwrap())
        .collect();
    for (i, t) in tickets.into_iter().enumerate() {
        assert_eq!(
            bits(&t.wait().unwrap()),
            baseline[i],
            "batched request {i} != unbatched bits"
        );
    }
    assert_eq!(batched.stats().batches, 1);
    assert_eq!(batched.stats().batched_samples, 6);
}

#[test]
fn cancelled_member_skips_batch_slot_others_unaffected() {
    let (net, container) = fixture(1);
    let srv = server(8);
    srv.registry().load("m", &net, &container).unwrap();
    let inputs: Vec<Vec<f32>> = (0..3).map(|i| probe(0xC0 + i)).collect();
    let tickets: Vec<_> = inputs
        .iter()
        .map(|x| srv.submit("m", x.clone()).unwrap())
        .collect();
    tickets[1].cancel();
    let mut results = Vec::new();
    for t in tickets {
        results.push(t.wait());
    }
    assert_eq!(results[1], Err(ServeError::Cancelled));
    for (i, x) in inputs.iter().enumerate() {
        if i == 1 {
            continue;
        }
        assert_eq!(
            bits(results[i].as_ref().unwrap()),
            bits(&serial_reference(&net, &container, x)),
            "live member {i} affected by a cancelled neighbour"
        );
    }
    let stats = srv.stats();
    assert_eq!(stats.cancelled, 1);
    assert_eq!(stats.completed, 2);
    assert_eq!(
        stats.batched_samples, 2,
        "the cancelled request must not cost a batch slot"
    );
}

#[test]
fn fully_cancelled_batch_aborts_without_results() {
    let (net, container) = fixture(1);
    let srv = server(8);
    srv.registry().load("m", &net, &container).unwrap();
    let tickets: Vec<_> = (0..4)
        .map(|i| srv.submit("m", probe(0xF0 + i)).unwrap())
        .collect();
    for t in &tickets {
        t.cancel();
    }
    for t in tickets {
        assert_eq!(t.wait(), Err(ServeError::Cancelled));
    }
    let stats = srv.stats();
    assert_eq!(stats.cancelled, 4);
    assert_eq!(stats.completed, 0);
    assert_eq!(stats.batches, 0, "nothing live → no forward executed");
}

#[test]
fn concurrent_waiters_form_multi_request_batches() {
    let (net, container) = fixture(1);
    let srv = Arc::new(server(8));
    srv.registry().load("m", &net, &container).unwrap();
    let inputs: Vec<Vec<f32>> = (0..16).map(|i| probe(0xD000 + i)).collect();
    let want: Vec<Vec<u32>> = inputs
        .iter()
        .map(|x| bits(&serial_reference(&net, &container, x)))
        .collect();
    // Submit everything first so concurrent waiters find a deep queue,
    // then wait from 4 threads: leaders drain multi-request batches.
    let tickets: Vec<_> = inputs
        .iter()
        .map(|x| srv.submit("m", x.clone()).unwrap())
        .collect();
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for (i, t) in tickets.into_iter().enumerate() {
            let want = want[i].clone();
            handles.push(s.spawn(move || {
                assert_eq!(bits(&t.wait().unwrap()), want, "request {i} diverged");
            }));
            if handles.len() == 4 {
                for h in handles.drain(..) {
                    h.join().unwrap();
                }
            }
        }
    });
    let stats = srv.stats();
    assert_eq!(stats.completed, 16);
    assert!(
        stats.batches < 16,
        "16 requests with a deep queue must coalesce at least once (got {} batches)",
        stats.batches
    );
    assert!(stats.max_batch_seen >= 2);
}
