//! Registry lifecycle, cross-model cache sharing, cancellation, and
//! bit-identity of served results against the uncached serial path
//! (`docs/SERVING.md`).

mod util;

use dsz_core::{DeepSzError, ForwardHook};
use dsz_serve::{
    BatchConfig, ModelRegistry, RetryPolicy, ServeError, ServeStats, Server, ServerConfig,
    ShedConfig, ShedPolicy, SubmitOptions,
};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;
use util::{bits, fixture, probe, serial_reference, FEATURES};

fn server(quota: usize, max_batch: usize) -> Server {
    Server::new(
        Arc::new(ModelRegistry::new(quota)),
        BatchConfig { max_batch },
    )
}

#[test]
fn registry_load_get_unload_lifecycle() {
    let (net, container) = fixture(1);
    let reg = ModelRegistry::new(1 << 20);
    assert!(reg.get("m").is_none());
    let entry = reg.load("m", &net, &container).unwrap();
    assert_eq!(entry.id(), "m");
    assert_eq!(entry.layer_count(), 2);
    assert_eq!(entry.input_features(), FEATURES);
    assert_eq!(entry.container_bytes(), container.len());
    assert_eq!(reg.models(), vec!["m".to_string()]);
    assert!(reg.unload("m"));
    assert!(!reg.unload("m"), "second unload is a no-op");
    assert!(reg.get("m").is_none());
    assert_eq!(reg.cache_stats().live_bytes, 0, "unload released the cache");
}

#[test]
fn load_rejects_garbage_container() {
    let (net, _) = fixture(1);
    let reg = ModelRegistry::new(0);
    match reg.load("bad", &net, b"not a container") {
        Err(ServeError::Load(_)) => {}
        other => panic!("expected Load error, got {other:?}"),
    }
    assert!(reg.get("bad").is_none(), "failed load must not register");
}

#[test]
fn served_results_bit_identical_at_every_quota() {
    let (net, container) = fixture(1);
    let input = probe(0xCAFE);
    let want = bits(&serial_reference(&net, &container, &input));
    // Including quota 0: the shared cache must be invisible to results.
    for quota in [0usize, 1000, 3072, 1 << 20] {
        let srv = server(quota, 4);
        srv.registry().load("m", &net, &container).unwrap();
        for pass in 0..3 {
            let out = srv.infer("m", input.clone()).unwrap();
            assert_eq!(
                bits(&out),
                want,
                "quota {quota} pass {pass} diverged from the uncached serial path"
            );
        }
        let hwm = srv.registry().cache_stats().high_water;
        assert!(hwm <= quota, "quota {quota}: cache high-water {hwm} over");
    }
}

#[test]
fn unknown_model_and_shape_mismatch_are_values() {
    let (net, container) = fixture(1);
    let srv = server(1 << 20, 4);
    srv.registry().load("m", &net, &container).unwrap();
    assert_eq!(
        srv.infer("ghost", probe(1)),
        Err(ServeError::UnknownModel("ghost".to_string()))
    );
    assert_eq!(
        srv.infer("m", vec![0.0; FEATURES + 1]),
        Err(ServeError::ShapeMismatch {
            expected: FEATURES,
            got: FEATURES + 1
        })
    );
}

#[test]
fn hot_swap_serves_new_weights_and_purges_old_entries() {
    let (net, container_v1) = fixture(1);
    let (_, container_v2) = fixture(2); // same shapes, different weights
    let input = probe(0xABCD);
    let want_v1 = bits(&serial_reference(&net, &container_v1, &input));
    let want_v2 = bits(&serial_reference(&net, &container_v2, &input));
    assert_ne!(want_v1, want_v2, "fixture seeds must differ");

    let srv = server(1 << 20, 4);
    srv.registry().load("m", &net, &container_v1).unwrap();
    // Warm the cache on generation 1.
    for _ in 0..2 {
        assert_eq!(bits(&srv.infer("m", input.clone()).unwrap()), want_v1);
    }
    srv.registry().load("m", &net, &container_v2).unwrap();
    // Every request after the swap sees generation 2 — a stale cache hit
    // would reproduce want_v1.
    for _ in 0..3 {
        assert_eq!(
            bits(&srv.infer("m", input.clone()).unwrap()),
            want_v2,
            "hot-swapped id served stale weights"
        );
    }
}

#[test]
fn cross_model_cache_sharing_hits_after_warmup() {
    let (net_a, container_a) = fixture(1);
    let (net_b, container_b) = fixture(7);
    let srv = server(1 << 20, 4); // ample: both models fit
    srv.registry().load("a", &net_a, &container_a).unwrap();
    srv.registry().load("b", &net_b, &container_b).unwrap();
    let input = probe(3);
    for _ in 0..4 {
        srv.infer("a", input.clone()).unwrap();
        srv.infer("b", input.clone()).unwrap();
    }
    let s = srv.registry().cache_stats();
    // Pass 1 decodes both models' 2 layers (4 misses); passes 2–4 are
    // pure hits (12) for both tenants out of one cache.
    assert_eq!(s.misses, 4);
    assert_eq!(s.hits, 12);
    assert!(s.hit_rate() > 0.7, "hit rate {} too low", s.hit_rate());
}

#[test]
fn cancel_before_wait_resolves_cancelled_without_executing() {
    let (net, container) = fixture(1);
    let srv = server(1 << 20, 4);
    srv.registry().load("m", &net, &container).unwrap();
    let ticket = srv.submit("m", probe(5)).unwrap();
    ticket.cancel();
    assert_eq!(ticket.wait(), Err(ServeError::Cancelled));
    let stats = srv.stats();
    assert_eq!(stats.cancelled, 1);
    assert_eq!(stats.batches, 0, "a lone cancelled request costs no batch");
    // The server still serves afterwards.
    let out = srv.infer("m", probe(5)).unwrap();
    assert_eq!(
        bits(&out),
        bits(&serial_reference(&net, &container, &probe(5)))
    );
}

#[test]
fn cancel_token_fires_from_another_thread() {
    let (net, container) = fixture(1);
    let srv = server(1 << 20, 4);
    srv.registry().load("m", &net, &container).unwrap();
    let ticket = srv.submit("m", probe(9)).unwrap();
    let token = ticket.cancel_token();
    std::thread::scope(|s| {
        s.spawn(move || token.cancel());
    });
    // The token fired before wait drained (the scope joins first), so the
    // request resolves Cancelled.
    assert_eq!(ticket.wait(), Err(ServeError::Cancelled));
}

#[test]
fn concurrent_streams_match_serial_reference() {
    let (net_a, container_a) = fixture(1);
    let (net_b, container_b) = fixture(7);
    // Tight quota (one large layer + slack): constant cross-model churn.
    let srv = Arc::new(server(4000, 4));
    srv.registry().load("a", &net_a, &container_a).unwrap();
    srv.registry().load("b", &net_b, &container_b).unwrap();
    let inputs: Vec<Vec<f32>> = (0..4).map(|i| probe(0x1000 + i)).collect();
    let want_a: Vec<Vec<u32>> = inputs
        .iter()
        .map(|x| bits(&serial_reference(&net_a, &container_a, x)))
        .collect();
    let want_b: Vec<Vec<u32>> = inputs
        .iter()
        .map(|x| bits(&serial_reference(&net_b, &container_b, x)))
        .collect();
    std::thread::scope(|s| {
        for t in 0..4usize {
            let srv = Arc::clone(&srv);
            let (inputs, want_a, want_b) = (inputs.clone(), want_a.clone(), want_b.clone());
            s.spawn(move || {
                for i in 0..20 {
                    let which = (t + i) % inputs.len();
                    let (id, want) = if (t + i) % 2 == 0 {
                        ("a", &want_a[which])
                    } else {
                        ("b", &want_b[which])
                    };
                    let out = srv.infer(id, inputs[which].clone()).unwrap();
                    assert_eq!(&bits(&out), want, "stream {t} request {i} diverged");
                }
            });
        }
    });
    let stats = srv.stats();
    assert_eq!(stats.completed, 80);
    assert_eq!(stats.failed, 0);
    let cache = srv.registry().cache_stats();
    assert!(cache.high_water <= 4000, "cache ledger exceeded quota");
}

/// Test hook: fails the first `remaining` layer probes with a
/// *transient* fault (the poisoned-spill shape), then passes forever.
#[derive(Debug)]
struct FailFirst {
    remaining: AtomicU32,
}

impl FailFirst {
    fn new(n: u32) -> Arc<Self> {
        Arc::new(Self {
            remaining: AtomicU32::new(n),
        })
    }
}

impl ForwardHook for FailFirst {
    fn before_layer(&self, layer_index: usize) -> Result<(), DeepSzError> {
        let mut cur = self.remaining.load(Ordering::Relaxed);
        while cur > 0 {
            match self.remaining.compare_exchange(
                cur,
                cur - 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    return Err(DeepSzError::Corrupt {
                        layer: format!("fc{layer_index}"),
                        stage: "spill",
                        detail: "injected transient fault".into(),
                    })
                }
                Err(observed) => cur = observed,
            }
        }
        Ok(())
    }
}

#[test]
fn zero_deadline_resolves_deadline_exceeded_without_executing() {
    let (net, container) = fixture(1);
    let srv = server(1 << 20, 4);
    srv.registry().load("m", &net, &container).unwrap();
    let ticket = srv
        .submit_with(
            "m",
            probe(1),
            SubmitOptions {
                deadline: Some(Duration::ZERO),
                retries: 0,
            },
        )
        .unwrap();
    match ticket.wait() {
        Err(ServeError::DeadlineExceeded { elapsed, budget }) => {
            assert_eq!(budget, Duration::ZERO);
            assert!(elapsed >= budget);
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    let stats = srv.stats();
    assert_eq!(stats.deadline_misses, 1);
    assert_eq!(stats.submitted, 1, "a miss is still an admitted request");
    assert_eq!(stats.batches, 0, "dead-on-arrival never costs a forward");
    // The server still serves afterwards.
    assert!(srv.infer("m", probe(2)).is_ok());
}

#[test]
fn reject_new_sheds_arrivals_at_the_depth_limit() {
    let (net, container) = fixture(1);
    let srv = Server::with_config(
        Arc::new(ModelRegistry::new(1 << 20)),
        ServerConfig {
            batch: BatchConfig { max_batch: 4 },
            shed: ShedConfig {
                max_queue_depth: 2,
                policy: ShedPolicy::RejectNew,
            },
            ..ServerConfig::default()
        },
    );
    srv.registry().load("m", &net, &container).unwrap();
    let t1 = srv.submit("m", probe(1)).unwrap();
    let t2 = srv.submit("m", probe(2)).unwrap();
    match srv.submit("m", probe(3)) {
        Err(e @ ServeError::Overloaded { depth, limit }) => {
            assert_eq!((depth, limit), (2, 2));
            assert!(e.transient(), "overload is retryable by nature");
        }
        other => panic!("expected Overloaded, got {other:?}"),
    }
    assert!(t1.wait().is_ok());
    assert!(t2.wait().is_ok());
    let stats = srv.stats();
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.submitted, 2, "a rejected submit never got a ticket");
    assert_eq!(stats.completed, 2);
    let q = srv.queue_stats("m").unwrap();
    assert_eq!(q.depth, 0, "queue drained");
    assert_eq!(q.depth_high_water, 2);
}

#[test]
fn drop_oldest_evicts_the_stalest_request() {
    let (net, container) = fixture(1);
    let srv = Server::with_config(
        Arc::new(ModelRegistry::new(1 << 20)),
        ServerConfig {
            batch: BatchConfig { max_batch: 1 },
            shed: ShedConfig {
                max_queue_depth: 1,
                policy: ShedPolicy::DropOldest,
            },
            ..ServerConfig::default()
        },
    );
    srv.registry().load("m", &net, &container).unwrap();
    let t1 = srv.submit("m", probe(1)).unwrap();
    let t2 = srv.submit("m", probe(2)).unwrap(); // evicts t1
    assert_eq!(
        t1.wait(),
        Err(ServeError::Overloaded { depth: 1, limit: 1 }),
        "the oldest queued request eats the overload"
    );
    assert!(t2.wait().is_ok(), "the fresh request takes the slot");
    let stats = srv.stats();
    assert_eq!(stats.shed, 1);
    assert_eq!(stats.submitted, 2, "both requests were admitted");
    assert_eq!(stats.completed, 1);
}

#[test]
fn transient_faults_retry_to_success_with_zero_backoff() {
    let (net, container) = fixture(1);
    let srv = Server::with_config(
        Arc::new(ModelRegistry::new(1 << 20)),
        ServerConfig {
            batch: BatchConfig { max_batch: 2 },
            retry: RetryPolicy {
                base: Duration::ZERO,
                ..RetryPolicy::default()
            },
            ..ServerConfig::default()
        },
    );
    srv.registry().set_forward_hook(Some(FailFirst::new(2)));
    srv.registry().load("m", &net, &container).unwrap();
    let input = probe(0xFEED);
    let want = bits(&serial_reference(&net, &container, &input));
    let out = srv
        .infer_with(
            "m",
            input.clone(),
            SubmitOptions {
                deadline: None,
                retries: 3,
            },
        )
        .unwrap();
    assert_eq!(bits(&out), want, "retried result must stay bit-identical");
    let stats = srv.stats();
    assert_eq!(stats.retries, 2, "two failed attempts re-enqueued");
    assert_eq!(stats.retried, 1);
    assert_eq!(stats.retry_successes, 1);
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.failed, 0);
}

#[test]
fn transient_failure_without_budget_reports_transient_model_error() {
    let (net, container) = fixture(1);
    let srv = server(1 << 20, 4);
    srv.registry()
        .set_forward_hook(Some(FailFirst::new(u32::MAX)));
    srv.registry().load("m", &net, &container).unwrap();
    match srv.infer("m", probe(1)) {
        Err(
            e @ ServeError::Model {
                transient: true, ..
            },
        ) => assert!(e.transient()),
        other => panic!("expected transient Model error, got {other:?}"),
    }
    let stats = srv.stats();
    assert_eq!(stats.failed, 1);
    assert_eq!(stats.retries, 0, "no budget, no server-side retry");
}

fn counters_leq(a: &ServeStats, b: &ServeStats) -> bool {
    a.submitted <= b.submitted
        && a.completed <= b.completed
        && a.cancelled <= b.cancelled
        && a.failed <= b.failed
        && a.deadline_misses <= b.deadline_misses
        && a.shed <= b.shed
        && a.rejected <= b.rejected
        && a.fast_failed <= b.fast_failed
        && a.retries <= b.retries
        && a.retried <= b.retried
        && a.retry_successes <= b.retry_successes
        && a.batches <= b.batches
        && a.batched_samples <= b.batched_samples
        && a.max_batch_seen <= b.max_batch_seen
}

#[test]
fn serve_stats_are_monotonic_under_concurrent_submitters() {
    let (net, container) = fixture(1);
    let srv = Arc::new(server(1 << 20, 4));
    srv.registry().load("m", &net, &container).unwrap();
    let done = AtomicBool::new(false);
    std::thread::scope(|outer| {
        // Observer: every snapshot must dominate the previous one.
        let srv_obs = Arc::clone(&srv);
        let done = &done;
        outer.spawn(move || {
            let mut prev = ServeStats::default();
            while !done.load(Ordering::Relaxed) {
                let cur = srv_obs.stats();
                assert!(
                    counters_leq(&prev, &cur),
                    "counters went backwards: {prev:?} -> {cur:?}"
                );
                prev = cur;
                std::thread::sleep(Duration::from_micros(200));
            }
        });
        // Submitters run (and join) in an inner scope; only then does
        // the observer stand down.
        std::thread::scope(|s| {
            for t in 0..3u64 {
                let srv = Arc::clone(&srv);
                s.spawn(move || {
                    for i in 0..30u64 {
                        let input = probe(t * 100 + i);
                        if i % 7 == 0 {
                            // Guaranteed deadline miss.
                            let _ = srv.infer_with(
                                "m",
                                input,
                                SubmitOptions {
                                    deadline: Some(Duration::ZERO),
                                    retries: 0,
                                },
                            );
                        } else if i % 5 == 0 {
                            // Cancel racing the drain: either outcome is fine.
                            if let Ok(ticket) = srv.submit("m", input) {
                                ticket.cancel();
                                let _ = ticket.wait();
                            }
                        } else {
                            assert!(srv.infer("m", input).is_ok());
                        }
                    }
                });
            }
        });
        done.store(true, Ordering::Relaxed);
    });
    let stats = srv.stats();
    assert_eq!(
        stats.submitted,
        stats.completed + stats.cancelled + stats.failed + stats.deadline_misses + stats.shed,
        "quiescence invariant: every admitted ticket resolves exactly once"
    );
    assert_eq!(stats.deadline_misses, 15, "3 threads x 5 forced misses");
}
