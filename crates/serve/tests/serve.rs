//! Registry lifecycle, cross-model cache sharing, cancellation, and
//! bit-identity of served results against the uncached serial path
//! (`docs/SERVING.md`).

mod util;

use dsz_serve::{BatchConfig, ModelRegistry, ServeError, Server};
use std::sync::Arc;
use util::{bits, fixture, probe, serial_reference, FEATURES};

fn server(quota: usize, max_batch: usize) -> Server {
    Server::new(
        Arc::new(ModelRegistry::new(quota)),
        BatchConfig { max_batch },
    )
}

#[test]
fn registry_load_get_unload_lifecycle() {
    let (net, container) = fixture(1);
    let reg = ModelRegistry::new(1 << 20);
    assert!(reg.get("m").is_none());
    let entry = reg.load("m", &net, &container).unwrap();
    assert_eq!(entry.id(), "m");
    assert_eq!(entry.layer_count(), 2);
    assert_eq!(entry.input_features(), FEATURES);
    assert_eq!(entry.container_bytes(), container.len());
    assert_eq!(reg.models(), vec!["m".to_string()]);
    assert!(reg.unload("m"));
    assert!(!reg.unload("m"), "second unload is a no-op");
    assert!(reg.get("m").is_none());
    assert_eq!(reg.cache_stats().live_bytes, 0, "unload released the cache");
}

#[test]
fn load_rejects_garbage_container() {
    let (net, _) = fixture(1);
    let reg = ModelRegistry::new(0);
    match reg.load("bad", &net, b"not a container") {
        Err(ServeError::Load(_)) => {}
        other => panic!("expected Load error, got {other:?}"),
    }
    assert!(reg.get("bad").is_none(), "failed load must not register");
}

#[test]
fn served_results_bit_identical_at_every_quota() {
    let (net, container) = fixture(1);
    let input = probe(0xCAFE);
    let want = bits(&serial_reference(&net, &container, &input));
    // Including quota 0: the shared cache must be invisible to results.
    for quota in [0usize, 1000, 3072, 1 << 20] {
        let srv = server(quota, 4);
        srv.registry().load("m", &net, &container).unwrap();
        for pass in 0..3 {
            let out = srv.infer("m", input.clone()).unwrap();
            assert_eq!(
                bits(&out),
                want,
                "quota {quota} pass {pass} diverged from the uncached serial path"
            );
        }
        let hwm = srv.registry().cache_stats().high_water;
        assert!(hwm <= quota, "quota {quota}: cache high-water {hwm} over");
    }
}

#[test]
fn unknown_model_and_shape_mismatch_are_values() {
    let (net, container) = fixture(1);
    let srv = server(1 << 20, 4);
    srv.registry().load("m", &net, &container).unwrap();
    assert_eq!(
        srv.infer("ghost", probe(1)),
        Err(ServeError::UnknownModel("ghost".to_string()))
    );
    assert_eq!(
        srv.infer("m", vec![0.0; FEATURES + 1]),
        Err(ServeError::ShapeMismatch {
            expected: FEATURES,
            got: FEATURES + 1
        })
    );
}

#[test]
fn hot_swap_serves_new_weights_and_purges_old_entries() {
    let (net, container_v1) = fixture(1);
    let (_, container_v2) = fixture(2); // same shapes, different weights
    let input = probe(0xABCD);
    let want_v1 = bits(&serial_reference(&net, &container_v1, &input));
    let want_v2 = bits(&serial_reference(&net, &container_v2, &input));
    assert_ne!(want_v1, want_v2, "fixture seeds must differ");

    let srv = server(1 << 20, 4);
    srv.registry().load("m", &net, &container_v1).unwrap();
    // Warm the cache on generation 1.
    for _ in 0..2 {
        assert_eq!(bits(&srv.infer("m", input.clone()).unwrap()), want_v1);
    }
    srv.registry().load("m", &net, &container_v2).unwrap();
    // Every request after the swap sees generation 2 — a stale cache hit
    // would reproduce want_v1.
    for _ in 0..3 {
        assert_eq!(
            bits(&srv.infer("m", input.clone()).unwrap()),
            want_v2,
            "hot-swapped id served stale weights"
        );
    }
}

#[test]
fn cross_model_cache_sharing_hits_after_warmup() {
    let (net_a, container_a) = fixture(1);
    let (net_b, container_b) = fixture(7);
    let srv = server(1 << 20, 4); // ample: both models fit
    srv.registry().load("a", &net_a, &container_a).unwrap();
    srv.registry().load("b", &net_b, &container_b).unwrap();
    let input = probe(3);
    for _ in 0..4 {
        srv.infer("a", input.clone()).unwrap();
        srv.infer("b", input.clone()).unwrap();
    }
    let s = srv.registry().cache_stats();
    // Pass 1 decodes both models' 2 layers (4 misses); passes 2–4 are
    // pure hits (12) for both tenants out of one cache.
    assert_eq!(s.misses, 4);
    assert_eq!(s.hits, 12);
    assert!(s.hit_rate() > 0.7, "hit rate {} too low", s.hit_rate());
}

#[test]
fn cancel_before_wait_resolves_cancelled_without_executing() {
    let (net, container) = fixture(1);
    let srv = server(1 << 20, 4);
    srv.registry().load("m", &net, &container).unwrap();
    let ticket = srv.submit("m", probe(5)).unwrap();
    ticket.cancel();
    assert_eq!(ticket.wait(), Err(ServeError::Cancelled));
    let stats = srv.stats();
    assert_eq!(stats.cancelled, 1);
    assert_eq!(stats.batches, 0, "a lone cancelled request costs no batch");
    // The server still serves afterwards.
    let out = srv.infer("m", probe(5)).unwrap();
    assert_eq!(
        bits(&out),
        bits(&serial_reference(&net, &container, &probe(5)))
    );
}

#[test]
fn cancel_token_fires_from_another_thread() {
    let (net, container) = fixture(1);
    let srv = server(1 << 20, 4);
    srv.registry().load("m", &net, &container).unwrap();
    let ticket = srv.submit("m", probe(9)).unwrap();
    let token = ticket.cancel_token();
    std::thread::scope(|s| {
        s.spawn(move || token.cancel());
    });
    // The token fired before wait drained (the scope joins first), so the
    // request resolves Cancelled.
    assert_eq!(ticket.wait(), Err(ServeError::Cancelled));
}

#[test]
fn concurrent_streams_match_serial_reference() {
    let (net_a, container_a) = fixture(1);
    let (net_b, container_b) = fixture(7);
    // Tight quota (one large layer + slack): constant cross-model churn.
    let srv = Arc::new(server(4000, 4));
    srv.registry().load("a", &net_a, &container_a).unwrap();
    srv.registry().load("b", &net_b, &container_b).unwrap();
    let inputs: Vec<Vec<f32>> = (0..4).map(|i| probe(0x1000 + i)).collect();
    let want_a: Vec<Vec<u32>> = inputs
        .iter()
        .map(|x| bits(&serial_reference(&net_a, &container_a, x)))
        .collect();
    let want_b: Vec<Vec<u32>> = inputs
        .iter()
        .map(|x| bits(&serial_reference(&net_b, &container_b, x)))
        .collect();
    std::thread::scope(|s| {
        for t in 0..4usize {
            let srv = Arc::clone(&srv);
            let (inputs, want_a, want_b) = (inputs.clone(), want_a.clone(), want_b.clone());
            s.spawn(move || {
                for i in 0..20 {
                    let which = (t + i) % inputs.len();
                    let (id, want) = if (t + i) % 2 == 0 {
                        ("a", &want_a[which])
                    } else {
                        ("b", &want_b[which])
                    };
                    let out = srv.infer(id, inputs[which].clone()).unwrap();
                    assert_eq!(&bits(&out), want, "stream {t} request {i} diverged");
                }
            });
        }
    });
    let stats = srv.stats();
    assert_eq!(stats.completed, 80);
    assert_eq!(stats.failed, 0);
    let cache = srv.registry().cache_stats();
    assert!(cache.high_water <= 4000, "cache ledger exceeded quota");
}
