//! Deterministic chaos campaign over the request path
//! (`docs/ROBUSTNESS.md`, "Serving resilience" — replay instructions).
//!
//! Hundreds of seeded schedules drive the full resilience surface at
//! once — injected permanent/transient decode faults, slow layers,
//! mid-batch cancellations, per-request deadlines, retry budgets,
//! bounded queues under both shed policies, and varying cache quotas —
//! and assert only the invariants that hold under *any* thread
//! interleaving:
//!
//! * no panics anywhere on the request path,
//! * every admitted ticket resolves **exactly once** (the quiescence
//!   identity over the serve counters),
//! * every successful output is **bit-identical** to the fault-free
//!   uncached serial reference,
//! * every deadline miss reports `elapsed ≥ budget` (the overshoot
//!   upper bound — at most one layer of forward progress — is
//!   structural: the abort probe runs between layers),
//! * the shared-cache ledger never exceeds its quota.
//!
//! To replay a failing schedule, re-run this test with the same
//! `DSZ_THREADS`; the per-schedule seed is in the panic message.

mod util;

use dsz_serve::chaos::splitmix64;
use dsz_serve::{
    BatchConfig, ChaosConfig, FaultCounts, FaultPlan, ModelRegistry, RetryPolicy, ServeError,
    ServeStats, Server, ServerConfig, ShedConfig, ShedPolicy, SubmitOptions,
};
use std::sync::Arc;
use std::time::Duration;
use util::{bits, fixture, probe, serial_reference};

const SEEDS_PER_CONFIG: u64 = 120;
const SUBMITTERS: usize = 3;
const REQUESTS_PER_SUBMITTER: usize = 4;

/// Two fault climates: gentle (every band represented, mostly clean)
/// and hostile (roughly a third of layer probes inject something).
fn chaos_configs() -> [ChaosConfig; 2] {
    [
        ChaosConfig {
            permanent_decode_per_mille: 15,
            transient_decode_per_mille: 60,
            slow_layer_per_mille: 40,
            slow_layer_ms: 1,
            cancel_per_mille: 40,
        },
        ChaosConfig {
            permanent_decode_per_mille: 60,
            transient_decode_per_mille: 180,
            slow_layer_per_mille: 80,
            slow_layer_ms: 1,
            cancel_per_mille: 100,
        },
    ]
}

/// One request's script, drawn deterministically from the schedule seed.
struct Req {
    input_idx: usize,
    deadline: Option<Duration>,
    retries: u32,
    register_cancel: bool,
}

#[allow(clippy::too_many_arguments)]
fn run_schedule(
    net: &dsz_nn::Network,
    container: &[u8],
    inputs: &[Vec<f32>],
    refs: &[Vec<u32>],
    cfg: ChaosConfig,
    seed: u64,
) -> (FaultCounts, ServeStats) {
    let mut rng = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(u64::from(cfg.transient_decode_per_mille));
    // Seeded server shape: quota, batch width, queue bound, policies.
    let quota = [0usize, 3000, 1 << 20][(splitmix64(&mut rng) % 3) as usize];
    let max_batch = [1usize, 2, 4, 8][(splitmix64(&mut rng) % 4) as usize];
    let depth = [2usize, 8, usize::MAX][(splitmix64(&mut rng) % 3) as usize];
    let policy = if splitmix64(&mut rng) % 2 == 0 {
        ShedPolicy::RejectNew
    } else {
        ShedPolicy::DropOldest
    };
    let quarantine_after = [0u32, 3][(splitmix64(&mut rng) % 2) as usize];
    let reg = Arc::new(ModelRegistry::new(quota));
    let plan = FaultPlan::new(seed ^ 0xC0A5, cfg);
    reg.set_forward_hook(Some(Arc::clone(&plan) as Arc<dyn dsz_core::ForwardHook>));
    reg.load("m", net, container).unwrap();
    let srv = Arc::new(Server::with_config(
        Arc::clone(&reg),
        ServerConfig {
            batch: BatchConfig { max_batch },
            shed: ShedConfig {
                max_queue_depth: depth,
                policy,
            },
            // Zero backoff: retries re-drain immediately, so schedules
            // stay fast and wall-clock never enters the fault logic.
            retry: RetryPolicy {
                base: Duration::ZERO,
                ..RetryPolicy::default()
            },
            quarantine_after,
        },
    ));
    let scripts: Vec<Vec<Req>> = (0..SUBMITTERS)
        .map(|_| {
            (0..REQUESTS_PER_SUBMITTER)
                .map(|_| Req {
                    input_idx: (splitmix64(&mut rng) as usize) % inputs.len(),
                    deadline: match splitmix64(&mut rng) % 4 {
                        0 => None,
                        1 => Some(Duration::ZERO),
                        2 => Some(Duration::from_millis(1)),
                        _ => Some(Duration::from_secs(5)),
                    },
                    retries: (splitmix64(&mut rng) % 4) as u32,
                    register_cancel: splitmix64(&mut rng) % 3 == 0,
                })
                .collect()
        })
        .collect();
    std::thread::scope(|s| {
        for script in scripts {
            let srv = Arc::clone(&srv);
            let plan = Arc::clone(&plan);
            s.spawn(move || {
                // Submit the whole script first (building real queue
                // depth so shedding and batching both engage), then
                // wait everything.
                let mut waits = Vec::new();
                for req in script {
                    match srv.submit_with(
                        "m",
                        inputs[req.input_idx].clone(),
                        SubmitOptions {
                            deadline: req.deadline,
                            retries: req.retries,
                        },
                    ) {
                        Ok(ticket) => {
                            if req.register_cancel {
                                plan.register(ticket.cancel_token());
                            }
                            waits.push((req, ticket));
                        }
                        Err(ServeError::Overloaded { .. } | ServeError::Quarantined { .. }) => {}
                        Err(other) => {
                            panic!("chaos seed {seed}: unexpected submit error {other:?}")
                        }
                    }
                }
                for (req, ticket) in waits {
                    match ticket.wait() {
                        Ok(out) => assert_eq!(
                            bits(&out),
                            refs[req.input_idx],
                            "chaos seed {seed}: success diverged from serial reference"
                        ),
                        Err(ServeError::DeadlineExceeded { elapsed, budget }) => {
                            assert!(
                                elapsed >= budget,
                                "chaos seed {seed}: miss under budget ({elapsed:?} < {budget:?})"
                            )
                        }
                        Err(
                            ServeError::Cancelled
                            | ServeError::Model { .. }
                            | ServeError::Overloaded { .. },
                        ) => {}
                        Err(other) => {
                            panic!("chaos seed {seed}: unexpected wait error {other:?}")
                        }
                    }
                }
            });
        }
    });
    let stats = srv.stats();
    assert_eq!(
        stats.submitted,
        stats.completed + stats.cancelled + stats.failed + stats.deadline_misses + stats.shed,
        "chaos seed {seed}: a ticket resolved zero or two times ({stats:?})"
    );
    let cache = reg.cache_stats();
    assert!(
        cache.high_water <= quota,
        "chaos seed {seed}: cache ledger {0} over quota {quota}",
        cache.high_water
    );
    (plan.counts(), stats)
}

#[test]
fn chaos_campaign_holds_invariants_across_seeded_schedules() {
    let (net, container) = fixture(1);
    let inputs: Vec<Vec<f32>> = (0..4).map(|i| probe(0x7000 + i)).collect();
    let refs: Vec<Vec<u32>> = inputs
        .iter()
        .map(|x| bits(&serial_reference(&net, &container, x)))
        .collect();
    let mut faults = FaultCounts::default();
    let mut total = ServeStats::default();
    for cfg in chaos_configs() {
        for seed in 0..SEEDS_PER_CONFIG {
            let (c, s) = run_schedule(&net, &container, &inputs, &refs, cfg, seed);
            faults.permanent_decode += c.permanent_decode;
            faults.transient_decode += c.transient_decode;
            faults.slow_layers += c.slow_layers;
            faults.cancels += c.cancels;
            faults.clean += c.clean;
            total.submitted += s.submitted;
            total.completed += s.completed;
            total.cancelled += s.cancelled;
            total.failed += s.failed;
            total.deadline_misses += s.deadline_misses;
            total.shed += s.shed;
            total.rejected += s.rejected;
            total.retries += s.retries;
            total.retry_successes += s.retry_successes;
        }
    }
    // Coverage proof: the campaign genuinely exercised every fault band
    // and every resolution bucket — a quiet pass is not a pass.
    assert!(faults.permanent_decode > 0, "no permanent faults fired");
    assert!(faults.transient_decode > 0, "no transient faults fired");
    assert!(faults.slow_layers > 0, "no slow layers fired");
    assert!(faults.cancels > 0, "no mid-batch cancels fired");
    assert!(faults.clean > 0, "no clean layer probes at all");
    assert!(total.completed > 0, "campaign never succeeded a request");
    assert!(total.failed > 0, "campaign never failed a request");
    assert!(
        total.deadline_misses > 0,
        "campaign never missed a deadline"
    );
    assert!(total.retries > 0, "campaign never retried");
    assert!(
        total.retry_successes > 0,
        "campaign never recovered via retry"
    );
    assert!(total.shed + total.rejected > 0, "campaign never shed load");
}

/// Hot-swap under live traffic: corrupt replacement containers are
/// rejected by the checked load over and over while two threads hammer
/// the id — and every single response comes from the original
/// generation, bit-identical.
#[test]
fn checked_hot_swap_rejection_under_traffic_keeps_serving() {
    let (net, container) = fixture(1);
    let bad = dsz_core::rewrite_layer_data(&container, 0, |data| {
        data.truncate(data.len() / 2);
    })
    .unwrap();
    let reg = Arc::new(ModelRegistry::new(1 << 20));
    let v1 = reg.load_checked("m", &net, &container).unwrap();
    let srv = Arc::new(Server::new(Arc::clone(&reg), BatchConfig { max_batch: 4 }));
    let input = probe(0xD00D);
    let want = bits(&serial_reference(&net, &container, &input));
    std::thread::scope(|s| {
        for _ in 0..2 {
            let srv = Arc::clone(&srv);
            let input = input.clone();
            let want = want.clone();
            s.spawn(move || {
                for _ in 0..40 {
                    assert_eq!(
                        bits(&srv.infer("m", input.clone()).unwrap()),
                        want,
                        "request served by a generation that should not exist"
                    );
                }
            });
        }
        for _ in 0..5 {
            match reg.load_checked("m", &net, &bad) {
                Err(ServeError::Degraded { .. }) => {}
                other => panic!("corrupt swap accepted: {other:?}"),
            }
        }
    });
    assert!(
        Arc::ptr_eq(&reg.get("m").unwrap(), &v1),
        "rejected swaps must leave the original generation installed"
    );
    assert_eq!(bits(&srv.infer("m", input.clone()).unwrap()), want);
}
