//! Degraded-mode loads, safe hot-swap rollback, and serve-time
//! quarantine (`docs/ROBUSTNESS.md`, "Serving resilience").
//!
//! Corruption here is *authentic*: [`dsz_core::rewrite_layer_data`]
//! mutates one record's payload and re-seals the container (fresh
//! record and container checksums), so the damage survives the
//! structural parse and only surfaces when the layer decodes — exactly
//! the failure a bit flip inside a blob produces in the field.

mod util;

use dsz_core::{rewrite_layer_data, DeepSzError, ForwardHook};
use dsz_serve::{BatchConfig, ModelHealth, ModelRegistry, ServeError, Server, ServerConfig};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use util::{bits, fixture, probe, serial_reference};

/// Truncates layer `ordinal`'s data blob to half length and re-seals
/// the container: structurally valid, payload-corrupt.
fn corrupt_layer(container: &[u8], ordinal: usize) -> Vec<u8> {
    rewrite_layer_data(container, ordinal, |data| {
        data.truncate(data.len() / 2);
    })
    .unwrap()
}

/// Re-armable hook injecting *permanent* decode faults (the corrupt
/// record shape) for the next `remaining` layer probes.
#[derive(Debug, Default)]
struct ArmedFaults {
    remaining: AtomicU32,
}

impl ArmedFaults {
    fn arm(&self, n: u32) {
        self.remaining.store(n, Ordering::Relaxed);
    }
}

impl ForwardHook for ArmedFaults {
    fn before_layer(&self, layer_index: usize) -> Result<(), DeepSzError> {
        let mut cur = self.remaining.load(Ordering::Relaxed);
        while cur > 0 {
            match self.remaining.compare_exchange(
                cur,
                cur - 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    return Err(DeepSzError::Corrupt {
                        layer: format!("fc{layer_index}"),
                        stage: "lossy-data",
                        detail: "injected permanent fault".into(),
                    })
                }
                Err(observed) => cur = observed,
            }
        }
        Ok(())
    }
}

#[test]
fn load_degraded_attributes_bad_layers_and_fails_fast() {
    let (net, container) = fixture(1);
    let bad = corrupt_layer(&container, 1);
    let reg = Arc::new(ModelRegistry::new(1 << 20));
    let entry = reg.load_degraded("m", &net, &bad).unwrap();
    match entry.health() {
        ModelHealth::Degraded { bad_layers } => {
            assert_eq!(bad_layers, &["fc1".to_string()], "wrong attribution")
        }
        h => panic!("expected Degraded health, got {h:?}"),
    }
    let srv = Server::new(Arc::clone(&reg), BatchConfig::default());
    match srv.submit("m", probe(1)) {
        Err(ServeError::Degraded { model, bad_layers }) => {
            assert_eq!(model, "m");
            assert_eq!(bad_layers, vec!["fc1".to_string()]);
        }
        other => panic!("expected fast Degraded failure, got {other:?}"),
    }
    let stats = srv.stats();
    assert_eq!(stats.fast_failed, 1);
    assert_eq!(stats.submitted, 0, "fast-fail never mints a ticket");
    assert_eq!(stats.batches, 0, "degraded model never burns a forward");
}

#[test]
fn degraded_neighbor_leaves_healthy_traffic_unaffected() {
    let (net_a, container_a) = fixture(1);
    let (net_b, container_b) = fixture(7);
    let reg = Arc::new(ModelRegistry::new(1 << 20));
    reg.load("a", &net_a, &container_a).unwrap();
    reg.load_degraded("b", &net_b, &corrupt_layer(&container_b, 0))
        .unwrap();
    let srv = Server::new(Arc::clone(&reg), BatchConfig::default());
    let input = probe(0xBEEF);
    let want = bits(&serial_reference(&net_a, &container_a, &input));
    for _ in 0..3 {
        assert!(
            matches!(
                srv.submit("b", input.clone()),
                Err(ServeError::Degraded { .. })
            ),
            "degraded tenant must fail fast"
        );
        assert_eq!(
            bits(&srv.infer("a", input.clone()).unwrap()),
            want,
            "healthy tenant degraded by its neighbor"
        );
    }
}

#[test]
fn load_checked_accepts_clean_containers() {
    let (net, container) = fixture(1);
    let reg = ModelRegistry::new(1 << 20);
    let entry = reg.load_checked("m", &net, &container).unwrap();
    assert_eq!(entry.health(), &ModelHealth::Healthy);
}

#[test]
fn failed_checked_hot_swap_leaves_previous_generation_serving() {
    let (net, container) = fixture(1);
    let (net2, container2) = fixture(2);
    let reg = Arc::new(ModelRegistry::new(1 << 20));
    let v1 = reg.load_checked("m", &net, &container).unwrap();
    let bad = corrupt_layer(&container2, 0);
    match reg.load_checked("m", &net2, &bad) {
        Err(ServeError::Degraded { bad_layers, .. }) => {
            assert_eq!(bad_layers, vec!["fc0".to_string()]);
        }
        other => panic!("corrupt swap must be rejected, got {other:?}"),
    }
    let cur = reg.get("m").unwrap();
    assert!(
        Arc::ptr_eq(&cur, &v1),
        "failed hot-swap must leave the previous generation installed"
    );
    let srv = Server::new(Arc::clone(&reg), BatchConfig::default());
    let input = probe(0xD0);
    assert_eq!(
        bits(&srv.infer("m", input.clone()).unwrap()),
        bits(&serial_reference(&net, &container, &input)),
        "previous generation no longer serves correct bits"
    );
}

#[test]
fn repeated_integrity_failures_quarantine_the_generation() {
    let (net, container) = fixture(1);
    let reg = Arc::new(ModelRegistry::new(1 << 20));
    let hook = Arc::new(ArmedFaults::default());
    hook.arm(u32::MAX);
    reg.set_forward_hook(Some(Arc::clone(&hook) as Arc<dyn ForwardHook>));
    reg.load("m", &net, &container).unwrap();
    let srv = Server::with_config(
        Arc::clone(&reg),
        ServerConfig {
            quarantine_after: 2,
            ..ServerConfig::default()
        },
    );
    for k in 0..2u64 {
        match srv.infer("m", probe(k)) {
            Err(ServeError::Model {
                transient: false, ..
            }) => {}
            other => panic!("expected permanent Model error, got {other:?}"),
        }
    }
    let entry = reg.get("m").unwrap();
    assert!(entry.is_quarantined(), "threshold reached, not quarantined");
    match srv.infer("m", probe(9)) {
        Err(ServeError::Quarantined { model }) => assert_eq!(model, "m"),
        other => panic!("expected fast Quarantined failure, got {other:?}"),
    }
    let stats = srv.stats();
    assert_eq!(stats.failed, 2);
    assert_eq!(stats.fast_failed, 1);
    // Reloading the id mints a fresh generation with a clean record.
    reg.set_forward_hook(None);
    reg.load("m", &net, &container).unwrap();
    let input = probe(3);
    assert_eq!(
        bits(&srv.infer("m", input.clone()).unwrap()),
        bits(&serial_reference(&net, &container, &input)),
        "reloaded generation must serve again"
    );
}

#[test]
fn a_successful_batch_resets_the_integrity_streak() {
    let (net, container) = fixture(1);
    let reg = Arc::new(ModelRegistry::new(1 << 20));
    let hook = Arc::new(ArmedFaults::default());
    reg.set_forward_hook(Some(Arc::clone(&hook) as Arc<dyn ForwardHook>));
    reg.load("m", &net, &container).unwrap();
    let entry = reg.get("m").unwrap();
    let srv = Server::with_config(
        Arc::clone(&reg),
        ServerConfig {
            quarantine_after: 2,
            ..ServerConfig::default()
        },
    );
    hook.arm(1);
    assert!(srv.infer("m", probe(1)).is_err());
    assert_eq!(entry.integrity_failures(), 1);
    // A clean pass resets the streak...
    assert!(srv.infer("m", probe(2)).is_ok());
    assert_eq!(entry.integrity_failures(), 0);
    // ...so a later isolated failure does not cross the threshold.
    hook.arm(1);
    assert!(srv.infer("m", probe(3)).is_err());
    assert_eq!(entry.integrity_failures(), 1);
    assert!(
        !entry.is_quarantined(),
        "isolated failures separated by successes must not quarantine"
    );
}
