//! Deterministic chaos harness for the request path
//! (`docs/ROBUSTNESS.md`, "Serving resilience" — replay instructions).
//!
//! PR 6 proved the *container* path panic-free with a seeded
//! `Corruptor` mutating bytes; this module applies the same philosophy
//! to the *serving* path, where the interesting failures are not byte
//! flips but decode faults, slow layers, and cancellations landing
//! mid-batch. A [`FaultPlan`] is a seeded SplitMix64 stream attached to
//! every loaded model's forward pass through the
//! [`ForwardHook`](dsz_core::ForwardHook) probe (one draw per fc
//! layer): each draw lands in a per-mille band of the [`ChaosConfig`]
//! and injects
//!
//! * a **permanent decode fault** — `Corrupt` at stage `"lossy-data"`,
//!   the shape of a genuinely bad record; never retried,
//! * a **transient decode fault** — `Corrupt` at stage `"spill"`, the
//!   shape of a poisoned spill read; eligible for server-side retry,
//! * a **slow layer** — a bounded sleep, standing in for a cold page or
//!   an oversubscribed core; what deadlines exist to absorb,
//! * a **mid-batch cancellation** — fires one of the
//!   [`CancelToken`]s registered with the plan, from *inside* a forward
//!   pass, the worst possible moment.
//!
//! # Determinism and replay
//!
//! The draw *sequence* is fully determined by the seed. Which forward
//! call consumes which draw depends on thread interleaving, so a
//! multi-threaded schedule is seed-deterministic in *fault mix*, not in
//! per-request assignment — the chaos campaign therefore asserts only
//! interleaving-independent invariants (no panics, exactly-once
//! resolution, bit-identical successes, ledger bounds). To replay a
//! failing schedule, re-run its test binary filtered to the campaign
//! test with the same `DSZ_THREADS`; the per-schedule seed is printed
//! in the panic message.

use crate::batch::CancelToken;
use dsz_core::{DeepSzError, ForwardHook};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// SplitMix64 — the same constants as `dsz_datagen`'s `Corruptor`
/// (Steele et al.), reimplemented here because `dsz_datagen` is a
/// dev-dependency of this crate. Advances `state` and returns the next
/// draw.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Per-mille fault rates drawn once per fc layer, per forward pass.
/// Bands are cumulative and checked in field order; their sum should
/// stay ≤ 1000 (the remainder is the no-fault band).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosConfig {
    /// ‰ of layer probes that inject a permanent decode fault
    /// (`Corrupt` at `"lossy-data"`).
    pub permanent_decode_per_mille: u16,
    /// ‰ of layer probes that inject a transient decode fault
    /// (`Corrupt` at `"spill"` — the retryable class).
    pub transient_decode_per_mille: u16,
    /// ‰ of layer probes that sleep before the layer runs.
    pub slow_layer_per_mille: u16,
    /// Upper bound on one injected sleep, in milliseconds (the actual
    /// sleep is seeded-jittered in `[ms/2, ms]`).
    pub slow_layer_ms: u64,
    /// ‰ of layer probes that fire one registered [`CancelToken`]
    /// (oldest first) — a caller hanging up mid-batch.
    pub cancel_per_mille: u16,
}

/// What a [`FaultPlan`] actually injected (monotonic counters) — the
/// campaign's coverage proof that faults really fired.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Permanent decode faults injected.
    pub permanent_decode: u64,
    /// Transient decode faults injected.
    pub transient_decode: u64,
    /// Slow-layer sleeps injected.
    pub slow_layers: u64,
    /// Cancel tokens fired mid-forward.
    pub cancels: u64,
    /// Layer probes that drew the no-fault band.
    pub clean: u64,
}

#[derive(Debug, Default)]
struct PlanState {
    rng: u64,
    /// Tokens eligible for a mid-batch cancellation, oldest first.
    tokens: Vec<CancelToken>,
}

/// A seeded fault schedule implementing
/// [`ForwardHook`](dsz_core::ForwardHook). Attach it to a registry with
/// [`ModelRegistry::set_forward_hook`](crate::ModelRegistry::set_forward_hook)
/// *before* loading models; every subsequent forward pass consumes
/// draws from the plan's stream.
#[derive(Debug)]
pub struct FaultPlan {
    config: ChaosConfig,
    state: Mutex<PlanState>,
    permanent: AtomicU64,
    transient: AtomicU64,
    slow: AtomicU64,
    cancels: AtomicU64,
    clean: AtomicU64,
}

impl FaultPlan {
    /// A plan drawing from `seed` with the given fault bands.
    pub fn new(seed: u64, config: ChaosConfig) -> Arc<Self> {
        Arc::new(Self {
            config,
            state: Mutex::new(PlanState {
                rng: seed,
                tokens: Vec::new(),
            }),
            permanent: AtomicU64::new(0),
            transient: AtomicU64::new(0),
            slow: AtomicU64::new(0),
            cancels: AtomicU64::new(0),
            clean: AtomicU64::new(0),
        })
    }

    /// Registers a request's token as a mid-batch cancellation target.
    pub fn register(&self, token: CancelToken) {
        self.lock().tokens.push(token);
    }

    /// Snapshot of what the plan has injected so far.
    pub fn counts(&self) -> FaultCounts {
        FaultCounts {
            permanent_decode: self.permanent.load(Ordering::Relaxed),
            transient_decode: self.transient.load(Ordering::Relaxed),
            slow_layers: self.slow.load(Ordering::Relaxed),
            cancels: self.cancels.load(Ordering::Relaxed),
            clean: self.clean.load(Ordering::Relaxed),
        }
    }

    fn lock(&self) -> MutexGuard<'_, PlanState> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }
}

impl ForwardHook for FaultPlan {
    fn before_layer(&self, layer_index: usize) -> Result<(), DeepSzError> {
        let c = self.config;
        // Two draws per probe — band selection and intra-band jitter —
        // taken under one lock acquisition so concurrent forwards
        // interleave at probe granularity, never mid-probe.
        let (draw, jitter) = {
            let mut st = self.lock();
            (splitmix64(&mut st.rng) % 1000, splitmix64(&mut st.rng))
        };
        let mut band = u64::from(c.permanent_decode_per_mille);
        if draw < band {
            self.permanent.fetch_add(1, Ordering::Relaxed);
            return Err(DeepSzError::Corrupt {
                layer: format!("<chaos layer {layer_index}>"),
                stage: "lossy-data",
                detail: "injected permanent decode fault".into(),
            });
        }
        band += u64::from(c.transient_decode_per_mille);
        if draw < band {
            self.transient.fetch_add(1, Ordering::Relaxed);
            return Err(DeepSzError::Corrupt {
                layer: format!("<chaos layer {layer_index}>"),
                stage: "spill",
                detail: "injected transient decode fault".into(),
            });
        }
        band += u64::from(c.slow_layer_per_mille);
        if draw < band {
            self.slow.fetch_add(1, Ordering::Relaxed);
            let ms = c.slow_layer_ms.max(1);
            // Seeded jitter in [ms/2, ms] — bounded, so deadline
            // overshoot stays bounded by one layer's worth of sleep.
            let micros = ms * 500 + jitter % (ms * 500 + 1);
            std::thread::sleep(std::time::Duration::from_micros(micros));
            return Ok(());
        }
        band += u64::from(c.cancel_per_mille);
        if draw < band {
            let victim = {
                let mut st = self.lock();
                if st.tokens.is_empty() {
                    None
                } else {
                    Some(st.tokens.remove(0))
                }
            };
            if let Some(t) = victim {
                self.cancels.fetch_add(1, Ordering::Relaxed);
                t.cancel();
            }
            return Ok(());
        }
        self.clean.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix64_matches_reference_stream() {
        // First outputs for seed 0 (Steele et al. reference values).
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xe220_a839_7b1d_cdaf);
        assert_eq!(splitmix64(&mut s), 0x6e78_9e6a_a1b9_65f4);
    }

    #[test]
    fn plan_is_seed_deterministic() {
        let cfg = ChaosConfig {
            permanent_decode_per_mille: 100,
            transient_decode_per_mille: 200,
            slow_layer_per_mille: 0,
            slow_layer_ms: 0,
            cancel_per_mille: 0,
        };
        let outcomes = |seed: u64| -> Vec<bool> {
            let plan = FaultPlan::new(seed, cfg);
            (0..64).map(|i| plan.before_layer(i).is_err()).collect()
        };
        assert_eq!(outcomes(42), outcomes(42));
        assert_ne!(outcomes(42), outcomes(43), "distinct seeds diverge");
    }

    #[test]
    fn injected_faults_have_the_right_classification() {
        let always_permanent = FaultPlan::new(
            1,
            ChaosConfig {
                permanent_decode_per_mille: 1000,
                ..ChaosConfig::default()
            },
        );
        let e = always_permanent.before_layer(0).unwrap_err();
        assert!(e.permanent());
        let always_transient = FaultPlan::new(
            1,
            ChaosConfig {
                transient_decode_per_mille: 1000,
                ..ChaosConfig::default()
            },
        );
        let e = always_transient.before_layer(0).unwrap_err();
        assert!(e.transient());
        assert_eq!(always_transient.counts().transient_decode, 1);
    }

    #[test]
    fn cancel_band_fires_registered_tokens_oldest_first() {
        let plan = FaultPlan::new(
            7,
            ChaosConfig {
                cancel_per_mille: 1000,
                ..ChaosConfig::default()
            },
        );
        let (a, b) = (CancelToken::new(), CancelToken::new());
        plan.register(a.clone());
        plan.register(b.clone());
        assert!(plan.before_layer(0).is_ok());
        assert!(a.is_cancelled() && !b.is_cancelled());
        assert!(plan.before_layer(1).is_ok());
        assert!(b.is_cancelled());
        // No tokens left: the band is a no-op, never an error.
        assert!(plan.before_layer(2).is_ok());
        assert_eq!(plan.counts().cancels, 2);
    }
}
