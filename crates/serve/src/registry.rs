//! Model registry: id → loaded compressed model, loaded once, served
//! many times (`docs/SERVING.md`).
//!
//! Loading validates the container twice on purpose: a cheap
//! [`SeekableContainer`] open checks the structural skeleton (footer
//! index, record bounds) in O(layers), then [`CompressedFcModel::new`]
//! performs the one full integrity parse — the right posture for
//! untrusted uploads. After that, every request reuses the parsed model:
//! **zero container re-parse on the request path**.
//!
//! Each loaded generation takes a fresh [`dsz_core::CacheHandle`] from the shared
//! decoded-layer cache, so hot-swapping an id can never serve the old
//! generation's weights: the old handle's entries are purged eagerly and
//! its never-reused model id makes stale hits impossible even if purge
//! raced a lookup.

use dsz_core::{
    CacheStats, CompressedFcModel, CompressedModel, DeepSzError, SeekableContainer,
    SharedLayerCache,
};
use dsz_nn::Network;
use dsz_tensor::VolShape;
use std::collections::HashMap;
use std::sync::{Arc, RwLock};

use crate::batch::ServeError;

/// One loaded model generation. Immutable after load; requests share it
/// by `Arc`, so an unload or hot-swap never invalidates in-flight work —
/// the old generation simply drains and drops.
#[derive(Debug)]
pub struct ModelEntry {
    id: String,
    model: CompressedFcModel,
    input_shape: VolShape,
    layer_count: usize,
    container_bytes: usize,
}

impl ModelEntry {
    /// The registry id this entry was loaded under.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The parsed streaming model (shared-cache handle attached).
    pub fn model(&self) -> &CompressedFcModel {
        &self.model
    }

    /// Per-sample input shape the model expects.
    pub fn input_shape(&self) -> VolShape {
        self.input_shape
    }

    /// Flat per-sample input length (`input_shape().len()`).
    pub fn input_features(&self) -> usize {
        self.input_shape.len()
    }

    /// Compressed fc layers in the container.
    pub fn layer_count(&self) -> usize {
        self.layer_count
    }

    /// Size of the container this generation was loaded from.
    pub fn container_bytes(&self) -> usize {
        self.container_bytes
    }

    fn purge_cache(&self) {
        if let Some(h) = self.model.shared_cache() {
            h.purge();
        }
    }
}

/// Registry of loaded models sharing one decoded-layer cache.
#[derive(Debug)]
pub struct ModelRegistry {
    cache: Arc<SharedLayerCache>,
    inner: RwLock<HashMap<String, Arc<ModelEntry>>>,
}

impl ModelRegistry {
    /// A registry whose tenants share `cache_quota_bytes` of decoded
    /// layers (see [`SharedLayerCache`] for the quota contract; 0 means
    /// every request decodes uncached).
    pub fn new(cache_quota_bytes: usize) -> Self {
        Self {
            cache: SharedLayerCache::new(cache_quota_bytes),
            inner: RwLock::new(HashMap::new()),
        }
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, HashMap<String, Arc<ModelEntry>>> {
        self.inner.read().unwrap_or_else(|p| p.into_inner())
    }

    fn write(&self) -> std::sync::RwLockWriteGuard<'_, HashMap<String, Arc<ModelEntry>>> {
        self.inner.write().unwrap_or_else(|p| p.into_inner())
    }

    /// Loads (or hot-swaps) `id` from DSZM container bytes. `net` is the
    /// network skeleton the container compresses (fc weights are
    /// discarded; shapes are cross-checked against the records). On
    /// hot-swap the previous generation's cache entries are purged; its
    /// in-flight requests finish on their own `Arc`.
    pub fn load(
        &self,
        id: impl Into<String>,
        net: &Network,
        container: &[u8],
    ) -> Result<Arc<ModelEntry>, ServeError> {
        let id = id.into();
        // Structural skeleton first (cheap, O(layers))...
        let seek = SeekableContainer::open_slice(container)
            .map_err(|e| ServeError::Load(format!("{id}: {e}")))?;
        let layer_count = seek.layer_count();
        // ...then the one-time full integrity parse.
        let parsed = CompressedFcModel::new(
            net,
            &CompressedModel {
                bytes: container.to_vec(),
            },
        )
        .map_err(|e: DeepSzError| ServeError::Load(format!("{id}: {e}")))?;
        let entry = Arc::new(ModelEntry {
            id: id.clone(),
            model: parsed.with_shared_cache(self.cache.handle()),
            input_shape: net.input_shape,
            layer_count,
            container_bytes: container.len(),
        });
        let old = self.write().insert(id, Arc::clone(&entry));
        if let Some(old) = old {
            old.purge_cache();
        }
        Ok(entry)
    }

    /// Removes `id`, purging its cache entries. Returns whether it was
    /// loaded. In-flight requests holding the entry's `Arc` finish
    /// normally (their layers simply re-decode uncached from now on).
    pub fn unload(&self, id: &str) -> bool {
        let old = self.write().remove(id);
        match old {
            Some(e) => {
                e.purge_cache();
                true
            }
            None => false,
        }
    }

    /// The loaded entry for `id`, if any.
    pub fn get(&self, id: &str) -> Option<Arc<ModelEntry>> {
        self.read().get(id).cloned()
    }

    /// Loaded model ids, sorted (diagnostics).
    pub fn models(&self) -> Vec<String> {
        let mut ids: Vec<String> = self.read().keys().cloned().collect();
        ids.sort();
        ids
    }

    /// The shared decoded-layer cache.
    pub fn cache(&self) -> &Arc<SharedLayerCache> {
        &self.cache
    }

    /// Snapshot of the shared cache's counters — the hit-rate source for
    /// `BENCH_serve.json`.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }
}
