//! Model registry: id → loaded compressed model, loaded once, served
//! many times (`docs/SERVING.md`).
//!
//! Loading validates the container twice on purpose: a cheap
//! [`SeekableContainer`] open checks the structural skeleton (footer
//! index, record bounds) in O(layers), then [`CompressedFcModel::new`]
//! performs the one full integrity parse — the right posture for
//! untrusted uploads. After that, every request reuses the parsed model:
//! **zero container re-parse on the request path**.
//!
//! Each loaded generation takes a fresh [`dsz_core::CacheHandle`] from the shared
//! decoded-layer cache, so hot-swapping an id can never serve the old
//! generation's weights: the old handle's entries are purged eagerly and
//! its never-reused model id makes stale hits impossible even if purge
//! raced a lookup.
//!
//! # Health, degraded mode, quarantine (`docs/ROBUSTNESS.md`)
//!
//! The structural parse cannot see *payload* corruption (a flipped bit
//! inside a record's blob only surfaces when that layer decodes). Three
//! load flavors handle that spectrum:
//!
//! * [`ModelRegistry::load`] — parse-only, the fast path for trusted
//!   containers. Health is [`ModelHealth::Healthy`]; payload corruption,
//!   if any, surfaces on the request path and feeds the quarantine
//!   counter.
//! * [`ModelRegistry::load_checked`] — additionally *decodes every
//!   layer* under [`DecodePolicy::ReportBadLayers`] before installing.
//!   Any bad layer rejects the load with full attribution and **leaves
//!   the previous generation serving** — the safe hot-swap.
//! * [`ModelRegistry::load_degraded`] — same probe, but a model with bad
//!   layers installs anyway in [`ModelHealth::Degraded`] state: every
//!   request fails fast with the bad-layer list instead of burning a
//!   forward pass to rediscover it, and *other* models are unaffected.
//!
//! At serve time, repeated permanent integrity failures quarantine a
//! generation (see [`ServerConfig::quarantine_after`](crate::ServerConfig));
//! the flags live on the [`ModelEntry`] so they die with the generation —
//! reloading the id starts clean.

use dsz_core::{
    CacheStats, CompressedFcModel, CompressedModel, DecodePolicy, DeepSzError, ForwardHook,
    SeekableContainer, SharedLayerCache,
};
use dsz_nn::Network;
use dsz_tensor::VolShape;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use crate::batch::ServeError;

/// Decode health of a loaded generation, fixed at load time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelHealth {
    /// No known-bad layers (either unprobed — [`ModelRegistry::load`] —
    /// or probed clean).
    Healthy,
    /// The probe found corrupt records; requests fail fast with
    /// [`ServeError::Degraded`] carrying this attribution.
    Degraded {
        /// Names of the layers whose records failed to decode.
        bad_layers: Vec<String>,
    },
}

/// One loaded model generation. Immutable after load (health is fixed;
/// only the quarantine flag and its failure counter mutate); requests
/// share it by `Arc`, so an unload or hot-swap never invalidates
/// in-flight work — the old generation simply drains and drops.
#[derive(Debug)]
pub struct ModelEntry {
    id: String,
    model: CompressedFcModel,
    input_shape: VolShape,
    layer_count: usize,
    container_bytes: usize,
    health: ModelHealth,
    quarantined: AtomicBool,
    integrity_failures: AtomicU32,
}

impl ModelEntry {
    /// The registry id this entry was loaded under.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The parsed streaming model (shared-cache handle attached).
    pub fn model(&self) -> &CompressedFcModel {
        &self.model
    }

    /// Per-sample input shape the model expects.
    pub fn input_shape(&self) -> VolShape {
        self.input_shape
    }

    /// Flat per-sample input length (`input_shape().len()`).
    pub fn input_features(&self) -> usize {
        self.input_shape.len()
    }

    /// Compressed fc layers in the container.
    pub fn layer_count(&self) -> usize {
        self.layer_count
    }

    /// Size of the container this generation was loaded from.
    pub fn container_bytes(&self) -> usize {
        self.container_bytes
    }

    /// Decode health fixed at load time.
    pub fn health(&self) -> &ModelHealth {
        &self.health
    }

    /// Whether serve-time integrity failures quarantined this
    /// generation. Sticky until the id is reloaded.
    pub fn is_quarantined(&self) -> bool {
        self.quarantined.load(Ordering::Relaxed)
    }

    /// Consecutive permanent integrity failures observed at serve time
    /// (resets on any successful batch).
    pub fn integrity_failures(&self) -> u32 {
        self.integrity_failures.load(Ordering::Relaxed)
    }

    /// Counts one permanent integrity failure; returns the new count.
    pub(crate) fn record_integrity_failure(&self) -> u32 {
        self.integrity_failures.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Marks the generation quarantined (sticky).
    pub(crate) fn quarantine(&self) {
        self.quarantined.store(true, Ordering::Relaxed);
    }

    /// A successful batch: the failure streak resets.
    pub(crate) fn note_success(&self) {
        self.integrity_failures.store(0, Ordering::Relaxed);
    }

    fn purge_cache(&self) {
        if let Some(h) = self.model.shared_cache() {
            h.purge();
        }
    }
}

/// How a load call probes payload integrity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProbeMode {
    /// Structural parse only.
    None,
    /// Full-decode probe; bad layers reject the load (previous
    /// generation keeps serving).
    RejectBad,
    /// Full-decode probe; bad layers install a degraded generation.
    Tolerate,
}

/// Registry of loaded models sharing one decoded-layer cache.
#[derive(Debug)]
pub struct ModelRegistry {
    cache: Arc<SharedLayerCache>,
    inner: RwLock<HashMap<String, Arc<ModelEntry>>>,
    hook: Mutex<Option<Arc<dyn ForwardHook>>>,
}

impl ModelRegistry {
    /// A registry whose tenants share `cache_quota_bytes` of decoded
    /// layers (see [`SharedLayerCache`] for the quota contract; 0 means
    /// every request decodes uncached).
    pub fn new(cache_quota_bytes: usize) -> Self {
        Self {
            cache: SharedLayerCache::new(cache_quota_bytes),
            inner: RwLock::new(HashMap::new()),
            hook: Mutex::new(None),
        }
    }

    /// Installs (or clears) a [`ForwardHook`] that every *subsequently
    /// loaded* generation probes once per fc layer on its forward path.
    /// Test-only plumbing in spirit — the chaos harness's
    /// [`FaultPlan`](crate::FaultPlan) attaches here — but safe in
    /// production (a `None` hook costs one branch per layer). Load-time
    /// integrity probes run hook-free, so an injected fault can never
    /// misclassify a healthy container.
    pub fn set_forward_hook(&self, hook: Option<Arc<dyn ForwardHook>>) {
        *self.hook.lock().unwrap_or_else(|p| p.into_inner()) = hook;
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, HashMap<String, Arc<ModelEntry>>> {
        self.inner.read().unwrap_or_else(|p| p.into_inner())
    }

    fn write(&self) -> std::sync::RwLockWriteGuard<'_, HashMap<String, Arc<ModelEntry>>> {
        self.inner.write().unwrap_or_else(|p| p.into_inner())
    }

    /// Loads (or hot-swaps) `id` from DSZM container bytes. `net` is the
    /// network skeleton the container compresses (fc weights are
    /// discarded; shapes are cross-checked against the records). On
    /// hot-swap the previous generation's cache entries are purged; its
    /// in-flight requests finish on their own `Arc`. Structural parse
    /// only — payload corruption surfaces at serve time (see
    /// [`Self::load_checked`] for the paranoid flavor).
    pub fn load(
        &self,
        id: impl Into<String>,
        net: &Network,
        container: &[u8],
    ) -> Result<Arc<ModelEntry>, ServeError> {
        self.load_inner(id.into(), net, container, ProbeMode::None)
    }

    /// [`Self::load`] plus a full-decode integrity probe: every layer is
    /// decoded once (under [`DecodePolicy::ReportBadLayers`], so *all*
    /// failures are gathered in one pass) before the generation
    /// installs. Any bad layer returns [`ServeError::Degraded`] with the
    /// attribution and changes nothing — **the previous generation, if
    /// any, keeps serving**. O(model) work at load time; the probe's
    /// decodes do not touch the shared cache.
    pub fn load_checked(
        &self,
        id: impl Into<String>,
        net: &Network,
        container: &[u8],
    ) -> Result<Arc<ModelEntry>, ServeError> {
        self.load_inner(id.into(), net, container, ProbeMode::RejectBad)
    }

    /// [`Self::load_checked`], except a container with bad layers still
    /// installs — in [`ModelHealth::Degraded`] state, where every submit
    /// fails fast with the bad-layer list. Use when a known-damaged
    /// model should *hold its id* (answering "what is wrong with it"
    /// cheaply) without affecting any other tenant.
    pub fn load_degraded(
        &self,
        id: impl Into<String>,
        net: &Network,
        container: &[u8],
    ) -> Result<Arc<ModelEntry>, ServeError> {
        self.load_inner(id.into(), net, container, ProbeMode::Tolerate)
    }

    fn load_inner(
        &self,
        id: String,
        net: &Network,
        container: &[u8],
        probe: ProbeMode,
    ) -> Result<Arc<ModelEntry>, ServeError> {
        // Structural skeleton first (cheap, O(layers))...
        let seek = SeekableContainer::open_slice(container)
            .map_err(|e| ServeError::Load(format!("{id}: {e}")))?;
        let layer_count = seek.layer_count();
        // ...then the one-time full integrity parse.
        let parsed = CompressedFcModel::new(
            net,
            &CompressedModel {
                bytes: container.to_vec(),
            },
        )
        .map_err(|e: DeepSzError| ServeError::Load(format!("{id}: {e}")))?;
        // Payload probe, if asked for: decode every layer, hook-free and
        // cache-free (`parsed` has neither attached yet).
        let health = if probe == ProbeMode::None {
            ModelHealth::Healthy
        } else {
            match parsed
                .clone()
                .with_decode_policy(DecodePolicy::ReportBadLayers)
                .materialize()
            {
                Ok(_) => ModelHealth::Healthy,
                Err(e) => {
                    let bad_layers = bad_layer_names(&e);
                    if probe == ProbeMode::RejectBad {
                        return Err(ServeError::Degraded {
                            model: id,
                            bad_layers,
                        });
                    }
                    ModelHealth::Degraded { bad_layers }
                }
            }
        };
        let hook = self.hook.lock().unwrap_or_else(|p| p.into_inner()).clone();
        let entry = Arc::new(ModelEntry {
            id: id.clone(),
            model: parsed
                .with_shared_cache(self.cache.handle())
                .with_forward_hook(hook),
            input_shape: net.input_shape,
            layer_count,
            container_bytes: container.len(),
            health,
            quarantined: AtomicBool::new(false),
            integrity_failures: AtomicU32::new(0),
        });
        let old = self.write().insert(id, Arc::clone(&entry));
        if let Some(old) = old {
            old.purge_cache();
        }
        Ok(entry)
    }

    /// Removes `id`, purging its cache entries. Returns whether it was
    /// loaded. In-flight requests holding the entry's `Arc` finish
    /// normally (their layers simply re-decode uncached from now on).
    pub fn unload(&self, id: &str) -> bool {
        let old = self.write().remove(id);
        match old {
            Some(e) => {
                e.purge_cache();
                true
            }
            None => false,
        }
    }

    /// The loaded entry for `id`, if any.
    pub fn get(&self, id: &str) -> Option<Arc<ModelEntry>> {
        self.read().get(id).cloned()
    }

    /// Loaded model ids, sorted (diagnostics).
    pub fn models(&self) -> Vec<String> {
        let mut ids: Vec<String> = self.read().keys().cloned().collect();
        ids.sort();
        ids
    }

    /// The shared decoded-layer cache.
    pub fn cache(&self) -> &Arc<SharedLayerCache> {
        &self.cache
    }

    /// Snapshot of the shared cache's counters — the hit-rate source for
    /// `BENCH_serve.json`.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }
}

/// Layer attribution out of a probe failure: unwraps
/// [`DeepSzError::BadLayers`] into the corrupt layers' names. A failure
/// that is not layer-shaped (e.g. an I/O error mid-probe) renders
/// whole-error so the attribution is never silently empty.
fn bad_layer_names(e: &DeepSzError) -> Vec<String> {
    match e {
        DeepSzError::BadLayers(errs) => errs.iter().flat_map(bad_layer_names).collect(),
        DeepSzError::Corrupt { layer, .. } => vec![layer.clone()],
        other => vec![other.to_string()],
    }
}
