//! Count-bounded, caller-driven micro-batching (`docs/SERVING.md`).
//!
//! Single-sample requests for the same model coalesce into one batched
//! forward pass — one `matmul_transb_into` per layer with `m = batch
//! width` instead of `width` separate `m = 1` calls. Two design rules
//! keep this deterministic:
//!
//! * **Batches are bounded by COUNT, never wall-clock.** A batch is
//!   whatever is queued when a leader drains, capped at
//!   [`BatchConfig::max_batch`]. No timers, no sleeps — tests construct
//!   an exact batch by submitting k tickets and then waiting.
//! * **Batch execution is caller-driven** (group commit): [`Ticket::wait`]
//!   elects the first waiter as *leader*; the leader drains the queue,
//!   runs the batched forward, delivers every member's slice, then steps
//!   down and wakes the others. No background threads; a process with no
//!   waiter blocked runs no serving code.
//!
//! Coalescing is *legal* because the dense kernel computes each output
//! row as an independent sequential dot product — batched output is
//! bit-identical to per-sample calls at every width and worker count
//! (pinned by `crates/tensor/tests/batch_equivalence.rs`).
//!
//! Every request carries a [`CancelToken`]. Cancelled requests are
//! dropped at drain time (their tickets resolve [`ServeError::Cancelled`]
//! without costing a batch slot); a batch whose members *all* cancel
//! mid-flight aborts its forward pass between layers via
//! [`dsz_core::CompressedFcModel::forward_cancellable`]'s abort probe.

use crate::registry::{ModelEntry, ModelRegistry};
use dsz_core::DeepSzError;
use dsz_nn::Batch;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Serving-layer failures, all values (never panics).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// No model loaded under that id.
    UnknownModel(String),
    /// Request input length does not match the model's input shape.
    ShapeMismatch {
        /// Flat input length the model expects.
        expected: usize,
        /// Flat input length the request supplied.
        got: usize,
    },
    /// The request's [`CancelToken`] fired before results were produced.
    Cancelled,
    /// Container bytes failed validation at [`ModelRegistry::load`].
    Load(String),
    /// The model's forward pass failed (e.g. a corrupt layer record);
    /// every member of the affected batch receives the same report.
    Model(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownModel(id) => write!(f, "no model loaded under id {id:?}"),
            ServeError::ShapeMismatch { expected, got } => {
                write!(
                    f,
                    "input length {got} does not match model input {expected}"
                )
            }
            ServeError::Cancelled => write!(f, "request cancelled"),
            ServeError::Load(m) => write!(f, "load: {m}"),
            ServeError::Model(m) => write!(f, "model: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Shared cancellation flag for one request. Cloning shares the flag;
/// cancel from any clone, observe from any clone.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fires the flag. Idempotent. A request cancelled before its batch
    /// drains resolves [`ServeError::Cancelled`] without executing; after
    /// drain its slice is computed but discarded (and a fully-cancelled
    /// batch aborts between layers).
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether [`CancelToken::cancel`] has fired.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Micro-batching knobs.
#[derive(Debug, Clone, Copy)]
pub struct BatchConfig {
    /// Most requests one batched forward may serve. 1 disables
    /// coalescing (every request runs alone — the unbatched baseline the
    /// bench compares against).
    pub max_batch: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        Self { max_batch: 8 }
    }
}

/// Monotonic serving counters ([`Server::stats`]). Cache hit rates live
/// with the cache: [`ModelRegistry::cache_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Tickets accepted by [`Server::submit`].
    pub submitted: u64,
    /// Requests resolved with an output slice.
    pub completed: u64,
    /// Requests resolved [`ServeError::Cancelled`].
    pub cancelled: u64,
    /// Requests resolved with a model error.
    pub failed: u64,
    /// Batched forward passes executed.
    pub batches: u64,
    /// Requests those batches served (∑ batch widths).
    pub batched_samples: u64,
    /// Widest batch executed.
    pub max_batch_seen: u64,
}

impl ServeStats {
    /// Mean batch width; 0.0 before any batch ran.
    pub fn avg_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_samples as f64 / self.batches as f64
        }
    }
}

#[derive(Debug, Default)]
struct Counters {
    submitted: AtomicU64,
    completed: AtomicU64,
    cancelled: AtomicU64,
    failed: AtomicU64,
    batches: AtomicU64,
    batched_samples: AtomicU64,
    max_batch_seen: AtomicU64,
}

impl Counters {
    fn snapshot(&self) -> ServeStats {
        ServeStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batched_samples: self.batched_samples.load(Ordering::Relaxed),
            max_batch_seen: self.max_batch_seen.load(Ordering::Relaxed),
        }
    }
}

/// A request's result mailbox: written exactly once by whoever resolves
/// the request, taken by its [`Ticket::wait`]. Wakeups ride the owning
/// queue's condvar (the leader always notifies it after delivering).
type Slot = Mutex<Option<Result<Vec<f32>, ServeError>>>;

#[derive(Debug)]
struct Pending {
    input: Vec<f32>,
    cancel: CancelToken,
    slot: Arc<Slot>,
}

#[derive(Debug, Default)]
struct QState {
    queue: VecDeque<Pending>,
    /// Whether some waiter is currently executing a drained batch. At
    /// most one leader per queue: batches for one model serialize (they
    /// contend for the same layers anyway); distinct models batch
    /// concurrently on their own queues.
    leader_active: bool,
}

/// Per-model-generation request queue. Hot-swapping a model id installs
/// a fresh queue, so every pending of one queue targets one generation.
#[derive(Debug)]
struct ModelQueue {
    entry: Arc<ModelEntry>,
    state: Mutex<QState>,
    cv: Condvar,
}

impl ModelQueue {
    fn lock(&self) -> MutexGuard<'_, QState> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }
}

/// The micro-batching server: a [`ModelRegistry`] plus per-model request
/// queues. Shareable across threads behind an `Arc`.
#[derive(Debug)]
pub struct Server {
    registry: Arc<ModelRegistry>,
    config: BatchConfig,
    queues: Mutex<HashMap<String, Arc<ModelQueue>>>,
    counters: Arc<Counters>,
}

impl Server {
    /// A server over `registry` with the given batching knobs.
    /// `max_batch` is clamped to at least 1.
    pub fn new(registry: Arc<ModelRegistry>, config: BatchConfig) -> Self {
        Self {
            registry,
            config: BatchConfig {
                max_batch: config.max_batch.max(1),
            },
            queues: Mutex::new(HashMap::new()),
            counters: Arc::new(Counters::default()),
        }
    }

    /// The registry this server serves from.
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    /// Snapshot of the serving counters.
    pub fn stats(&self) -> ServeStats {
        self.counters.snapshot()
    }

    /// The queue for `entry`'s generation, installing a fresh one if the
    /// id is new or was hot-swapped. Old generations' queues live on via
    /// their tickets' `Arc`s and drain against the old entry.
    fn queue_for(&self, id: &str, entry: &Arc<ModelEntry>) -> Arc<ModelQueue> {
        let mut queues = self.queues.lock().unwrap_or_else(|p| p.into_inner());
        match queues.get(id) {
            Some(q) if Arc::ptr_eq(&q.entry, entry) => Arc::clone(q),
            _ => {
                let q = Arc::new(ModelQueue {
                    entry: Arc::clone(entry),
                    state: Mutex::new(QState::default()),
                    cv: Condvar::new(),
                });
                queues.insert(id.to_string(), Arc::clone(&q));
                q
            }
        }
    }

    /// Enqueues a single-sample request for `model_id`. The request does
    /// not execute until some ticket for this model calls
    /// [`Ticket::wait`] — submission never blocks and never batches by
    /// time. Shape is validated here so a malformed request fails before
    /// it can poison a batch.
    pub fn submit(&self, model_id: &str, input: Vec<f32>) -> Result<Ticket, ServeError> {
        let entry = self
            .registry
            .get(model_id)
            .ok_or_else(|| ServeError::UnknownModel(model_id.to_string()))?;
        let expected = entry.input_features();
        if input.len() != expected {
            return Err(ServeError::ShapeMismatch {
                expected,
                got: input.len(),
            });
        }
        let queue = self.queue_for(model_id, &entry);
        let cancel = CancelToken::new();
        let slot: Arc<Slot> = Arc::new(Mutex::new(None));
        queue.lock().queue.push_back(Pending {
            input,
            cancel: cancel.clone(),
            slot: Arc::clone(&slot),
        });
        self.counters.submitted.fetch_add(1, Ordering::Relaxed);
        Ok(Ticket {
            queue,
            slot,
            cancel,
            counters: Arc::clone(&self.counters),
            max_batch: self.config.max_batch,
        })
    }

    /// Submit + wait: the synchronous single-request entry point. The
    /// calling thread drives (or joins) batch execution.
    pub fn infer(&self, model_id: &str, input: Vec<f32>) -> Result<Vec<f32>, ServeError> {
        self.submit(model_id, input)?.wait()
    }
}

/// A pending request. [`Ticket::wait`] blocks until resolution —
/// electing the caller as batch leader when no one else is executing —
/// and consumes the ticket. Cancel via [`Ticket::cancel`] or a cloned
/// [`Ticket::cancel_token`] from another thread.
#[derive(Debug)]
pub struct Ticket {
    queue: Arc<ModelQueue>,
    slot: Arc<Slot>,
    cancel: CancelToken,
    counters: Arc<Counters>,
    max_batch: usize,
}

impl Ticket {
    /// A clone of this request's cancellation flag (hand it to another
    /// thread; the ticket itself stays waitable).
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Fires this request's [`CancelToken`].
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    fn take_slot(&self) -> Option<Result<Vec<f32>, ServeError>> {
        self.slot.lock().unwrap_or_else(|p| p.into_inner()).take()
    }

    /// Blocks until this request resolves. Group-commit loop: if the
    /// queue has work and no leader, become leader — drain up to
    /// `max_batch` live requests, run the batched forward, deliver every
    /// slice, step down, notify; otherwise sleep on the queue condvar
    /// (the leader's epilogue always notifies it).
    pub fn wait(self) -> Result<Vec<f32>, ServeError> {
        loop {
            if let Some(result) = self.take_slot() {
                return result;
            }
            let mut st = self.queue.lock();
            if !st.leader_active && !st.queue.is_empty() {
                st.leader_active = true;
                let (batch, dropped) = drain(&mut st.queue, self.max_batch);
                drop(st);
                // Cancelled-before-drain requests resolve without costing
                // a batch slot or a flop.
                for p in dropped {
                    deliver(&p.slot, Err(ServeError::Cancelled), &self.counters);
                }
                if !batch.is_empty() {
                    execute(&self.queue.entry, &batch, &self.counters);
                }
                let mut st = self.queue.lock();
                st.leader_active = false;
                self.queue.cv.notify_all();
                drop(st);
                continue;
            }
            if st.leader_active {
                // The leader's epilogue notifies after delivering.
                let _st = self.queue.cv.wait(st).unwrap_or_else(|p| p.into_inner());
                continue;
            }
            // Queue empty, no leader: our slot is delivered (or the
            // deliverer is between writing it and notifying) — re-check.
            drop(st);
            std::thread::yield_now();
        }
    }
}

/// Splits the front of `queue` into (batch of live requests, cancelled
/// requests passed over). Arrival order is preserved; cancelled entries
/// do not count toward `max_batch`.
fn drain(queue: &mut VecDeque<Pending>, max_batch: usize) -> (Vec<Pending>, Vec<Pending>) {
    let mut batch = Vec::new();
    let mut dropped = Vec::new();
    while batch.len() < max_batch {
        let Some(p) = queue.pop_front() else { break };
        if p.cancel.is_cancelled() {
            dropped.push(p);
        } else {
            batch.push(p);
        }
    }
    (batch, dropped)
}

fn deliver(slot: &Slot, result: Result<Vec<f32>, ServeError>, counters: &Counters) {
    let ctr = match &result {
        Ok(_) => &counters.completed,
        Err(ServeError::Cancelled) => &counters.cancelled,
        Err(_) => &counters.failed,
    };
    ctr.fetch_add(1, Ordering::Relaxed);
    *slot.lock().unwrap_or_else(|p| p.into_inner()) = Some(result);
}

/// One batched forward for `batch` (all same model generation): inputs
/// concatenate sample-major, the kernel computes every sample's rows in
/// one call per layer, outputs split back per request. Bit-identical to
/// per-sample execution by the kernel's row-independence (see module
/// docs).
fn execute(entry: &Arc<ModelEntry>, batch: &[Pending], counters: &Counters) {
    let k = batch.len();
    counters.batches.fetch_add(1, Ordering::Relaxed);
    counters
        .batched_samples
        .fetch_add(k as u64, Ordering::Relaxed);
    counters
        .max_batch_seen
        .fetch_max(k as u64, Ordering::Relaxed);
    let feats = entry.input_features();
    let mut data = Vec::with_capacity(k * feats);
    for p in batch {
        data.extend_from_slice(&p.input);
    }
    let x = Batch {
        n: k,
        shape: entry.input_shape(),
        data,
    };
    // Abort only when *every* member has cancelled: one live request
    // keeps the batch running (its answer is still owed).
    let all_cancelled = || batch.iter().all(|p| p.cancel.is_cancelled());
    match entry.model().forward_cancellable(&x, &all_cancelled) {
        Ok((out, _)) => {
            for (i, p) in batch.iter().enumerate() {
                let result = if p.cancel.is_cancelled() {
                    Err(ServeError::Cancelled)
                } else {
                    Ok(out.sample(i).to_vec())
                };
                deliver(&p.slot, result, counters);
            }
        }
        Err(DeepSzError::Cancelled) => {
            for p in batch {
                deliver(&p.slot, Err(ServeError::Cancelled), counters);
            }
        }
        Err(e) => {
            let msg = e.to_string();
            for p in batch {
                deliver(&p.slot, Err(ServeError::Model(msg.clone())), counters);
            }
        }
    }
}
