//! Count-bounded, caller-driven micro-batching with deadlines,
//! admission control, and transient-failure retry (`docs/SERVING.md`).
//!
//! Single-sample requests for the same model coalesce into one batched
//! forward pass — one `matmul_transb_into` per layer with `m = batch
//! width` instead of `width` separate `m = 1` calls. Two design rules
//! keep this deterministic:
//!
//! * **Batches are bounded by COUNT, never wall-clock.** A batch is
//!   whatever is queued when a leader drains, capped at
//!   [`BatchConfig::max_batch`]. No timers, no sleeps — tests construct
//!   an exact batch by submitting k tickets and then waiting.
//! * **Batch execution is caller-driven** (group commit): [`Ticket::wait`]
//!   elects the first waiter as *leader*; the leader drains the queue,
//!   runs the batched forward, delivers every member's slice, then steps
//!   down and wakes the others. No background threads; a process with no
//!   waiter blocked runs no serving code.
//!
//! Coalescing is *legal* because the dense kernel computes each output
//! row as an independent sequential dot product — batched output is
//! bit-identical to per-sample calls at every width and worker count
//! (pinned by `crates/tensor/tests/batch_equivalence.rs`).
//!
//! # Resilience (`docs/ROBUSTNESS.md`, "Serving resilience")
//!
//! * **Deadlines** — [`SubmitOptions::deadline`] is a per-request budget
//!   measured from submit. It is checked at enqueue (a dead-on-arrival
//!   request resolves instantly), at batch drain (expired entries are
//!   dropped without costing a slot), between layers (via
//!   [`dsz_core::CompressedFcModel::forward_cancellable`]'s abort probe,
//!   which fires when every member is cancelled *or expired* — so
//!   overshoot is bounded by one layer), and at delivery (a computed
//!   output is never delivered past its deadline). Misses resolve
//!   [`ServeError::DeadlineExceeded`] carrying `elapsed ≥ budget`.
//! * **Admission control** — the per-model queue is bounded by
//!   [`ShedConfig`]; at the limit the [`ShedPolicy`] either refuses the
//!   arriving request or sacrifices the oldest queued one, both as a
//!   fast [`ServeError::Overloaded`].
//! * **Retry** — a batch that fails with a *transient* error (see
//!   [`dsz_core::DeepSzError::transient`]) re-enqueues each member that
//!   still has [`SubmitOptions::retries`] budget, delayed by the seeded
//!   deterministic backoff of [`RetryPolicy`]; everyone else gets
//!   [`ServeError::Model`] with its `transient` flag set honestly.
//! * **Quarantine** — permanent integrity failures (corrupt records)
//!   count against the model generation; at
//!   [`ServerConfig::quarantine_after`] consecutive failures the
//!   generation is quarantined and subsequent submits fail fast with
//!   [`ServeError::Quarantined`] until an operator reloads it. A
//!   successful batch resets the count.
//!
//! Every request carries a [`CancelToken`]. Cancelled requests are
//! dropped at drain time (their tickets resolve [`ServeError::Cancelled`]
//! without costing a batch slot); a batch whose members *all* cancel
//! (or expire) mid-flight aborts its forward pass between layers.

use crate::registry::{ModelEntry, ModelHealth, ModelRegistry};
use crate::retry::RetryPolicy;
use crate::shed::{QueueStats, ShedConfig, ShedPolicy};
use dsz_core::DeepSzError;
use dsz_nn::Batch;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Serving-layer failures, all values (never panics).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// No model loaded under that id.
    UnknownModel(String),
    /// Request input length does not match the model's input shape.
    ShapeMismatch {
        /// Flat input length the model expects.
        expected: usize,
        /// Flat input length the request supplied.
        got: usize,
    },
    /// The request's [`CancelToken`] fired before results were produced.
    Cancelled,
    /// Container bytes failed validation at [`ModelRegistry::load`].
    Load(String),
    /// The model's forward pass failed (e.g. a corrupt layer record);
    /// every non-expired, non-cancelled member of the affected batch
    /// that is out of retry budget receives the same report.
    Model {
        /// Rendered underlying failure.
        detail: String,
        /// Whether the failure class is retryable
        /// ([`dsz_core::DeepSzError::transient`]); when `true` the
        /// server already spent the request's retry budget getting here.
        transient: bool,
    },
    /// The request's deadline elapsed before an output could be
    /// delivered. `elapsed ≥ budget` always holds; the gap is bounded
    /// by one layer of forward progress (the abort probe granularity).
    DeadlineExceeded {
        /// Time from submit to the miss being detected.
        elapsed: Duration,
        /// The deadline the request asked for.
        budget: Duration,
    },
    /// Admission control refused (or evicted) the request because the
    /// model's queue is at its depth limit ([`ShedConfig`]).
    Overloaded {
        /// Queue depth observed at the shed decision.
        depth: usize,
        /// The configured depth limit.
        limit: usize,
    },
    /// The model was loaded in degraded state
    /// ([`ModelRegistry::load_degraded`]): the named layers' records are
    /// corrupt, so every request fails fast with the attribution instead
    /// of burning a forward pass to rediscover it.
    Degraded {
        /// Model id.
        model: String,
        /// Names of the layers whose records failed to decode.
        bad_layers: Vec<String>,
    },
    /// The model generation accumulated
    /// [`ServerConfig::quarantine_after`] consecutive permanent
    /// integrity failures and was quarantined; reload it to serve again.
    Quarantined {
        /// Model id.
        model: String,
    },
}

impl ServeError {
    /// Whether a *caller-side* retry (new submit, after backoff) could
    /// plausibly succeed: transient model faults whose server-side
    /// budget ran out, and overload, which by nature passes. Everything
    /// else is deterministic against the same request.
    pub fn transient(&self) -> bool {
        matches!(
            self,
            ServeError::Model {
                transient: true,
                ..
            } | ServeError::Overloaded { .. }
        )
    }

    /// `!self.transient()`.
    pub fn permanent(&self) -> bool {
        !self.transient()
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownModel(id) => write!(f, "no model loaded under id {id:?}"),
            ServeError::ShapeMismatch { expected, got } => {
                write!(
                    f,
                    "input length {got} does not match model input {expected}"
                )
            }
            ServeError::Cancelled => write!(f, "request cancelled"),
            ServeError::Load(m) => write!(f, "load: {m}"),
            ServeError::Model { detail, transient } => {
                let class = if *transient { "transient" } else { "permanent" };
                write!(f, "model ({class}): {detail}")
            }
            ServeError::DeadlineExceeded { elapsed, budget } => write!(
                f,
                "deadline exceeded: {:.3} ms elapsed against a {:.3} ms budget",
                elapsed.as_secs_f64() * 1e3,
                budget.as_secs_f64() * 1e3
            ),
            ServeError::Overloaded { depth, limit } => {
                write!(f, "overloaded: queue depth {depth} at limit {limit}")
            }
            ServeError::Degraded { model, bad_layers } => {
                write!(f, "model {model:?} degraded, bad layers: ")?;
                for (i, l) in bad_layers.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{l}")?;
                }
                Ok(())
            }
            ServeError::Quarantined { model } => {
                write!(
                    f,
                    "model {model:?} quarantined after repeated integrity failures"
                )
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// Shared cancellation flag for one request. Cloning shares the flag;
/// cancel from any clone, observe from any clone.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fires the flag. Idempotent. A request cancelled before its batch
    /// drains resolves [`ServeError::Cancelled`] without executing; after
    /// drain its slice is computed but discarded (and a fully-cancelled
    /// batch aborts between layers).
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether [`CancelToken::cancel`] has fired.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Micro-batching knobs.
#[derive(Debug, Clone, Copy)]
pub struct BatchConfig {
    /// Most requests one batched forward may serve. 1 disables
    /// coalescing (every request runs alone — the unbatched baseline the
    /// bench compares against).
    pub max_batch: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        Self { max_batch: 8 }
    }
}

/// Everything a [`Server`] can be configured with. [`Server::new`]
/// takes just the batching knobs and defaults the rest; use
/// [`Server::with_config`] for the full surface.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerConfig {
    /// Micro-batching knobs.
    pub batch: BatchConfig,
    /// Admission control (default: unbounded queue, reject-new).
    pub shed: ShedConfig,
    /// Backoff schedule for server-side transient retries.
    pub retry: RetryPolicy,
    /// Consecutive permanent integrity failures before a model
    /// generation is quarantined; `0` disables quarantine. The counter
    /// resets on any successful batch.
    pub quarantine_after: u32,
}

/// Per-request options for [`Server::submit_with`].
#[derive(Debug, Clone, Copy, Default)]
pub struct SubmitOptions {
    /// Latency budget measured from submit; `None` waits forever (the
    /// PR-9 behavior). `Some(Duration::ZERO)` is legal and resolves
    /// [`ServeError::DeadlineExceeded`] immediately — useful for
    /// testing the miss path.
    pub deadline: Option<Duration>,
    /// How many times the *server* may re-run this request after a
    /// transient failure before reporting [`ServeError::Model`].
    pub retries: u32,
}

/// Monotonic serving counters ([`Server::stats`]). Cache hit rates live
/// with the cache: [`ModelRegistry::cache_stats`].
///
/// Quiescence invariant (no request in flight): `submitted == completed
/// + cancelled + failed + deadline_misses + shed` — every admitted
/// ticket resolves into exactly one of those five buckets. `rejected`
/// and `fast_failed` count submits that never produced a ticket.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Tickets accepted by [`Server::submit`].
    pub submitted: u64,
    /// Requests resolved with an output slice.
    pub completed: u64,
    /// Requests resolved [`ServeError::Cancelled`].
    pub cancelled: u64,
    /// Requests resolved with a model error.
    pub failed: u64,
    /// Requests resolved [`ServeError::DeadlineExceeded`].
    pub deadline_misses: u64,
    /// Admitted requests later evicted [`ServeError::Overloaded`]
    /// (the [`ShedPolicy::DropOldest`] victims).
    pub shed: u64,
    /// Submits refused [`ServeError::Overloaded`] at admission (no
    /// ticket was created; not counted in `submitted`).
    pub rejected: u64,
    /// Submits refused [`ServeError::Degraded`] or
    /// [`ServeError::Quarantined`] at admission (no ticket; not counted
    /// in `submitted`).
    pub fast_failed: u64,
    /// Re-enqueue events after transient failures (one per attempt).
    pub retries: u64,
    /// Requests that resolved (any outcome) after ≥ 1 retry.
    pub retried: u64,
    /// Requests that resolved `Ok` after ≥ 1 retry.
    pub retry_successes: u64,
    /// Batched forward passes executed.
    pub batches: u64,
    /// Requests those batches served (∑ batch widths).
    pub batched_samples: u64,
    /// Widest batch executed.
    pub max_batch_seen: u64,
}

impl ServeStats {
    /// Mean batch width; 0.0 before any batch ran.
    pub fn avg_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_samples as f64 / self.batches as f64
        }
    }
}

#[derive(Debug, Default)]
struct Counters {
    submitted: AtomicU64,
    completed: AtomicU64,
    cancelled: AtomicU64,
    failed: AtomicU64,
    deadline_misses: AtomicU64,
    shed: AtomicU64,
    rejected: AtomicU64,
    fast_failed: AtomicU64,
    retries: AtomicU64,
    retried: AtomicU64,
    retry_successes: AtomicU64,
    batches: AtomicU64,
    batched_samples: AtomicU64,
    max_batch_seen: AtomicU64,
}

impl Counters {
    fn snapshot(&self) -> ServeStats {
        ServeStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            deadline_misses: self.deadline_misses.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            fast_failed: self.fast_failed.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            retried: self.retried.load(Ordering::Relaxed),
            retry_successes: self.retry_successes.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batched_samples: self.batched_samples.load(Ordering::Relaxed),
            max_batch_seen: self.max_batch_seen.load(Ordering::Relaxed),
        }
    }
}

/// Cross-ticket server state: the counters plus the retry/quarantine
/// policy the batch leader needs while executing.
#[derive(Debug)]
struct Shared {
    counters: Counters,
    retry: RetryPolicy,
    quarantine_after: u32,
}

/// A request's result mailbox: written exactly once by whoever resolves
/// the request, taken by its [`Ticket::wait`]. Wakeups ride the owning
/// queue's condvar (the leader always notifies it after delivering).
type Slot = Mutex<Option<Result<Vec<f32>, ServeError>>>;

#[derive(Debug)]
struct Pending {
    /// Server-unique request id — the retry jitter key.
    id: u64,
    input: Vec<f32>,
    cancel: CancelToken,
    slot: Arc<Slot>,
    /// When [`Server::submit`] accepted the request; deadlines and
    /// queue-age watermarks measure from here (retries keep the
    /// original instant — the caller's clock never resets).
    submitted_at: Instant,
    /// Latency budget, if any.
    deadline: Option<Duration>,
    /// Transient-failure retries still available.
    retries_left: u32,
    /// How many times this request has been re-enqueued (0 = first run).
    attempt: u32,
    /// Earliest instant a drain may batch this entry (retry backoff).
    not_before: Option<Instant>,
}

impl Pending {
    fn expired(&self, now: Instant) -> bool {
        self.deadline
            .is_some_and(|d| now.duration_since(self.submitted_at) >= d)
    }

    fn deadline_error(&self, now: Instant) -> ServeError {
        ServeError::DeadlineExceeded {
            elapsed: now.duration_since(self.submitted_at),
            budget: self.deadline.unwrap_or_default(),
        }
    }
}

#[derive(Debug, Default)]
struct QState {
    queue: VecDeque<Pending>,
    /// Whether some waiter is currently executing a drained batch. At
    /// most one leader per queue: batches for one model serialize (they
    /// contend for the same layers anyway); distinct models batch
    /// concurrently on their own queues.
    leader_active: bool,
    /// Deepest the queue has ever been ([`QueueStats`]).
    depth_high_water: usize,
}

/// Per-model-generation request queue. Hot-swapping a model id installs
/// a fresh queue, so every pending of one queue targets one generation.
#[derive(Debug)]
struct ModelQueue {
    entry: Arc<ModelEntry>,
    state: Mutex<QState>,
    cv: Condvar,
}

impl ModelQueue {
    fn lock(&self) -> MutexGuard<'_, QState> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }
}

/// The micro-batching server: a [`ModelRegistry`] plus per-model request
/// queues. Shareable across threads behind an `Arc`.
#[derive(Debug)]
pub struct Server {
    registry: Arc<ModelRegistry>,
    config: ServerConfig,
    queues: Mutex<HashMap<String, Arc<ModelQueue>>>,
    shared: Arc<Shared>,
    next_request: AtomicU64,
}

impl Server {
    /// A server over `registry` with the given batching knobs and
    /// default resilience config (unbounded queue, no quarantine).
    /// `max_batch` is clamped to at least 1.
    pub fn new(registry: Arc<ModelRegistry>, config: BatchConfig) -> Self {
        Self::with_config(
            registry,
            ServerConfig {
                batch: config,
                ..ServerConfig::default()
            },
        )
    }

    /// A server with the full resilience surface: batching, admission
    /// control, retry backoff, and quarantine threshold.
    pub fn with_config(registry: Arc<ModelRegistry>, config: ServerConfig) -> Self {
        let config = ServerConfig {
            batch: BatchConfig {
                max_batch: config.batch.max_batch.max(1),
            },
            ..config
        };
        Self {
            registry,
            shared: Arc::new(Shared {
                counters: Counters::default(),
                retry: config.retry,
                quarantine_after: config.quarantine_after,
            }),
            config,
            queues: Mutex::new(HashMap::new()),
            next_request: AtomicU64::new(0),
        }
    }

    /// The registry this server serves from.
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    /// Snapshot of the serving counters.
    pub fn stats(&self) -> ServeStats {
        self.shared.counters.snapshot()
    }

    /// Point-in-time watermarks of `model_id`'s queue; `None` until the
    /// first submit for the id created one.
    pub fn queue_stats(&self, model_id: &str) -> Option<QueueStats> {
        let q = {
            let queues = self.queues.lock().unwrap_or_else(|p| p.into_inner());
            queues.get(model_id).cloned()?
        };
        let st = q.lock();
        let now = Instant::now();
        Some(QueueStats {
            depth: st.queue.len(),
            depth_high_water: st.depth_high_water,
            oldest_age: st.queue.front().map(|p| now.duration_since(p.submitted_at)),
        })
    }

    /// The queue for `entry`'s generation, installing a fresh one if the
    /// id is new or was hot-swapped. Old generations' queues live on via
    /// their tickets' `Arc`s and drain against the old entry.
    fn queue_for(&self, id: &str, entry: &Arc<ModelEntry>) -> Arc<ModelQueue> {
        let mut queues = self.queues.lock().unwrap_or_else(|p| p.into_inner());
        match queues.get(id) {
            Some(q) if Arc::ptr_eq(&q.entry, entry) => Arc::clone(q),
            _ => {
                let q = Arc::new(ModelQueue {
                    entry: Arc::clone(entry),
                    state: Mutex::new(QState::default()),
                    cv: Condvar::new(),
                });
                queues.insert(id.to_string(), Arc::clone(&q));
                q
            }
        }
    }

    /// [`Self::submit_with`] with default options (no deadline, no
    /// retries) — the PR-9 entry point, unchanged.
    pub fn submit(&self, model_id: &str, input: Vec<f32>) -> Result<Ticket, ServeError> {
        self.submit_with(model_id, input, SubmitOptions::default())
    }

    /// Enqueues a single-sample request for `model_id`. The request does
    /// not execute until some ticket for this model calls
    /// [`Ticket::wait`] — submission never blocks and never batches by
    /// time. Shape is validated here so a malformed request fails before
    /// it can poison a batch; quarantined and degraded generations fail
    /// fast here too, and admission control may refuse the request (or
    /// evict the oldest queued one) per the [`ShedConfig`].
    pub fn submit_with(
        &self,
        model_id: &str,
        input: Vec<f32>,
        opts: SubmitOptions,
    ) -> Result<Ticket, ServeError> {
        let counters = &self.shared.counters;
        let entry = self
            .registry
            .get(model_id)
            .ok_or_else(|| ServeError::UnknownModel(model_id.to_string()))?;
        if entry.is_quarantined() {
            counters.fast_failed.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Quarantined {
                model: model_id.to_string(),
            });
        }
        if let ModelHealth::Degraded { bad_layers } = entry.health() {
            counters.fast_failed.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Degraded {
                model: model_id.to_string(),
                bad_layers: bad_layers.clone(),
            });
        }
        let expected = entry.input_features();
        if input.len() != expected {
            return Err(ServeError::ShapeMismatch {
                expected,
                got: input.len(),
            });
        }
        let queue = self.queue_for(model_id, &entry);
        let cancel = CancelToken::new();
        let slot: Arc<Slot> = Arc::new(Mutex::new(None));
        let pending = Pending {
            id: self.next_request.fetch_add(1, Ordering::Relaxed),
            input,
            cancel: cancel.clone(),
            slot: Arc::clone(&slot),
            submitted_at: Instant::now(),
            deadline: opts.deadline,
            retries_left: opts.retries,
            attempt: 0,
            not_before: None,
        };
        let ticket = Ticket {
            queue: Arc::clone(&queue),
            slot,
            cancel,
            shared: Arc::clone(&self.shared),
            max_batch: self.config.batch.max_batch,
        };
        // Dead on arrival (a zero deadline): resolve without queueing —
        // it must not occupy a slot someone live could use.
        let now = Instant::now();
        if pending.expired(now) {
            counters.submitted.fetch_add(1, Ordering::Relaxed);
            let err = pending.deadline_error(now);
            deliver_final(&pending, Err(err), &self.shared);
            return Ok(ticket);
        }
        // Admission under the queue lock: the depth decision and the
        // enqueue are atomic, so the bound is exact.
        let shed = self.config.shed;
        let victim = {
            let mut st = queue.lock();
            if st.queue.len() >= shed.max_queue_depth {
                match shed.policy {
                    ShedPolicy::RejectNew => {
                        let depth = st.queue.len();
                        drop(st);
                        counters.rejected.fetch_add(1, Ordering::Relaxed);
                        return Err(ServeError::Overloaded {
                            depth,
                            limit: shed.max_queue_depth,
                        });
                    }
                    ShedPolicy::DropOldest => st.queue.pop_front(),
                }
            } else {
                None
            }
        };
        if let Some(v) = &victim {
            deliver_final(
                v,
                Err(ServeError::Overloaded {
                    depth: shed.max_queue_depth,
                    limit: shed.max_queue_depth,
                }),
                &self.shared,
            );
            // The victim's waiter may be parked on the condvar.
            queue.cv.notify_all();
        }
        let mut st = queue.lock();
        st.queue.push_back(pending);
        st.depth_high_water = st.depth_high_water.max(st.queue.len());
        drop(st);
        counters.submitted.fetch_add(1, Ordering::Relaxed);
        Ok(ticket)
    }

    /// Submit + wait: the synchronous single-request entry point. The
    /// calling thread drives (or joins) batch execution.
    pub fn infer(&self, model_id: &str, input: Vec<f32>) -> Result<Vec<f32>, ServeError> {
        self.submit(model_id, input)?.wait()
    }

    /// [`Self::infer`] with per-request deadline/retry options.
    pub fn infer_with(
        &self,
        model_id: &str,
        input: Vec<f32>,
        opts: SubmitOptions,
    ) -> Result<Vec<f32>, ServeError> {
        self.submit_with(model_id, input, opts)?.wait()
    }
}

/// A pending request. [`Ticket::wait`] blocks until resolution —
/// electing the caller as batch leader when no one else is executing —
/// and consumes the ticket. Cancel via [`Ticket::cancel`] or a cloned
/// [`Ticket::cancel_token`] from another thread.
#[derive(Debug)]
pub struct Ticket {
    queue: Arc<ModelQueue>,
    slot: Arc<Slot>,
    cancel: CancelToken,
    shared: Arc<Shared>,
    max_batch: usize,
}

impl Ticket {
    /// A clone of this request's cancellation flag (hand it to another
    /// thread; the ticket itself stays waitable).
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Fires this request's [`CancelToken`].
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    fn take_slot(&self) -> Option<Result<Vec<f32>, ServeError>> {
        self.slot.lock().unwrap_or_else(|p| p.into_inner()).take()
    }

    /// Blocks until this request resolves. Group-commit loop: if the
    /// queue has drainable work and no leader, become leader — drain up
    /// to `max_batch` live requests (dropping cancelled/expired entries,
    /// deferring retries still in backoff), run the batched forward,
    /// deliver every slice, re-enqueue transient-failure retries, step
    /// down, notify; otherwise sleep on the queue condvar (the leader's
    /// epilogue always notifies it).
    pub fn wait(self) -> Result<Vec<f32>, ServeError> {
        loop {
            if let Some(result) = self.take_slot() {
                return result;
            }
            let mut st = self.queue.lock();
            if !st.leader_active && !st.queue.is_empty() {
                let now = Instant::now();
                let drained = drain(&mut st.queue, self.max_batch, now);
                if drained.batch.is_empty() && drained.dropped.is_empty() {
                    // Everything drainable is a retry still backing off:
                    // nap until the earliest becomes ready (or a deliver
                    // notifies us) and re-check.
                    let nap = drained
                        .next_ready
                        .map(|t| t.saturating_duration_since(now))
                        .unwrap_or(Duration::from_millis(1))
                        .max(Duration::from_micros(50));
                    let (st, _timeout) = self
                        .queue
                        .cv
                        .wait_timeout(st, nap)
                        .unwrap_or_else(|p| p.into_inner());
                    drop(st);
                    continue;
                }
                st.leader_active = true;
                drop(st);
                // Cancelled/expired-before-drain requests resolve without
                // costing a batch slot or a flop.
                for (p, err) in drained.dropped {
                    deliver_final(&p, Err(err), &self.shared);
                }
                let requeue = if drained.batch.is_empty() {
                    Vec::new()
                } else {
                    execute(&self.queue.entry, drained.batch, &self.shared)
                };
                let mut st = self.queue.lock();
                // Transient-failure retries go back to the *front*: they
                // are the oldest work and FIFO order is preserved.
                for p in requeue.into_iter().rev() {
                    st.queue.push_front(p);
                }
                st.leader_active = false;
                self.queue.cv.notify_all();
                drop(st);
                continue;
            }
            if st.leader_active {
                // The leader's epilogue notifies after delivering.
                let _st = self.queue.cv.wait(st).unwrap_or_else(|p| p.into_inner());
                continue;
            }
            // Queue empty, no leader: our slot is delivered (or the
            // deliverer is between writing it and notifying) — re-check.
            drop(st);
            std::thread::yield_now();
        }
    }
}

/// What one drain pass produced.
struct Drained {
    /// Live, ready requests to execute (≤ `max_batch`).
    batch: Vec<Pending>,
    /// Cancelled/expired entries passed over, with the error each
    /// resolves to. They do not count toward `max_batch`.
    dropped: Vec<(Pending, ServeError)>,
    /// Earliest `not_before` among deferred retries, if any were seen.
    next_ready: Option<Instant>,
}

/// Splits the front of `queue` into a batch of live ready requests plus
/// the cancelled/expired entries passed over. Retries whose backoff has
/// not elapsed are deferred — pushed back to the front in their original
/// order. Arrival order is preserved throughout.
fn drain(queue: &mut VecDeque<Pending>, max_batch: usize, now: Instant) -> Drained {
    let mut batch = Vec::new();
    let mut dropped = Vec::new();
    let mut deferred = Vec::new();
    let mut next_ready = None;
    while batch.len() < max_batch {
        let Some(p) = queue.pop_front() else { break };
        if p.cancel.is_cancelled() {
            dropped.push((p, ServeError::Cancelled));
        } else if p.expired(now) {
            let err = p.deadline_error(now);
            dropped.push((p, err));
        } else if let Some(nb) = p.not_before.filter(|&nb| nb > now) {
            next_ready = Some(next_ready.map_or(nb, |c: Instant| c.min(nb)));
            deferred.push(p);
        } else {
            batch.push(p);
        }
    }
    for p in deferred.into_iter().rev() {
        queue.push_front(p);
    }
    Drained {
        batch,
        dropped,
        next_ready,
    }
}

fn deliver(slot: &Slot, result: Result<Vec<f32>, ServeError>, counters: &Counters) {
    let ctr = match &result {
        Ok(_) => &counters.completed,
        Err(ServeError::Cancelled) => &counters.cancelled,
        Err(ServeError::DeadlineExceeded { .. }) => &counters.deadline_misses,
        Err(ServeError::Overloaded { .. }) => &counters.shed,
        Err(_) => &counters.failed,
    };
    ctr.fetch_add(1, Ordering::Relaxed);
    *slot.lock().unwrap_or_else(|p| p.into_inner()) = Some(result);
}

/// [`deliver`] plus retry bookkeeping: a request resolving after ≥ 1
/// retry counts `retried` (and `retry_successes` when it made it).
fn deliver_final(p: &Pending, result: Result<Vec<f32>, ServeError>, shared: &Shared) {
    if p.attempt > 0 {
        shared.counters.retried.fetch_add(1, Ordering::Relaxed);
        if result.is_ok() {
            shared
                .counters
                .retry_successes
                .fetch_add(1, Ordering::Relaxed);
        }
    }
    deliver(&p.slot, result, &shared.counters);
}

/// One batched forward for `batch` (all same model generation): inputs
/// concatenate sample-major, the kernel computes every sample's rows in
/// one call per layer, outputs split back per request. Bit-identical to
/// per-sample execution by the kernel's row-independence (see module
/// docs). Returns the members to re-enqueue (transient failure, retry
/// budget remaining); everyone else is delivered here.
fn execute(entry: &Arc<ModelEntry>, batch: Vec<Pending>, shared: &Shared) -> Vec<Pending> {
    let counters = &shared.counters;
    let k = batch.len();
    counters.batches.fetch_add(1, Ordering::Relaxed);
    counters
        .batched_samples
        .fetch_add(k as u64, Ordering::Relaxed);
    counters
        .max_batch_seen
        .fetch_max(k as u64, Ordering::Relaxed);
    let feats = entry.input_features();
    let mut data = Vec::with_capacity(k * feats);
    for p in &batch {
        data.extend_from_slice(&p.input);
    }
    let x = Batch {
        n: k,
        shape: entry.input_shape(),
        data,
    };
    // Abort only when *every* member has cancelled or expired: one live
    // request keeps the batch running (its answer is still owed). This
    // probe runs between layers, so a deadline miss overshoots by at
    // most one layer of forward progress.
    let all_dead = || {
        let now = Instant::now();
        batch
            .iter()
            .all(|p| p.cancel.is_cancelled() || p.expired(now))
    };
    match entry.model().forward_cancellable(&x, &all_dead) {
        Ok((out, _)) => {
            entry.note_success();
            let now = Instant::now();
            for (i, p) in batch.into_iter().enumerate() {
                let result = if p.cancel.is_cancelled() {
                    Err(ServeError::Cancelled)
                } else if p.expired(now) {
                    // The output exists but the budget is blown: a
                    // response is never delivered past its deadline.
                    Err(p.deadline_error(now))
                } else {
                    Ok(out.sample(i).to_vec())
                };
                deliver_final(&p, result, shared);
            }
            Vec::new()
        }
        Err(e) => {
            let transient = e.transient();
            if !transient {
                note_integrity_failure(entry, &e, shared.quarantine_after);
            }
            let aborted = matches!(e, DeepSzError::Cancelled);
            let msg = e.to_string();
            let now = Instant::now();
            let mut requeue = Vec::new();
            for mut p in batch {
                if p.cancel.is_cancelled() {
                    deliver_final(&p, Err(ServeError::Cancelled), shared);
                } else if p.expired(now) {
                    let err = p.deadline_error(now);
                    deliver_final(&p, Err(err), shared);
                } else if transient && p.retries_left > 0 {
                    // Re-enqueue with seeded backoff; the caller's
                    // deadline keeps ticking against the original
                    // submit instant.
                    p.retries_left -= 1;
                    p.attempt += 1;
                    p.not_before = Some(now + shared.retry.delay(p.id, p.attempt));
                    counters.retries.fetch_add(1, Ordering::Relaxed);
                    requeue.push(p);
                } else if aborted {
                    // A fully-dead batch aborted between layers; by the
                    // probe's definition this member is cancelled or
                    // expired, but classify conservatively if a race
                    // got here.
                    deliver_final(&p, Err(ServeError::Cancelled), shared);
                } else {
                    deliver_final(
                        &p,
                        Err(ServeError::Model {
                            detail: msg.clone(),
                            transient,
                        }),
                        shared,
                    );
                }
            }
            requeue
        }
    }
}

/// Counts a permanent integrity failure against the generation and
/// quarantines it at the threshold (0 disables). Only container/record
/// integrity classes count — a transient spill fault or a cancellation
/// is not evidence the generation is bad.
fn note_integrity_failure(entry: &Arc<ModelEntry>, e: &DeepSzError, quarantine_after: u32) {
    let integrity = matches!(
        e,
        DeepSzError::Corrupt { .. } | DeepSzError::BadLayers(_) | DeepSzError::BadContainer(_)
    );
    if !integrity {
        return;
    }
    let failures = entry.record_integrity_failure();
    if quarantine_after > 0 && failures >= quarantine_after {
        entry.quarantine();
    }
}
