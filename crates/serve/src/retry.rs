//! Deterministic jittered backoff for transient serving failures
//! (`docs/ROBUSTNESS.md`, "Serving resilience").
//!
//! When a batch fails with a *transient* error (see
//! [`DeepSzError::transient`](dsz_core::DeepSzError::transient) — today
//! a poisoned spill read or a cooperative abort that caught a live
//! member), the batch leader re-enqueues each member that still has
//! retry budget ([`SubmitOptions::retries`](crate::SubmitOptions)),
//! stamped with a *not-before* instant computed here. The delay is
//! capped exponential backoff times a jitter factor in `[0.5, 1.0)` —
//! and the jitter is a **pure function** of `(seed, request id,
//! attempt)` via SplitMix64, the same generator discipline as
//! `dsz_datagen`'s `Corruptor`, so there is no wall-clock randomness
//! anywhere: a chaos schedule that retried at attempt 2 retries with
//! the same delay on every replay.
//!
//! Tests that want retries without sleeping set `base` to zero: every
//! delay collapses to `Duration::ZERO` and retried work re-drains on
//! the next leader pass.

use crate::chaos::splitmix64;
use std::time::Duration;

/// Backoff schedule for server-side retries of transient failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// First-retry delay before jitter. `Duration::ZERO` disables
    /// waiting entirely (every retry is immediately drainable) — the
    /// deterministic-test mode.
    pub base: Duration,
    /// Upper bound on the un-jittered delay however many attempts have
    /// failed.
    pub cap: Duration,
    /// Jitter seed. Two servers with the same seed produce the same
    /// delay for the same `(request id, attempt)`.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            base: Duration::from_millis(1),
            cap: Duration::from_millis(50),
            seed: 0x005E_ED0F_BACC_0FF5,
        }
    }
}

impl RetryPolicy {
    /// The delay before retry number `attempt` (1-based: the first
    /// retry is attempt 1) of request `request_id`: `min(base·2^(a-1),
    /// cap)` scaled by a seeded jitter factor in `[0.5, 1.0)`. Pure —
    /// no clocks, no global state.
    pub fn delay(&self, request_id: u64, attempt: u32) -> Duration {
        if self.base.is_zero() {
            return Duration::ZERO;
        }
        let doublings = attempt.saturating_sub(1).min(20);
        let exp = self
            .base
            .saturating_mul(1u32 << doublings.min(20))
            .min(self.cap);
        let mut state = self
            .seed
            .wrapping_add(request_id.rotate_left(17))
            .wrapping_add(u64::from(attempt) << 40);
        let z = splitmix64(&mut state);
        // Top 53 bits → uniform in [0,1); fold into [0.5, 1.0).
        let unit = (z >> 11) as f64 / (1u64 << 53) as f64;
        exp.mul_f64(0.5 + unit * 0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_is_deterministic_and_jittered() {
        let p = RetryPolicy::default();
        let a = p.delay(7, 1);
        assert_eq!(a, p.delay(7, 1), "pure function of (seed, id, attempt)");
        assert_ne!(a, p.delay(8, 1), "distinct requests decorrelate");
        // Jitter stays inside [base/2, base) for attempt 1.
        assert!(a >= p.base / 2 && a < p.base);
    }

    #[test]
    fn backoff_grows_then_caps() {
        let p = RetryPolicy {
            base: Duration::from_millis(4),
            cap: Duration::from_millis(10),
            seed: 1,
        };
        for attempt in 1..=8 {
            let d = p.delay(3, attempt);
            assert!(d < p.cap, "jittered delay stays under the cap: {d:?}");
        }
        // Attempt 30 must not overflow the doubling.
        assert!(p.delay(3, 30) < p.cap);
    }

    #[test]
    fn zero_base_means_no_waiting() {
        let p = RetryPolicy {
            base: Duration::ZERO,
            cap: Duration::from_secs(1),
            seed: 9,
        };
        for attempt in 1..5 {
            assert_eq!(p.delay(42, attempt), Duration::ZERO);
        }
    }
}
