//! Multi-tenant serving layer over DeepSZ-compressed models
//! (`docs/SERVING.md`).
//!
//! DeepSZ's decompression is fast enough that compressed models can serve
//! inference directly (§5.4 of the paper reports decompression at a small
//! fraction of inference time). This crate turns that observation into a
//! serving stack for *many* models on one node:
//!
//! * [`ModelRegistry`] — loads DSZM containers once (structural
//!   validation via [`dsz_core::SeekableContainer`], one integrity parse
//!   into a [`dsz_core::CompressedFcModel`]), keyed by model id, with
//!   hot-swap and unload. Requests never re-parse container bytes.
//! * A process-wide decoded-layer cache
//!   ([`dsz_core::SharedLayerCache`]) — **one** global bytes quota shared
//!   by every tenant, LRU across models, so the hottest layers anywhere
//!   in the fleet stay resident while cold tails re-decode on demand.
//! * [`Server`] — micro-batches concurrent single-sample requests for the
//!   same model into one batched matmul per layer. Batches are bounded by
//!   *count* ([`BatchConfig::max_batch`]), never by wall-clock, so
//!   batching is deterministic and testable; the kernel-level
//!   bit-identity that makes coalescing legal is pinned by
//!   `crates/tensor/tests/batch_equivalence.rs`. Requests carry a
//!   [`CancelToken`]; a batch whose members have all cancelled aborts its
//!   forward pass between layers.
//!
//! Everything here is plain std concurrency — no async runtime, no
//! background threads. Batch execution is *caller-driven* (the first
//! waiter becomes the batch leader), so a process with no threads blocked
//! in [`Ticket::wait`] runs no serving code at all.
//!
//! The request path is *resilient by construction*
//! (`docs/ROBUSTNESS.md`, "Serving resilience"): per-request deadlines
//! and retry budgets ([`SubmitOptions`]), bounded queues with load
//! shedding ([`ShedConfig`]), deterministic jittered retry backoff
//! ([`RetryPolicy`]), degraded-mode loads with bad-layer attribution and
//! safe hot-swap ([`ModelRegistry::load_checked`]), serve-time
//! quarantine of repeatedly-corrupt generations, and a seeded chaos
//! harness ([`FaultPlan`]) that injects decode faults, slow layers, and
//! mid-batch cancellations to prove all of the above under fire.

// Serving sits on the decode path for untrusted containers: failures
// must surface as values, never panics (`docs/ROBUSTNESS.md`).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod batch;
pub mod chaos;
pub mod registry;
pub mod retry;
pub mod shed;

pub use batch::{
    BatchConfig, CancelToken, ServeError, ServeStats, Server, ServerConfig, SubmitOptions, Ticket,
};
pub use chaos::{ChaosConfig, FaultCounts, FaultPlan};
pub use registry::{ModelEntry, ModelHealth, ModelRegistry};
pub use retry::RetryPolicy;
pub use shed::{QueueStats, ShedConfig, ShedPolicy};
