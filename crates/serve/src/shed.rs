//! Admission control and load shedding for the request path
//! (`docs/SERVING.md`, failure-modes table).
//!
//! An unbounded queue converts overload into unbounded latency: every
//! request is eventually served, long after its caller stopped caring.
//! Bounding the per-model queue converts the same overload into a fast,
//! structured [`ServeError::Overloaded`](crate::ServeError::Overloaded)
//! at submit time — cheap for the server (no ticket, no queue entry) and
//! actionable for the caller (back off or divert). [`ShedPolicy`] picks
//! *which* request eats the overload:
//!
//! * [`ShedPolicy::RejectNew`] — the arriving request is refused. FIFO
//!   fairness: whoever queued first keeps their slot. The default.
//! * [`ShedPolicy::DropOldest`] — the *oldest* queued request is
//!   resolved [`Overloaded`](crate::ServeError::Overloaded) and the
//!   arriving one takes its place. Freshness-first: right for workloads
//!   where a stale answer is worthless (the oldest entry is the one
//!   most likely past its caller's patience anyway).
//!
//! Watermarks ([`QueueStats`]) expose queue depth, its high-water mark,
//! and the age of the oldest waiter so operators can see saturation
//! *before* the shed counters start moving.

use std::time::Duration;

/// Which request is sacrificed when a queue is at its depth limit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ShedPolicy {
    /// Refuse the arriving request (FIFO fairness; the default).
    #[default]
    RejectNew,
    /// Resolve the oldest queued request `Overloaded` and admit the
    /// arriving one (freshness first).
    DropOldest,
}

/// Admission-control knobs for every per-model queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShedConfig {
    /// Most requests one model's queue may hold. A submit that would
    /// exceed it triggers the [`ShedPolicy`]. `usize::MAX` (the
    /// default) restores the unbounded PR-9 behavior.
    pub max_queue_depth: usize,
    /// What to shed at the limit.
    pub policy: ShedPolicy,
}

impl Default for ShedConfig {
    fn default() -> Self {
        Self {
            max_queue_depth: usize::MAX,
            policy: ShedPolicy::default(),
        }
    }
}

/// Point-in-time observability snapshot of one model's queue
/// ([`Server::queue_stats`](crate::Server::queue_stats)).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Requests currently queued (excluding any executing batch).
    pub depth: usize,
    /// Deepest the queue has ever been.
    pub depth_high_water: usize,
    /// How long the oldest queued request has been waiting since its
    /// submit; `None` when the queue is empty.
    pub oldest_age: Option<Duration>,
}
