//! Property tests: every pooled parallel helper must produce output
//! identical to its serial (1-worker) execution for any pool size. Outputs
//! are a function of the indexed work items alone — which thread claims an
//! item, how many pool workers exist, and what ran on the pool before must
//! all be invisible.

use dsz_tensor::parallel::{parallel_chunks, parallel_for_rows, parallel_map, with_workers};
use proptest::prelude::*;

/// Position-dependent fill so any chunk-boundary or ordering mistake shows
/// up as a value mismatch, not just a coverage gap.
fn fill_rows(rows: usize, width: usize, seed: u32, workers: usize) -> Vec<f32> {
    let mut out = vec![0f32; rows * width];
    with_workers(workers, || {
        parallel_for_rows(rows, &mut out, width, |r0, chunk| {
            for (i, v) in chunk.iter_mut().enumerate() {
                let r = r0 + i / width;
                let c = i % width;
                *v = ((r * 31 + c * 7) as u32 ^ seed) as f32;
            }
        });
    });
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn parallel_map_matches_serial_for_pool_sizes_1_to_8(
        items in proptest::collection::vec(any::<u32>(), 0..220),
    ) {
        let job = |&x: &u32| u64::from(x).wrapping_mul(0x9E3779B9) ^ 0xA5A5;
        let serial = with_workers(1, || parallel_map(&items, job));
        for workers in 1..=8usize {
            let pooled = with_workers(workers, || parallel_map(&items, job));
            prop_assert_eq!(&pooled, &serial, "workers={}", workers);
        }
    }

    #[test]
    fn parallel_for_rows_matches_serial_for_pool_sizes_1_to_8(
        rows in 1usize..120,
        width in 1usize..9,
        seed in any::<u32>(),
    ) {
        let serial = fill_rows(rows, width, seed, 1);
        for workers in 2..=8usize {
            let pooled = fill_rows(rows, width, seed, workers);
            prop_assert_eq!(&pooled, &serial, "workers={}", workers);
        }
    }

    #[test]
    fn parallel_chunks_matches_serial_for_pool_sizes_1_to_8(
        sizes in proptest::collection::vec(0usize..40, 0..14),
        seed in any::<u32>(),
    ) {
        let total: usize = sizes.iter().sum();
        let run = |workers: usize| {
            let mut buf = vec![0u32; total];
            with_workers(workers, || {
                parallel_chunks(&mut buf, &sizes, |ci, chunk| -> Result<(), ()> {
                    for (j, v) in chunk.iter_mut().enumerate() {
                        *v = (ci as u32).wrapping_mul(2654435761) ^ (j as u32) ^ seed;
                    }
                    Ok(())
                })
            })
            .unwrap();
            buf
        };
        let serial = run(1);
        for workers in 2..=8usize {
            prop_assert_eq!(&run(workers), &serial, "workers={}", workers);
        }
    }
}
