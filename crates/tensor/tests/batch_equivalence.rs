//! Batch-width bit-identity of the dense matmul kernel — the
//! micro-batcher's correctness anchor (`docs/SERVING.md`).
//!
//! The serving layer coalesces N single-sample requests into one
//! `matmul_transb_into` call with `m = N`. That is only legal because the
//! kernel computes each output row as an independent, *sequential* dot
//! product: batching changes how rows are grouped and parallelized, never
//! the per-row arithmetic. This suite pins that property — the batched
//! output must equal the per-sample outputs bit for bit, at every batch
//! width and under every worker budget (tier1 sweeps `DSZ_THREADS=1/4`).

use dsz_tensor::parallel::with_workers;
use dsz_tensor::{matmul_transb_into, matmul_transb_raw, Matrix};

fn rand_vec(n: usize, seed: u64) -> Vec<f32> {
    let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..n)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            ((s >> 40) as f32 / (1u64 << 24) as f32) - 0.5
        })
        .collect()
}

/// Batched `m×k · (n×k)ᵀ` must be a row-for-row bit-identical stack of
/// the `1×k` per-sample products, for every width and worker budget.
#[test]
fn batched_matmul_bit_identical_to_per_sample_loops() {
    let (k, n) = (37, 23);
    let weights = Matrix::from_vec(n, k, rand_vec(n * k, 0xB17));
    for width in [1usize, 2, 3, 4, 5, 7, 8, 13] {
        let a = rand_vec(width * k, 0xA11CE ^ (width as u64) << 8);
        for workers in [1usize, 4] {
            let mut batched = Vec::new();
            with_workers(workers, || {
                matmul_transb_into(&a, width, k, &weights, &mut batched)
            });
            assert_eq!(batched.len(), width * n);
            for s in 0..width {
                // The per-sample "loop": one m=1 call per request, exactly
                // what an unbatched server would execute.
                let mut single = Vec::new();
                matmul_transb_into(&a[s * k..(s + 1) * k], 1, k, &weights, &mut single);
                let got: Vec<u32> = batched[s * n..(s + 1) * n]
                    .iter()
                    .map(|v| v.to_bits())
                    .collect();
                let want: Vec<u32> = single.iter().map(|v| v.to_bits()).collect();
                assert_eq!(
                    got, want,
                    "width {width} sample {s} diverged at {workers} workers"
                );
            }
        }
    }
}

/// The raw-slice kernel and the `Matrix`-typed entry point are one code
/// path: identical bits for identical operands.
#[test]
fn raw_kernel_matches_matrix_entry_point() {
    let (m, k, n) = (6, 41, 17);
    let a = rand_vec(m * k, 1);
    let b = Matrix::from_vec(n, k, rand_vec(n * k, 2));
    let mut via_matrix = Vec::new();
    matmul_transb_into(&a, m, k, &b, &mut via_matrix);
    let mut via_raw = vec![9.0f32; 3]; // dirty, wrongly-sized scratch
    matmul_transb_raw(&a, m, k, &b.data, n, &mut via_raw);
    assert_eq!(
        via_matrix.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        via_raw.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
    );
}
