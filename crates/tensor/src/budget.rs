//! Byte-budget ledger and the budget-gated ordered pipeline.
//!
//! The streaming encode path (`dsz_core::encode_stream`) and the SZ
//! chunk emitter (`dsz_sz`) both bound their buffered bytes against one
//! shared [`ByteBudget`]: a ledger of *reserved* bytes with a hard cap
//! and a high-water mark. Charges are conservative reservations taken
//! **before** a buffer exists and released when it is consumed, so the
//! ledger's high-water mark is an upper bound on the bytes the pipeline
//! ever held — the cap is enforced at reservation time, not observed
//! after the fact.
//!
//! [`ordered_pipeline`] is the execution shape both layers of the encode
//! path share: produce items `0..n` on pool workers with a bounded
//! in-flight window, consume them on the calling thread in strict index
//! order. Spawning item `i` requires its reservation to fit under the
//! cap; when it does not, the caller retires in-flight items (join +
//! consume + release) until it fits. The head-of-line item is exempt —
//! a pipeline must always be allowed to hold the one item it is
//! executing, so when nothing is in flight the reservation is charged
//! unconditionally (the documented "mandatory floor", mirroring the
//! decode-side `with_decoded_bytes_budget` semantics where the single
//! layer being materialized is never refused). `docs/STREAMING_ENCODE.md`
//! documents the model end to end.

use crate::parallel::{clamp_to_host, with_workers, worker_count};
use crate::pool;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// A concurrent ledger of reserved bytes with an optional hard cap and a
/// high-water mark.
///
/// `try_charge` is the gate: it atomically reserves `n` bytes only when
/// the ledger stays at or under the cap, so a pipeline that only buffers
/// after a successful `try_charge` can never exceed the cap. `charge` is
/// the mandatory-floor escape hatch for head-of-line work that must
/// proceed regardless; it is the only way the ledger can go over cap,
/// and the high-water mark records it honestly.
#[derive(Debug)]
pub struct ByteBudget {
    /// Cap in bytes; `usize::MAX` means unbounded.
    cap: usize,
    cur: AtomicUsize,
    hwm: AtomicUsize,
}

impl ByteBudget {
    /// A ledger with no cap: every `try_charge` succeeds, and the
    /// high-water mark still tracks peak reserved bytes (this is how the
    /// materializing encode path measures its peak).
    pub fn unbounded() -> Self {
        Self::bounded(usize::MAX)
    }

    /// A ledger capped at `cap` bytes.
    pub fn bounded(cap: usize) -> Self {
        Self {
            cap,
            cur: AtomicUsize::new(0),
            hwm: AtomicUsize::new(0),
        }
    }

    /// `bounded(cap)` when `Some`, otherwise [`ByteBudget::unbounded`].
    pub fn new(cap: Option<usize>) -> Self {
        Self::bounded(cap.unwrap_or(usize::MAX))
    }

    /// The cap, or `None` when unbounded.
    pub fn cap(&self) -> Option<usize> {
        (self.cap != usize::MAX).then_some(self.cap)
    }

    /// Atomically reserves `n` bytes iff the ledger stays ≤ cap; returns
    /// whether the reservation was taken.
    pub fn try_charge(&self, n: usize) -> bool {
        let mut cur = self.cur.load(Ordering::Relaxed);
        loop {
            if n > self.cap.saturating_sub(cur) {
                return false;
            }
            match self
                .cur
                .compare_exchange_weak(cur, cur + n, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => {
                    self.bump_hwm(cur + n);
                    return true;
                }
                Err(seen) => cur = seen,
            }
        }
    }

    /// Reserves `n` bytes unconditionally (the mandatory floor for
    /// head-of-line work). May push the ledger over cap; the high-water
    /// mark records it.
    pub fn charge(&self, n: usize) {
        let cur = self.cur.fetch_add(n, Ordering::Relaxed);
        self.bump_hwm(cur + n);
    }

    /// Releases a prior reservation of `n` bytes.
    pub fn release(&self, n: usize) {
        let prev = self.cur.fetch_sub(n, Ordering::Relaxed);
        debug_assert!(prev >= n, "budget release underflow");
    }

    /// Currently reserved bytes.
    pub fn current(&self) -> usize {
        self.cur.load(Ordering::Relaxed)
    }

    /// Peak reserved bytes over the ledger's lifetime.
    pub fn high_water(&self) -> usize {
        self.hwm.load(Ordering::Relaxed)
    }

    /// Current reservations as a fraction of the cap, in `[0, 1]` under
    /// normal operation (a forced [`ByteBudget::charge`] can push it
    /// past 1). `0.0` for an unbounded or zero-cap ledger — there is no
    /// meaningful fullness to report. This is the load-watermark the
    /// serving layer exports for its shed decisions.
    pub fn utilization(&self) -> f64 {
        match self.cap() {
            Some(cap) if cap > 0 => self.current() as f64 / cap as f64,
            _ => 0.0,
        }
    }

    fn bump_hwm(&self, candidate: usize) {
        let mut hwm = self.hwm.load(Ordering::Relaxed);
        while candidate > hwm {
            match self.hwm.compare_exchange_weak(
                hwm,
                candidate,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => hwm = seen,
            }
        }
    }
}

/// Wall-clock accounting returned by [`ordered_pipeline`], split so the
/// caller can report how much of its consume stage (container writes, in
/// the encode path) overlapped producer work still in flight.
#[derive(Debug, Clone, Copy, Default)]
pub struct PipelineStats {
    /// Total time spent in the consume callback (ms).
    pub consume_ms: f64,
    /// Consume time during which at least one later item was still being
    /// produced on a pool worker (ms). Zero in serial execution.
    pub overlapped_consume_ms: f64,
}

impl PipelineStats {
    /// Fraction of consume time overlapped with in-flight production, in
    /// `[0, 1]`; `0` when nothing was consumed.
    pub fn overlap_ratio(&self) -> f64 {
        if self.consume_ms > 0.0 {
            self.overlapped_consume_ms / self.consume_ms
        } else {
            0.0
        }
    }
}

/// Produces items `0..n` on pool workers and consumes them on the calling
/// thread in strict index order, holding at most `max_inflight` items and
/// never reserving more than the budget's cap (head-of-line item
/// excepted — see the module docs).
///
/// * `reserve(i)` returns the bytes to reserve for item `i` before it is
///   produced — a conservative upper bound on what `produce(i)` will
///   buffer. The reservation is released right after `consume(i, ..)`
///   returns; `produce` may take additional charges of its own on the
///   same ledger (nested chunk pipelines do exactly that).
/// * `produce(i)` runs on a pool worker (or inline) under a divided
///   worker budget, so nested `parallel_*` calls compose without
///   oversubscribing.
/// * `consume(i, item)` always runs on the calling thread, in index
///   order — byte-determinism of any serialized output is structural.
///
/// Errors surface in index order (the lowest-index failure wins) after
/// in-flight work retires, from `produce` and `consume` alike.
pub fn ordered_pipeline<R, E>(
    n: usize,
    budget: &ByteBudget,
    max_inflight: usize,
    reserve: impl Fn(usize) -> usize,
    produce: impl Fn(usize) -> Result<R, E> + Sync,
    mut consume: impl FnMut(usize, R) -> Result<(), E>,
) -> Result<PipelineStats, E>
where
    R: Send,
    E: Send,
{
    let mut stats = PipelineStats::default();
    let window = max_inflight.max(1);
    let workers = worker_count().max(1);
    if workers <= 1 || window == 1 || n <= 1 {
        // Serial degradation: same ledger accounting, no pool traffic.
        for i in 0..n {
            let cost = reserve(i);
            budget.charge(cost);
            let item = produce(i)?;
            let t = Instant::now();
            let out = consume(i, item);
            stats.consume_ms += t.elapsed().as_secs_f64() * 1e3;
            budget.release(cost);
            out?;
        }
        return Ok(stats);
    }

    // Divide the worker budget across the window so nested parallelism in
    // `produce` composes (mirrors `parallel_map`'s nesting rule).
    let eff = workers.min(window).min(n).max(1);
    let inner = (workers / eff).max(1);
    // In-flight ring entry: item index, reserved ledger bytes, handle.
    type Inflight<'scope, R, E> = VecDeque<(usize, usize, pool::TaskHandle<'scope, Result<R, E>>)>;
    pool::scope(|s| {
        let mut inflight: Inflight<'_, R, E> = VecDeque::new();
        let produce = &produce;
        let mut retire =
            |inflight: &mut Inflight<'_, R, E>, stats: &mut PipelineStats| -> Result<(), E> {
                let (idx, cost, handle) = match inflight.pop_front() {
                    Some(front) => front,
                    None => return Ok(()),
                };
                let item = handle.join();
                let overlapped = !inflight.is_empty();
                let out = item.and_then(|item| {
                    let t = Instant::now();
                    let out = consume(idx, item);
                    let ms = t.elapsed().as_secs_f64() * 1e3;
                    stats.consume_ms += ms;
                    if overlapped {
                        stats.overlapped_consume_ms += ms;
                    }
                    out
                });
                budget.release(cost);
                out
            };
        for i in 0..n {
            let cost = reserve(i);
            loop {
                if inflight.len() < window && budget.try_charge(cost) {
                    break;
                }
                if inflight.is_empty() {
                    // Mandatory floor: the pipeline always holds the item
                    // it is about to execute.
                    budget.charge(cost);
                    break;
                }
                retire(&mut inflight, &mut stats)?;
            }
            let handle = s.spawn(move || with_workers(inner, || produce(i)));
            inflight.push_back((i, cost, handle));
        }
        while !inflight.is_empty() {
            retire(&mut inflight, &mut stats)?;
        }
        Ok(stats)
    })
}

/// Suggested in-flight window for an ordered pipeline: roomy enough to
/// keep `workers` busy through consume stalls without unbounded fan-out.
pub fn default_window() -> usize {
    clamp_to_host(worker_count()).max(1) * 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::with_workers;

    #[test]
    fn try_charge_enforces_cap() {
        let b = ByteBudget::bounded(100);
        assert!(b.try_charge(60));
        assert!(!b.try_charge(41));
        assert!(b.try_charge(40));
        assert_eq!(b.current(), 100);
        assert!(!b.try_charge(1));
        b.release(60);
        assert!(b.try_charge(1));
        assert_eq!(b.high_water(), 100);
    }

    #[test]
    fn forced_charge_recorded_in_high_water() {
        let b = ByteBudget::bounded(10);
        b.charge(25);
        assert_eq!(b.current(), 25);
        assert_eq!(b.high_water(), 25);
        b.release(25);
        assert_eq!(b.current(), 0);
        assert_eq!(b.high_water(), 25);
    }

    #[test]
    fn utilization_tracks_cap_fraction() {
        let b = ByteBudget::bounded(200);
        assert_eq!(b.utilization(), 0.0);
        assert!(b.try_charge(50));
        assert!((b.utilization() - 0.25).abs() < 1e-12);
        b.charge(250); // forced floor may pass the cap
        assert!(b.utilization() > 1.0, "forced charges report honestly");
        // Degenerate ledgers have no meaningful fullness.
        assert_eq!(ByteBudget::unbounded().utilization(), 0.0);
        assert_eq!(ByteBudget::bounded(0).utilization(), 0.0);
    }

    #[test]
    fn unbounded_always_charges_and_tracks_peak() {
        let b = ByteBudget::unbounded();
        assert_eq!(b.cap(), None);
        assert!(b.try_charge(1 << 40));
        assert!(b.try_charge(1 << 40));
        b.release(1 << 40);
        assert_eq!(b.high_water(), 2 << 40);
    }

    fn run_pipeline(workers: usize, cap: Option<usize>, window: usize) -> (Vec<usize>, usize) {
        let budget = ByteBudget::new(cap);
        let mut order = Vec::new();
        let stats: Result<PipelineStats, ()> = with_workers(workers, || {
            ordered_pipeline(
                17,
                &budget,
                window,
                |_| 10,
                |i| Ok(i * i),
                |i, sq| {
                    assert_eq!(sq, i * i);
                    order.push(i);
                    Ok(())
                },
            )
        });
        stats.unwrap();
        assert_eq!(budget.current(), 0, "all reservations released");
        (order, budget.high_water())
    }

    #[test]
    fn consumes_in_index_order_any_workers() {
        for workers in [1, 2, 4, 8] {
            let (order, _) = run_pipeline(workers, None, 6);
            assert_eq!(order, (0..17).collect::<Vec<_>>());
        }
    }

    #[test]
    fn cap_bounds_high_water_mark() {
        for workers in [1, 3, 8] {
            let (order, hwm) = run_pipeline(workers, Some(30), 8);
            assert_eq!(order.len(), 17);
            assert!(hwm <= 30, "hwm {hwm} exceeded cap");
        }
    }

    #[test]
    fn floor_item_always_proceeds_when_cap_too_small() {
        // Cap below a single item's reservation: the head-of-line charge
        // still goes through, one item at a time.
        let (order, hwm) = run_pipeline(4, Some(3), 8);
        assert_eq!(order, (0..17).collect::<Vec<_>>());
        assert!(hwm <= 10 + 3, "only the floor may exceed the cap: {hwm}");
    }

    #[test]
    fn produce_error_surfaces_lowest_index_first() {
        let budget = ByteBudget::unbounded();
        let err: Result<PipelineStats, usize> = with_workers(4, || {
            ordered_pipeline(
                9,
                &budget,
                4,
                |_| 1,
                |i| if i >= 3 { Err(i) } else { Ok(i) },
                |_, _| Ok(()),
            )
        });
        assert_eq!(err.unwrap_err(), 3);
    }

    #[test]
    fn consume_error_aborts() {
        let budget = ByteBudget::unbounded();
        let err: Result<PipelineStats, &'static str> = with_workers(4, || {
            ordered_pipeline(
                9,
                &budget,
                4,
                |_| 1,
                Ok,
                |i, _| if i == 5 { Err("stop") } else { Ok(()) },
            )
        });
        assert_eq!(err.unwrap_err(), "stop");
    }
}
