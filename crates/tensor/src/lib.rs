//! Minimal dense-tensor compute substrate for the DNN layers.
//!
//! The paper runs on Caffe + cuDNN; the framework itself only needs forward
//! passes (and SGD retraining for the pruning step), so this crate provides
//! exactly that foundation: a row-major [`Matrix`], cache-blocked matrix
//! multiplication parallelized over the persistent worker pool, and the
//! im2col transform used to lower convolutions to matmul.
//!
//! Execution model: the [`parallel`] helpers enqueue work onto the
//! lazily-initialized long-lived pool in [`pool`] (the caller always
//! participates, so nothing ever waits on pool availability); worker
//! budgets nest by division so parallelism composes without multiplying
//! threads. `docs/PARALLEL.md` documents the model end to end.

pub mod budget;
pub mod parallel;
pub mod pool;

use parallel::parallel_for_rows;

/// Row-major `rows × cols` matrix of `f32`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Row-major storage, `rows * cols` long.
    pub data: Vec<f32>,
}

impl Matrix {
    /// Zero-filled matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Wraps existing storage (must be `rows * cols` long).
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix shape mismatch");
        Self { rows, cols, data }
    }

    /// Immutable row slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element accessor (debug-checked).
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }
}

/// Tile width along `k` for the blocked kernels; sized so that a tile of B
/// rows stays in L1/L2.
const K_BLOCK: usize = 256;

/// `C = A·B` where A is `m×k`, B is `k×n`. Parallel over rows of A.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols, b.rows, "matmul inner dimension mismatch");
    let (m, k, n) = (a.rows, a.cols, b.cols);
    let mut c = Matrix::zeros(m, n);
    let bdata = &b.data;
    let adata = &a.data;
    parallel_for_rows(m, &mut c.data, n, |r0, rows_chunk| {
        // i-k-j order with k blocking: streams rows of B through cache.
        for (ri, crow) in rows_chunk.chunks_exact_mut(n).enumerate() {
            let r = r0 + ri;
            let arow = &adata[r * k..(r + 1) * k];
            let mut k0 = 0;
            while k0 < k {
                let k1 = (k0 + K_BLOCK).min(k);
                for kk in k0..k1 {
                    let av = arow[kk];
                    if av == 0.0 {
                        continue;
                    }
                    let brow = &bdata[kk * n..kk * n + n];
                    for (cv, &bv) in crow.iter_mut().zip(brow) {
                        *cv += av * bv;
                    }
                }
                k0 = k1;
            }
        }
    });
    c
}

/// `C = A·Bᵀ` where A is `m×k`, B is `n×k` (dense-layer forward with
/// weight rows as output neurons).
pub fn matmul_transb(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols, b.cols, "matmul_transb inner dimension mismatch");
    let mut c = Vec::new();
    matmul_transb_into(&a.data, a.rows, a.cols, b, &mut c);
    Matrix::from_vec(a.rows, b.rows, c)
}

/// `C = A·Bᵀ` into a caller-owned buffer: `a` is an `m×k` row-major slice,
/// `b` is `n×k`, and `out` is resized to `m·n` (reusing its capacity).
/// This is the allocation-free kernel behind [`matmul_transb`]; the
/// suffix-forward scratch path (`dsz_nn::Network::forward_from`) calls it
/// directly so repeated inference tests reuse one activation buffer. Both
/// entry points share one loop, so their outputs are bit-identical.
pub fn matmul_transb_into(a: &[f32], m: usize, k: usize, b: &Matrix, out: &mut Vec<f32>) {
    assert_eq!(b.cols, k, "matmul_transb_into inner dimension mismatch");
    matmul_transb_raw(a, m, k, &b.data, b.rows, out);
}

/// `C = A·Bᵀ` with both operands as raw row-major slices: `a` is `m×k`,
/// `bdata` is `n×k`, and `out` is resized to `m·n`. This is the innermost
/// kernel behind [`matmul_transb`] and [`matmul_transb_into`]; the serving
/// layer calls it directly so weights shared out of the cross-model layer
/// cache (`Arc<Vec<f32>>`) multiply without being copied into a `Matrix`.
/// All entry points share this one loop, so outputs are bit-identical
/// across them — and each output element is one sequential dot product,
/// so results are also bit-identical across batch widths and worker
/// counts (rows split across workers; the per-row loop never does).
pub fn matmul_transb_raw(
    a: &[f32],
    m: usize,
    k: usize,
    bdata: &[f32],
    n: usize,
    out: &mut Vec<f32>,
) {
    assert_eq!(a.len(), m * k, "matmul_transb lhs shape mismatch");
    assert_eq!(bdata.len(), n * k, "matmul_transb rhs shape mismatch");
    out.clear();
    out.resize(m * n, 0.0);
    parallel_for_rows(m, out, n, |r0, rows_chunk| {
        for (ri, crow) in rows_chunk.chunks_exact_mut(n).enumerate() {
            let r = r0 + ri;
            let arow = &a[r * k..(r + 1) * k];
            for (j, cv) in crow.iter_mut().enumerate() {
                let brow = &bdata[j * k..(j + 1) * k];
                let mut acc = 0f32;
                for (x, y) in arow.iter().zip(brow) {
                    acc += x * y;
                }
                *cv = acc;
            }
        }
    });
}

/// `C = Aᵀ·B` where A is `k×m`, B is `k×n` (gradient wrt weights).
pub fn matmul_transa(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.rows, b.rows, "matmul_transa inner dimension mismatch");
    let (k, m, n) = (a.rows, a.cols, b.cols);
    let mut c = Matrix::zeros(m, n);
    let adata = &a.data;
    let bdata = &b.data;
    parallel_for_rows(m, &mut c.data, n, |r0, rows_chunk| {
        for (ri, crow) in rows_chunk.chunks_exact_mut(n).enumerate() {
            let r = r0 + ri;
            for kk in 0..k {
                let av = adata[kk * m + r];
                if av == 0.0 {
                    continue;
                }
                let brow = &bdata[kk * n..kk * n + n];
                for (cv, &bv) in crow.iter_mut().zip(brow) {
                    *cv += av * bv;
                }
            }
        }
    });
    c
}

/// Shape of an image volume (channels, height, width).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VolShape {
    /// Channels.
    pub c: usize,
    /// Height.
    pub h: usize,
    /// Width.
    pub w: usize,
}

impl VolShape {
    /// Element count.
    pub fn len(&self) -> usize {
        self.c * self.h * self.w
    }

    /// True when any dimension is zero.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Output spatial size of a convolution/pool window.
pub fn conv_out_dim(input: usize, kernel: usize, stride: usize, pad: usize) -> usize {
    (input + 2 * pad - kernel) / stride + 1
}

/// Lowers one CHW image into the im2col matrix with `c·kh·kw` rows and
/// `oh·ow` columns, so that convolution becomes `W · col`.
#[allow(clippy::too_many_arguments)]
pub fn im2col(
    img: &[f32],
    shape: VolShape,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
    out: &mut Matrix,
) {
    let oh = conv_out_dim(shape.h, kh, stride, pad);
    let ow = conv_out_dim(shape.w, kw, stride, pad);
    debug_assert_eq!(out.rows, shape.c * kh * kw);
    debug_assert_eq!(out.cols, oh * ow);
    for ci in 0..shape.c {
        let plane = &img[ci * shape.h * shape.w..(ci + 1) * shape.h * shape.w];
        for ky in 0..kh {
            for kx in 0..kw {
                let orow = (ci * kh * kw + ky * kw + kx) * out.cols;
                for oy in 0..oh {
                    let iy = (oy * stride + ky) as isize - pad as isize;
                    for ox in 0..ow {
                        let ix = (ox * stride + kx) as isize - pad as isize;
                        let v = if iy >= 0
                            && (iy as usize) < shape.h
                            && ix >= 0
                            && (ix as usize) < shape.w
                        {
                            plane[iy as usize * shape.w + ix as usize]
                        } else {
                            0.0
                        };
                        out.data[orow + oy * ow + ox] = v;
                    }
                }
            }
        }
    }
}

/// Inverse of [`im2col`]: scatters column-matrix gradients back into an
/// image-shaped gradient (accumulating where windows overlap).
#[allow(clippy::too_many_arguments)]
pub fn col2im(
    cols: &Matrix,
    shape: VolShape,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
    img: &mut [f32],
) {
    let oh = conv_out_dim(shape.h, kh, stride, pad);
    let ow = conv_out_dim(shape.w, kw, stride, pad);
    img.fill(0.0);
    for ci in 0..shape.c {
        for ky in 0..kh {
            for kx in 0..kw {
                let crow = (ci * kh * kw + ky * kw + kx) * cols.cols;
                for oy in 0..oh {
                    let iy = (oy * stride + ky) as isize - pad as isize;
                    if iy < 0 || iy as usize >= shape.h {
                        continue;
                    }
                    for ox in 0..ow {
                        let ix = (ox * stride + kx) as isize - pad as isize;
                        if ix < 0 || ix as usize >= shape.w {
                            continue;
                        }
                        img[ci * shape.h * shape.w + iy as usize * shape.w + ix as usize] +=
                            cols.data[crow + oy * ow + ox];
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut c = Matrix::zeros(a.rows, b.cols);
        for i in 0..a.rows {
            for j in 0..b.cols {
                let mut acc = 0f32;
                for k in 0..a.cols {
                    acc += a.at(i, k) * b.at(k, j);
                }
                c.data[i * b.cols + j] = acc;
            }
        }
        c
    }

    fn rand_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut s = seed;
        let data = (0..rows * cols)
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((s >> 33) as f32 / (1u64 << 31) as f32) - 0.5
            })
            .collect();
        Matrix::from_vec(rows, cols, data)
    }

    fn assert_close(a: &Matrix, b: &Matrix, tol: f32) {
        assert_eq!((a.rows, a.cols), (b.rows, b.cols));
        for (x, y) in a.data.iter().zip(&b.data) {
            assert!((x - y).abs() <= tol, "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_matches_naive() {
        for (m, k, n) in [(1, 1, 1), (3, 5, 7), (17, 33, 9), (64, 100, 50)] {
            let a = rand_matrix(m, k, 1);
            let b = rand_matrix(k, n, 2);
            assert_close(&matmul(&a, &b), &naive_matmul(&a, &b), 1e-3);
        }
    }

    #[test]
    fn matmul_transb_matches_naive() {
        let a = rand_matrix(13, 21, 3);
        let b = rand_matrix(17, 21, 4);
        let want = naive_matmul(&a, &b.transpose());
        assert_close(&matmul_transb(&a, &b), &want, 1e-3);
    }

    #[test]
    fn matmul_transb_into_reuses_buffer_bit_identically() {
        let a = rand_matrix(9, 31, 21);
        let b = rand_matrix(5, 31, 22);
        let want = matmul_transb(&a, &b);
        // A dirty, differently-sized scratch buffer must come out identical.
        let mut out = vec![7.0f32; 3];
        matmul_transb_into(&a.data, a.rows, a.cols, &b, &mut out);
        assert_eq!(out, want.data);
        let cap = out.capacity();
        matmul_transb_into(&a.data, a.rows, a.cols, &b, &mut out);
        assert_eq!(out, want.data);
        assert_eq!(out.capacity(), cap, "steady-state call must not realloc");
    }

    #[test]
    fn matmul_transa_matches_naive() {
        let a = rand_matrix(21, 13, 5);
        let b = rand_matrix(21, 17, 6);
        let want = naive_matmul(&a.transpose(), &b);
        assert_close(&matmul_transa(&a, &b), &want, 1e-3);
    }

    #[test]
    fn matmul_large_k_blocking() {
        let a = rand_matrix(4, 1000, 7);
        let b = rand_matrix(1000, 3, 8);
        assert_close(&matmul(&a, &b), &naive_matmul(&a, &b), 1e-2);
    }

    #[test]
    fn transpose_involution() {
        let a = rand_matrix(7, 11, 9);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn conv_out_dims() {
        assert_eq!(conv_out_dim(28, 5, 1, 0), 24);
        assert_eq!(conv_out_dim(24, 2, 2, 0), 12);
        assert_eq!(conv_out_dim(4, 3, 1, 1), 4);
        assert_eq!(conv_out_dim(227, 11, 4, 0), 55);
    }

    #[test]
    fn im2col_identity_kernel() {
        // 1×1 kernel, stride 1, no pad: im2col is the identity layout.
        let shape = VolShape { c: 2, h: 3, w: 3 };
        let img: Vec<f32> = (0..18).map(|i| i as f32).collect();
        let mut cols = Matrix::zeros(2, 9);
        im2col(&img, shape, 1, 1, 1, 0, &mut cols);
        assert_eq!(cols.data, img);
    }

    #[test]
    fn im2col_known_small_case() {
        // 1 channel 3×3, 2×2 kernel stride 1 → 4 windows.
        let shape = VolShape { c: 1, h: 3, w: 3 };
        let img = vec![1., 2., 3., 4., 5., 6., 7., 8., 9.];
        let mut cols = Matrix::zeros(4, 4);
        im2col(&img, shape, 2, 2, 1, 0, &mut cols);
        // Row layout: k=(0,0),(0,1),(1,0),(1,1); windows TL,TR,BL,BR.
        assert_eq!(cols.row(0), &[1., 2., 4., 5.]);
        assert_eq!(cols.row(1), &[2., 3., 5., 6.]);
        assert_eq!(cols.row(2), &[4., 5., 7., 8.]);
        assert_eq!(cols.row(3), &[5., 6., 8., 9.]);
    }

    #[test]
    fn im2col_padding_zeroes_border() {
        let shape = VolShape { c: 1, h: 2, w: 2 };
        let img = vec![1., 2., 3., 4.];
        let oh = conv_out_dim(2, 3, 1, 1);
        let mut cols = Matrix::zeros(9, oh * oh);
        im2col(&img, shape, 3, 3, 1, 1, &mut cols);
        // Center kernel tap over window (0,0) is img[0]; corner taps are 0.
        assert_eq!(cols.at(4, 0), 1.0);
        assert_eq!(cols.at(0, 0), 0.0);
    }

    #[test]
    fn col2im_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> — the transforms are adjoint,
        // which is exactly the property backprop relies on.
        let shape = VolShape { c: 2, h: 5, w: 4 };
        let x: Vec<f32> = (0..shape.len()).map(|i| (i as f32 * 0.37).sin()).collect();
        let (kh, kw, stride, pad) = (3, 2, 1, 1);
        let oh = conv_out_dim(shape.h, kh, stride, pad);
        let ow = conv_out_dim(shape.w, kw, stride, pad);
        let mut cx = Matrix::zeros(shape.c * kh * kw, oh * ow);
        im2col(&x, shape, kh, kw, stride, pad, &mut cx);
        let y = rand_matrix(cx.rows, cx.cols, 11);
        let mut back = vec![0f32; shape.len()];
        col2im(&y, shape, kh, kw, stride, pad, &mut back);
        let lhs: f32 = cx.data.iter().zip(&y.data).map(|(a, b)| a * b).sum();
        let rhs: f32 = x.iter().zip(&back).map(|(a, b)| a * b).sum();
        assert!(
            (lhs - rhs).abs() < 1e-2 * lhs.abs().max(1.0),
            "{lhs} vs {rhs}"
        );
    }
}
