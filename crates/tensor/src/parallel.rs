//! Scoped-thread data parallelism.
//!
//! A tiny rayon-style `parallel for` over contiguous row chunks of an output
//! buffer. Work is split evenly across `available_parallelism()` threads with
//! `std::thread::scope`, so the closure may borrow from the caller. On a
//! single-core host this degrades to a plain loop with no thread spawn.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Returns the worker count used by [`parallel_for_rows`].
pub fn worker_count() -> usize {
    std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
}

/// Minimum rows per spawned task; below this the work runs inline.
const MIN_ROWS_PER_TASK: usize = 8;

/// Splits `out` (logically `rows × row_width`) into disjoint row chunks and
/// calls `f(first_row, chunk)` for each, in parallel.
///
/// `f` must be pure with respect to its chunk (it owns it exclusively); it
/// may read any shared captured state.
pub fn parallel_for_rows<F>(rows: usize, out: &mut [f32], row_width: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    assert_eq!(out.len(), rows * row_width, "output buffer shape mismatch");
    if out.is_empty() {
        return;
    }
    let workers = worker_count();
    if workers <= 1 || rows <= MIN_ROWS_PER_TASK {
        f(0, out);
        return;
    }
    let chunk_rows = rows.div_ceil(workers).max(MIN_ROWS_PER_TASK);
    std::thread::scope(|s| {
        let mut rest = out;
        let mut row0 = 0usize;
        while !rest.is_empty() {
            let take = (chunk_rows * row_width).min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            let fr = &f;
            let r0 = row0;
            s.spawn(move || fr(r0, head));
            row0 += take / row_width;
            rest = tail;
        }
    });
}

/// Runs independent jobs (e.g. per-layer compression tasks) across threads,
/// collecting results in input order. A dynamic work queue keeps uneven job
/// costs balanced — this is the thread-level stand-in for the paper's
/// multi-GPU parallel encoding.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = worker_count().min(items.len().max(1));
    if workers <= 1 {
        return items.iter().map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut results: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    let slots: Vec<_> = results.iter_mut().map(std::sync::Mutex::new).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(&items[i]);
                **slots[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    results.into_iter().map(|r| r.expect("job completed")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_for_rows_covers_everything() {
        let rows = 103;
        let width = 7;
        let mut out = vec![0f32; rows * width];
        parallel_for_rows(rows, &mut out, width, |r0, chunk| {
            for (i, v) in chunk.iter_mut().enumerate() {
                let r = r0 + i / width;
                let c = i % width;
                *v = (r * width + c) as f32;
            }
        });
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as f32);
        }
    }

    #[test]
    fn parallel_for_rows_empty() {
        let mut out: Vec<f32> = vec![];
        parallel_for_rows(0, &mut out, 5, |_, _| panic!("no work expected"));
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = parallel_map(&items, |&x| x * x);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
    }

    #[test]
    fn parallel_map_empty() {
        let items: Vec<u32> = vec![];
        assert!(parallel_map(&items, |&x| x).is_empty());
    }
}
