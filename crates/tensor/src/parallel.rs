//! Pooled data parallelism.
//!
//! A tiny rayon-style toolkit whose closures may borrow from the caller and
//! which needs no dependency:
//!
//! * [`parallel_for_rows`] — split an output buffer into contiguous row
//!   chunks claimed off a work queue (matmul-style loops).
//! * [`parallel_map`] — run independent jobs through a dynamic work queue,
//!   collecting results in input order. Result slots are written lock-free:
//!   the atomic queue hands each index to exactly one worker, so every slot
//!   has a single writer and the batch retirement publishes the writes.
//! * [`parallel_chunks`] — split a mutable buffer into caller-sized
//!   disjoint chunks and fill them in parallel with fallible workers (the
//!   chunked SZ decoder's primitive).
//!
//! Since PR 3 every helper executes on the persistent worker pool in
//! [`crate::pool`] instead of spawning fresh `std::thread::scope` threads
//! per call: the caller participates in its own batch and up to
//! `workers - 1` condvar-parked pool threads join in, so per-call overhead
//! is an enqueue + wakeup rather than thread creation. Outputs stay
//! byte-identical for any worker count (and any pool occupancy) because
//! work items are indexed and every slot has exactly one writer; see
//! `docs/PARALLEL.md` for the full execution model.
//!
//! Worker count resolves, in order: a thread-local [`with_workers`]
//! override (used by determinism tests), the `DSZ_THREADS` environment
//! variable, then `available_parallelism()`. On a single-core host every
//! helper degrades to a plain loop touching no queue at all.
//!
//! # Budget nesting
//!
//! A helper running `w` ways out of a budget of `n` pins each execution
//! (including the caller's own participation) to an inner budget of
//! `(n / w).max(1)`, so nested parallel sections subdivide instead of
//! multiplying the live thread count. The inline fallback (budget ≤ 1 or
//! trivially small input) keeps the *full* budget visible to nested calls.

use crate::pool;
use std::cell::Cell;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

thread_local! {
    static WORKER_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Returns the worker count used by the helpers in this module.
pub fn worker_count() -> usize {
    if let Some(n) = WORKER_OVERRIDE.with(Cell::get) {
        return n.max(1);
    }
    layout_workers()
}

/// Hardware parallelism of this host, cached (the syscall sits on the
/// matmul hot path via [`worker_count`] → [`layout_workers`]).
pub fn host_parallelism() -> usize {
    static HOST: OnceLock<usize> = OnceLock::new();
    *HOST.get_or_init(|| {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Clamps a requested worker count to what the host can actually run
/// concurrently: `[1, available_parallelism()]`.
///
/// Worker counts above the core count never help on the execution side —
/// they only add queue wakeups and context switches (a measured 33 → 44 ms
/// encode regression for `DSZ_THREADS=4` on a 1-core host) — and on the
/// layout side they shrink the adaptive SZ chunk size, baking extra
/// chunk-framing overhead into the container bytes. Both [`layout_workers`]
/// and the pool-engagement decision in each helper below route through
/// this clamp; the explicit [`with_workers`] *budget* is intentionally not
/// clamped, so budget-nesting arithmetic (and the tests pinning it) stays
/// host-independent.
pub fn clamp_to_host(requested: usize) -> usize {
    requested.clamp(1, host_parallelism())
}

/// Process-level worker budget: `DSZ_THREADS` if set (clamped to
/// [`host_parallelism`]), else `available_parallelism()` — ignoring any
/// [`with_workers`] override.
///
/// Use this for **layout** decisions that must not vary with execution
/// pinning (e.g. the SZ v3/v4 adaptive chunk size, which is baked into the
/// container bytes): `with_workers` exists so tests and benches can sweep
/// execution parallelism while the emitted bytes stay identical. Clamping
/// the env value means `DSZ_THREADS=4` on a 1-core host emits byte-identical
/// containers to `DSZ_THREADS=1` instead of quarter-sized adaptive chunks.
pub fn layout_workers() -> usize {
    // The env var cannot change mid-process in any supported way, so read
    // and parse it once; this sits on the matmul hot path via
    // `worker_count`.
    static ENV_THREADS: OnceLock<Option<usize>> = OnceLock::new();
    if let Some(n) = ENV_THREADS.get_or_init(|| {
        std::env::var("DSZ_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
    }) {
        return clamp_to_host(*n);
    }
    host_parallelism()
}

/// Runs `f` with the calling thread's worker count pinned to `n`.
///
/// The pin follows the work through nested parallel sections: when a
/// helper here runs `w` ways out of a budget of `n`, each execution's own
/// nested parallel calls see a budget of `n / w` (at least 1), so the
/// total live thread count stays ~`n` instead of multiplying per level.
/// Used by tests asserting thread-count-independent output and by benches
/// comparing 1-thread vs N-thread timings.
pub fn with_workers<R>(n: usize, f: impl FnOnce() -> R) -> R {
    let prev = WORKER_OVERRIDE.with(|c| c.replace(Some(n.max(1))));
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            WORKER_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(prev);
    f()
}

/// Minimum rows per work item; below this the work runs inline.
const MIN_ROWS_PER_TASK: usize = 8;

/// Shared pointer to per-item state (result slots, chunk slices, …).
/// Safety: the atomic work queue hands each index to exactly one execution,
/// so all writes target disjoint items, and the pool batch retirement
/// happens-before the submitting caller's reads.
struct RawItems<T>(*mut T);

unsafe impl<T: Send> Sync for RawItems<T> {}

/// Splits `out` (logically `rows × row_width`) into disjoint row chunks and
/// calls `f(first_row, chunk)` for each, in parallel on the pool.
///
/// `f` must be pure with respect to its chunk (it owns it exclusively); it
/// may read any shared captured state. Nested parallel calls inside `f` see
/// the divided budget `(budget / workers).max(1)`, the same rule as
/// [`parallel_map`].
pub fn parallel_for_rows<F>(rows: usize, out: &mut [f32], row_width: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    assert_eq!(out.len(), rows * row_width, "output buffer shape mismatch");
    if out.is_empty() {
        return;
    }
    let budget = worker_count();
    if budget <= 1 || rows <= MIN_ROWS_PER_TASK {
        f(0, out);
        return;
    }
    let chunk_rows = rows.div_ceil(budget).max(MIN_ROWS_PER_TASK);
    let mut chunks: Vec<(usize, &mut [f32])> = Vec::with_capacity(rows.div_ceil(chunk_rows));
    let mut rest = out;
    let mut row0 = 0usize;
    while !rest.is_empty() {
        let take = (chunk_rows * row_width).min(rest.len());
        let (head, tail) = rest.split_at_mut(take);
        chunks.push((row0, head));
        row0 += take / row_width;
        rest = tail;
    }
    let n = chunks.len();
    let workers = budget.min(n);
    let inner_budget = (budget / workers).max(1);
    let items = RawItems(chunks.as_mut_ptr());
    let next = AtomicUsize::new(0);
    {
        let items = &items;
        let next = &next;
        let fr = &f;
        // Engage only as many threads as the host has cores; the budget
        // arithmetic above is deliberately unclamped (see `clamp_to_host`).
        pool::run_batch(clamp_to_host(workers) - 1, &move || {
            with_workers(inner_budget, || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                // SAFETY: `i` is claimed exactly once, so this execution
                // holds the only live reference to chunk `i`.
                let (r0, chunk) = unsafe { &mut *items.0.add(i) };
                fr(*r0, chunk);
            })
        });
    }
}

/// Runs independent jobs (e.g. per-layer or per-chunk compression tasks)
/// across pool workers, collecting results in input order. A dynamic work
/// queue keeps uneven job costs balanced — this is the thread-level
/// stand-in for the paper's multi-GPU parallel encoding. Slot writes are
/// lock-free (one writer per slot, published by the batch retirement).
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let budget = worker_count();
    let workers = budget.min(n.max(1));
    if workers <= 1 {
        // Inline: the full budget stays visible to nested parallel calls.
        return items.iter().map(&f).collect();
    }
    // Divide the budget across nesting levels: each execution's own nested
    // parallel sections (e.g. chunked SZ inside a per-layer job) get the
    // remaining share instead of multiplying the thread count.
    let inner_budget = (budget / workers).max(1);
    let mut results: Vec<Option<R>> = Vec::with_capacity(n);
    results.resize_with(n, || None);
    let slots = RawItems(results.as_mut_ptr());
    let next = AtomicUsize::new(0);
    {
        let slots = &slots;
        let next = &next;
        let fr = &f;
        // Engage only as many threads as the host has cores; the budget
        // arithmetic above is deliberately unclamped (see `clamp_to_host`).
        pool::run_batch(clamp_to_host(workers) - 1, &move || {
            with_workers(inner_budget, || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = fr(&items[i]);
                // SAFETY: `i` came from the queue exactly once, so this
                // slot has no other writer; batch retirement publishes it.
                unsafe { *slots.0.add(i) = Some(r) };
            })
        });
    }
    results
        .into_iter()
        .map(|r| r.expect("job completed"))
        .collect()
}

/// Splits `data` into consecutive chunks of the given `sizes` (which must
/// sum to `data.len()`) and runs `f(chunk_index, chunk)` for each in
/// parallel on the pool. The first worker error (if any) is returned;
/// remaining queued chunks are skipped once an error is observed.
///
/// This is the disjoint-slot primitive behind chunk-parallel SZ decoding:
/// every chunk decodes straight into its slice of the final buffer, so the
/// output needs no post-hoc concatenation or copying.
pub fn parallel_chunks<T, E, F>(data: &mut [T], sizes: &[usize], f: F) -> Result<(), E>
where
    T: Send,
    E: Send + Sync,
    F: Fn(usize, &mut [T]) -> Result<(), E> + Sync,
{
    assert_eq!(
        sizes.iter().sum::<usize>(),
        data.len(),
        "chunk sizes must cover the buffer"
    );
    let budget = worker_count();
    let workers = budget.min(sizes.len().max(1));
    if workers <= 1 {
        let mut rest = data;
        for (i, &sz) in sizes.iter().enumerate() {
            let (head, tail) = rest.split_at_mut(sz);
            f(i, head)?;
            rest = tail;
        }
        return Ok(());
    }
    let mut chunks: Vec<&mut [T]> = Vec::with_capacity(sizes.len());
    let mut rest = data;
    for &sz in sizes {
        let (head, tail) = rest.split_at_mut(sz);
        chunks.push(head);
        rest = tail;
    }
    let n = chunks.len();
    let inner_budget = (budget / workers).max(1);
    let list = RawItems(chunks.as_mut_ptr());
    let next = AtomicUsize::new(0);
    // Per-chunk error slots so the *lowest-index* error is reported, the
    // same one the serial path would return — otherwise which of several
    // errors surfaces would depend on scheduling. This is deterministic
    // despite the `failed` early exit: claims are handed out monotonically
    // and a claimed chunk always runs to completion, so when any chunk
    // fails, every lower-index chunk has already been claimed and will
    // record its own error if it has one.
    let mut errors: Vec<Option<E>> = Vec::with_capacity(n);
    errors.resize_with(n, || None);
    let err_slots = RawItems(errors.as_mut_ptr());
    let failed = std::sync::atomic::AtomicBool::new(false);
    {
        let list = &list;
        let next = &next;
        let fr = &f;
        let err_slots = &err_slots;
        let failed = &failed;
        // Engage only as many threads as the host has cores; the budget
        // arithmetic above is deliberately unclamped (see `clamp_to_host`).
        pool::run_batch(clamp_to_host(workers) - 1, &move || {
            with_workers(inner_budget, || loop {
                if failed.load(Ordering::Relaxed) {
                    break;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                // SAFETY: `i` is claimed exactly once, so this execution
                // holds the only live reference to chunk `i` and its error
                // slot.
                let chunk: &mut [T] = unsafe { &mut *list.0.add(i) };
                if let Err(e) = fr(i, chunk) {
                    unsafe { *err_slots.0.add(i) = Some(e) };
                    failed.store(true, Ordering::Relaxed);
                    break;
                }
            })
        });
    }
    match errors.into_iter().flatten().next() {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn parallel_for_rows_covers_everything() {
        let rows = 103;
        let width = 7;
        let mut out = vec![0f32; rows * width];
        parallel_for_rows(rows, &mut out, width, |r0, chunk| {
            for (i, v) in chunk.iter_mut().enumerate() {
                let r = r0 + i / width;
                let c = i % width;
                *v = (r * width + c) as f32;
            }
        });
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as f32);
        }
    }

    #[test]
    fn parallel_for_rows_empty() {
        let mut out: Vec<f32> = vec![];
        parallel_for_rows(0, &mut out, 5, |_, _| panic!("no work expected"));
    }

    #[test]
    fn parallel_for_rows_divides_nested_budget() {
        // 8-way budget over 32 rows → chunk_rows = 8 → 4 chunks claimed by
        // up to 4 executions, each of which must see a nested budget of 2
        // (the old implementation hard-pinned this to 1).
        let rows = 32;
        let width = 4;
        let mut out = vec![0f32; rows * width];
        with_workers(8, || {
            parallel_for_rows(rows, &mut out, width, |_, chunk| {
                let nested = worker_count() as f32;
                for v in chunk.iter_mut() {
                    *v = nested;
                }
            });
        });
        for v in &out {
            assert_eq!(*v, 2.0, "inner budget must be (8 / 4).max(1) = 2");
        }
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        for workers in [1, 2, 4, 8] {
            let out = with_workers(workers, || parallel_map(&items, |&x| x * x));
            for (i, v) in out.iter().enumerate() {
                assert_eq!(*v, i * i, "workers={workers}");
            }
        }
    }

    #[test]
    fn parallel_map_empty() {
        let items: Vec<u32> = vec![];
        assert!(parallel_map(&items, |&x| x).is_empty());
    }

    #[test]
    fn parallel_map_heavy_allocation_results() {
        // Exercises the lock-free slot writes with non-Copy results.
        let items: Vec<usize> = (0..64).collect();
        let out = with_workers(4, || parallel_map(&items, |&x| vec![x as u8; x]));
        for (i, v) in out.iter().enumerate() {
            assert_eq!(v.len(), i);
        }
    }

    #[test]
    fn parallel_map_panic_propagates_and_pool_recovers() {
        // A panicking job must unwind out of `parallel_map` (not hang, not
        // get swallowed) and must not poison the pool for later calls.
        let items: Vec<usize> = (0..16).collect();
        let r = catch_unwind(AssertUnwindSafe(|| {
            with_workers(4, || {
                parallel_map(&items, |&x| {
                    if x == 7 {
                        panic!("job 7 exploded");
                    }
                    x
                })
            })
        }));
        assert!(r.is_err(), "panic must propagate to the caller");
        // The pool still serves subsequent batches correctly.
        let out = with_workers(4, || parallel_map(&items, |&x| x + 1));
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i + 1);
        }
    }

    #[test]
    fn parallel_chunks_fills_disjoint_slices() {
        let sizes = [3usize, 0, 7, 1, 5];
        let total: usize = sizes.iter().sum();
        for workers in [1, 3, 8] {
            let mut buf = vec![0u32; total];
            with_workers(workers, || {
                parallel_chunks(&mut buf, &sizes, |ci, chunk| -> Result<(), ()> {
                    for v in chunk.iter_mut() {
                        *v = ci as u32 + 1;
                    }
                    Ok(())
                })
            })
            .unwrap();
            let mut expect = Vec::new();
            for (ci, &sz) in sizes.iter().enumerate() {
                expect.extend(std::iter::repeat_n(ci as u32 + 1, sz));
            }
            assert_eq!(buf, expect, "workers={workers}");
        }
    }

    #[test]
    fn parallel_chunks_propagates_first_error() {
        let sizes = [4usize; 8];
        let mut buf = vec![0u8; 32];
        let res = with_workers(4, || {
            parallel_chunks(&mut buf, &sizes, |ci, _chunk| {
                if ci == 5 {
                    Err(format!("chunk {ci} failed"))
                } else {
                    Ok(())
                }
            })
        });
        assert_eq!(res.unwrap_err(), "chunk 5 failed");
    }

    #[test]
    fn nested_parallelism_divides_the_budget() {
        // 4 workers over 4 jobs: each job's nested budget collapses to 1.
        with_workers(4, || {
            let items = [0usize; 4];
            for c in parallel_map(&items, |_| worker_count()) {
                assert_eq!(c, 1);
            }
        });
        // 8-thread budget over 2 jobs: each job keeps 4 for nesting.
        with_workers(8, || {
            let items = [0usize; 2];
            for c in parallel_map(&items, |_| worker_count()) {
                assert_eq!(c, 4);
            }
        });
        // Single job runs inline: the full budget stays visible.
        with_workers(4, || {
            assert_eq!(parallel_map(&[0usize], |_| worker_count()), vec![4]);
        });
    }

    #[test]
    fn pool_workers_restore_their_budget_between_jobs() {
        // A pool worker that ran a pinned job must not leak the pin into
        // later jobs: `with_workers` inside the batch body restores the
        // thread-local on exit. Two back-to-back calls with different
        // budgets must each observe their own division.
        with_workers(8, || {
            let items = [0usize; 2];
            for c in parallel_map(&items, |_| worker_count()) {
                assert_eq!(c, 4);
            }
        });
        with_workers(6, || {
            let items = [0usize; 3];
            for c in parallel_map(&items, |_| worker_count()) {
                assert_eq!(c, 2);
            }
        });
    }

    #[test]
    fn layout_workers_ignores_execution_pinning() {
        let base = layout_workers();
        with_workers(1, || assert_eq!(layout_workers(), base));
        with_workers(64, || assert_eq!(layout_workers(), base));
    }

    #[test]
    fn clamp_to_host_bounds_requests() {
        let host = host_parallelism();
        assert!(host >= 1);
        assert_eq!(clamp_to_host(0), 1);
        assert_eq!(clamp_to_host(1), 1);
        assert_eq!(clamp_to_host(host), host);
        assert_eq!(clamp_to_host(host + 1), host);
        assert_eq!(clamp_to_host(usize::MAX), host);
        // On a 1-core host a 4-thread request collapses to 1 — the exact
        // shape of the `DSZ_THREADS=4` encode regression this fixes.
        assert_eq!(clamp_to_host(4), 4.min(host));
    }

    #[test]
    fn layout_workers_never_exceed_host() {
        // Whatever `DSZ_THREADS` the tier-1 sweep set for this process, the
        // layout budget is host-clamped, so adaptive chunk geometry (and
        // with it container bytes) cannot oversubscribe the host.
        assert!(layout_workers() <= host_parallelism());
    }

    #[test]
    fn oversubscribed_budget_still_runs_correctly() {
        // A budget far beyond the host's cores must neither deadlock nor
        // change results: the claim queue runs with at most
        // `host_parallelism()` engaged threads, same outputs as 1 worker.
        let items: Vec<usize> = (0..200).collect();
        let want: Vec<usize> = items.iter().map(|&x| x * 3 + 1).collect();
        for budget in [host_parallelism() * 4, 64] {
            let got = with_workers(budget, || parallel_map(&items, |&x| x * 3 + 1));
            assert_eq!(got, want, "budget={budget}");
        }
    }

    #[test]
    fn with_workers_overrides_and_restores() {
        let outer = worker_count();
        with_workers(3, || {
            assert_eq!(worker_count(), 3);
            with_workers(1, || assert_eq!(worker_count(), 1));
            assert_eq!(worker_count(), 3);
        });
        assert_eq!(worker_count(), outer);
    }
}
