//! Lazily-initialized persistent worker pool.
//!
//! Every data-parallel helper in [`crate::parallel`] used to spawn fresh
//! `std::thread::scope` threads per call; thread spawn costs tens of
//! microseconds, which dominates small fc layers (the `pool_reuse_speedup`
//! field in `BENCH_encode_decode.json` tracks exactly this). This module
//! replaces the per-call spawns with a process-global pool of long-lived,
//! condvar-parked workers that jobs are enqueued onto. Two entry points:
//!
//! * [`run_batch`] — the scoped-`Fn` primitive behind `parallel_for_rows`,
//!   `parallel_map`, and `parallel_chunks`: the caller hands over a
//!   work-claiming loop body, `extra` pool workers run it concurrently with
//!   the caller (which always participates, so progress never depends on
//!   pool availability), and the call returns only when every execution has
//!   finished — the same borrow-safety contract as `std::thread::scope`.
//! * [`scope`] / [`PoolScope::spawn`] — one-shot borrowed tasks with a
//!   joinable [`TaskHandle`], used by `dsz_core`'s streaming prefetch to
//!   overlap layer decode with matmul. A handle joined before any worker
//!   picks the task up **steals and runs it inline**, so depth-limited
//!   prefetch degrades gracefully to serial execution on busy or
//!   single-core hosts instead of deadlocking.
//!
//! # Lifecycle and sizing
//!
//! The pool starts empty and grows on demand: when a batch or task needs
//! more concurrency than there are idle workers, new threads are spawned up
//! to [`MAX_POOL_THREADS`], and every spawned worker is kept forever
//! (parked on a condvar when the queue is empty). Worker count therefore
//! converges to the peak concurrency the process ever requested — for the
//! default configuration that is `available_parallelism()` (or
//! `DSZ_THREADS`) minus the participating caller.
//!
//! # Safety model
//!
//! Jobs carry lifetime-erased pointers to caller-stack closures. The erasure
//! is sound because submission sites block until the pool can no longer
//! reach the closure: [`run_batch`] revokes unclaimed tickets under the pool
//! lock and then waits for in-flight executions to hit zero; [`scope`]
//! steals-or-waits every spawned task before returning. Completion counters
//! are updated under a mutex, so worker writes (result slots, chunk fills)
//! happen-before the submitter's reads.
//!
//! # Panics
//!
//! A panicking job never takes a pool worker down or leaves the pool
//! wedged: workers catch the unwind, record the payload, and go back to the
//! queue; the panic resumes on the submitting thread (from [`run_batch`],
//! from [`TaskHandle::join`], or from [`scope`] exit for never-joined
//! tasks).
//!
//! See `docs/PARALLEL.md` for the full execution model, including how the
//! worker-budget nesting rules from [`crate::parallel`] interact with
//! pooled execution.

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Hard cap on pool threads. Tests deliberately oversubscribe small hosts
/// (`with_workers(8)` sweeps on a 1-core CI box), so the cap is far above
/// any realistic core count rather than tied to it.
pub const MAX_POOL_THREADS: usize = 256;

type PanicPayload = Box<dyn Any + Send + 'static>;

/// Lifetime-erased `&'env (dyn Fn() + Sync)`. Sound to send across threads
/// because the submitting call blocks until no worker can still dereference
/// it (see module docs).
#[derive(Clone, Copy)]
struct BatchBody(*const (dyn Fn() + Sync));

unsafe impl Send for BatchBody {}
unsafe impl Sync for BatchBody {}

/// Mutable state of one batch job, guarded by [`BatchJob::state`].
struct BatchState {
    /// Executions not yet claimed by a worker. The submitter zeroes this to
    /// revoke the job once its own participation finishes.
    tickets: usize,
    /// Claimed executions still running.
    active: usize,
    /// First panic recorded by a worker execution.
    panic: Option<PanicPayload>,
}

/// A multi-ticket scoped job: up to `tickets` workers each run `body` once.
struct BatchJob {
    body: BatchBody,
    state: Mutex<BatchState>,
    done: Condvar,
}

/// One-shot task lifecycle. `Queued` owns the erased closure until a worker
/// (or a stealing joiner) claims it.
enum TaskSlot {
    Queued(Box<dyn FnOnce() + Send + 'static>),
    Running,
    Finished(Option<PanicPayload>),
    /// Panic payload already delivered to a joiner.
    Joined,
}

/// A one-shot spawned task (see [`PoolScope::spawn`]).
struct TaskJob {
    slot: Mutex<TaskSlot>,
    done: Condvar,
}

/// A unit a pool worker can pick off the queue.
enum Work {
    Batch(Arc<BatchJob>),
    Task(Arc<TaskJob>),
}

/// Global queue + thread accounting, guarded by [`Pool::state`].
struct PoolState {
    queue: VecDeque<Work>,
    /// Threads spawned so far (never shrinks).
    spawned: usize,
    /// Threads currently parked waiting for work.
    idle: usize,
}

struct Pool {
    state: Mutex<PoolState>,
    /// Workers park here when the queue is empty.
    work_ready: Condvar,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        state: Mutex::new(PoolState {
            queue: VecDeque::new(),
            spawned: 0,
            idle: 0,
        }),
        work_ready: Condvar::new(),
    })
}

/// Number of worker threads the pool has spawned so far (diagnostics /
/// tests; the pool only ever grows).
pub fn pool_thread_count() -> usize {
    pool().state.lock().expect("pool lock").spawned
}

/// With the pool lock held, spawns enough workers that `demand` units of
/// queued work can start promptly, up to [`MAX_POOL_THREADS`].
fn ensure_workers(state: &mut PoolState, demand: usize) {
    let deficit = demand.saturating_sub(state.idle);
    let can_spawn = deficit.min(MAX_POOL_THREADS.saturating_sub(state.spawned));
    for _ in 0..can_spawn {
        state.spawned += 1;
        std::thread::Builder::new()
            .name(format!("dsz-pool-{}", state.spawned - 1))
            .spawn(worker_loop)
            .expect("spawn pool worker");
    }
}

/// The persistent per-thread loop: claim work, run it, park when idle.
fn worker_loop() {
    let p = pool();
    let mut state = p.state.lock().expect("pool lock");
    loop {
        if let Some(work) = claim(&mut state.queue) {
            drop(state);
            match work {
                Work::Batch(job) => run_batch_body(&job),
                Work::Task(task) => run_task(&task),
            }
            state = p.state.lock().expect("pool lock");
        } else {
            state.idle += 1;
            state = p.work_ready.wait(state).expect("pool lock");
            state.idle -= 1;
        }
    }
}

/// Pops one claimable unit of work. A batch job stays queued until its last
/// ticket is claimed; tasks are single-claim.
fn claim(queue: &mut VecDeque<Work>) -> Option<Work> {
    match queue.front()? {
        Work::Batch(job) => {
            let job = job.clone();
            let mut s = job.state.lock().expect("batch lock");
            debug_assert!(s.tickets > 0, "ticketless batch left on queue");
            s.tickets -= 1;
            s.active += 1;
            let drained = s.tickets == 0;
            drop(s);
            if drained {
                queue.pop_front();
            }
            Some(Work::Batch(job))
        }
        Work::Task(_) => queue.pop_front(),
    }
}

/// Runs one claimed execution of a batch body and retires it.
fn run_batch_body(job: &BatchJob) {
    // SAFETY: the ticket was claimed while `tickets > 0`, which the
    // submitter only revokes *before* waiting for `active == 0`; it cannot
    // return (invalidating the borrow) until this execution retires below.
    let body = unsafe { &*job.body.0 };
    let result = catch_unwind(AssertUnwindSafe(body));
    let mut s = job.state.lock().expect("batch lock");
    s.active -= 1;
    if let Err(p) = result {
        s.panic.get_or_insert(p);
    }
    if s.tickets == 0 && s.active == 0 {
        job.done.notify_all();
    }
}

/// Runs a claimed one-shot task to completion.
fn run_task(task: &TaskJob) {
    let f = {
        let mut slot = task.slot.lock().expect("task lock");
        match std::mem::replace(&mut *slot, TaskSlot::Running) {
            TaskSlot::Queued(f) => f,
            // A joiner stole it between our queue pop and this lock — put
            // the observed state back and walk away.
            other => {
                *slot = other;
                return;
            }
        }
    };
    let result = catch_unwind(AssertUnwindSafe(f));
    let mut slot = task.slot.lock().expect("task lock");
    *slot = TaskSlot::Finished(result.err());
    task.done.notify_all();
}

/// Runs `body` once on the calling thread and up to `extra` more times on
/// pool workers, returning once every started execution has finished.
///
/// This is the engine under the `parallel_*` helpers: `body` is a
/// work-claiming loop over an atomic index queue, so it is correct (if
/// slower) for *fewer* than `extra + 1` copies to run — any copies the pool
/// cannot supply are simply absorbed by the participants that did start.
/// A panic in any execution resumes on the calling thread after the batch
/// fully retires; the pool workers themselves survive.
pub fn run_batch(extra: usize, body: &(dyn Fn() + Sync)) {
    if extra == 0 {
        body();
        return;
    }
    // SAFETY: erases `body`'s borrow to 'static; this call revokes and
    // waits out every execution before returning, so no worker touches the
    // closure after the real lifetime ends.
    let body_static: &'static (dyn Fn() + Sync) =
        unsafe { std::mem::transmute::<&(dyn Fn() + Sync), &'static (dyn Fn() + Sync)>(body) };
    let job = Arc::new(BatchJob {
        body: BatchBody(body_static),
        state: Mutex::new(BatchState {
            tickets: extra,
            active: 0,
            panic: None,
        }),
        done: Condvar::new(),
    });
    let p = pool();
    {
        let mut state = p.state.lock().expect("pool lock");
        ensure_workers(&mut state, extra);
        state.queue.push_back(Work::Batch(job.clone()));
        if extra == 1 {
            p.work_ready.notify_one();
        } else {
            p.work_ready.notify_all();
        }
    }
    // The caller always participates — the batch makes progress even when
    // every pool worker is busy or the thread cap is exhausted.
    let caller_result = catch_unwind(AssertUnwindSafe(body));
    // Revoke unclaimed tickets, then wait out in-flight executions. After
    // this block no worker holds (or can ever claim) the erased borrow.
    {
        let mut state = p.state.lock().expect("pool lock");
        let mut s = job.state.lock().expect("batch lock");
        if s.tickets > 0 {
            s.tickets = 0;
            state
                .queue
                .retain(|w| !matches!(w, Work::Batch(j) if Arc::ptr_eq(j, &job)));
        }
        drop(state);
        while s.active > 0 {
            s = job.done.wait(s).expect("batch lock");
        }
    }
    if let Err(p) = caller_result {
        resume_unwind(p);
    }
    let worker_panic = job.state.lock().expect("batch lock").panic.take();
    if let Some(p) = worker_panic {
        resume_unwind(p);
    }
}

/// A scope in which borrowed one-shot tasks can be spawned onto the pool.
/// Mirrors `std::thread::scope`: every task is guaranteed finished (run by
/// a worker, or stolen by a joiner / the scope exit) before [`scope`]
/// returns, so tasks may borrow anything that outlives the scope.
pub struct PoolScope<'scope, 'env: 'scope> {
    tasks: Mutex<Vec<Arc<TaskJob>>>,
    _scope: std::marker::PhantomData<&'scope mut &'scope ()>,
    _env: std::marker::PhantomData<&'env mut &'env ()>,
}

/// Handle to a task spawned in a [`PoolScope`].
pub struct TaskHandle<'scope, T> {
    task: Arc<TaskJob>,
    result: Arc<Mutex<Option<T>>>,
    _marker: std::marker::PhantomData<&'scope ()>,
}

impl<'scope, 'env> PoolScope<'scope, 'env> {
    /// Spawns `f` onto the pool, returning a joinable handle. If no worker
    /// picks the task up before [`TaskHandle::join`] (or scope exit), the
    /// joining thread runs it inline.
    pub fn spawn<T, F>(&'scope self, f: F) -> TaskHandle<'scope, T>
    where
        T: Send + 'scope,
        F: FnOnce() -> T + Send + 'scope,
    {
        let result: Arc<Mutex<Option<T>>> = Arc::new(Mutex::new(None));
        let slot = result.clone();
        let run = move || {
            let r = f();
            *slot.lock().expect("result lock") = Some(r);
        };
        let boxed: Box<dyn FnOnce() + Send + 'scope> = Box::new(run);
        // SAFETY: the scope (or an earlier join) waits for the task to
        // finish before 'scope ends, so the erased closure cannot be called
        // after its borrows expire.
        let boxed: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(boxed) };
        let task = Arc::new(TaskJob {
            slot: Mutex::new(TaskSlot::Queued(boxed)),
            done: Condvar::new(),
        });
        self.tasks.lock().expect("scope lock").push(task.clone());
        let p = pool();
        {
            let mut state = p.state.lock().expect("pool lock");
            ensure_workers(&mut state, 1);
            state.queue.push_back(Work::Task(task.clone()));
            p.work_ready.notify_one();
        }
        TaskHandle {
            task,
            result,
            _marker: std::marker::PhantomData,
        }
    }
}

/// Drives `task` to the `Finished` state: steals it if still queued, waits
/// if running. Returns any panic payload exactly once.
fn finish_task(task: &Arc<TaskJob>) -> Option<PanicPayload> {
    // Racing a worker for the claim: remove from the queue first so a
    // worker cannot start it mid-steal.
    {
        let mut state = pool().state.lock().expect("pool lock");
        state
            .queue
            .retain(|w| !matches!(w, Work::Task(t) if Arc::ptr_eq(t, task)));
    }
    let stolen = {
        let mut slot = task.slot.lock().expect("task lock");
        match std::mem::replace(&mut *slot, TaskSlot::Running) {
            TaskSlot::Queued(f) => Some(f),
            other => {
                *slot = other;
                None
            }
        }
    };
    if let Some(f) = stolen {
        let result = catch_unwind(AssertUnwindSafe(f));
        let mut slot = task.slot.lock().expect("task lock");
        *slot = TaskSlot::Finished(result.err());
        task.done.notify_all();
    }
    let mut slot = task.slot.lock().expect("task lock");
    loop {
        match &mut *slot {
            TaskSlot::Finished(p) => {
                let p = p.take();
                *slot = TaskSlot::Joined;
                return p;
            }
            TaskSlot::Joined => return None,
            _ => slot = task.done.wait(slot).expect("task lock"),
        }
    }
}

impl<T> TaskHandle<'_, T> {
    /// Waits for the task (stealing it inline if still queued) and returns
    /// its result. Panics from the task resume here.
    pub fn join(self) -> T {
        if let Some(p) = finish_task(&self.task) {
            resume_unwind(p);
        }
        self.result
            .lock()
            .expect("result lock")
            .take()
            .expect("task finished without a result")
    }
}

/// Creates a [`PoolScope`], runs `f` in it, and returns once every spawned
/// task has finished. Panics from `f` or from never-joined tasks resume on
/// the caller after all tasks retire (first task panic wins if `f`
/// succeeded).
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&'scope PoolScope<'scope, 'env>) -> R,
{
    let s = PoolScope {
        tasks: Mutex::new(Vec::new()),
        _scope: std::marker::PhantomData,
        _env: std::marker::PhantomData,
    };
    let result = catch_unwind(AssertUnwindSafe(|| f(&s)));
    // Retire every spawned task (joined ones are already `Joined`) before
    // any borrow can expire — even when `f` itself panicked. Drained in a
    // loop because a task may spawn further tasks while we finish it; the
    // scope may only return once a full pass finds the list empty.
    let mut task_panic: Option<PanicPayload> = None;
    loop {
        let tasks = std::mem::take(&mut *s.tasks.lock().expect("scope lock"));
        if tasks.is_empty() {
            break;
        }
        for task in &tasks {
            if let Some(p) = finish_task(task) {
                task_panic.get_or_insert(p);
            }
        }
    }
    match result {
        Ok(r) => {
            if let Some(p) = task_panic {
                resume_unwind(p);
            }
            r
        }
        Err(p) => resume_unwind(p),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn run_batch_zero_extra_runs_inline() {
        let hits = AtomicUsize::new(0);
        run_batch(0, &|| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn run_batch_runs_caller_plus_extras_at_most() {
        // Claim-loop style body: counts executions, not work items.
        for extra in [1usize, 3, 7] {
            let execs = AtomicUsize::new(0);
            run_batch(extra, &|| {
                execs.fetch_add(1, Ordering::Relaxed);
            });
            let got = execs.load(Ordering::Relaxed);
            assert!(
                (1..=extra + 1).contains(&got),
                "extra={extra} executions={got}"
            );
        }
    }

    #[test]
    fn run_batch_propagates_panic_and_pool_survives() {
        let r = catch_unwind(AssertUnwindSafe(|| {
            run_batch(2, &|| panic!("batch boom"));
        }));
        let msg = *r.expect_err("must propagate").downcast::<&str>().unwrap();
        assert_eq!(msg, "batch boom");
        // Pool still serves work afterwards.
        let hits = AtomicUsize::new(0);
        run_batch(2, &|| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.load(Ordering::Relaxed) >= 1);
    }

    #[test]
    fn scope_task_join_returns_value() {
        let x = 21;
        let doubled = scope(|s| {
            let h = s.spawn(|| x * 2);
            h.join()
        });
        assert_eq!(doubled, 42);
    }

    #[test]
    fn scope_waits_for_unjoined_tasks() {
        let flag = AtomicUsize::new(0);
        scope(|s| {
            s.spawn(|| {
                std::thread::sleep(std::time::Duration::from_millis(20));
                flag.store(7, Ordering::SeqCst);
            });
        });
        // The scope exit must have stolen-or-waited the task.
        assert_eq!(flag.load(Ordering::SeqCst), 7);
    }

    #[test]
    fn scope_task_panic_resumes_on_join() {
        let r = catch_unwind(AssertUnwindSafe(|| {
            scope(|s| s.spawn(|| panic!("task boom")).join())
        }));
        let msg = *r.expect_err("must propagate").downcast::<&str>().unwrap();
        assert_eq!(msg, "task boom");
        // And an unjoined panicking task surfaces at scope exit.
        let r = catch_unwind(AssertUnwindSafe(|| {
            scope(|s| {
                s.spawn(|| panic!("unjoined boom"));
            })
        }));
        assert!(r.is_err());
        // Pool remains healthy.
        assert_eq!(scope(|s| s.spawn(|| 5).join()), 5);
    }

    #[test]
    fn scope_waits_for_tasks_spawned_by_tasks() {
        // A task spawning further tasks must not let them escape the scope
        // wait — the lifetime-erasure contract depends on it.
        let inner_ran = AtomicUsize::new(0);
        scope(|s| {
            s.spawn(|| {
                std::thread::sleep(std::time::Duration::from_millis(10));
                s.spawn(|| {
                    std::thread::sleep(std::time::Duration::from_millis(10));
                    inner_ran.fetch_add(1, Ordering::SeqCst);
                });
            });
        });
        assert_eq!(inner_ran.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn many_tasks_complete_out_of_order_joins() {
        scope(|s| {
            let handles: Vec<_> = (0..16).map(|i| s.spawn(move || i * i)).collect();
            for (i, h) in handles.into_iter().enumerate().rev() {
                assert_eq!(h.join(), i * i);
            }
        });
    }

    #[test]
    fn nested_batches_make_progress() {
        // A batch body that itself submits a batch must not deadlock, even
        // when the pool has no free workers: participants drive everything.
        let inner_hits = AtomicUsize::new(0);
        run_batch(2, &|| {
            run_batch(2, &|| {
                inner_hits.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert!(inner_hits.load(Ordering::Relaxed) >= 1);
    }

    #[test]
    fn pool_threads_are_reused() {
        for _ in 0..32 {
            run_batch(2, &|| {});
        }
        // 32 batches × 2 extras would be 64 scoped threads; the pool must
        // have satisfied them with far fewer persistent workers.
        assert!(pool_thread_count() <= MAX_POOL_THREADS);
        assert!(pool_thread_count() >= 1);
    }
}
