//! Property-based tests for the ZFP-style codec: fixed-accuracy tolerance
//! must hold for arbitrary finite data at arbitrary tolerances.

use dsz_zfp::{compress, decompress, max_abs_error};
use proptest::prelude::*;

fn finite_f32() -> impl Strategy<Value = f32> {
    prop_oneof![
        4 => -0.5f32..0.5f32,
        1 => -1e5f32..1e5f32,
        1 => -1e-5f32..1e-5f32,
        1 => Just(0f32),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn tolerance_holds(data in proptest::collection::vec(finite_f32(), 0..2000),
                       tol_exp in -5i32..1) {
        let tol = 10f64.powi(tol_exp);
        let blob = compress(&data, tol).unwrap();
        let back = decompress(&blob).unwrap();
        prop_assert_eq!(back.len(), data.len());
        prop_assert!(max_abs_error(&data, &back) <= tol);
    }

    #[test]
    fn mixed_magnitude_blocks(lo in -1e-4f32..1e-4f32, hi in 1e3f32..1e5f32) {
        // Blocks mixing tiny and huge values stress exponent alignment.
        let data = vec![lo, hi, lo, -hi, hi, lo, -lo, 0.0];
        let blob = compress(&data, 1e-2).unwrap();
        let back = decompress(&blob).unwrap();
        prop_assert!(max_abs_error(&data, &back) <= 1e-2);
    }

    #[test]
    fn non_finite_blocks_bit_exact(
        mut data in proptest::collection::vec(-1f32..1f32, 1..64),
        pos in 0usize..64,
    ) {
        if pos < data.len() {
            data[pos] = f32::NAN;
        }
        let blob = compress(&data, 1e-3).unwrap();
        let back = decompress(&blob).unwrap();
        for (a, b) in data.iter().zip(&back) {
            if a.is_nan() {
                prop_assert!(b.is_nan());
            }
        }
    }

    #[test]
    fn decoder_never_panics_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = decompress(&data);
    }
}
