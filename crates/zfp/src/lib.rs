//! ZFP-style fixed-accuracy lossy compression for 1-D `f32` arrays.
//!
//! The paper evaluates ZFP as the competing error-bounded compressor
//! (Figure 2) and describes its four stages: *alignment of exponent,
//! orthogonal transform, fixed-point integer conversion, and
//! bit-plane-based embedded coding* (§2.2). This crate reimplements that
//! pipeline for 1-D data:
//!
//! * data is split into blocks of 4 samples;
//! * each block is aligned to a common exponent and converted to
//!   fixed-point integers;
//! * the integers pass through ZFP's reversible lifting transform;
//! * coefficients are mapped to negabinary and encoded bit plane by bit
//!   plane (most-significant first) with group testing, down to the plane
//!   implied by the accuracy tolerance.
//!
//! Like the real ZFP in fixed-accuracy mode, the absolute error of every
//! reconstructed sample is bounded by the tolerance. Blocks containing
//! non-finite values fall back to verbatim storage.

// Decode takes untrusted bytes: every failure must surface as a
// `CodecError`, never a panic (`docs/ROBUSTNESS.md`).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use dsz_lossless::bits::{read_varint, write_varint, BitReader, BitWriter};
use dsz_lossless::CodecError;

const MAGIC: &[u8; 4] = b"ZFP1";
const VERSION: u8 = 1;
/// Fixed-point fraction bits: `q = round(v · 2^(Q − e))`.
const Q: i32 = 40;
/// Guard planes kept beyond the tolerance-implied cut to absorb transform
/// amplification and fixed-point rounding.
///
/// Worst-case budget, in fixed-point units of `2^(e − Q)` per sample:
/// truncating the negabinary planes below `pmin` perturbs each
/// coefficient by `< 2^pmin` units, the 4-point inverse lift amplifies a
/// coefficient-space error by at most ≈6.75× (`< 2^2.76`), and input
/// rounding adds another 1/2 unit (the lift pair itself is exactly
/// invertible, so rounding is not amplified). Reconstruction error is
/// therefore `< 2^(pmin + 2.76) + 1/2` units, and the
/// `pmin = floor(log2 tol) − (e − Q) − 1 − GUARD_PLANES` cut in
/// [`min_plane`] bounds it by `tol · 2^-1.2` — under the tolerance with
/// less than one bit plane to spare. The mapping is worst-case-tight,
/// not off-by-scale; `dsz_core/tests/zfp_competition.rs` pins both sides
/// (never above `tol`, never overachieving by more than a few planes).
const GUARD_PLANES: i32 = 3;
/// Total encoded planes span (negabinary of Q+2-bit ints).
const TOP_PLANE: i32 = Q + 2;
const NBMASK: u64 = 0xaaaa_aaaa_aaaa_aaaa;

/// ZFP's forward 4-point lifting transform (integer, exactly invertible).
#[inline]
fn fwd_lift(p: &mut [i64; 4]) {
    let (mut x, mut y, mut z, mut w) = (p[0], p[1], p[2], p[3]);
    x += w;
    x >>= 1;
    w -= x;
    z += y;
    z >>= 1;
    y -= z;
    x += z;
    x >>= 1;
    z -= x;
    w += y;
    w >>= 1;
    y -= w;
    w += y >> 1;
    y -= w >> 1;
    *p = [x, y, z, w];
}

/// Inverse of [`fwd_lift`].
#[inline]
fn inv_lift(p: &mut [i64; 4]) {
    let (mut x, mut y, mut z, mut w) = (p[0], p[1], p[2], p[3]);
    y += w >> 1;
    w -= y >> 1;
    y += w;
    w <<= 1;
    w -= y;
    z += x;
    x <<= 1;
    x -= z;
    y += z;
    z <<= 1;
    z -= y;
    w += x;
    x <<= 1;
    x -= w;
    *p = [x, y, z, w];
}

#[inline]
fn to_negabinary(x: i64) -> u64 {
    (x as u64).wrapping_add(NBMASK) ^ NBMASK
}

#[inline]
fn from_negabinary(x: u64) -> i64 {
    (x ^ NBMASK).wrapping_sub(NBMASK) as i64
}

/// Exponent `e` such that `|v| < 2^e` for the block maximum.
fn block_exponent(block: &[f32; 4]) -> i32 {
    let mut max = 0f64;
    for &v in block {
        max = max.max((v as f64).abs());
    }
    if max == 0.0 {
        return i32::MIN;
    }
    // f64 exponent via bits; add 1 so |v| < 2^e strictly.
    let e = ((max.to_bits() >> 52) & 0x7ff) as i32 - 1023;
    e + 1
}

/// Lowest encoded plane for a block with exponent `e` under tolerance `tol`.
///
/// Plane `p` carries `2^(p + e − Q)` per coefficient in sample space;
/// the `− 1 − GUARD_PLANES` margin covers the worst-case truncation +
/// inverse-lift analysis on [`GUARD_PLANES`]. Typical (non-worst-case)
/// inputs land ~8–16× under the tolerance — that slack is what a
/// *correct* fixed-accuracy mode costs, and it is why SZ, whose
/// quantizer spends the entire bound, wins the per-layer size
/// competition on fc weights (`zfp_win_layers: 0` in the bench output
/// reproduces the paper's Fig. 2 finding rather than indicating a bug).
fn min_plane(e: i32, tol: f64) -> i32 {
    let cut = (tol.log2().floor() as i32) - (e - Q) - 1 - GUARD_PLANES;
    cut.clamp(0, TOP_PLANE)
}

const MODE_ZERO: u64 = 0;
const MODE_CODED: u64 = 1;
const MODE_VERBATIM: u64 = 2;

/// Compresses `data` with the fixed-accuracy tolerance `tol` (absolute).
pub fn compress(data: &[f32], tol: f64) -> Result<Vec<u8>, CodecError> {
    if !(tol.is_finite() && tol > 0.0) {
        return Err(CodecError::corrupt("tolerance must be positive"));
    }
    let mut out = Vec::with_capacity(data.len() + 32);
    out.extend_from_slice(MAGIC);
    out.push(VERSION);
    write_varint(&mut out, data.len() as u64);
    out.extend_from_slice(&tol.to_le_bytes());

    let mut w = BitWriter::with_capacity(data.len());
    for chunk in data.chunks(4) {
        let mut block = [0f32; 4];
        block[..chunk.len()].copy_from_slice(chunk);
        if chunk.iter().any(|v| !v.is_finite()) {
            w.write_bits(MODE_VERBATIM, 2);
            for &v in &block {
                w.write_bits(u64::from(v.to_bits()), 32);
            }
            continue;
        }
        let e = block_exponent(&block);
        if e == i32::MIN {
            w.write_bits(MODE_ZERO, 2);
            continue;
        }
        w.write_bits(MODE_CODED, 2);
        // Biased 12-bit exponent (f64 exponent range fits comfortably).
        w.write_bits((e + 1200) as u64, 12);

        let scale = 2f64.powi(Q - e);
        let mut q = [0i64; 4];
        for (qi, &v) in q.iter_mut().zip(&block) {
            *qi = (v as f64 * scale).round() as i64;
        }
        fwd_lift(&mut q);
        let nb = q.map(to_negabinary);

        let pmin = min_plane(e, tol);
        let mut sig = [false; 4];
        for plane in (pmin..=TOP_PLANE).rev() {
            // Refinement bits for already-significant coefficients.
            for i in 0..4 {
                if sig[i] {
                    w.write_bits((nb[i] >> plane) & 1, 1);
                }
            }
            // Group test: does any insignificant coefficient turn on here?
            let any_new = (0..4).any(|i| !sig[i] && (nb[i] >> plane) & 1 == 1);
            if !any_new {
                w.write_bits(0, 1);
            } else {
                w.write_bits(1, 1);
                for i in 0..4 {
                    if !sig[i] {
                        let bit = (nb[i] >> plane) & 1;
                        w.write_bits(bit, 1);
                        if bit == 1 {
                            sig[i] = true;
                        }
                    }
                }
            }
        }
    }
    let payload = w.into_bytes();
    write_varint(&mut out, payload.len() as u64);
    out.extend_from_slice(&payload);
    Ok(out)
}

/// Header information of a compressed ZFP stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZfpInfo {
    /// Stream format version.
    pub version: u8,
    /// Element count.
    pub n: usize,
    /// Absolute accuracy tolerance the stream was encoded at.
    pub tol: f64,
}

/// Parses the self-describing header, returning `(info, payload offset)`.
fn parse_header(bytes: &[u8]) -> Result<(ZfpInfo, usize), CodecError> {
    if bytes.len() < 5 || &bytes[..4] != MAGIC {
        return Err(CodecError::corrupt("bad ZFP magic"));
    }
    if bytes[4] != VERSION {
        return Err(CodecError::corrupt("unsupported ZFP version"));
    }
    let mut pos = 5usize;
    let n = read_varint(bytes, &mut pos)? as usize;
    let end = pos.checked_add(8).ok_or(CodecError::Truncated)?;
    let tol_bytes: [u8; 8] = bytes
        .get(pos..end)
        .ok_or(CodecError::Truncated)?
        .try_into()
        .map_err(|_| CodecError::Truncated)?;
    let tol = f64::from_le_bytes(tol_bytes);
    pos = end;
    if !(tol.is_finite() && tol > 0.0) {
        return Err(CodecError::corrupt("bad ZFP tolerance"));
    }
    Ok((
        ZfpInfo {
            version: VERSION,
            n,
            tol,
        },
        pos,
    ))
}

/// Reads the self-describing stream header — the ZFP analogue of
/// [`dsz_sz::info`], for inspecting the per-layer data streams a DSZM
/// container records under codec id 1 (see `docs/FORMAT.md`).
pub fn info(bytes: &[u8]) -> Result<ZfpInfo, CodecError> {
    parse_header(bytes).map(|(i, _)| i)
}

/// Decompresses a stream produced by [`compress`].
pub fn decompress(bytes: &[u8]) -> Result<Vec<f32>, CodecError> {
    let mut out = Vec::new();
    decompress_into(bytes, &mut out)?;
    Ok(out)
}

/// [`decompress`] into a caller-owned buffer: `out` is cleared and filled
/// (capacity reused), so repeated-decode loops allocate only on growth.
/// Output bytes equal the allocating twin's.
pub fn decompress_into(bytes: &[u8], out: &mut Vec<f32>) -> Result<(), CodecError> {
    let (ZfpInfo { n, tol, .. }, mut pos) = parse_header(bytes)?;
    let payload_len = read_varint(bytes, &mut pos)? as usize;
    let end = pos.checked_add(payload_len).ok_or(CodecError::Truncated)?;
    let payload = bytes.get(pos..end).ok_or(CodecError::Truncated)?;

    // Cheapest encodable block is MODE_ZERO: 2 bits for 4 samples, i.e.
    // 16 elements per payload byte. A header claiming more than the
    // (bounds-checked) payload could possibly carry is corrupt — checked
    // before the output allocation so a crafted count cannot demand
    // absurd memory (the SZ decoder guards identically).
    if n > payload.len().saturating_mul(16).saturating_add(3) {
        return Err(CodecError::corrupt("element count exceeds stream capacity"));
    }

    let mut r = BitReader::new(payload);
    out.clear();
    out.reserve(n);
    let mut remaining = n;
    while remaining > 0 {
        let take = remaining.min(4);
        let mode = r.read_bits(2)?;
        match mode {
            MODE_ZERO => out.extend(std::iter::repeat_n(0f32, take)),
            MODE_VERBATIM => {
                let mut block = [0f32; 4];
                for b in block.iter_mut() {
                    *b = f32::from_bits(r.read_bits(32)? as u32);
                }
                out.extend_from_slice(&block[..take]);
            }
            MODE_CODED => {
                let e = r.read_bits(12)? as i32 - 1200;
                let pmin = min_plane(e, tol);
                let mut nb = [0u64; 4];
                let mut sig = [false; 4];
                for plane in (pmin..=TOP_PLANE).rev() {
                    for i in 0..4 {
                        if sig[i] {
                            nb[i] |= r.read_bits(1)? << plane;
                        }
                    }
                    if r.read_bits(1)? == 1 {
                        for i in 0..4 {
                            if !sig[i] {
                                let bit = r.read_bits(1)?;
                                nb[i] |= bit << plane;
                                if bit == 1 {
                                    sig[i] = true;
                                }
                            }
                        }
                    }
                }
                let mut q = [0i64; 4];
                for i in 0..4 {
                    q[i] = from_negabinary(nb[i]);
                }
                inv_lift(&mut q);
                let scale = 2f64.powi(e - Q);
                let mut block = [0f32; 4];
                for i in 0..4 {
                    block[i] = (q[i] as f64 * scale) as f32;
                }
                out.extend_from_slice(&block[..take]);
            }
            _ => return Err(CodecError::corrupt("bad ZFP block mode")),
        }
        remaining -= take;
    }
    Ok(())
}

/// Maximum pointwise absolute error over finite value pairs.
pub fn max_abs_error(a: &[f32], b: &[f32]) -> f64 {
    a.iter()
        .zip(b)
        .filter(|(x, y)| x.is_finite() && y.is_finite())
        .map(|(&x, &y)| (x as f64 - y as f64).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg(n: usize, seed: u64, scale: f32) -> Vec<f32> {
        let mut s = seed;
        (0..n)
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                (((s >> 33) as f64 / (1u64 << 31) as f64) as f32 - 0.5) * 2.0 * scale
            })
            .collect()
    }

    #[test]
    fn lift_roundtrip_error_is_a_few_ulps() {
        // ZFP's forward lift discards low bits via `>>1`, so fwd∘inv is not
        // exact; the contract is a small bounded integer error, absorbed by
        // the guard planes. Empirically the error is ≤ 4 units.
        let mut s = 42u64;
        let mut worst = 0i64;
        for _ in 0..10_000 {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            let mut p = [
                (s >> 1) as i64 % (1 << Q),
                (s >> 13) as i64 % (1 << Q),
                (s >> 27) as i64 % (1 << Q) - (1 << (Q - 1)),
                (s >> 40) as i64 % (1 << 20),
            ];
            let orig = p;
            fwd_lift(&mut p);
            inv_lift(&mut p);
            for i in 0..4 {
                worst = worst.max((p[i] - orig[i]).abs());
            }
        }
        assert!(
            worst <= 4,
            "lift roundtrip error {worst} exceeds guard assumption"
        );
    }

    #[test]
    fn negabinary_roundtrips() {
        for x in [
            -1i64,
            0,
            1,
            12345,
            -98765,
            i64::from(i32::MAX),
            i64::from(i32::MIN),
        ] {
            assert_eq!(from_negabinary(to_negabinary(x)), x);
        }
    }

    #[test]
    fn tolerance_is_respected() {
        let data = lcg(10_000, 7, 0.3);
        for tol in [1e-1, 1e-2, 1e-3, 1e-4] {
            let blob = compress(&data, tol).unwrap();
            let back = decompress(&blob).unwrap();
            assert_eq!(back.len(), data.len());
            let err = max_abs_error(&data, &back);
            assert!(err <= tol, "tol={tol} err={err}");
        }
    }

    #[test]
    fn empty_tail_blocks_and_odd_lengths() {
        for n in [0usize, 1, 2, 3, 4, 5, 7, 9, 1023] {
            let data = lcg(n, 3, 0.1);
            let blob = compress(&data, 1e-3).unwrap();
            let back = decompress(&blob).unwrap();
            assert_eq!(back.len(), n);
            assert!(max_abs_error(&data, &back) <= 1e-3);
        }
    }

    #[test]
    fn zero_blocks_cost_two_bits() {
        let data = vec![0f32; 40_000];
        let blob = compress(&data, 1e-3).unwrap();
        assert!(blob.len() < 40_000 / 4, "{}", blob.len()); // ≪ raw
        assert_eq!(decompress(&blob).unwrap(), data);
    }

    #[test]
    fn non_finite_blocks_verbatim() {
        let mut data = lcg(100, 9, 0.2);
        data[17] = f32::NAN;
        data[55] = f32::INFINITY;
        let blob = compress(&data, 1e-3).unwrap();
        let back = decompress(&blob).unwrap();
        assert!(back[17].is_nan());
        assert_eq!(back[55], f32::INFINITY);
        assert!(max_abs_error(&data, &back) <= 1e-3);
    }

    #[test]
    fn looser_tolerance_smaller_output() {
        let data = lcg(50_000, 11, 0.3);
        let a = compress(&data, 1e-2).unwrap();
        let b = compress(&data, 1e-4).unwrap();
        assert!(a.len() < b.len());
    }

    #[test]
    fn large_magnitude_values() {
        let data: Vec<f32> = (0..1000).map(|i| (i as f32 - 500.0) * 1e6).collect();
        let blob = compress(&data, 1.0).unwrap();
        let back = decompress(&blob).unwrap();
        assert!(max_abs_error(&data, &back) <= 1.0);
    }

    #[test]
    fn bad_inputs_rejected() {
        assert!(compress(&[1.0], 0.0).is_err());
        assert!(compress(&[1.0], f64::NAN).is_err());
        assert!(decompress(b"nope").is_err());
        assert!(info(b"nope").is_err());
    }

    #[test]
    fn absurd_element_count_rejected_before_allocation() {
        // A tiny stream whose header claims 2^40 elements must error out
        // of the capacity check, not attempt a multi-TB allocation.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.push(VERSION);
        write_varint(&mut bytes, 1u64 << 40);
        bytes.extend_from_slice(&1e-3f64.to_le_bytes());
        write_varint(&mut bytes, 4); // payload_len
        bytes.extend_from_slice(&[0u8; 4]);
        assert!(decompress(&bytes).is_err());
        // The header itself still parses (info allocates nothing).
        assert_eq!(info(&bytes).unwrap().n, 1 << 40);
    }

    #[test]
    fn info_reports_header() {
        let data = lcg(777, 5, 0.2);
        let blob = compress(&data, 2e-3).unwrap();
        let i = info(&blob).unwrap();
        assert_eq!(i.version, 1);
        assert_eq!(i.n, 777);
        assert!((i.tol - 2e-3).abs() < 1e-15);
    }
}
