//! Adaptive binary range coding (LZMA-style arithmetic coder).
//!
//! This is the fractional-bit entropy stage that separates the
//! Zstandard-class codec from the DEFLATE-class one: Huffman loses up to
//! half a bit per symbol to integer code lengths, while a range coder
//! tracks the true entropy (the same efficiency class as Zstandard's FSE).
//! Models are adaptive 11-bit probabilities, so no tables are stored.

use crate::CodecError;

const PROB_BITS: u32 = 11;
const PROB_INIT: u16 = (1 << PROB_BITS) / 2;
const MOVE_BITS: u32 = 5;
const TOP: u32 = 1 << 24;

/// One adaptive binary probability (chance of bit = 0, in 1/2048 units).
///
/// Adaptation is count-staged: early updates move fast (low shift) so the
/// model converges quickly, later updates move slowly (high shift) so the
/// steady-state estimate tracks the true probability with little noise —
/// this is what lets the coder undercut static Huffman's integer-bit loss
/// instead of giving the margin back as adaptation overhead.
#[derive(Debug, Clone, Copy)]
pub struct Prob {
    p: u16,
    visits: u16,
}

impl Default for Prob {
    fn default() -> Self {
        Prob {
            p: PROB_INIT,
            visits: 0,
        }
    }
}

impl Prob {
    /// Starts from an explicit probability (testing hook).
    pub fn with_p(p: u16) -> Self {
        Prob { p, visits: 0 }
    }

    #[inline]
    fn shift(&self) -> u32 {
        // Fast early convergence, then LZMA's classic rate. (Larger shifts
        // would be finer in steady state but stick at skewed probabilities
        // because `p >> shift` truncates to zero.)
        if self.visits < 32 {
            4
        } else {
            MOVE_BITS
        }
    }

    #[inline]
    fn update(&mut self, bit: u32) {
        let sh = self.shift();
        if bit == 0 {
            self.p += ((1 << PROB_BITS) - self.p) >> sh;
        } else {
            self.p -= self.p >> sh;
        }
        self.visits = self.visits.saturating_add(1);
    }
}

/// Range encoder with carry handling (LZMA's `ShiftLow` scheme).
pub struct RangeEncoder {
    low: u64,
    range: u32,
    cache: u8,
    cache_size: u64,
    out: Vec<u8>,
}

impl Default for RangeEncoder {
    fn default() -> Self {
        Self::new()
    }
}

impl RangeEncoder {
    /// Fresh encoder.
    pub fn new() -> Self {
        Self {
            low: 0,
            range: u32::MAX,
            cache: 0,
            cache_size: 1,
            out: Vec::new(),
        }
    }

    fn shift_low(&mut self) {
        if (self.low as u32) < 0xff00_0000 || (self.low >> 32) != 0 {
            let carry = (self.low >> 32) as u8;
            let mut byte = self.cache;
            loop {
                self.out.push(byte.wrapping_add(carry));
                byte = 0xff;
                self.cache_size -= 1;
                if self.cache_size == 0 {
                    break;
                }
            }
            self.cache = (self.low >> 24) as u8;
        }
        self.cache_size += 1;
        // Keep only the low 24 bits shifted up: the byte above them has
        // just been captured in `cache`, and anything higher would be a
        // phantom carry.
        self.low = u64::from((self.low as u32) << 8);
    }

    /// Encodes one bit under the adaptive probability `p`.
    #[inline]
    pub fn encode_bit(&mut self, p: &mut Prob, bit: u32) {
        let bound = (self.range >> PROB_BITS) * u32::from(p.p);
        if bit == 0 {
            self.range = bound;
        } else {
            self.low += u64::from(bound);
            self.range -= bound;
        }
        p.update(bit);
        while self.range < TOP {
            self.shift_low();
            self.range <<= 8;
        }
    }

    /// Encodes a `[cum, cum+freq)` slice of the `2^SCALE_BITS` probability
    /// range (static multi-symbol coding).
    #[inline]
    pub fn encode_span(&mut self, cum: u32, freq: u32) {
        let r = self.range >> SCALE_BITS;
        self.low += u64::from(r) * u64::from(cum);
        self.range = r * freq;
        while self.range < TOP {
            self.shift_low();
            self.range <<= 8;
        }
    }

    /// Encodes `nbits` equiprobable bits of `value`, MSB first.
    pub fn encode_direct(&mut self, value: u32, nbits: u32) {
        for i in (0..nbits).rev() {
            self.range >>= 1;
            let bit = (value >> i) & 1;
            if bit != 0 {
                self.low += u64::from(self.range);
            }
            while self.range < TOP {
                self.shift_low();
                self.range <<= 8;
            }
        }
    }

    /// Flushes and returns the byte stream.
    pub fn finish(mut self) -> Vec<u8> {
        for _ in 0..5 {
            self.shift_low();
        }
        self.out
    }
}

/// Range decoder mirroring [`RangeEncoder`].
pub struct RangeDecoder<'a> {
    code: u32,
    range: u32,
    data: &'a [u8],
    pos: usize,
}

impl<'a> RangeDecoder<'a> {
    /// Initializes over an encoded stream.
    pub fn new(data: &'a [u8]) -> Result<Self, CodecError> {
        if data.is_empty() {
            return Err(CodecError::Truncated);
        }
        let mut d = Self {
            code: 0,
            range: u32::MAX,
            data,
            pos: 1,
        };
        for _ in 0..4 {
            d.code = (d.code << 8) | u32::from(d.next_byte());
        }
        Ok(d)
    }

    #[inline]
    fn next_byte(&mut self) -> u8 {
        // Reading past the end yields zeros; truncation surfaces as a
        // length mismatch in the caller's framing.
        let b = self.data.get(self.pos).copied().unwrap_or(0);
        self.pos += 1;
        b
    }

    /// Decodes one bit under `p`.
    #[inline]
    pub fn decode_bit(&mut self, p: &mut Prob) -> u32 {
        let bound = (self.range >> PROB_BITS) * u32::from(p.p);
        let bit = if self.code < bound {
            self.range = bound;
            0
        } else {
            self.code -= bound;
            self.range -= bound;
            1
        };
        p.update(bit);
        while self.range < TOP {
            self.code = (self.code << 8) | u32::from(self.next_byte());
            self.range <<= 8;
        }
        bit
    }

    /// Reads the scaled cumulative value of the next static symbol without
    /// consuming it (pair with [`RangeDecoder::consume_span`]).
    #[inline]
    pub fn peek_cum(&self) -> u32 {
        let r = self.range >> SCALE_BITS;
        (self.code / r).min((1 << SCALE_BITS) - 1)
    }

    /// Consumes the `[cum, cum+freq)` span located by [`RangeDecoder::peek_cum`].
    #[inline]
    pub fn consume_span(&mut self, cum: u32, freq: u32) {
        let r = self.range >> SCALE_BITS;
        self.code -= r * cum;
        self.range = r * freq;
        while self.range < TOP {
            self.code = (self.code << 8) | u32::from(self.next_byte());
            self.range <<= 8;
        }
    }

    /// True once the decoder has consumed more than `slack` bytes past the
    /// end of its input. [`RangeDecoder::new`]'s zero-fill past the end
    /// keeps individual reads infallible, but a stream produced by
    /// [`RangeEncoder`] (whose `finish` flushes every live byte) never
    /// needs them — so framing loops over untrusted bytes poll this to
    /// surface truncation instead of decoding synthetic zeros until their
    /// declared output length is met.
    pub fn past_end(&self, slack: usize) -> bool {
        self.pos > self.data.len().saturating_add(slack)
    }

    /// Decodes `nbits` direct bits, MSB first.
    pub fn decode_direct(&mut self, nbits: u32) -> u32 {
        let mut v = 0u32;
        for _ in 0..nbits {
            self.range >>= 1;
            let bit = if self.code >= self.range {
                self.code -= self.range;
                1
            } else {
                0
            };
            v = (v << 1) | bit;
            while self.range < TOP {
                self.code = (self.code << 8) | u32::from(self.next_byte());
                self.range <<= 8;
            }
        }
        v
    }
}

/// Scale of static-model frequencies (tables normalized to sum `2^14`).
pub const SCALE_BITS: u32 = 14;

/// A static multi-symbol model: normalized frequencies stored in the
/// stream, coded with fractional-bit precision — the efficiency class of
/// Zstandard's FSE (within ~0.1% of entropy, strictly better than
/// integer-bit Huffman on skewed alphabets).
#[derive(Debug, Clone)]
pub struct StaticModel {
    /// `cum[s]..cum[s+1]` is symbol `s`'s slice of the `2^SCALE_BITS` range.
    cum: Vec<u32>,
    /// Reverse lookup: `sym_of[v]` = symbol owning scaled value `v`.
    sym_of: Vec<u16>,
}

impl StaticModel {
    /// Builds a model from raw counts (index = symbol). Symbols with zero
    /// count are unencodable. Returns `None` if nothing has a count.
    pub fn from_counts(counts: &[u64]) -> Option<Self> {
        let total: u64 = counts.iter().sum();
        if total == 0 || counts.len() > u16::MAX as usize {
            return None;
        }
        let scale = 1u64 << SCALE_BITS;
        // Normalize: every nonzero count gets ≥ 1 slot; drift is absorbed
        // by the largest symbol.
        let mut freqs: Vec<u32> = counts
            .iter()
            .map(|&c| {
                if c == 0 {
                    0
                } else {
                    (((c as u128 * scale as u128) / total as u128) as u32).max(1)
                }
            })
            .collect();
        let sum: i64 = freqs.iter().map(|&f| i64::from(f)).sum();
        let mut drift = sum - scale as i64;
        // Shave or grow the largest entries until the sum is exact.
        while drift != 0 {
            let Some((i, _)) = freqs.iter().enumerate().max_by_key(|&(_, &f)| f) else {
                return None; // unreachable: total > 0 implies nonempty freqs
            };
            if drift > 0 {
                let take = (freqs[i] - 1).min(drift as u32);
                if take == 0 {
                    return None; // cannot normalize (too many symbols)
                }
                freqs[i] -= take;
                drift -= i64::from(take);
            } else {
                freqs[i] += (-drift) as u32;
                drift = 0;
            }
        }
        let mut cum = Vec::with_capacity(freqs.len() + 1);
        let mut acc = 0u32;
        cum.push(0);
        for &f in &freqs {
            acc += f;
            cum.push(acc);
        }
        let mut sym_of = vec![0u16; scale as usize];
        for (s, w) in cum.windows(2).enumerate() {
            for v in w[0]..w[1] {
                sym_of[v as usize] = s as u16;
            }
        }
        Some(Self { cum, sym_of })
    }

    /// Serializes the normalized frequency table.
    pub fn serialize(&self, out: &mut Vec<u8>) {
        crate::bits::write_varint(out, (self.cum.len() - 1) as u64);
        for w in self.cum.windows(2) {
            crate::bits::write_varint(out, u64::from(w[1] - w[0]));
        }
    }

    /// Parses a table written by [`StaticModel::serialize`].
    pub fn deserialize(data: &[u8], pos: &mut usize) -> Result<Self, CodecError> {
        let n = crate::bits::read_varint(data, pos)? as usize;
        if n > u16::MAX as usize {
            return Err(CodecError::corrupt("static model too large"));
        }
        let mut cum = Vec::with_capacity(n + 1);
        let mut acc = 0u32;
        cum.push(0);
        for _ in 0..n {
            let f = crate::bits::read_varint(data, pos)? as u32;
            acc = acc
                .checked_add(f)
                .ok_or_else(|| CodecError::corrupt("freq overflow"))?;
            cum.push(acc);
        }
        if acc != 1 << SCALE_BITS {
            return Err(CodecError::corrupt("static model not normalized"));
        }
        let mut sym_of = vec![0u16; 1 << SCALE_BITS];
        for (s, w) in cum.windows(2).enumerate() {
            for v in w[0]..w[1] {
                sym_of[v as usize] = s as u16;
            }
        }
        Ok(Self { cum, sym_of })
    }

    /// Encodes `sym` (must have nonzero frequency).
    #[inline]
    pub fn encode(&self, enc: &mut RangeEncoder, sym: u32) {
        let lo = self.cum[sym as usize];
        let hi = self.cum[sym as usize + 1];
        debug_assert!(hi > lo, "symbol {sym} has zero frequency");
        enc.encode_span(lo, hi - lo);
    }

    /// Decodes one symbol.
    #[inline]
    pub fn decode(&self, dec: &mut RangeDecoder<'_>) -> u32 {
        let v = dec.peek_cum();
        let sym = self.sym_of[v as usize];
        let lo = self.cum[sym as usize];
        let hi = self.cum[sym as usize + 1];
        dec.consume_span(lo, hi - lo);
        u32::from(sym)
    }
}

/// An adaptive model for `BITS`-wide symbols, coded MSB-first through a
/// context tree (LZMA's literal/length coder shape).
#[derive(Debug, Clone)]
pub struct TreeModel<const BITS: u32> {
    probs: Vec<Prob>,
}

impl<const BITS: u32> Default for TreeModel<BITS> {
    fn default() -> Self {
        Self {
            probs: vec![Prob::default(); 1 << BITS],
        }
    }
}

impl<const BITS: u32> TreeModel<BITS> {
    /// Encodes `sym` (must fit in BITS bits).
    pub fn encode(&mut self, enc: &mut RangeEncoder, sym: u32) {
        debug_assert!(sym < (1 << BITS));
        let mut ctx = 1usize;
        for i in (0..BITS).rev() {
            let bit = (sym >> i) & 1;
            enc.encode_bit(&mut self.probs[ctx], bit);
            ctx = (ctx << 1) | bit as usize;
        }
    }

    /// Decodes one symbol.
    pub fn decode(&mut self, dec: &mut RangeDecoder<'_>) -> u32 {
        let mut ctx = 1usize;
        for _ in 0..BITS {
            let bit = dec.decode_bit(&mut self.probs[ctx]);
            ctx = (ctx << 1) | bit as usize;
        }
        (ctx as u32) - (1 << BITS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_stream_roundtrip() {
        let bits: Vec<u32> = (0..10_000).map(|i| u32::from(i % 7 == 0)).collect();
        let mut enc = RangeEncoder::new();
        let mut p = Prob::default();
        for &b in &bits {
            enc.encode_bit(&mut p, b);
        }
        let blob = enc.finish();
        // Skewed bits (1/7 ones) ≈ 0.59 bits each → ≪ 1 bit/symbol.
        assert!(blob.len() < 10_000 / 8, "{}", blob.len());
        let mut dec = RangeDecoder::new(&blob).unwrap();
        let mut p = Prob::default();
        for &b in &bits {
            assert_eq!(dec.decode_bit(&mut p), b);
        }
    }

    #[test]
    fn direct_bits_roundtrip() {
        let values: Vec<(u32, u32)> = vec![
            (0, 1),
            (1, 1),
            (5, 3),
            (255, 8),
            (0xffff, 16),
            (12345, 20),
            (0, 4),
        ];
        let mut enc = RangeEncoder::new();
        for &(v, n) in &values {
            enc.encode_direct(v, n);
        }
        let blob = enc.finish();
        let mut dec = RangeDecoder::new(&blob).unwrap();
        for &(v, n) in &values {
            assert_eq!(dec.decode_direct(n), v, "{v}:{n}");
        }
    }

    #[test]
    fn tree_model_roundtrip_and_adapts() {
        // Heavily skewed 8-bit symbols: should cost well under 8 bits each.
        let mut s = 7u64;
        let syms: Vec<u32> = (0..20_000)
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                if s >> 62 == 0 {
                    (s >> 33) as u32 & 0xff
                } else {
                    42
                }
            })
            .collect();
        let mut enc = RangeEncoder::new();
        let mut model = TreeModel::<8>::default();
        for &sym in &syms {
            model.encode(&mut enc, sym);
        }
        let blob = enc.finish();
        assert!(blob.len() < syms.len(), "{} bytes", blob.len()); // < 8 bits/sym by far
        let mut dec = RangeDecoder::new(&blob).unwrap();
        let mut model = TreeModel::<8>::default();
        for &sym in &syms {
            assert_eq!(model.decode(&mut dec), sym);
        }
    }

    #[test]
    fn mixed_bit_and_direct_roundtrip() {
        let mut enc = RangeEncoder::new();
        let mut p = Prob::default();
        let mut tree = TreeModel::<4>::default();
        for i in 0..1000u32 {
            enc.encode_bit(&mut p, i & 1);
            tree.encode(&mut enc, i % 16);
            enc.encode_direct(i % 32, 5);
        }
        let blob = enc.finish();
        let mut dec = RangeDecoder::new(&blob).unwrap();
        let mut p = Prob::default();
        let mut tree = TreeModel::<4>::default();
        for i in 0..1000u32 {
            assert_eq!(dec.decode_bit(&mut p), i & 1);
            assert_eq!(tree.decode(&mut dec), i % 16);
            assert_eq!(dec.decode_direct(5), i % 32);
        }
    }

    #[test]
    fn worst_case_carry_patterns() {
        // Alternating near-certain bits stress the carry path.
        let mut enc = RangeEncoder::new();
        let mut p0 = Prob::with_p(1);
        let mut p1 = Prob::with_p(2047);
        for i in 0..5000u32 {
            enc.encode_bit(&mut p0, u32::from(i % 97 == 0));
            enc.encode_bit(&mut p1, u32::from(i % 89 != 0));
        }
        let blob = enc.finish();
        let mut dec = RangeDecoder::new(&blob).unwrap();
        let mut p0 = Prob::with_p(1);
        let mut p1 = Prob::with_p(2047);
        for i in 0..5000u32 {
            assert_eq!(dec.decode_bit(&mut p0), u32::from(i % 97 == 0));
            assert_eq!(dec.decode_bit(&mut p1), u32::from(i % 89 != 0));
        }
    }
}
