//! The Zstandard-class codec: large-window LZ + static fractional-bit
//! entropy coding.
//!
//! Same token model as the DEFLATE-class codec ([`crate::lz`]) — one
//! literal/length alphabet plus a distance-bucket alphabet — but entropy
//! coded with [`crate::range::StaticModel`]s instead of canonical Huffman.
//! Static normalized-frequency range coding is the efficiency class of
//! Zstandard's FSE: it spends fractional bits per symbol, which is exactly
//! the edge Zstandard has over gzip on the entropy-dense index arrays of
//! Figure 4.

use crate::bits::{read_varint, write_varint};
use crate::lz::{tokenize, LzParams, Token};
use crate::range::{RangeDecoder, RangeEncoder, StaticModel};
use crate::CodecError;

const LEN_BASE: u32 = 256;

#[inline]
fn bucketize(v: u32) -> (u32, u32, u32) {
    let b = 31 - (v + 1).leading_zeros();
    (b, (v + 1) - (1 << b), b)
}

#[inline]
fn unbucketize(b: u32, extra: u32) -> u32 {
    (1u32 << b) + extra - 1
}

/// Compresses with the zstd-like profile.
pub fn compress(data: &[u8]) -> Vec<u8> {
    let p = LzParams::zstd_like();
    let tokens = tokenize(data, &p);

    let mut litlen_counts = vec![0u64; 256 + 32];
    let mut dist_counts = vec![0u64; 32];
    for t in &tokens {
        match *t {
            Token::Literal(b) => litlen_counts[b as usize] += 1,
            Token::Match { len, dist } => {
                let (lb, _, _) = bucketize(len - p.min_match as u32);
                litlen_counts[(LEN_BASE + lb) as usize] += 1;
                let (db, _, _) = bucketize(dist - 1);
                dist_counts[db as usize] += 1;
            }
        }
    }
    // Guarantee a nonempty distance model even for match-free streams.
    if dist_counts.iter().all(|&c| c == 0) {
        dist_counts[0] = 1;
    }

    let mut out = Vec::with_capacity(data.len() / 2 + 64);
    write_varint(&mut out, data.len() as u64);
    out.push(p.min_match as u8);
    if data.is_empty() {
        return out;
    }
    let litlen = StaticModel::from_counts(&litlen_counts)
        .unwrap_or_else(|| unreachable!("nonempty data has a nonempty litlen alphabet"));
    let dist = StaticModel::from_counts(&dist_counts)
        .unwrap_or_else(|| unreachable!("dist alphabet seeded above"));
    litlen.serialize(&mut out);
    dist.serialize(&mut out);

    let mut enc = RangeEncoder::new();
    for t in &tokens {
        match *t {
            Token::Literal(b) => litlen.encode(&mut enc, u32::from(b)),
            Token::Match { len, dist: d } => {
                let (lb, lextra, lbits) = bucketize(len - p.min_match as u32);
                litlen.encode(&mut enc, LEN_BASE + lb);
                enc.encode_direct(lextra, lbits);
                let (db, dextra, dbits) = bucketize(d - 1);
                dist.encode(&mut enc, db);
                enc.encode_direct(dextra, dbits);
            }
        }
    }
    out.extend_from_slice(&enc.finish());
    out
}

/// Decompresses a stream produced by [`compress`].
pub fn decompress(data: &[u8]) -> Result<Vec<u8>, CodecError> {
    let mut out = Vec::new();
    decompress_into(data, &mut out)?;
    Ok(out)
}

/// Like [`decompress`], into a caller-provided scratch buffer (cleared
/// first) so repeated decodes reuse one allocation.
pub fn decompress_into(data: &[u8], out: &mut Vec<u8>) -> Result<(), CodecError> {
    out.clear();
    let mut pos = 0usize;
    let raw_len = read_varint(data, &mut pos)? as usize;
    let min_match = u32::from(*data.get(pos).ok_or(CodecError::Truncated)?);
    pos += 1;
    if raw_len == 0 {
        return Ok(());
    }
    let litlen = StaticModel::deserialize(data, &mut pos)?;
    let dist = StaticModel::deserialize(data, &mut pos)?;
    let mut dec = RangeDecoder::new(&data[pos..])?;
    out.reserve(raw_len.min(crate::MAX_PREALLOC));
    while out.len() < raw_len {
        // A truncated (or length-mutated) stream would otherwise decode
        // zero-fill bytes until `raw_len` is satisfied.
        if dec.past_end(16) {
            return Err(CodecError::Truncated);
        }
        let sym = litlen.decode(&mut dec);
        if sym < 256 {
            out.push(sym as u8);
        } else {
            let lb = sym - LEN_BASE;
            if lb > 30 {
                return Err(CodecError::corrupt("bad length bucket"));
            }
            let lextra = dec.decode_direct(lb);
            let len = (unbucketize(lb, lextra) + min_match) as usize;
            let db = dist.decode(&mut dec);
            if db > 30 {
                return Err(CodecError::corrupt("bad distance bucket"));
            }
            let dextra = dec.decode_direct(db);
            let d = unbucketize(db, dextra) as usize + 1;
            if d > out.len() || out.len() + len > raw_len {
                return Err(CodecError::corrupt("bad match in zstd stream"));
            }
            let start = out.len() - d;
            for k in 0..len {
                let b = out[start + k];
                out.push(b);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_assorted_inputs() {
        let inputs: Vec<Vec<u8>> = vec![
            vec![],
            vec![7],
            b"abcabcabcabcabc".to_vec(),
            vec![0u8; 50_000],
            (0..30_000u32)
                .map(|i| (i.wrapping_mul(2654435761) >> 24) as u8)
                .collect(),
            b"the quick brown fox ".repeat(500),
        ];
        for data in inputs {
            let blob = compress(&data);
            assert_eq!(decompress(&blob).unwrap(), data, "len {}", data.len());
        }
    }

    #[test]
    fn beats_integer_bit_huffman_on_entropy_dense_bytes() {
        // Geometric gap bytes like a pruned index array: entropy ≈ 4.8
        // bits/byte, where fractional-bit coding wins over Huffman.
        let mut x = 0x243f6a8885a308d3u64;
        let data: Vec<u8> = (0..200_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let u = (x >> 11) as f64 / (1u64 << 53) as f64;
                ((-u.ln() / 0.1).min(254.0)) as u8
            })
            .collect();
        let zstd = compress(&data);
        let gzip = crate::lz::lz_compress(&data, &LzParams::gzip_like());
        assert!(
            zstd.len() < gzip.len(),
            "zstd-like {} should beat gzip-like {}",
            zstd.len(),
            gzip.len()
        );
        assert_eq!(decompress(&zstd).unwrap(), data);
    }

    #[test]
    fn corrupt_stream_is_error_not_panic() {
        let data = b"hello world ".repeat(100);
        let mut blob = compress(&data);
        for i in 0..blob.len().min(48) {
            blob[i] ^= 0x5a;
            let _ = decompress(&blob);
            blob[i] ^= 0x5a;
        }
        for cut in [1usize, 2, blob.len() / 2] {
            let _ = decompress(&blob[..cut]);
        }
    }
}
