//! Canonical Huffman coding.
//!
//! This is the entropy stage shared by the SZ quantization-code stream and
//! the DEFLATE-like / Zstandard-like lossless codecs. Codes are canonical so
//! only `(symbol, length)` pairs need to be serialized; the decoder derives
//! the same code values independently.

use crate::bits::{read_varint, write_varint, BitReader, BitWriter};
use crate::CodecError;

/// Longest permitted code. 24 bits keeps the decode loop tight while being
/// ample for the ≤ 2^17-symbol alphabets used in this workspace.
pub const MAX_CODE_LEN: u8 = 24;

/// A canonical Huffman code book: the sorted `(symbol, code length)` list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HuffmanCode {
    /// Sorted by (length, symbol); lengths in 1..=MAX_CODE_LEN.
    entries: Vec<(u32, u8)>,
}

impl HuffmanCode {
    /// Builds an optimal (length-limited) code from dense symbol counts,
    /// where `counts[sym]` is the frequency of symbol `sym`. Zero-count
    /// symbols receive no code.
    pub fn from_counts(counts: &[u64]) -> Self {
        let mut scaled: Vec<u64> = counts.to_vec();
        loop {
            let lengths = build_lengths(&scaled);
            let maxlen = lengths.iter().map(|&(_, l)| l).max().unwrap_or(0);
            if maxlen <= MAX_CODE_LEN {
                let mut entries = lengths;
                entries.sort_unstable_by_key(|&(sym, len)| (len, sym));
                return Self { entries };
            }
            // Flatten the distribution and retry; this converges quickly and
            // costs at most a fraction of a bit per symbol in practice.
            for c in scaled.iter_mut() {
                if *c > 0 {
                    *c = (*c >> 1).max(1);
                }
            }
        }
    }

    /// Number of coded symbols.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no symbol has a code (empty input).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serializes the code book (delta-coded sorted symbols + lengths).
    pub fn serialize(&self, out: &mut Vec<u8>) {
        write_varint(out, self.entries.len() as u64);
        // Sort a copy by symbol for tight delta coding.
        let mut by_sym = self.entries.clone();
        by_sym.sort_unstable_by_key(|&(sym, _)| sym);
        let mut prev = 0u64;
        for &(sym, len) in &by_sym {
            write_varint(out, u64::from(sym) - prev);
            out.push(len);
            prev = u64::from(sym);
        }
    }

    /// Parses a code book written by [`HuffmanCode::serialize`].
    pub fn deserialize(data: &[u8], pos: &mut usize) -> Result<Self, CodecError> {
        let n = read_varint(data, pos)? as usize;
        if n > 1 << 26 {
            return Err(CodecError::corrupt("huffman table too large"));
        }
        let mut entries = Vec::with_capacity(n);
        let mut prev = 0u64;
        for i in 0..n {
            let delta = read_varint(data, pos)?;
            let sym = prev + delta;
            if i > 0 && delta == 0 {
                return Err(CodecError::corrupt("duplicate symbol in huffman table"));
            }
            prev = sym;
            let len = *data.get(*pos).ok_or(CodecError::Truncated)?;
            *pos += 1;
            if len == 0 || len > MAX_CODE_LEN {
                return Err(CodecError::corrupt("bad code length"));
            }
            let sym = u32::try_from(sym).map_err(|_| CodecError::corrupt("symbol overflow"))?;
            entries.push((sym, len));
        }
        entries.sort_unstable_by_key(|&(sym, len)| (len, sym));
        // Kraft check so a corrupt table cannot make the decoder ambiguous.
        let kraft: u64 = entries
            .iter()
            .map(|&(_, len)| 1u64 << (MAX_CODE_LEN - len))
            .sum();
        if n > 1 && kraft > 1u64 << MAX_CODE_LEN {
            return Err(CodecError::corrupt(
                "huffman table violates Kraft inequality",
            ));
        }
        Ok(Self { entries })
    }

    /// Builds the encode-side dense lookup table.
    pub fn encoder(&self) -> HuffmanEncoder {
        let max_sym = self
            .entries
            .iter()
            .map(|&(s, _)| s)
            .max()
            .map_or(0, |s| s + 1);
        let mut codes = vec![(0u32, 0u8); max_sym as usize];
        for (code, (sym, len)) in assign_codes(&self.entries) {
            codes[sym as usize] = (code, len);
        }
        HuffmanEncoder { codes }
    }

    /// Builds the decode-side tables: a one-shot lookup table for codes of
    /// at most [`PRIMARY_BITS`] bits (the common case by construction —
    /// frequent symbols get short codes) plus the canonical per-length
    /// tables as the long-code fallback.
    pub fn decoder(&self) -> HuffmanDecoder {
        let mut first_code = [0u32; MAX_CODE_LEN as usize + 1];
        let mut first_rank = [0u32; MAX_CODE_LEN as usize + 1];
        let mut count = [0u32; MAX_CODE_LEN as usize + 1];
        let mut syms = Vec::with_capacity(self.entries.len());
        for &(_, len) in &self.entries {
            count[len as usize] += 1;
        }
        let mut code = 0u32;
        let mut rank = 0u32;
        for len in 1..=MAX_CODE_LEN as usize {
            first_code[len] = code;
            first_rank[len] = rank;
            code = (code + count[len]) << 1;
            rank += count[len];
        }
        for &(sym, _) in &self.entries {
            syms.push(sym);
        }
        // Primary LUT, indexed by the next PRIMARY_BITS of the stream as
        // they appear to `BitReader::peek_bits` (first streamed bit = bit 0).
        // Codes are emitted MSB-first, so a code's LUT index is its
        // bit-reversal; every index sharing that prefix maps to it.
        let mut lut = vec![LutEntry { sym: 0, len: 0 }; 1 << PRIMARY_BITS];
        for (codeval, (sym, len)) in assign_codes(&self.entries) {
            if len <= PRIMARY_BITS {
                let rev = (codeval.reverse_bits() >> (32 - len)) as usize;
                let step = 1usize << len;
                let mut idx = rev;
                while idx < lut.len() {
                    lut[idx] = LutEntry { sym, len };
                    idx += step;
                }
            }
        }
        HuffmanDecoder {
            first_code,
            first_rank,
            count,
            syms,
            lut,
        }
    }
}

/// Pairs each canonical entry (sorted by length, then symbol) with its
/// numeric code, using the same `first_code` recurrence as the decoder.
fn assign_codes(entries: &[(u32, u8)]) -> Vec<(u32, (u32, u8))> {
    let mut count = [0u32; MAX_CODE_LEN as usize + 1];
    for &(_, len) in entries {
        count[len as usize] += 1;
    }
    let mut next_code = [0u32; MAX_CODE_LEN as usize + 1];
    let mut code = 0u32;
    for len in 1..=MAX_CODE_LEN as usize {
        next_code[len] = code;
        code = (code + count[len]) << 1;
    }
    entries
        .iter()
        .map(|&(sym, len)| {
            let c = next_code[len as usize];
            next_code[len as usize] += 1;
            (c, (sym, len))
        })
        .collect()
}

/// Encode-side table: `codes[sym] = (code, len)`, len 0 for uncoded symbols.
#[derive(Debug, Clone)]
pub struct HuffmanEncoder {
    codes: Vec<(u32, u8)>,
}

impl HuffmanEncoder {
    /// Emits the code for `sym`. Panics (debug) on symbols absent from the
    /// code book; in release the zero-length write corrupts nothing but
    /// produces an undecodable stream, so callers must only encode counted
    /// symbols.
    #[inline]
    pub fn encode(&self, w: &mut BitWriter, sym: u32) {
        let (code, len) = self.codes[sym as usize];
        debug_assert!(len > 0, "symbol {sym} has no code");
        w.write_code(code, len);
    }

    /// Code length in bits for `sym` (0 if uncoded).
    pub fn code_len(&self, sym: u32) -> u8 {
        self.codes.get(sym as usize).map_or(0, |&(_, l)| l)
    }
}

/// Width of the primary decode lookup table: one peek resolves any code of
/// at most this many bits without a table walk. 11 bits keeps the table at
/// 2 KiB entries (cache-resident) while covering the overwhelming majority
/// of symbols in entropy-skewed streams.
pub const PRIMARY_BITS: u8 = 11;

#[derive(Debug, Clone, Copy)]
struct LutEntry {
    sym: u32,
    /// Code length in bits; 0 marks "longer than PRIMARY_BITS" prefixes.
    len: u8,
}

/// Decode-side tables: primary LUT + canonical fallback.
#[derive(Debug, Clone)]
pub struct HuffmanDecoder {
    first_code: [u32; MAX_CODE_LEN as usize + 1],
    first_rank: [u32; MAX_CODE_LEN as usize + 1],
    count: [u32; MAX_CODE_LEN as usize + 1],
    syms: Vec<u32>,
    lut: Vec<LutEntry>,
}

impl HuffmanDecoder {
    /// Reads one symbol: a single table lookup for codes ≤ [`PRIMARY_BITS`]
    /// bits, falling back to the bit-at-a-time canonical walk for the rare
    /// long codes and for the truncated tail of the stream.
    #[inline]
    pub fn decode(&self, r: &mut BitReader<'_>) -> Result<u32, CodecError> {
        let (peek, avail) = r.peek_bits(PRIMARY_BITS);
        let e = self.lut[peek as usize];
        if e.len != 0 && e.len as usize <= avail {
            r.consume(e.len as usize);
            return Ok(e.sym);
        }
        self.decode_slow(r)
    }

    /// Bitwise canonical decode (codes longer than the LUT, stream tail,
    /// and corrupt-stream detection). Degenerate single-symbol books still
    /// consume their 1-bit code here.
    fn decode_slow(&self, r: &mut BitReader<'_>) -> Result<u32, CodecError> {
        let mut acc = 0u32;
        for len in 1..=MAX_CODE_LEN as usize {
            acc = (acc << 1) | r.read_bits(1)? as u32;
            let c = self.count[len];
            if c > 0 && acc.wrapping_sub(self.first_code[len]) < c {
                let rank = self.first_rank[len] + (acc - self.first_code[len]);
                return Ok(self.syms[rank as usize]);
            }
        }
        Err(CodecError::corrupt("invalid huffman code"))
    }
}

/// Computes optimal code lengths via the standard two-queue Huffman merge.
/// Returns `(symbol, length)` for every nonzero-count symbol.
fn build_lengths(counts: &[u64]) -> Vec<(u32, u8)> {
    let live: Vec<(u32, u64)> = counts
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c > 0)
        .map(|(s, &c)| (s as u32, c))
        .collect();
    match live.len() {
        0 => return Vec::new(),
        1 => return vec![(live[0].0, 1)],
        _ => {}
    }

    // Node arena: leaves first, then internal nodes.
    let n = live.len();
    let mut parent = vec![usize::MAX; 2 * n - 1];
    let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<(u64, usize)>> = live
        .iter()
        .enumerate()
        .map(|(i, &(_, c))| std::cmp::Reverse((c, i)))
        .collect();
    let mut next = n;
    while heap.len() > 1 {
        let (Some(std::cmp::Reverse((c1, a))), Some(std::cmp::Reverse((c2, b)))) =
            (heap.pop(), heap.pop())
        else {
            unreachable!("loop guard: heap holds at least two nodes")
        };
        parent[a] = next;
        parent[b] = next;
        heap.push(std::cmp::Reverse((c1 + c2, next)));
        next += 1;
    }

    live.iter()
        .enumerate()
        .map(|(i, &(sym, _))| {
            let mut depth = 0u8;
            let mut node = i;
            while parent[node] != usize::MAX {
                node = parent[node];
                depth = depth.saturating_add(1);
            }
            (sym, depth.max(1))
        })
        .collect()
}

/// Accumulates `symbols` into a dense histogram, growing `counts` as needed
/// to cover the largest symbol seen. Splitting the histogram off from
/// [`encode_stream`] lets multi-stream formats (e.g. the SZ v3 shared-table
/// layout) pool counts across many payloads before building one code book.
pub fn accumulate_counts(counts: &mut Vec<u64>, symbols: &[u32]) {
    let max_sym = symbols.iter().max().map_or(0, |&m| m as usize);
    if symbols.is_empty() {
        return;
    }
    if counts.len() <= max_sym {
        counts.resize(max_sym + 1, 0);
    }
    for &s in symbols {
        counts[s as usize] += 1;
    }
}

/// Folds one partial histogram into a running total (growing `total` to
/// cover it) — per-symbol integer sums, so the result is independent of
/// merge order. Shared-table encoders accumulate each unit's histogram
/// into one total as units retire instead of holding every per-unit
/// histogram live until a final merge.
pub fn merge_counts(total: &mut Vec<u64>, hist: &[u64]) {
    if total.len() < hist.len() {
        total.resize(hist.len(), 0);
    }
    for (t, &c) in total.iter_mut().zip(hist) {
        *t += c;
    }
}

/// Appends the table-free encoded payload for `symbols`:
/// `[payload bytes varint][bit payload]`. The code book and the symbol
/// count are *not* written — the caller transmits them out of band (once
/// per table for shared-table formats). Every symbol must be present in
/// the code book `enc` was built from.
pub fn encode_payload(enc: &HuffmanEncoder, symbols: &[u32], out: &mut Vec<u8>) {
    let mut w = BitWriter::with_capacity(symbols.len() / 2);
    for &s in symbols {
        enc.encode(&mut w, s);
    }
    let payload = w.into_bytes();
    write_varint(out, payload.len() as u64);
    out.extend_from_slice(&payload);
}

/// Inverse of [`encode_payload`]: decodes exactly `count` symbols through a
/// caller-built decoder into `out` (cleared first), advancing `pos` past
/// the payload record.
pub fn decode_payload_into(
    dec: &HuffmanDecoder,
    data: &[u8],
    pos: &mut usize,
    count: usize,
    out: &mut Vec<u32>,
) -> Result<(), CodecError> {
    out.clear();
    let payload_len = read_varint(data, pos)? as usize;
    let end = pos.checked_add(payload_len).ok_or(CodecError::Truncated)?;
    let payload = data.get(*pos..end).ok_or(CodecError::Truncated)?;
    *pos = end;
    if count == 0 {
        return Ok(());
    }
    // Every symbol costs at least one bit, so a declared count beyond the
    // payload's bit budget is corrupt — checked before reserving so a
    // hostile count cannot force an allocation abort.
    if count > payload_len.saturating_mul(8) {
        return Err(CodecError::corrupt("symbol count exceeds payload bits"));
    }
    let mut r = BitReader::new(payload);
    out.reserve(count);
    for _ in 0..count {
        out.push(dec.decode(&mut r)?);
    }
    Ok(())
}

/// Convenience: Huffman-encodes a `u32` symbol stream (table + payload).
/// The histogram is sized to the largest symbol actually present, so many
/// small streams (e.g. per-chunk SZ codes drawn from a 2^16-wide alphabet)
/// don't each pay for a full-alphabet zeroed table.
pub fn encode_stream(symbols: &[u32]) -> Vec<u8> {
    let mut counts = Vec::new();
    accumulate_counts(&mut counts, symbols);
    let code = HuffmanCode::from_counts(&counts);
    let enc = code.encoder();
    let mut out = Vec::new();
    write_varint(&mut out, symbols.len() as u64);
    code.serialize(&mut out);
    encode_payload(&enc, symbols, &mut out);
    out
}

/// Inverse of [`encode_stream`].
pub fn decode_stream(data: &[u8], pos: &mut usize) -> Result<Vec<u32>, CodecError> {
    let mut out = Vec::new();
    decode_stream_into(data, pos, &mut out)?;
    Ok(out)
}

/// Like [`decode_stream`], but decodes into a caller-provided buffer so a
/// reused scratch vector amortizes the allocation across many streams
/// (`out` is cleared first). This is the hot path of chunk-parallel SZ
/// decode, where each worker thread keeps its own scratch.
pub fn decode_stream_into(
    data: &[u8],
    pos: &mut usize,
    out: &mut Vec<u32>,
) -> Result<(), CodecError> {
    out.clear();
    let n = read_varint(data, pos)? as usize;
    let code = HuffmanCode::deserialize(data, pos)?;
    if n == 0 {
        // Still step over the (empty) payload record so `pos` lands at the
        // end of the stream.
        let payload_len = read_varint(data, pos)? as usize;
        let end = pos.checked_add(payload_len).ok_or(CodecError::Truncated)?;
        data.get(*pos..end).ok_or(CodecError::Truncated)?;
        *pos = end;
        return Ok(());
    }
    let dec = code.decoder();
    decode_payload_into(&dec, data, pos, n, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(symbols: &[u32]) {
        let blob = encode_stream(symbols);
        let mut pos = 0;
        let back = decode_stream(&blob, &mut pos).unwrap();
        assert_eq!(back, symbols);
        assert_eq!(pos, blob.len());
    }

    #[test]
    fn empty_stream() {
        roundtrip(&[]);
    }

    #[test]
    fn merge_counts_matches_pooled_accumulation() {
        let streams: [&[u32]; 3] = [&[1, 2, 2, 9], &[], &[0, 9, 9, 3]];
        let mut pooled = Vec::new();
        for s in streams {
            accumulate_counts(&mut pooled, s);
        }
        let mut merged = Vec::new();
        for s in streams {
            let mut hist = Vec::new();
            accumulate_counts(&mut hist, s);
            merge_counts(&mut merged, &hist);
        }
        assert_eq!(merged, pooled);
    }

    #[test]
    fn single_symbol_repeated() {
        roundtrip(&[7u32; 100]);
    }

    #[test]
    fn two_symbols() {
        roundtrip(&[0, 1, 0, 0, 1, 0, 1, 1, 1, 0]);
    }

    #[test]
    fn skewed_distribution_compresses() {
        // 90% of symbols are `5`; entropy ≈ 0.7 bits/symbol.
        let mut syms = vec![5u32; 9000];
        for i in 0..1000 {
            syms.push(i % 32);
        }
        let blob = encode_stream(&syms);
        assert!(blob.len() < syms.len()); // ≪ 4 bytes/symbol, < 1 byte/symbol
        let mut pos = 0;
        assert_eq!(decode_stream(&blob, &mut pos).unwrap(), syms);
    }

    #[test]
    fn large_alphabet() {
        let syms: Vec<u32> = (0..5000u32).map(|i| (i * i) % 4096).collect();
        roundtrip(&syms);
    }

    #[test]
    fn sparse_symbol_space() {
        let syms: Vec<u32> = (0..256u32).map(|i| i * 1000).collect();
        roundtrip(&syms);
    }

    #[test]
    fn code_lengths_are_optimal_for_uniform() {
        // 4 equally likely symbols must all get 2-bit codes.
        let code = HuffmanCode::from_counts(&[10, 10, 10, 10]);
        for &(_, len) in &code.entries {
            assert_eq!(len, 2);
        }
    }

    #[test]
    fn table_roundtrip() {
        let code = HuffmanCode::from_counts(&[5, 0, 9, 1, 0, 0, 2]);
        let mut buf = Vec::new();
        code.serialize(&mut buf);
        let mut pos = 0;
        let back = HuffmanCode::deserialize(&buf, &mut pos).unwrap();
        assert_eq!(back, code);
    }

    #[test]
    fn corrupt_table_rejected() {
        let code = HuffmanCode::from_counts(&[5, 9, 1, 2]);
        let mut buf = Vec::new();
        code.serialize(&mut buf);
        buf[1] = 0xff; // clobber first delta
        let mut pos = 0;
        assert!(HuffmanCode::deserialize(&buf, &mut pos).is_err());
    }

    #[test]
    fn shared_table_payloads_roundtrip() {
        // Many streams pooled into one histogram, one code book, and
        // table-free per-stream payloads — the SZ v3 layout's primitive.
        let streams: Vec<Vec<u32>> = vec![
            vec![1, 1, 1, 2, 3],
            vec![],
            vec![2; 400],
            (0..300u32).map(|i| i % 17).collect(),
        ];
        let mut counts = Vec::new();
        for s in &streams {
            accumulate_counts(&mut counts, s);
        }
        let code = HuffmanCode::from_counts(&counts);
        let enc = code.encoder();
        let mut blob = Vec::new();
        for s in &streams {
            encode_payload(&enc, s, &mut blob);
        }
        let dec = code.decoder();
        let mut pos = 0;
        let mut scratch = Vec::new();
        for s in &streams {
            decode_payload_into(&dec, &blob, &mut pos, s.len(), &mut scratch).unwrap();
            assert_eq!(&scratch, s);
        }
        assert_eq!(pos, blob.len());
    }

    #[test]
    fn shared_payload_rejects_hostile_count() {
        let code = HuffmanCode::from_counts(&[3, 5]);
        let enc = code.encoder();
        let mut blob = Vec::new();
        encode_payload(&enc, &[0, 1, 0], &mut blob);
        let dec = code.decoder();
        let mut pos = 0;
        let mut out = Vec::new();
        // Claiming more symbols than the payload can hold must error, not
        // over-allocate or walk off the end.
        assert!(decode_payload_into(&dec, &blob, &mut pos, 1 << 20, &mut out).is_err());
    }

    #[test]
    fn accumulate_counts_grows_and_merges() {
        let mut counts = Vec::new();
        accumulate_counts(&mut counts, &[]);
        assert!(counts.is_empty());
        accumulate_counts(&mut counts, &[2, 2, 0]);
        assert_eq!(counts, vec![1, 0, 2]);
        accumulate_counts(&mut counts, &[5]);
        assert_eq!(counts, vec![1, 0, 2, 0, 0, 1]);
    }

    #[test]
    fn length_limiting_kicks_in() {
        // Fibonacci-like counts force deep trees without limiting.
        let mut counts = vec![0u64; 64];
        let (mut a, mut b) = (1u64, 1u64);
        for c in counts.iter_mut() {
            *c = a;
            let t = a + b;
            a = b;
            b = t;
        }
        let code = HuffmanCode::from_counts(&counts);
        assert!(code.entries.iter().all(|&(_, l)| l <= MAX_CODE_LEN));
        // And it still decodes.
        let syms: Vec<u32> = (0..64u32).flat_map(|s| std::iter::repeat_n(s, 3)).collect();
        let enc = code.encoder();
        let mut w = BitWriter::new();
        for &s in &syms {
            enc.encode(&mut w, s);
        }
        let bytes = w.into_bytes();
        let dec = code.decoder();
        let mut r = BitReader::new(&bytes);
        for &s in &syms {
            assert_eq!(dec.decode(&mut r).unwrap(), s);
        }
    }
}
