//! Parameterized LZ77 matching and the shared token bitstream format.
//!
//! Both byte codecs ([`crate::Gzipish`], [`crate::Zstdish`]) are thin wrappers
//! around this module with different search parameters: tokenization finds
//! `(length, distance)` back-references with hash-chain matching, and the
//! token stream is entropy-coded with two canonical Huffman tables
//! (literal/length alphabet and distance alphabet), DEFLATE-style.

use crate::bits::{read_varint, write_varint, BitReader, BitWriter};
use crate::huffman::HuffmanCode;
use crate::CodecError;

/// Search/window parameters for the matcher.
#[derive(Debug, Clone, Copy)]
pub struct LzParams {
    /// Window size is `1 << window_log` bytes.
    pub window_log: u32,
    /// Minimum back-reference length (3 or 4).
    pub min_match: usize,
    /// Maximum back-reference length.
    pub max_match: usize,
    /// Hash table has `1 << hash_log` heads.
    pub hash_log: u32,
    /// Maximum chain positions examined per match attempt.
    pub max_chain: usize,
    /// Defer one position if the next match is longer (DEFLATE lazy match).
    pub lazy: bool,
}

impl LzParams {
    /// DEFLATE-like: 32 KiB window, shallow chains.
    pub fn gzip_like() -> Self {
        Self {
            window_log: 15,
            min_match: 3,
            max_match: 258,
            hash_log: 15,
            max_chain: 48,
            lazy: true,
        }
    }

    /// Zstandard-like: 1 MiB window, deep chains, long matches.
    pub fn zstd_like() -> Self {
        Self {
            window_log: 20,
            min_match: 3,
            max_match: 4096,
            hash_log: 17,
            max_chain: 320,
            lazy: true,
        }
    }

    /// Blosc-like: tiny window, single-probe greedy (speed over ratio).
    pub fn blosc_like() -> Self {
        Self {
            window_log: 13,
            min_match: 4,
            max_match: 1024,
            hash_log: 13,
            max_chain: 1,
            lazy: false,
        }
    }
}

/// One LZ token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Token {
    /// A single literal byte.
    Literal(u8),
    /// Copy `len` bytes from `dist` bytes back.
    Match { len: u32, dist: u32 },
}

#[inline]
fn hash4(data: &[u8], i: usize, hash_log: u32) -> usize {
    let v = u32::from_le_bytes([
        data[i],
        data[i + 1],
        data[i + 2],
        *data.get(i + 3).unwrap_or(&0),
    ]);
    ((v.wrapping_mul(2654435761)) >> (32 - hash_log)) as usize
}

#[inline]
fn match_len(data: &[u8], a: usize, b: usize, max: usize) -> usize {
    let mut n = 0;
    while n < max && b + n < data.len() && data[a + n] == data[b + n] {
        n += 1;
    }
    n
}

/// Tokenizes `data` with hash-chain LZ77 matching under `p`.
pub fn tokenize(data: &[u8], p: &LzParams) -> Vec<Token> {
    let n = data.len();
    let mut tokens = Vec::with_capacity(n / 2);
    if n < p.min_match {
        tokens.extend(data.iter().map(|&b| Token::Literal(b)));
        return tokens;
    }
    let window = 1usize << p.window_log;
    let mut head = vec![i64::MIN; 1 << p.hash_log];
    let mut prev = vec![i64::MIN; n];

    // Cost-aware match scoring: a match saves ≈ 6 bits per covered byte
    // (entropy-coded literal) and costs ≈ a length symbol plus
    // log2(dist) distance bits. Matches with negative scores (short match,
    // far away) are worse than literals and are rejected — this is what
    // lets the large-window profile beat the small-window one instead of
    // drowning in distance bits.
    let score_of = |len: usize, dist: usize| -> i64 {
        let dist_bits = 64 - (dist as u64).leading_zeros() as i64;
        5 * len as i64 - (13 + dist_bits)
    };
    let find_best = |head: &[i64], prev: &[i64], i: usize| -> Option<(usize, usize, i64)> {
        if i + p.min_match > n {
            return None;
        }
        let mut best: Option<(usize, usize, i64)> = None;
        let mut cand = head[hash4(data, i, p.hash_log)];
        let mut chain = p.max_chain;
        while cand >= 0 && chain > 0 {
            let c = cand as usize;
            if i - c > window {
                break;
            }
            let l = match_len(data, c, i, p.max_match.min(n - i));
            if l >= p.min_match {
                let s = score_of(l, i - c);
                if s > 0 && best.is_none_or(|(_, _, bs)| s > bs) {
                    best = Some((l, i - c, s));
                    if l >= p.max_match {
                        break;
                    }
                }
            }
            cand = prev[c];
            chain -= 1;
        }
        best
    };

    let insert = |head: &mut [i64], prev: &mut [i64], i: usize| {
        if i + 4 <= n + 1 && i < n {
            let h = hash4(data, i, p.hash_log);
            prev[i] = head[h];
            head[h] = i as i64;
        }
    };

    let mut i = 0usize;
    while i < n {
        let found = find_best(&head, &prev, i);
        match found {
            Some((len, dist, score)) => {
                // Lazy evaluation: if the next position has a clearly
                // better match, emit a literal here instead.
                let take_here = if p.lazy && i + 1 < n {
                    insert(&mut head, &mut prev, i);
                    let next = find_best(&head, &prev, i + 1);
                    !matches!(next, Some((_, _, ns)) if ns > score + 6)
                } else {
                    true
                };
                if take_here {
                    tokens.push(Token::Match {
                        len: len as u32,
                        dist: dist as u32,
                    });
                    let end = i + len;
                    if !p.lazy {
                        insert(&mut head, &mut prev, i);
                    }
                    let mut j = i + 1;
                    // Index interior positions sparsely for long matches to
                    // bound worst-case time on highly repetitive data.
                    let stride = if len > 64 { 4 } else { 1 };
                    while j < end {
                        insert(&mut head, &mut prev, j);
                        j += stride;
                    }
                    i = end;
                } else {
                    tokens.push(Token::Literal(data[i]));
                    i += 1; // position i already inserted above
                }
            }
            None => {
                tokens.push(Token::Literal(data[i]));
                insert(&mut head, &mut prev, i);
                i += 1;
            }
        }
    }
    tokens
}

/// End-of-block symbol in the literal/length alphabet.
const EOB: u32 = 256;
/// First length-bucket symbol.
const LEN_BASE: u32 = 257;

/// Splits a non-negative value into `(bucket, extra_bits_value, bucket_bits)`
/// with `v + 1 ∈ [2^b, 2^(b+1))`.
#[inline]
fn bucketize(v: u32) -> (u32, u32, u8) {
    let b = 31 - (v + 1).leading_zeros();
    (b, (v + 1) - (1 << b), b as u8)
}

#[inline]
fn unbucketize(b: u32, extra: u32) -> u32 {
    (1u32 << b) + extra - 1
}

/// Entropy-codes a token stream. `min_match` must match the tokenizer's.
pub fn encode_tokens(tokens: &[Token], raw_len: usize, min_match: usize) -> Vec<u8> {
    let mut litlen_counts = vec![0u64; 257 + 32];
    let mut dist_counts = vec![0u64; 32];
    for t in tokens {
        match *t {
            Token::Literal(b) => litlen_counts[b as usize] += 1,
            Token::Match { len, dist } => {
                let (lb, _, _) = bucketize(len - min_match as u32);
                litlen_counts[(LEN_BASE + lb) as usize] += 1;
                let (db, _, _) = bucketize(dist - 1);
                dist_counts[db as usize] += 1;
            }
        }
    }
    litlen_counts[EOB as usize] += 1;

    let litlen = HuffmanCode::from_counts(&litlen_counts);
    let dist = HuffmanCode::from_counts(&dist_counts);
    let le = litlen.encoder();
    let de = dist.encoder();

    let mut out = Vec::new();
    write_varint(&mut out, raw_len as u64);
    out.push(min_match as u8);
    litlen.serialize(&mut out);
    dist.serialize(&mut out);

    let mut w = BitWriter::with_capacity(raw_len / 2 + 16);
    for t in tokens {
        match *t {
            Token::Literal(b) => le.encode(&mut w, u32::from(b)),
            Token::Match { len, dist } => {
                let (lb, lextra, lbits) = bucketize(len - min_match as u32);
                le.encode(&mut w, LEN_BASE + lb);
                w.write_bits(u64::from(lextra), lbits);
                let (db, dextra, dbits) = bucketize(dist - 1);
                de.encode(&mut w, db);
                w.write_bits(u64::from(dextra), dbits);
            }
        }
    }
    le.encode(&mut w, EOB);
    let payload = w.into_bytes();
    write_varint(&mut out, payload.len() as u64);
    out.extend_from_slice(&payload);
    out
}

/// Decodes a stream produced by [`encode_tokens`] back into bytes.
pub fn decode_tokens(data: &[u8]) -> Result<Vec<u8>, CodecError> {
    let mut out = Vec::new();
    decode_tokens_into(data, &mut out)?;
    Ok(out)
}

/// Like [`decode_tokens`], into a caller-provided scratch buffer (cleared
/// first) so repeated decodes reuse one allocation.
pub fn decode_tokens_into(data: &[u8], out: &mut Vec<u8>) -> Result<(), CodecError> {
    out.clear();
    let mut pos = 0usize;
    let raw_len = read_varint(data, &mut pos)? as usize;
    let min_match = *data.get(pos).ok_or(CodecError::Truncated)? as u32;
    pos += 1;
    let litlen = HuffmanCode::deserialize(data, &mut pos)?;
    let dist = HuffmanCode::deserialize(data, &mut pos)?;
    let payload_len = read_varint(data, &mut pos)? as usize;
    let end = pos.checked_add(payload_len).ok_or(CodecError::Truncated)?;
    let payload = data.get(pos..end).ok_or(CodecError::Truncated)?;

    let ld = litlen.decoder();
    let dd = dist.decoder();
    let mut r = BitReader::new(payload);
    out.reserve(raw_len.min(crate::MAX_PREALLOC));
    loop {
        let sym = ld.decode(&mut r)?;
        if sym < 256 {
            out.push(sym as u8);
        } else if sym == EOB {
            break;
        } else {
            let lb = sym - LEN_BASE;
            if lb > 30 {
                return Err(CodecError::corrupt("bad length bucket"));
            }
            let lextra = r.read_bits(lb as u8)? as u32;
            let len = unbucketize(lb, lextra) + min_match;
            let db = dd.decode(&mut r)?;
            if db > 30 {
                return Err(CodecError::corrupt("bad distance bucket"));
            }
            let dextra = r.read_bits(db as u8)? as u32;
            let d = unbucketize(db, dextra) + 1;
            let d = d as usize;
            if d > out.len() {
                return Err(CodecError::corrupt("distance beyond output"));
            }
            // Reject before copying: a hostile ~2^31 length must not get
            // to allocate/copy past the declared output size first.
            if len as usize > raw_len - out.len() {
                return Err(CodecError::corrupt("output exceeds declared length"));
            }
            let start = out.len() - d;
            for k in 0..len as usize {
                let b = out[start + k];
                out.push(b);
            }
        }
        if out.len() > raw_len {
            return Err(CodecError::corrupt("output exceeds declared length"));
        }
    }
    if out.len() != raw_len {
        return Err(CodecError::corrupt("output shorter than declared length"));
    }
    Ok(())
}

/// Full LZ + entropy compression pipeline.
pub fn lz_compress(data: &[u8], p: &LzParams) -> Vec<u8> {
    let tokens = tokenize(data, p);
    encode_tokens(&tokens, data.len(), p.min_match)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8], p: &LzParams) {
        let blob = lz_compress(data, p);
        let back = decode_tokens(&blob).unwrap();
        assert_eq!(back, data, "params {p:?}");
    }

    fn all_params() -> [LzParams; 3] {
        [
            LzParams::gzip_like(),
            LzParams::zstd_like(),
            LzParams::blosc_like(),
        ]
    }

    #[test]
    fn empty_and_tiny() {
        for p in all_params() {
            roundtrip(b"", &p);
            roundtrip(b"a", &p);
            roundtrip(b"ab", &p);
            roundtrip(b"abc", &p);
        }
    }

    #[test]
    fn repetitive_text_compresses_well() {
        let data: Vec<u8> = b"the quick brown fox jumps over the lazy dog. "
            .iter()
            .copied()
            .cycle()
            .take(10_000)
            .collect();
        for p in all_params() {
            let blob = lz_compress(&data, &p);
            assert!(
                blob.len() < data.len() / 5,
                "{}: {}",
                p.window_log,
                blob.len()
            );
            assert_eq!(decode_tokens(&blob).unwrap(), data);
        }
    }

    #[test]
    fn overlapping_match_rle_style() {
        // "aaaa..." forces dist=1 overlapping copies.
        let data = vec![b'a'; 5000];
        for p in all_params() {
            roundtrip(&data, &p);
        }
    }

    #[test]
    fn incompressible_random_roundtrips() {
        // xorshift noise: no matches to find, worst case for the format.
        let mut x = 0x9e3779b97f4a7c15u64;
        let data: Vec<u8> = (0..8192)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x & 0xff) as u8
            })
            .collect();
        for p in all_params() {
            roundtrip(&data, &p);
        }
    }

    #[test]
    fn long_range_matches_need_large_window() {
        // Two identical 64 KiB chunks separated beyond the gzip window:
        // the zstd-like params should compress notably better.
        let mut x = 1234567u64;
        let chunk: Vec<u8> = (0..65536)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                (x >> 33) as u8
            })
            .collect();
        let mut data = chunk.clone();
        data.extend_from_slice(&chunk);
        let g = lz_compress(&data, &LzParams::gzip_like());
        let z = lz_compress(&data, &LzParams::zstd_like());
        assert!(
            z.len() < g.len(),
            "zstd-like {} vs gzip-like {}",
            z.len(),
            g.len()
        );
        assert_eq!(decode_tokens(&z).unwrap(), data);
        assert_eq!(decode_tokens(&g).unwrap(), data);
    }

    #[test]
    fn bucketize_inverts() {
        for v in 0..10_000u32 {
            let (b, e, bits) = bucketize(v);
            assert!(e < (1 << bits.max(1)) || bits == 0);
            assert_eq!(unbucketize(b, e), v);
        }
    }

    #[test]
    fn corrupt_stream_is_an_error_not_a_panic() {
        let data = b"hello hello hello hello hello".repeat(20);
        let mut blob = lz_compress(&data, &LzParams::gzip_like());
        for i in 0..blob.len().min(64) {
            blob[i] ^= 0x55;
            let _ = decode_tokens(&blob); // must not panic
            blob[i] ^= 0x55;
        }
    }
}
