//! Blosc-like codec: optional byte shuffle + fast byte-aligned greedy LZ.
//!
//! Blosc's design point is throughput: a type-aware byte shuffle to expose
//! repeated high-order bytes, a single-probe LZ (blosclz) and *no* entropy
//! stage. This stand-in mirrors those choices, so it is the fastest and
//! usually the weakest-ratio codec of the three — exactly the role Blosc
//! plays in the paper's Figure 4.

use crate::bits::{read_varint, write_varint};
use crate::lz::LzParams;
use crate::CodecError;

/// Transposes `data` viewed as elements of `typesize` bytes so byte 0 of
/// every element comes first, then byte 1, etc. A trailing partial element
/// is copied through unchanged.
pub fn shuffle(data: &[u8], typesize: usize) -> Vec<u8> {
    if typesize <= 1 || data.len() < typesize * 2 {
        return data.to_vec();
    }
    let nelem = data.len() / typesize;
    let body = nelem * typesize;
    let mut out = Vec::with_capacity(data.len());
    for byte in 0..typesize {
        for e in 0..nelem {
            out.push(data[e * typesize + byte]);
        }
    }
    out.extend_from_slice(&data[body..]);
    out
}

/// Inverse of [`shuffle`].
pub fn unshuffle(data: &[u8], typesize: usize) -> Vec<u8> {
    let mut out = Vec::new();
    unshuffle_into(data, typesize, &mut out);
    out
}

/// Like [`unshuffle`], into a caller-provided buffer (cleared first).
pub fn unshuffle_into(data: &[u8], typesize: usize, out: &mut Vec<u8>) {
    out.clear();
    if typesize <= 1 || data.len() < typesize * 2 {
        out.extend_from_slice(data);
        return;
    }
    let nelem = data.len() / typesize;
    let body = nelem * typesize;
    out.resize(data.len(), 0);
    for byte in 0..typesize {
        for e in 0..nelem {
            out[e * typesize + byte] = data[byte * nelem + e];
        }
    }
    out[body..].copy_from_slice(&data[body..]);
}

#[inline]
fn hash4(data: &[u8], i: usize, hash_log: u32) -> usize {
    let v = u32::from_le_bytes([data[i], data[i + 1], data[i + 2], data[i + 3]]);
    ((v.wrapping_mul(2654435761)) >> (32 - hash_log)) as usize
}

/// Byte-aligned single-probe LZ: `[lit_run varint][literals][len-4 varint][dist varint]…`
fn lz_fast_compress(data: &[u8], p: &LzParams) -> Vec<u8> {
    let n = data.len();
    let mut out = Vec::with_capacity(n / 2 + 16);
    write_varint(&mut out, n as u64);
    let mut head = vec![usize::MAX; 1 << p.hash_log];
    let window = 1usize << p.window_log;
    let mut i = 0usize;
    let mut lit_start = 0usize;
    while i + 4 <= n {
        let h = hash4(data, i, p.hash_log);
        let cand = head[h];
        head[h] = i;
        if cand != usize::MAX && i - cand <= window && data[cand..cand + 4] == data[i..i + 4] {
            let max = p.max_match.min(n - i);
            let mut len = 4;
            while len < max && data[cand + len] == data[i + len] {
                len += 1;
            }
            // Flush pending literals, then the match.
            write_varint(&mut out, (i - lit_start) as u64);
            out.extend_from_slice(&data[lit_start..i]);
            write_varint(&mut out, (len - p.min_match) as u64);
            write_varint(&mut out, (i - cand) as u64);
            i += len;
            lit_start = i;
        } else {
            i += 1;
        }
    }
    if lit_start < n {
        write_varint(&mut out, (n - lit_start) as u64);
        out.extend_from_slice(&data[lit_start..]);
    }
    out
}

fn lz_fast_decompress(data: &[u8], min_match: usize) -> Result<Vec<u8>, CodecError> {
    let mut pos = 0usize;
    let raw_len = read_varint(data, &mut pos)? as usize;
    let mut out = Vec::with_capacity(raw_len.min(crate::MAX_PREALLOC));
    while out.len() < raw_len {
        let lit = read_varint(data, &mut pos)? as usize;
        let end = pos.checked_add(lit).ok_or(CodecError::Truncated)?;
        let bytes = data.get(pos..end).ok_or(CodecError::Truncated)?;
        if bytes.len() > raw_len - out.len() {
            return Err(CodecError::corrupt("blosc literal run overflows raw_len"));
        }
        out.extend_from_slice(bytes);
        pos = end;
        if out.len() >= raw_len {
            break;
        }
        let len = (read_varint(data, &mut pos)? as usize)
            .checked_add(min_match)
            .ok_or_else(|| CodecError::corrupt("blosc match length overflow"))?;
        let dist = read_varint(data, &mut pos)? as usize;
        if dist == 0 || dist > out.len() || len > raw_len - out.len() {
            return Err(CodecError::corrupt("bad match in blosc stream"));
        }
        let start = out.len() - dist;
        for k in 0..len {
            let b = out[start + k];
            out.push(b);
        }
    }
    if out.len() != raw_len {
        return Err(CodecError::corrupt("blosc length mismatch"));
    }
    Ok(out)
}

/// Compresses with shuffle + fast LZ. `typesize` is the element width used
/// for the shuffle (4 for f32 arrays, 1 disables shuffling).
pub fn compress(data: &[u8], typesize: usize) -> Vec<u8> {
    let p = LzParams::blosc_like();
    let shuffled = shuffle(data, typesize);
    let body = lz_fast_compress(&shuffled, &p);
    let mut out = Vec::with_capacity(body.len() + 2);
    out.push(typesize as u8);
    out.extend_from_slice(&body);
    out
}

/// Inverse of [`compress`].
pub fn decompress(data: &[u8]) -> Result<Vec<u8>, CodecError> {
    let mut out = Vec::new();
    decompress_into(data, &mut out)?;
    Ok(out)
}

/// Like [`decompress`], into a caller-provided scratch buffer (cleared
/// first) so repeated decodes reuse one allocation.
pub fn decompress_into(data: &[u8], out: &mut Vec<u8>) -> Result<(), CodecError> {
    let typesize = *data.first().ok_or(CodecError::Truncated)? as usize;
    if typesize == 0 || typesize > 64 {
        return Err(CodecError::corrupt("bad blosc typesize"));
    }
    let body = lz_fast_decompress(&data[1..], LzParams::blosc_like().min_match)?;
    unshuffle_into(&body, typesize, out);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shuffle_roundtrip_all_sizes() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        for t in [1usize, 2, 4, 8, 3, 7] {
            assert_eq!(unshuffle(&shuffle(&data, t), t), data, "typesize {t}");
        }
    }

    #[test]
    fn shuffle_partial_tail() {
        let data: Vec<u8> = (0..13u8).collect(); // 13 % 4 != 0
        assert_eq!(unshuffle(&shuffle(&data, 4), 4), data);
    }

    #[test]
    fn roundtrip_various_inputs() {
        let inputs: Vec<Vec<u8>> = vec![
            vec![],
            vec![42],
            b"abcabcabcabcabcabc".to_vec(),
            vec![0u8; 10_000],
            (0..5000u32).map(|i| (i * 7 % 256) as u8).collect(),
        ];
        for data in inputs {
            for t in [1usize, 4] {
                let blob = compress(&data, t);
                assert_eq!(decompress(&blob).unwrap(), data);
            }
        }
    }

    #[test]
    fn shuffle_helps_on_f32_like_data() {
        // Slowly varying floats share exponent/high-mantissa bytes.
        let floats: Vec<f32> = (0..4096).map(|i| 0.1 + (i as f32) * 1e-6).collect();
        let bytes: Vec<u8> = floats.iter().flat_map(|f| f.to_le_bytes()).collect();
        let with = compress(&bytes, 4);
        let without = compress(&bytes, 1);
        assert!(with.len() < without.len());
        assert_eq!(decompress(&with).unwrap(), bytes);
    }

    #[test]
    fn corrupt_stream_is_error() {
        let data = b"hello world hello world hello world".repeat(10);
        let mut blob = compress(&data, 1);
        for i in 0..blob.len().min(40) {
            blob[i] ^= 0xa5;
            let _ = decompress(&blob); // must not panic
            blob[i] ^= 0xa5;
        }
    }
}
