//! Lossless byte codecs for the DeepSZ reproduction.
//!
//! The paper's framework uses gzip, Zstandard and Blosc as interchangeable
//! black-box codecs for the sparse-layer *index array* and picks whichever
//! compresses best (§3.5, Fig. 4). No compression dependency is allowed in
//! this workspace, so this crate implements three stand-ins occupying the
//! same design points:
//!
//! * [`Gzipish`] — DEFLATE-like: 32 KiB window LZ77 with lazy matching +
//!   canonical Huffman.
//! * [`Zstdish`] — ratio-oriented: 1 MiB window, deep hash chains, long
//!   matches + canonical Huffman.
//! * [`Bloscish`] — throughput-oriented: type-aware byte shuffle + single-
//!   probe byte-aligned LZ, no entropy stage.
//!
//! All are exposed through the [`Codec`] trait plus the [`best_fit`] helper
//! that mirrors the framework's "try all, keep the smallest" behaviour.

// Decoders take untrusted bytes: every failure must surface as a
// `CodecError`, never a panic (`docs/ROBUSTNESS.md`).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod bits;
pub mod bloscish;
pub mod huffman;
pub mod lz;
pub mod range;
pub mod rle;
pub mod zstdish;

use std::fmt;

/// Errors produced by decoders. Encoders are infallible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended before the stream was complete.
    Truncated,
    /// Structurally invalid stream.
    Corrupt(String),
}

impl CodecError {
    /// Shorthand for a [`CodecError::Corrupt`] with a static message.
    pub fn corrupt(msg: impl Into<String>) -> Self {
        CodecError::Corrupt(msg.into())
    }
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "compressed stream truncated"),
            CodecError::Corrupt(m) => write!(f, "compressed stream corrupt: {m}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Cap on upfront output-buffer reservations made from stream-declared
/// lengths. Decoders verify real lengths as they go; this only bounds how
/// much a corrupt header can make them pre-allocate (growth past the cap
/// is amortized as usual).
pub const MAX_PREALLOC: usize = 1 << 24;

/// Incremental 64-bit FNV-1a — the integrity checksum of the DSZM v3/v4
/// container footers (`docs/FORMAT.md`), exposed as a running hasher so
/// a streaming container writer can fold bytes in as they are emitted
/// instead of re-walking a materialized buffer. Feeding the same bytes
/// through any split of `update` calls yields exactly [`fnv1a`] of their
/// concatenation. Not cryptographic: it detects storage/transport
/// corruption, not adversarial collisions.
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// Fresh hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }

    /// Fresh hasher with `tag` (little-endian) already folded in — the
    /// v4 per-record digest's ordinal prefix.
    pub fn with_tag(tag: u64) -> Self {
        let mut h = Self::new();
        h.update(&tag.to_le_bytes());
        h
    }

    /// Folds `bytes` into the running digest.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        self.0 = h;
    }

    /// The digest over everything fed so far (the hasher stays usable).
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

/// 64-bit FNV-1a over `bytes` in one call; see [`Fnv1a`].
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.update(bytes);
    h.finish()
}

/// A byte-oriented lossless codec.
pub trait Codec: Sync {
    /// Stable display name (matches the paper's terminology).
    fn name(&self) -> &'static str;
    /// Compresses `data`; never fails.
    fn compress(&self, data: &[u8]) -> Vec<u8>;
    /// Decompresses a stream produced by [`Codec::compress`].
    fn decompress(&self, data: &[u8]) -> Result<Vec<u8>, CodecError>;
    /// Decompresses into a caller-provided scratch buffer (cleared first),
    /// so repeated decodes reuse one allocation. Codecs whose decoders can
    /// write in place override this; the default falls back to
    /// [`Codec::decompress`].
    fn decompress_into(&self, data: &[u8], out: &mut Vec<u8>) -> Result<(), CodecError> {
        *out = self.decompress(data)?;
        Ok(())
    }
    /// The decompressed length the stream's header claims, read without
    /// decoding any payload. Decoders verify the real length as they go;
    /// this lets callers of untrusted streams reject an absurd claim
    /// *before* the decode loop commits memory to it.
    fn declared_len(&self, data: &[u8]) -> Result<usize, CodecError>;
}

/// DEFLATE-like codec (the paper's "gzip" role).
#[derive(Debug, Clone, Copy, Default)]
pub struct Gzipish;

impl Codec for Gzipish {
    fn name(&self) -> &'static str {
        "gzip"
    }
    fn compress(&self, data: &[u8]) -> Vec<u8> {
        lz::lz_compress(data, &lz::LzParams::gzip_like())
    }
    fn decompress(&self, data: &[u8]) -> Result<Vec<u8>, CodecError> {
        lz::decode_tokens(data)
    }
    fn decompress_into(&self, data: &[u8], out: &mut Vec<u8>) -> Result<(), CodecError> {
        lz::decode_tokens_into(data, out)
    }
    fn declared_len(&self, data: &[u8]) -> Result<usize, CodecError> {
        bits::read_varint(data, &mut 0).map(|v| v as usize)
    }
}

/// Ratio-oriented large-window codec (the paper's "Zstandard" role).
#[derive(Debug, Clone, Copy, Default)]
pub struct Zstdish;

impl Codec for Zstdish {
    fn name(&self) -> &'static str {
        "zstd"
    }
    fn compress(&self, data: &[u8]) -> Vec<u8> {
        zstdish::compress(data)
    }
    fn decompress(&self, data: &[u8]) -> Result<Vec<u8>, CodecError> {
        zstdish::decompress(data)
    }
    fn decompress_into(&self, data: &[u8], out: &mut Vec<u8>) -> Result<(), CodecError> {
        zstdish::decompress_into(data, out)
    }
    fn declared_len(&self, data: &[u8]) -> Result<usize, CodecError> {
        bits::read_varint(data, &mut 0).map(|v| v as usize)
    }
}

/// Throughput-oriented shuffle+LZ codec (the paper's "Blosc" role).
/// The shuffle element width is fixed at construction.
#[derive(Debug, Clone, Copy)]
pub struct Bloscish {
    /// Element width for the byte shuffle (1 disables it).
    pub typesize: usize,
}

impl Default for Bloscish {
    fn default() -> Self {
        Self { typesize: 1 }
    }
}

impl Codec for Bloscish {
    fn name(&self) -> &'static str {
        "blosc"
    }
    fn compress(&self, data: &[u8]) -> Vec<u8> {
        bloscish::compress(data, self.typesize)
    }
    fn decompress(&self, data: &[u8]) -> Result<Vec<u8>, CodecError> {
        bloscish::decompress(data)
    }
    fn decompress_into(&self, data: &[u8], out: &mut Vec<u8>) -> Result<(), CodecError> {
        bloscish::decompress_into(data, out)
    }
    fn declared_len(&self, data: &[u8]) -> Result<usize, CodecError> {
        // 1-byte shuffle typesize, then the LZ body's raw_len varint.
        if data.is_empty() {
            return Err(CodecError::Truncated);
        }
        bits::read_varint(&data[1..], &mut 0).map(|v| v as usize)
    }
}

/// Identifies a codec inside serialized containers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LosslessKind {
    /// [`Gzipish`]
    Gzip,
    /// [`Zstdish`]
    Zstd,
    /// [`Bloscish`]
    Blosc,
}

impl LosslessKind {
    /// All kinds, in the order the paper lists them.
    pub const ALL: [LosslessKind; 3] =
        [LosslessKind::Gzip, LosslessKind::Zstd, LosslessKind::Blosc];

    /// Stable one-byte wire id.
    pub fn id(self) -> u8 {
        match self {
            LosslessKind::Gzip => 0,
            LosslessKind::Zstd => 1,
            LosslessKind::Blosc => 2,
        }
    }

    /// Inverse of [`LosslessKind::id`].
    pub fn from_id(id: u8) -> Result<Self, CodecError> {
        match id {
            0 => Ok(LosslessKind::Gzip),
            1 => Ok(LosslessKind::Zstd),
            2 => Ok(LosslessKind::Blosc),
            _ => Err(CodecError::corrupt("unknown lossless codec id")),
        }
    }

    /// Returns the codec implementation for this kind.
    pub fn codec(self) -> &'static dyn Codec {
        static GZIP: Gzipish = Gzipish;
        static ZSTD: Zstdish = Zstdish;
        static BLOSC: Bloscish = Bloscish { typesize: 1 };
        match self {
            LosslessKind::Gzip => &GZIP,
            LosslessKind::Zstd => &ZSTD,
            LosslessKind::Blosc => &BLOSC,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        self.codec().name()
    }
}

/// Compresses `data` with every codec and returns the best (smallest) result,
/// mirroring the framework's best-fit lossless selection (§3.5).
pub fn best_fit(data: &[u8]) -> (LosslessKind, Vec<u8>) {
    LosslessKind::ALL
        .iter()
        .map(|&k| (k, k.codec().compress(data)))
        .min_by_key(|(_, blob)| blob.len())
        .unwrap_or_else(|| unreachable!("LosslessKind::ALL is nonempty"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn incremental_fnv_matches_one_shot_for_any_split() {
        let data: Vec<u8> = (0..251u32)
            .map(|i| (i.wrapping_mul(97) >> 3) as u8)
            .collect();
        let want = fnv1a(&data);
        for split in [0, 1, 7, 128, data.len()] {
            let mut h = Fnv1a::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finish(), want, "split at {split}");
        }
        let mut bytewise = Fnv1a::default();
        for b in &data {
            bytewise.update(std::slice::from_ref(b));
        }
        assert_eq!(bytewise.finish(), want);
    }

    #[test]
    fn tagged_fnv_matches_tag_prefix() {
        let tag = 0x1234_5678_9abc_def0u64;
        let body = b"record bytes";
        let mut concat = tag.to_le_bytes().to_vec();
        concat.extend_from_slice(body);
        let mut h = Fnv1a::with_tag(tag);
        h.update(body);
        assert_eq!(h.finish(), fnv1a(&concat));
    }

    fn sample_index_array(n: usize, density: f64) -> Vec<u8> {
        // Geometric-ish gap distribution like a pruned layer's index array.
        let mut x = 0x243f6a8885a308d3u64;
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let u = (x >> 11) as f64 / (1u64 << 53) as f64;
                let gap = (-u.ln() / density).min(254.0);
                gap as u8
            })
            .collect()
    }

    #[test]
    fn all_codecs_roundtrip_index_like_data() {
        let data = sample_index_array(50_000, 0.1);
        for kind in LosslessKind::ALL {
            let c = kind.codec();
            let blob = c.compress(&data);
            assert_eq!(c.decompress(&blob).unwrap(), data, "{}", c.name());
        }
    }

    #[test]
    fn best_fit_picks_smallest() {
        let data = sample_index_array(20_000, 0.08);
        let (kind, blob) = best_fit(&data);
        for other in LosslessKind::ALL {
            let b = other.codec().compress(&data);
            assert!(blob.len() <= b.len(), "{:?} beaten by {:?}", kind, other);
        }
        // Entropy-coded codecs must beat the no-entropy blosc stand-in here.
        assert_ne!(kind, LosslessKind::Blosc);
    }

    #[test]
    fn decompress_into_reuses_scratch() {
        let data = sample_index_array(30_000, 0.1);
        let mut scratch = Vec::new();
        for kind in LosslessKind::ALL {
            let c = kind.codec();
            let blob = c.compress(&data);
            // Pre-poison the scratch to prove it is cleared, then reuse it.
            scratch.extend_from_slice(&[0xAA; 17]);
            c.decompress_into(&blob, &mut scratch).unwrap();
            assert_eq!(scratch, data, "{}", c.name());
        }
    }

    #[test]
    fn kind_ids_roundtrip() {
        for kind in LosslessKind::ALL {
            assert_eq!(LosslessKind::from_id(kind.id()).unwrap(), kind);
        }
        assert!(LosslessKind::from_id(99).is_err());
    }
}
