//! Byte run-length encoding, used for highly repetitive side streams
//! (e.g. block-predictor selector bytes in the SZ pipeline).

use crate::bits::{read_varint, write_varint};
use crate::CodecError;

/// Encodes `data` as `(run_length, byte)` pairs.
pub fn compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    write_varint(&mut out, data.len() as u64);
    let mut i = 0usize;
    while i < data.len() {
        let b = data[i];
        let mut j = i + 1;
        while j < data.len() && data[j] == b {
            j += 1;
        }
        write_varint(&mut out, (j - i) as u64);
        out.push(b);
        i = j;
    }
    out
}

/// Inverse of [`compress`].
pub fn decompress(data: &[u8]) -> Result<Vec<u8>, CodecError> {
    let mut pos = 0usize;
    let raw_len = read_varint(data, &mut pos)? as usize;
    let mut out = Vec::with_capacity(raw_len);
    while out.len() < raw_len {
        let run = read_varint(data, &mut pos)? as usize;
        let b = *data.get(pos).ok_or(CodecError::Truncated)?;
        pos += 1;
        if run == 0 || out.len() + run > raw_len {
            return Err(CodecError::corrupt("bad RLE run"));
        }
        out.extend(std::iter::repeat_n(b, run));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        for data in [
            vec![],
            vec![1u8],
            vec![0u8; 100_000],
            b"aaabbbcccabc".to_vec(),
            (0..=255u8).collect::<Vec<_>>(),
        ] {
            assert_eq!(decompress(&compress(&data)).unwrap(), data);
        }
    }

    #[test]
    fn long_runs_shrink() {
        let data = vec![7u8; 1 << 16];
        assert!(compress(&data).len() < 16);
    }
}
