//! Byte run-length encoding, used for highly repetitive side streams
//! (e.g. block-predictor selector bytes in the SZ pipeline).

use crate::bits::{read_varint, write_varint};
use crate::CodecError;

/// Encodes `data` as `(run_length, byte)` pairs.
pub fn compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    write_varint(&mut out, data.len() as u64);
    let mut i = 0usize;
    while i < data.len() {
        let b = data[i];
        let mut j = i + 1;
        while j < data.len() && data[j] == b {
            j += 1;
        }
        write_varint(&mut out, (j - i) as u64);
        out.push(b);
        i = j;
    }
    out
}

/// Inverse of [`compress`].
pub fn decompress(data: &[u8]) -> Result<Vec<u8>, CodecError> {
    let mut out = Vec::new();
    decompress_into(data, &mut out)?;
    Ok(out)
}

/// Like [`decompress`], into a caller-provided scratch buffer (cleared
/// first) so repeated decodes reuse one allocation.
pub fn decompress_into(data: &[u8], out: &mut Vec<u8>) -> Result<(), CodecError> {
    decompress_into_capped(data, out, usize::MAX)
}

/// Like [`decompress_into`], but rejects streams whose declared length
/// exceeds `max_len`. Callers that know the expected output size (e.g.
/// the SZ selector stream, whose block count is fixed by the header)
/// should pass it so a hostile declared length cannot demand memory at
/// all — runs are bounded by the declared length, so the cap bounds every
/// allocation in this function.
pub fn decompress_into_capped(
    data: &[u8],
    out: &mut Vec<u8>,
    max_len: usize,
) -> Result<(), CodecError> {
    out.clear();
    let mut pos = 0usize;
    let raw_len = read_varint(data, &mut pos)? as usize;
    if raw_len > max_len {
        return Err(CodecError::corrupt("RLE length exceeds caller cap"));
    }
    out.reserve(raw_len.min(crate::MAX_PREALLOC));
    while out.len() < raw_len {
        let run = read_varint(data, &mut pos)? as usize;
        let b = *data.get(pos).ok_or(CodecError::Truncated)?;
        pos += 1;
        // `raw_len - out.len()` (not `out.len() + run`): the addition can
        // wrap for a hostile run length once overflow checks are off.
        if run == 0 || run > raw_len - out.len() {
            return Err(CodecError::corrupt("bad RLE run"));
        }
        // Piecewise so one run never reserves more than MAX_PREALLOC at a
        // time (repeat_n is TrustedLen: a single extend would reserve the
        // whole attacker-declared run up front).
        let mut remaining = run;
        while remaining > 0 {
            let step = remaining.min(crate::MAX_PREALLOC);
            out.extend(std::iter::repeat_n(b, step));
            remaining -= step;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        for data in [
            vec![],
            vec![1u8],
            vec![0u8; 100_000],
            b"aaabbbcccabc".to_vec(),
            (0..=255u8).collect::<Vec<_>>(),
        ] {
            assert_eq!(decompress(&compress(&data)).unwrap(), data);
        }
    }

    #[test]
    fn long_runs_shrink() {
        let data = vec![7u8; 1 << 16];
        assert!(compress(&data).len() < 16);
    }

    #[test]
    fn caller_cap_rejects_oversized_streams() {
        let data = vec![9u8; 100];
        let blob = compress(&data);
        let mut out = Vec::new();
        assert!(decompress_into_capped(&blob, &mut out, 99).is_err());
        decompress_into_capped(&blob, &mut out, 100).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn hostile_run_length_rejected() {
        // A near-usize::MAX run must error, not wrap the bounds check and
        // attempt a capacity-overflow allocation.
        let mut s = Vec::new();
        write_varint(&mut s, 2); // declared length
        write_varint(&mut s, 1);
        s.push(b'A');
        write_varint(&mut s, u64::MAX);
        s.push(b'B');
        assert!(decompress(&s).is_err());
    }
}
