//! Bit-granular I/O used by the entropy coders.
//!
//! Bits are written LSB-first within each byte for fixed-width fields
//! ([`BitWriter::write_bits`]); Huffman codes are emitted MSB-first through
//! [`BitWriter::write_code`] so that the canonical decoder can consume them
//! one bit at a time in code order. Both directions share the same physical
//! bit order, so the two styles can be mixed freely in one stream as long as
//! the reader mirrors the writer call-for-call.

use crate::CodecError;

/// Append-only bit sink backed by a `Vec<u8>`.
#[derive(Default, Debug, Clone)]
pub struct BitWriter {
    buf: Vec<u8>,
    /// Bits already used in the final byte of `buf` (0..=7; 0 means aligned).
    used: u8,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a writer with capacity for roughly `bytes` of output.
    pub fn with_capacity(bytes: usize) -> Self {
        Self {
            buf: Vec::with_capacity(bytes),
            used: 0,
        }
    }

    /// Number of complete or partial bytes written so far.
    pub fn byte_len(&self) -> usize {
        self.buf.len()
    }

    /// Total number of bits written so far.
    pub fn bit_len(&self) -> usize {
        if self.used == 0 {
            self.buf.len() * 8
        } else {
            (self.buf.len() - 1) * 8 + self.used as usize
        }
    }

    /// Writes the low `n` bits of `value`, LSB first. `n` may be 0..=64.
    pub fn write_bits(&mut self, mut value: u64, mut n: u8) {
        debug_assert!(n <= 64);
        if n < 64 {
            value &= (1u64 << n) - 1;
        }
        while n > 0 {
            if self.used == 0 {
                self.buf.push(0);
            }
            let free = 8 - self.used;
            let take = free.min(n);
            let Some(last) = self.buf.last_mut() else {
                // Proof the buffer is non-empty here: `used == 0` pushed a
                // byte just above, and `used != 0` means a prior call left
                // a partially-filled final byte in `buf` (nothing ever
                // pops). The entropy coders sit on the panic-free policy
                // (`docs/ROBUSTNESS.md`), so if the invariant were ever
                // broken we realign and re-enter the loop (which pushes a
                // fresh byte) instead of aborting the process.
                debug_assert!(false, "BitWriter: empty buffer with used != 0");
                self.used = 0;
                continue;
            };
            *last |= ((value & ((1u64 << take) - 1)) as u8) << self.used;
            self.used = (self.used + take) % 8;
            value >>= take;
            n -= take;
        }
    }

    /// Writes a single bit.
    #[inline]
    pub fn write_bit(&mut self, bit: bool) {
        self.write_bits(bit as u64, 1);
    }

    /// Writes an `n`-bit Huffman code MSB-first (bit `n-1` of `code` first).
    #[inline]
    pub fn write_code(&mut self, code: u32, n: u8) {
        debug_assert!(n <= 32);
        for i in (0..n).rev() {
            self.write_bits(((code >> i) & 1) as u64, 1);
        }
    }

    /// Pads to the next byte boundary with zero bits.
    pub fn align(&mut self) {
        self.used = 0;
    }

    /// Consumes the writer and returns the written bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Sequential bit source over a byte slice; mirrors [`BitWriter`].
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    buf: &'a [u8],
    /// Next bit index within `buf` (absolute, 0-based).
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Remaining bits available.
    pub fn remaining_bits(&self) -> usize {
        self.buf.len() * 8 - self.pos
    }

    /// Reads `n` bits written by [`BitWriter::write_bits`].
    pub fn read_bits(&mut self, n: u8) -> Result<u64, CodecError> {
        debug_assert!(n <= 64);
        if self.remaining_bits() < n as usize {
            return Err(CodecError::Truncated);
        }
        let mut out = 0u64;
        let mut got = 0u8;
        while got < n {
            let byte = self.buf[self.pos / 8];
            let off = (self.pos % 8) as u8;
            let avail = 8 - off;
            let take = avail.min(n - got);
            let bits = (byte >> off) as u64 & ((1u64 << take) - 1);
            out |= bits << got;
            got += take;
            self.pos += take as usize;
        }
        Ok(out)
    }

    /// Reads a single bit.
    #[inline]
    pub fn read_bit(&mut self) -> Result<bool, CodecError> {
        Ok(self.read_bits(1)? != 0)
    }

    /// Returns the next `n` bits without consuming them, zero-padded past
    /// the end of the buffer, plus the number of genuine bits available
    /// (≤ `n`). Used by table-driven decoders to look ahead a full code.
    #[inline]
    pub fn peek_bits(&self, n: u8) -> (u64, usize) {
        debug_assert!(n <= 56);
        let avail = self.remaining_bits().min(n as usize);
        let byte0 = self.pos / 8;
        let off = (self.pos % 8) as u8;
        let mut word = 0u64;
        // Gather up to 8 bytes starting at the current byte; bits beyond
        // the buffer stay zero.
        for (k, &b) in self.buf[byte0..].iter().take(8).enumerate() {
            word |= u64::from(b) << (8 * k);
        }
        let v = (word >> off) & if n == 0 { 0 } else { (1u64 << n) - 1 };
        (v, avail)
    }

    /// Advances past `n` bits previously returned by [`BitReader::peek_bits`].
    #[inline]
    pub fn consume(&mut self, n: usize) {
        debug_assert!(n <= self.remaining_bits(), "consuming past the end");
        self.pos += n;
    }

    /// Skips ahead to the next byte boundary.
    pub fn align(&mut self) {
        self.pos = self.pos.div_ceil(8) * 8;
    }
}

/// Appends an unsigned LEB128 varint to `out`.
pub fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

/// Reads an unsigned LEB128 varint from `data[*pos..]`, advancing `pos`.
pub fn read_varint(data: &[u8], pos: &mut usize) -> Result<u64, CodecError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *data.get(*pos).ok_or(CodecError::Truncated)?;
        *pos += 1;
        if shift >= 64 {
            return Err(CodecError::corrupt("varint overflow"));
        }
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Zig-zag encodes a signed integer so small magnitudes stay small.
#[inline]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_fixed_width_fields() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bits(0xdead_beef, 32);
        w.write_bits(1, 1);
        w.write_bits(0x3ff, 10);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3).unwrap(), 0b101);
        assert_eq!(r.read_bits(32).unwrap(), 0xdead_beef);
        assert_eq!(r.read_bits(1).unwrap(), 1);
        assert_eq!(r.read_bits(10).unwrap(), 0x3ff);
    }

    #[test]
    fn roundtrip_64bit() {
        let mut w = BitWriter::new();
        w.write_bits(u64::MAX, 64);
        w.write_bits(0, 64);
        w.write_bits(0x0123_4567_89ab_cdef, 64);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(64).unwrap(), u64::MAX);
        assert_eq!(r.read_bits(64).unwrap(), 0);
        assert_eq!(r.read_bits(64).unwrap(), 0x0123_4567_89ab_cdef);
    }

    #[test]
    fn msb_first_codes_interleave_with_lsb_fields() {
        let mut w = BitWriter::new();
        w.write_code(0b110, 3);
        w.write_bits(0xab, 8);
        w.write_code(0b01, 2);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        // write_code emits MSB first: 1, 1, 0.
        assert!(r.read_bit().unwrap());
        assert!(r.read_bit().unwrap());
        assert!(!r.read_bit().unwrap());
        assert_eq!(r.read_bits(8).unwrap(), 0xab);
        assert!(!r.read_bit().unwrap());
        assert!(r.read_bit().unwrap());
    }

    #[test]
    fn align_pads_with_zeros() {
        let mut w = BitWriter::new();
        w.write_bits(1, 1);
        w.align();
        w.write_bits(0xff, 8);
        let bytes = w.into_bytes();
        assert_eq!(bytes, vec![0x01, 0xff]);
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(1).unwrap(), 1);
        r.align();
        assert_eq!(r.read_bits(8).unwrap(), 0xff);
    }

    #[test]
    fn truncated_read_errors() {
        let bytes = vec![0u8; 2];
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(16).unwrap(), 0);
        assert!(matches!(r.read_bits(1), Err(CodecError::Truncated)));
    }

    #[test]
    fn varint_roundtrip() {
        let mut buf = Vec::new();
        let values = [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX];
        for &v in &values {
            write_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(read_varint(&buf, &mut pos).unwrap(), v);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [-5i64, -1, 0, 1, 5, i64::MIN, i64::MAX] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }
}
