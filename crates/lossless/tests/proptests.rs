//! Property-based tests: every lossless codec must invert exactly on
//! arbitrary byte strings, and the entropy coders must round-trip arbitrary
//! symbol streams.

use dsz_lossless::range::{RangeDecoder, RangeEncoder, StaticModel, TreeModel};
use dsz_lossless::{huffman, LosslessKind};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn gzipish_roundtrips(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let c = LosslessKind::Gzip.codec();
        prop_assert_eq!(c.decompress(&c.compress(&data)).unwrap(), data);
    }

    #[test]
    fn zstdish_roundtrips(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let c = LosslessKind::Zstd.codec();
        prop_assert_eq!(c.decompress(&c.compress(&data)).unwrap(), data);
    }

    #[test]
    fn bloscish_roundtrips(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let c = LosslessKind::Blosc.codec();
        prop_assert_eq!(c.decompress(&c.compress(&data)).unwrap(), data);
    }

    #[test]
    fn repetitive_structures_roundtrip(
        unit in proptest::collection::vec(any::<u8>(), 1..32),
        reps in 1usize..256,
    ) {
        // Highly repetitive inputs exercise long overlapping matches.
        let data: Vec<u8> = unit.iter().copied().cycle().take(unit.len() * reps).collect();
        for kind in LosslessKind::ALL {
            let c = kind.codec();
            prop_assert_eq!(c.decompress(&c.compress(&data)).unwrap(), data.clone(), "{}", c.name());
        }
    }

    #[test]
    fn huffman_stream_roundtrips(syms in proptest::collection::vec(0u32..5000, 0..2048)) {
        let blob = huffman::encode_stream(&syms);
        let mut pos = 0;
        prop_assert_eq!(huffman::decode_stream(&blob, &mut pos).unwrap(), syms);
    }

    #[test]
    fn tree_model_roundtrips(syms in proptest::collection::vec(0u32..256, 1..2048)) {
        let mut enc = RangeEncoder::new();
        let mut m = TreeModel::<8>::default();
        for &s in &syms {
            m.encode(&mut enc, s);
        }
        let blob = enc.finish();
        let mut dec = RangeDecoder::new(&blob).unwrap();
        let mut m = TreeModel::<8>::default();
        for &s in &syms {
            prop_assert_eq!(m.decode(&mut dec), s);
        }
    }

    #[test]
    fn static_model_roundtrips(syms in proptest::collection::vec(0u32..64, 1..2048)) {
        let mut counts = vec![0u64; 64];
        for &s in &syms {
            counts[s as usize] += 1;
        }
        let model = StaticModel::from_counts(&counts).unwrap();
        let mut table = Vec::new();
        model.serialize(&mut table);
        let mut pos = 0;
        let model2 = StaticModel::deserialize(&table, &mut pos).unwrap();

        let mut enc = RangeEncoder::new();
        for &s in &syms {
            model.encode(&mut enc, s);
        }
        let blob = enc.finish();
        let mut dec = RangeDecoder::new(&blob).unwrap();
        for &s in &syms {
            prop_assert_eq!(model2.decode(&mut dec), s);
        }
    }

    #[test]
    fn decoders_never_panic_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        for kind in LosslessKind::ALL {
            let _ = kind.codec().decompress(&data);
        }
        let mut pos = 0;
        let _ = huffman::decode_stream(&data, &mut pos);
    }
}
