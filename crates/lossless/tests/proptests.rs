//! Property-based tests: every lossless codec must invert exactly on
//! arbitrary byte strings, the entropy coders must round-trip arbitrary
//! symbol streams, and — the robustness half (`docs/ROBUSTNESS.md`) —
//! every `*_into` decoder must survive random bytes and mutated-valid
//! streams without panicking: it returns `Err`, or (these formats carry
//! no checksums — integrity detection is the DSZM v3 container's job) an
//! `Ok` whose output stayed behind the declared-length allocation caps.

use dsz_lossless::range::{RangeDecoder, RangeEncoder, StaticModel, TreeModel};
use dsz_lossless::{bloscish, huffman, lz, rle, zstdish, LosslessKind};
use proptest::prelude::*;

/// Drives every `*_into` decode entry point over `bytes` with a dirty,
/// wrongly-sized scratch buffer. Panics (not `Err`s) fail the test.
///
/// The uncapped framed decoders are gated on [`Codec::declared_len`]
/// first, exactly as the hardened production callers are (`decode_record`
/// cross-checks declared sizes before decoding): RLE and the range-coded
/// formats have *legal* unbounded amplification, so a mutated length
/// field can demand gigabytes of perfectly well-formed output — the
/// declared-len peek is the defense, and the fuzz exercises the same
/// composition. `decompress_into_capped` (the other caller pattern) is
/// driven unconditionally.
fn drive_into_decoders(bytes: &[u8]) {
    use dsz_lossless::bits::read_varint;
    const CAP: usize = 1 << 20;
    let mut scratch = vec![0xAAu8; 9];
    // The caller-capped entry point is safe to drive on anything.
    let _ = rle::decompress_into_capped(bytes, &mut scratch, CAP);
    // Leading-varint declared length shared by the rle/zstdish/lz framings.
    let small_declared = read_varint(bytes, &mut 0).is_ok_and(|n| n <= CAP as u64);
    if small_declared {
        let _ = rle::decompress_into(bytes, &mut scratch);
        let _ = zstdish::decompress_into(bytes, &mut scratch);
        let _ = lz::decode_tokens_into(bytes, &mut scratch);
    }
    // The registry path every production caller uses: declared-len peek
    // (must never panic on garbage), then the gated decode.
    for kind in LosslessKind::ALL {
        let c = kind.codec();
        if c.declared_len(bytes).is_ok_and(|n| n <= CAP) {
            let _ = c.decompress_into(bytes, &mut scratch);
        }
    }
    // Symbol counts are checked against the payload's bit budget inside,
    // so the Huffman path needs no external gate.
    let mut syms = vec![7u32; 3];
    let mut pos = 0;
    let _ = huffman::decode_stream_into(bytes, &mut pos, &mut syms);
    // Range backend: a mutated model table must be rejected or produce a
    // decoder that never panics while draining symbols.
    let mut pos = 0;
    if let Ok(model) = StaticModel::deserialize(bytes, &mut pos) {
        if let Ok(mut dec) = RangeDecoder::new(&bytes[pos.min(bytes.len())..]) {
            for _ in 0..64 {
                let _ = model.decode(&mut dec);
            }
        }
    }
}

/// Valid streams for every framed backend, from one input buffer.
fn valid_streams(data: &[u8]) -> Vec<(&'static str, Vec<u8>)> {
    let syms: Vec<u32> = data.iter().map(|&b| u32::from(b)).collect();
    vec![
        ("rle", rle::compress(data)),
        ("zstdish", zstdish::compress(data)),
        ("bloscish", bloscish::compress(data, 4)),
        ("lz", lz::lz_compress(data, &lz::LzParams::gzip_like())),
        ("huffman", huffman::encode_stream(&syms)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn gzipish_roundtrips(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let c = LosslessKind::Gzip.codec();
        prop_assert_eq!(c.decompress(&c.compress(&data)).unwrap(), data);
    }

    #[test]
    fn zstdish_roundtrips(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let c = LosslessKind::Zstd.codec();
        prop_assert_eq!(c.decompress(&c.compress(&data)).unwrap(), data);
    }

    #[test]
    fn bloscish_roundtrips(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let c = LosslessKind::Blosc.codec();
        prop_assert_eq!(c.decompress(&c.compress(&data)).unwrap(), data);
    }

    #[test]
    fn repetitive_structures_roundtrip(
        unit in proptest::collection::vec(any::<u8>(), 1..32),
        reps in 1usize..256,
    ) {
        // Highly repetitive inputs exercise long overlapping matches.
        let data: Vec<u8> = unit.iter().copied().cycle().take(unit.len() * reps).collect();
        for kind in LosslessKind::ALL {
            let c = kind.codec();
            prop_assert_eq!(c.decompress(&c.compress(&data)).unwrap(), data.clone(), "{}", c.name());
        }
    }

    #[test]
    fn huffman_stream_roundtrips(syms in proptest::collection::vec(0u32..5000, 0..2048)) {
        let blob = huffman::encode_stream(&syms);
        let mut pos = 0;
        prop_assert_eq!(huffman::decode_stream(&blob, &mut pos).unwrap(), syms);
    }

    #[test]
    fn tree_model_roundtrips(syms in proptest::collection::vec(0u32..256, 1..2048)) {
        let mut enc = RangeEncoder::new();
        let mut m = TreeModel::<8>::default();
        for &s in &syms {
            m.encode(&mut enc, s);
        }
        let blob = enc.finish();
        let mut dec = RangeDecoder::new(&blob).unwrap();
        let mut m = TreeModel::<8>::default();
        for &s in &syms {
            prop_assert_eq!(m.decode(&mut dec), s);
        }
    }

    #[test]
    fn static_model_roundtrips(syms in proptest::collection::vec(0u32..64, 1..2048)) {
        let mut counts = vec![0u64; 64];
        for &s in &syms {
            counts[s as usize] += 1;
        }
        let model = StaticModel::from_counts(&counts).unwrap();
        let mut table = Vec::new();
        model.serialize(&mut table);
        let mut pos = 0;
        let model2 = StaticModel::deserialize(&table, &mut pos).unwrap();

        let mut enc = RangeEncoder::new();
        for &s in &syms {
            model.encode(&mut enc, s);
        }
        let blob = enc.finish();
        let mut dec = RangeDecoder::new(&blob).unwrap();
        for &s in &syms {
            prop_assert_eq!(model2.decode(&mut dec), s);
        }
    }

    #[test]
    fn decoders_never_panic_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        for kind in LosslessKind::ALL {
            let _ = kind.codec().decompress(&data);
        }
        let mut pos = 0;
        let _ = huffman::decode_stream(&data, &mut pos);
    }

    /// Pure-random bytes through every `*_into` backend: `Err` or a
    /// bounded `Ok`, never a panic.
    #[test]
    fn into_decoders_never_panic_on_random_bytes(
        data in proptest::collection::vec(any::<u8>(), 0..768),
    ) {
        drive_into_decoders(&data);
    }

    /// Mutated-valid streams — byte stomps and truncations of real
    /// encoder output, the harder case because the framing mostly still
    /// parses — through every `*_into` backend, plus a paranoia check
    /// that an `Ok` decode never exceeds the stream's own declared
    /// length by more than the block the decoder was mid-way through.
    #[test]
    fn into_decoders_never_panic_on_mutated_valid_streams(
        data in proptest::collection::vec(any::<u8>(), 1..1024),
        stomp_offs in proptest::collection::vec(any::<usize>(), 1..6),
        stomp_masks in proptest::collection::vec(1u8..255u8, 1..6),
        cut in any::<usize>(),
    ) {
        for (_name, stream) in valid_streams(&data) {
            let mut stomped = stream.clone();
            for (&idx, &mask) in stomp_offs.iter().zip(&stomp_masks) {
                let off = idx % stomped.len();
                stomped[off] ^= mask;
            }
            drive_into_decoders(&stomped);

            let mut truncated = stream.clone();
            truncated.truncate(cut % (truncated.len() + 1));
            drive_into_decoders(&truncated);
        }
    }
}
