//! Offline stand-in for `rand` (API-compatible subset).
//!
//! Provides [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over numeric ranges, and [`Rng::gen_bool`] — the
//! surface the workspace's data generators use. The generator is a
//! splitmix64, not the real StdRng, so sequences differ from upstream rand;
//! all in-repo consumers only rely on determinism, not on specific values.

/// Random value source.
pub trait Rng {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Uniform value from `range` (`lo..hi` or `lo..=hi`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Deterministic construction from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    /// Stand-in for rand's `StdRng`: splitmix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl super::Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Scramble so nearby seeds diverge immediately.
            Self {
                state: seed.wrapping_mul(0x2545f4914f6cdd1d) ^ 0x6a09e667f3bcc909,
            }
        }
    }
}

/// Ranges [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one uniform value.
    fn sample_single<R: Rng>(self, rng: &mut R) -> T;
}

/// Numeric types sampleable from a range.
pub trait SampleUniform: Copy {
    /// Uniform draw from `[lo, hi)` (`half_open`) or `[lo, hi]`.
    fn sample_uniform<R: Rng>(lo: Self, hi: Self, half_open: bool, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: Rng>(lo: Self, hi: Self, half_open: bool, rng: &mut R) -> Self {
                let (lo, hi) = (lo as i128, hi as i128);
                let span = if half_open { hi - lo } else { hi - lo + 1 };
                assert!(span > 0, "empty range");
                let r = (u128::from(rng.next_u64()) % span as u128) as i128;
                (lo + r) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: Rng>(lo: Self, hi: Self, _half_open: bool, rng: &mut R) -> Self {
                assert!(lo < hi, "empty range");
                let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                lo + (u as $t) * (hi - lo)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: Rng>(self, rng: &mut R) -> T {
        T::sample_uniform(self.start, self.end, true, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: Rng>(self, rng: &mut R) -> T {
        T::sample_uniform(*self.start(), *self.end(), false, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            let x: f64 = a.gen_range(-1.0..1.0);
            let y: f64 = b.gen_range(-1.0..1.0);
            assert_eq!(x, y);
            assert!((-1.0..1.0).contains(&x));
        }
        let mut c = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let v: usize = c.gen_range(0..=4);
            assert!(v <= 4);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(1);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
