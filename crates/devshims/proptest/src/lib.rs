//! Offline stand-in for `proptest`.
//!
//! The workspace builds with no network access, so the real proptest crate
//! cannot be fetched. This shim implements the API subset the property
//! tests use: the [`strategy::Strategy`] trait with `prop_map` /
//! `prop_flat_map` / `prop_filter`, numeric-range and `Just` strategies,
//! [`collection::vec`], weighted [`prop_oneof!`], `any::<u8>()`, and the
//! [`proptest!`] test macro. Cases are generated from a deterministic
//! per-test RNG; there is **no shrinking** — a failing case panics with the
//! generated values left to the assertion message.

/// Deterministic splitmix64 RNG used for all value generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary string (the test name) plus a fixed salt.
    pub fn from_name(name: &str) -> Self {
        let mut h = 0xcbf29ce484222325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
        Self {
            state: h ^ 0x9e3779b97f4a7c15,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Creates the RNG for a named test (used by the [`proptest!`] expansion).
pub fn test_rng(name: &str) -> TestRng {
    TestRng::from_name(name)
}

/// Per-test configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` generated inputs.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use crate::TestRng;

    /// A recipe for generating test values.
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Generates an intermediate value, then a strategy from it.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }

        /// Rejects values failing `pred` (resamples, up to a retry cap).
        fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                whence,
                pred,
            }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        whence: &'static str,
        pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter '{}' rejected 1000 consecutive samples",
                self.whence
            );
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Types a `Range<T>` can uniformly sample.
    pub trait SampleUniform: Copy {
        /// Uniform draw from `[lo, hi)`.
        fn sample(lo: Self, hi: Self, rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_sample_int {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
                    assert!(lo < hi, "empty range");
                    let span = (hi as i128 - lo as i128) as u128;
                    let r = (u128::from(rng.next_u64()) % span) as i128;
                    (lo as i128 + r) as $t
                }
            }
        )*};
    }
    impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl SampleUniform for f32 {
        fn sample(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
            assert!(lo < hi, "empty range");
            lo + (rng.unit_f64() as f32) * (hi - lo)
        }
    }

    impl SampleUniform for f64 {
        fn sample(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
            assert!(lo < hi, "empty range");
            lo + rng.unit_f64() * (hi - lo)
        }
    }

    impl<T: SampleUniform> Strategy for std::ops::Range<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::sample(self.start, self.end, rng)
        }
    }

    macro_rules! impl_strategy_tuple {
        ($($s:ident . $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }
    impl_strategy_tuple!(A.0, B.1);
    impl_strategy_tuple!(A.0, B.1, C.2);
    impl_strategy_tuple!(A.0, B.1, C.2, D.3);

    /// Weighted union of type-erased strategies (built by [`prop_oneof!`]).
    pub struct Union<T> {
        branches: Vec<(u32, BoxedStrategy<T>)>,
    }

    impl<T> Union<T> {
        /// Builds from `(weight, strategy)` pairs; weights must sum > 0.
        pub fn new_weighted(branches: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            assert!(branches.iter().map(|(w, _)| *w as u64).sum::<u64>() > 0);
            Self { branches }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let total: u64 = self.branches.iter().map(|(w, _)| u64::from(*w)).sum();
            let mut pick = rng.below(total);
            for (w, s) in &self.branches {
                if pick < u64::from(*w) {
                    return s.generate(rng);
                }
                pick -= u64::from(*w);
            }
            unreachable!("weight accounting")
        }
    }
}

/// Types usable with [`any`].
pub trait ArbitraryValue {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, i8, i16, i32, i64, usize, isize);

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over the full value domain of `T`.
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: ArbitraryValue> strategy::Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — unconstrained values of `T`.
pub fn any<T: ArbitraryValue>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::TestRng;

    /// Inclusive length bounds for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.end > r.start, "empty size range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    /// Vectors of `element` values with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.lo + rng.below((self.size.hi - self.size.lo + 1) as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop imports mirroring `proptest::prelude`.

    pub use crate::collection;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{any, prop_assert, prop_assert_eq, prop_oneof, proptest, ProptestConfig};
}

/// Weighted choice between strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Assertion inside a property (no shrinking: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Declares property tests: each runs `cases` times over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])+
     fn $name:ident ( $($p:pat_param in $s:expr),+ $(,)? ) $body:block
     $($rest:tt)*) => {
        $(#[$meta])+
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..config.cases {
                let _ = __case;
                $(let $p = $crate::strategy::Strategy::generate(&($s), &mut rng);)+
                $body
            }
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}
