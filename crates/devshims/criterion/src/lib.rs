//! Offline stand-in for the `criterion` benchmark harness.
//!
//! This workspace builds without network access, so the real criterion
//! crate cannot be fetched. This shim implements the API subset the bench
//! files use — groups, `bench_function` / `bench_with_input`, throughput
//! annotation — with a simple wall-clock sampler that prints one line per
//! benchmark. Numbers are indicative, not statistically rigorous; swap in
//! real criterion when a registry is available.

use std::fmt;
use std::time::{Duration, Instant};

/// Top-level harness handle.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            samples: 10,
            throughput: None,
        }
    }

    /// Bench outside any group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = self.benchmark_group("");
        g.bench_function(id, f);
        g.finish();
    }
}

/// Throughput annotation, reported as MB/s or Melem/s.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A `group/function/param` benchmark identifier.
pub struct BenchmarkId {
    repr: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(name: impl fmt::Display, param: impl fmt::Display) -> Self {
        Self {
            repr: format!("{name}/{param}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.repr)
    }
}

/// A named group of benchmarks sharing sample settings.
pub struct BenchmarkGroup {
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Sets the number of timed samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Annotates per-iteration throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            total: Duration::ZERO,
            iters: 0,
        };
        for _ in 0..self.samples {
            f(&mut b);
        }
        self.report(&id.to_string(), &b);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (printing happens per-benchmark).
    pub fn finish(&mut self) {}

    fn report(&self, id: &str, b: &Bencher) {
        if b.iters == 0 {
            println!("{}/{id}: no iterations", self.name);
            return;
        }
        let per_iter = b.total.as_secs_f64() / b.iters as f64;
        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) => {
                format!("  ({:.1} MB/s)", n as f64 / per_iter / 1e6)
            }
            Some(Throughput::Elements(n)) => {
                format!("  ({:.1} Melem/s)", n as f64 / per_iter / 1e6)
            }
            None => String::new(),
        };
        let prefix = if self.name.is_empty() {
            String::new()
        } else {
            format!("{}/", self.name)
        };
        println!("{prefix}{id}: {:.3} ms/iter{rate}", per_iter * 1e3);
    }
}

/// Per-benchmark timing accumulator handed to the closure.
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times one call of `f` and accumulates it into the sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let t0 = Instant::now();
        let out = f();
        self.total += t0.elapsed();
        self.iters += 1;
        std::hint::black_box(out);
    }
}

/// Opaque-value helper, re-exported like criterion's.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
