//! Streaming (bounded-memory) SZ encode: the [`ChunkSink`] emitter.
//!
//! [`SzConfig::compress_stream`] produces **exactly** the bytes of
//! [`SzConfig::compress`] for every stream format, but hands finished
//! spans to a caller-supplied [`ChunkSink`] as they retire instead of
//! materializing the whole stream, and bounds its buffered bytes against
//! a caller-shared [`dsz_tensor::budget::ByteBudget`]:
//!
//! * Chunks quantize/serialize on pool workers through a bounded
//!   [`ordered_pipeline`] window — each in-flight chunk pre-reserves a
//!   conservative [`chunk_slot_bytes`] slot, so the ledger caps how many
//!   chunks can be in flight at once.
//! * The v3/v4 shared-table two-pass design survives without holding all
//!   chunk payloads live: pass one quantizes chunks and folds their code
//!   histograms into one running total ([`huffman::merge_counts`]) as
//!   they retire, **retaining** a chunk's [`QuantizedUnit`] only when its
//!   exact heap size fits the remaining budget. Retained units skip
//!   re-quantization in pass two; dropped units are re-quantized there —
//!   bit-identical either way, because quantization is pure per chunk
//!   (fresh predictor state). An unbounded budget retains everything, so
//!   the default path quantizes exactly once, like the batch encoder.
//!
//! Byte-determinism is structural: chunk geometry depends only on
//! [`layout_workers`]-derived chunk sizing (never on execution workers),
//! records are consumed in index order, and the budget only moves work
//! between "keep" and "recompute" — never changes what is emitted.
//!
//! [`layout_workers`]: dsz_tensor::parallel::layout_workers

use crate::codec::{
    write_backed_table, ChunkCounts, QuantizedUnit, VERSION_V1, VERSION_V2, VERSION_V3, VERSION_V4,
};
use crate::{CompressStats, EntropyStage, ErrorBound, SzConfig, SzError, SzFormat};
use dsz_lossless::bits::write_varint;
use dsz_lossless::huffman;
use dsz_lossless::huffman::HuffmanCode;
use dsz_tensor::budget::{default_window, ordered_pipeline, ByteBudget};

/// Receives finished byte spans of a compressed stream, in stream order.
/// The concatenation of every `emit` equals the batch encoder's output.
pub trait ChunkSink {
    /// Consumes the next span of the stream.
    fn emit(&mut self, bytes: &[u8]);
}

impl ChunkSink for Vec<u8> {
    fn emit(&mut self, bytes: &[u8]) {
        self.extend_from_slice(bytes);
    }
}

/// Conservative byte reservation for one in-flight chunk of `elems`
/// elements: an upper bound on both a retained [`QuantizedUnit`]
/// (≤ 4 B codes + 4 B verbatim + ~2 B selector/regression per element)
/// and a serialized chunk record (entropy payload + verbatim + framing).
/// The streaming encoder charges one slot per in-flight chunk, so a
/// budget of `k · chunk_slot_bytes(chunk_elems)` pipelines ~`k` chunks.
pub fn chunk_slot_bytes(elems: usize) -> usize {
    elems.saturating_mul(16).saturating_add(64)
}

/// Counts emitted bytes on the way through to the caller's sink, so the
/// returned [`CompressStats::compressed_bytes`] matches the batch path.
struct CountingSink<'a> {
    inner: &'a mut dyn ChunkSink,
    emitted: usize,
}

impl ChunkSink for CountingSink<'_> {
    fn emit(&mut self, bytes: &[u8]) {
        self.emitted += bytes.len();
        self.inner.emit(bytes);
    }
}

impl SzConfig {
    /// Streaming [`SzConfig::compress`]: identical bytes, emitted through
    /// `sink` span by span, with buffered bytes reserved against
    /// `budget` (see the module docs for the exact semantics). The
    /// head-of-line chunk is always allowed to proceed even when its slot
    /// exceeds the cap — a compressor must hold the chunk it is encoding —
    /// so the ledger's high-water mark is bounded by
    /// `max(cap, one slot + head-of-line floor)`.
    pub fn compress_stream(
        &self,
        data: &[f32],
        bound: ErrorBound,
        budget: &ByteBudget,
        sink: &mut dyn ChunkSink,
    ) -> Result<CompressStats, SzError> {
        let q = self.resolved_params(data, bound)?;
        let mut out = CountingSink {
            inner: sink,
            emitted: 0,
        };
        let counts = match self.format {
            SzFormat::V1 => self.stream_v1(data, q, budget, &mut out),
            SzFormat::V2 => self.stream_v2(data, q, budget, &mut out)?,
            SzFormat::V3 => self.stream_shared(data, q, VERSION_V3, budget, &mut out)?,
            SzFormat::V4 => self.stream_shared(data, q, VERSION_V4, budget, &mut out)?,
        };
        Ok(CompressStats {
            n: data.len(),
            unpredictable: counts.unpredictable,
            regression_blocks: counts.regression_blocks,
            blocks: counts.blocks,
            compressed_bytes: out.emitted,
        })
    }

    /// v1 is one monolithic unit — nothing to pipeline. The whole unit is
    /// the head-of-line floor.
    fn stream_v1(
        &self,
        data: &[f32],
        q: crate::codec::QuantParams,
        budget: &ByteBudget,
        sink: &mut dyn ChunkSink,
    ) -> ChunkCounts {
        let cost = chunk_slot_bytes(data.len());
        budget.charge(cost);
        let (payload, counts) = self.encode_unit(data, q);
        let mut out = Vec::with_capacity(payload.len() / 2 + 64);
        self.write_common_header(&mut out, VERSION_V1, data.len(), q);
        match self.backend_compress(&payload) {
            Some((id, comp)) => {
                out.push(id);
                out.extend_from_slice(&comp);
            }
            None => {
                out.push(0xff);
                out.extend_from_slice(&payload);
            }
        }
        sink.emit(&out);
        budget.release(cost);
        counts
    }

    /// v2: independent chunk records flow through the bounded pipeline
    /// straight into the sink.
    fn stream_v2(
        &self,
        data: &[f32],
        q: crate::codec::QuantParams,
        budget: &ByteBudget,
        sink: &mut dyn ChunkSink,
    ) -> Result<ChunkCounts, SzError> {
        let n = data.len();
        let chunk = self.resolve_chunk_len(n, q.block);
        let n_chunks = n.div_ceil(chunk);
        let range = |c: usize| (c * chunk, ((c + 1) * chunk).min(n));

        let mut head = Vec::with_capacity(64);
        self.write_common_header(&mut head, VERSION_V2, n, q);
        write_varint(&mut head, chunk as u64);
        write_varint(&mut head, n_chunks as u64);
        sink.emit(&head);

        let mut counts = ChunkCounts::default();
        ordered_pipeline(
            n_chunks,
            budget,
            default_window(),
            |c| {
                let (s, e) = range(c);
                chunk_slot_bytes(e - s)
            },
            |c| {
                let (s, e) = range(c);
                let (payload, cc) = self.encode_unit(&data[s..e], q);
                let mut record = Vec::with_capacity(payload.len() / 2 + 8);
                self.append_backed_payload(&mut record, &payload);
                Ok::<_, SzError>((record, cc))
            },
            |_, (record, cc)| {
                sink.emit(&record);
                counts.unpredictable += cc.unpredictable;
                counts.regression_blocks += cc.regression_blocks;
                counts.blocks += cc.blocks;
                Ok(())
            },
        )?;
        Ok(counts)
    }

    /// v3/v4 shared-table two-pass encode under the budget; see the
    /// module docs for the retention scheme.
    fn stream_shared(
        &self,
        data: &[f32],
        q: crate::codec::QuantParams,
        version: u8,
        budget: &ByteBudget,
        sink: &mut dyn ChunkSink,
    ) -> Result<ChunkCounts, SzError> {
        let n = data.len();
        let chunk = self.resolve_chunk_len(n, q.block);
        let n_chunks = n.div_ceil(chunk);
        let range = |c: usize| (c * chunk, ((c + 1) * chunk).min(n));
        let want_hist = self.entropy == EntropyStage::Huffman;

        // Pass 1: quantize chunks through the bounded window, folding
        // per-chunk histograms into one running total as chunks retire
        // and retaining units only while the budget has room for their
        // exact heap size.
        let mut hist: Vec<u64> = Vec::new();
        let mut counts = ChunkCounts::default();
        let mut cache: Vec<Option<(QuantizedUnit, usize)>> = Vec::new();
        cache.resize_with(n_chunks, || None);
        ordered_pipeline(
            n_chunks,
            budget,
            default_window(),
            |c| {
                let (s, e) = range(c);
                chunk_slot_bytes(e - s)
            },
            |c| {
                let (s, e) = range(c);
                let u = self.quantize_unit(&data[s..e], q);
                let mut h = Vec::new();
                if want_hist {
                    huffman::accumulate_counts(&mut h, &u.codes);
                }
                Ok::<_, SzError>((u, h))
            },
            |c, (u, h)| {
                huffman::merge_counts(&mut hist, &h);
                counts.unpredictable += u.counts.unpredictable;
                counts.regression_blocks += u.counts.regression_blocks;
                counts.blocks += u.counts.blocks;
                let keep = u.heap_bytes();
                if budget.try_charge(keep) {
                    cache[c] = Some((u, keep));
                }
                Ok(())
            },
        )?;

        let shared = want_hist.then(|| {
            let code = HuffmanCode::from_counts(&hist);
            let enc = code.encoder();
            (code, enc)
        });
        drop(hist);

        let mut head = Vec::with_capacity(256);
        self.write_common_header(&mut head, version, n, q);
        write_varint(&mut head, chunk as u64);
        write_varint(&mut head, n_chunks as u64);
        head.push(self.entropy.id());
        if let Some((code, _)) = &shared {
            if version == VERSION_V3 {
                code.serialize(&mut head);
            } else {
                write_backed_table(&mut head, code, self.backend.is_some());
            }
        }
        sink.emit(&head);

        // Pass 2: serialize records against the shared table — retained
        // units as-is, dropped units re-quantized (pure per chunk, so the
        // bytes cannot differ).
        let enc = shared.as_ref().map(|(_, e)| e);
        let cache_ref = &cache;
        ordered_pipeline(
            n_chunks,
            budget,
            default_window(),
            |c| {
                let (s, e) = range(c);
                chunk_slot_bytes(e - s)
            },
            |c| {
                let payload = match &cache_ref[c] {
                    Some((u, _)) => self.serialize_unit_shared(u, enc),
                    None => {
                        let (s, e) = range(c);
                        let u = self.quantize_unit(&data[s..e], q);
                        self.serialize_unit_shared(&u, enc)
                    }
                };
                let mut record = Vec::with_capacity(payload.len() / 2 + 8);
                self.append_backed_payload(&mut record, &payload);
                Ok::<_, SzError>(record)
            },
            |_, record| {
                sink.emit(&record);
                Ok(())
            },
        )?;
        for (_, keep) in cache.into_iter().flatten() {
            budget.release(keep);
        }
        Ok(counts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsz_tensor::parallel::with_workers;

    /// Deterministic noisy-but-compressible sample (LCG + smooth ramp).
    fn sample(n: usize, seed: u64) -> Vec<f32> {
        let mut s = seed;
        (0..n)
            .map(|i| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let noise = ((s >> 40) as f32 / (1u64 << 24) as f32) - 0.5;
                (i as f32 * 0.01).sin() + noise * 0.05
            })
            .collect()
    }

    fn stream_bytes(cfg: &SzConfig, data: &[f32], cap: Option<usize>) -> (Vec<u8>, CompressStats) {
        let budget = ByteBudget::new(cap);
        let mut out = Vec::new();
        let stats = cfg
            .compress_stream(data, ErrorBound::Abs(1e-3), &budget, &mut out)
            .unwrap();
        assert_eq!(budget.current(), 0, "all reservations released");
        (out, stats)
    }

    #[test]
    fn stream_matches_batch_for_every_format_and_budget() {
        let data = sample(10_000, 0xD5A);
        for format in [SzFormat::V1, SzFormat::V2, SzFormat::V3, SzFormat::V4] {
            let cfg = SzConfig {
                format,
                chunk_elems: 1024,
                ..SzConfig::default()
            };
            let (want, want_stats) = cfg
                .compress_with_stats(&data, ErrorBound::Abs(1e-3))
                .unwrap();
            for cap in [None, Some(1), Some(chunk_slot_bytes(1024)), Some(1 << 20)] {
                let (got, stats) = stream_bytes(&cfg, &data, cap);
                assert_eq!(got, want, "{format:?} cap {cap:?}");
                assert_eq!(stats, want_stats, "{format:?} cap {cap:?}");
            }
        }
    }

    #[test]
    fn stream_matches_batch_raw_entropy_and_no_backend() {
        let data = sample(6_000, 7);
        for (entropy, backend) in [
            (EntropyStage::Raw, SzConfig::default().backend),
            (EntropyStage::Huffman, None),
        ] {
            let cfg = SzConfig {
                entropy,
                backend,
                chunk_elems: 512,
                ..SzConfig::default()
            };
            let want = cfg.compress(&data, ErrorBound::Abs(1e-3)).unwrap();
            for cap in [None, Some(1)] {
                let (got, _) = stream_bytes(&cfg, &data, cap);
                assert_eq!(got, want, "entropy {entropy:?} backend {backend:?}");
            }
        }
    }

    #[test]
    fn stream_bytes_independent_of_execution_workers() {
        let data = sample(20_000, 42);
        let cfg = SzConfig {
            chunk_elems: 2048,
            ..SzConfig::default()
        };
        let (want, _) = stream_bytes(&cfg, &data, Some(1 << 16));
        for workers in [1, 2, 4, 8] {
            let (got, _) = with_workers(workers, || stream_bytes(&cfg, &data, Some(1 << 16)));
            assert_eq!(got, want, "workers {workers}");
        }
    }

    #[test]
    fn budget_high_water_stays_under_cap() {
        let data = sample(32_768, 9);
        let cfg = SzConfig {
            chunk_elems: 4096,
            ..SzConfig::default()
        };
        // Cap with room for a couple of slots but far below "retain all".
        let cap = 2 * chunk_slot_bytes(4096);
        let budget = ByteBudget::bounded(cap);
        let mut out = Vec::new();
        cfg.compress_stream(&data, ErrorBound::Abs(1e-4), &budget, &mut out)
            .unwrap();
        assert!(
            budget.high_water() <= cap,
            "hwm {} exceeded cap {cap}",
            budget.high_water()
        );
        // Unbounded retention accounts for every quantized unit, so its
        // peak must sit well above the capped run's.
        let unbounded = ByteBudget::unbounded();
        let mut out2 = Vec::new();
        cfg.compress_stream(&data, ErrorBound::Abs(1e-4), &unbounded, &mut out2)
            .unwrap();
        assert_eq!(out, out2, "budget must not change bytes");
        assert!(unbounded.high_water() > cap);
    }

    #[test]
    fn ragged_tail_and_tiny_inputs() {
        let cfg = SzConfig {
            chunk_elems: 100,
            ..SzConfig::default()
        };
        for n in [0, 1, 99, 100, 101, 250] {
            let data = sample(n, n as u64 + 1);
            let want = cfg.compress(&data, ErrorBound::Abs(1e-3)).unwrap();
            let (got, _) = stream_bytes(&cfg, &data, Some(64));
            assert_eq!(got, want, "n = {n}");
        }
    }
}
