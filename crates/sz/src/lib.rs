//! SZ-style error-bounded lossy compression for 1-D `f32` arrays.
//!
//! This reimplements the SZ 2.x pipeline the paper builds on (§2.2, §3.3):
//!
//! 1. **Prediction** — per-block adaptive choice between a Lorenzo predictor
//!    (previous reconstructed value) and a linear-regression predictor
//!    (least-squares line over the block), mirroring SZ 2.0's
//!    Lorenzo/regression selection.
//! 2. **Error-controlled linear-scaling quantization** — the prediction
//!    residual is quantized to `round(residual / 2eb)`; any value whose
//!    reconstruction would violate the bound is stored verbatim as
//!    "unpredictable", making the `|x − x'| ≤ eb` guarantee unconditional
//!    (including NaN/Inf, which always take the verbatim path).
//! 3. **Entropy coding** — canonical Huffman over the quantization codes
//!    (decoded through a table-driven canonical decoder).
//! 4. **Lossless backend** — a byte codec (default [`LosslessKind::Zstd`])
//!    over the Huffman payload and the verbatim-value stream.
//!
//! Streams default to the **chunked v4 format**: the array is split into
//! independently compressed chunks (sized adaptively from the layer length
//! and worker budget) that encode and decode in parallel across
//! [`dsz_tensor::parallel`] workers while producing bytes that are
//! identical for any worker count, with all chunks entropy-coded against
//! one shared Huffman table built from a layer-global histogram (itself
//! backend-compressed when that wins). Legacy v1 (monolithic), v2
//! (per-chunk tables), and v3 (raw shared table) streams still decode,
//! and [`SzFormat`] selects them for emission; see the codec module docs
//! and `docs/FORMAT.md` for the wire layouts.
//!
//! Error bounds can be expressed as absolute, value-range-relative, or PSNR
//! targets ([`ErrorBound`]), like the SZ library's `ABS` / `REL` / `PSNR`
//! modes.

// Decode takes untrusted bytes: every failure must surface as an
// `SzError`, never a panic (`docs/ROBUSTNESS.md`).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod codec;
mod stream;

pub use codec::{
    adaptive_chunk_elems, CompressStats, EntropyStage, PredictorMode, SzConfig, SzFormat, SzInfo,
};
pub use stream::{chunk_slot_bytes, ChunkSink};

use dsz_lossless::CodecError;
pub use dsz_lossless::LosslessKind;
use std::fmt;

/// How the user expresses the error tolerance (SZ's ABS / REL / PSNR modes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ErrorBound {
    /// Absolute bound: `|x − x'| ≤ eb`.
    Abs(f64),
    /// Relative to the value range: `|x − x'| ≤ rel · (max − min)`.
    Rel(f64),
    /// Peak signal-to-noise ratio target in dB (converted to an absolute
    /// bound assuming uniform quantization noise).
    Psnr(f64),
}

impl ErrorBound {
    /// Resolves to an absolute bound for `data`. Non-finite values are
    /// ignored when computing the range.
    pub fn resolve(self, data: &[f32]) -> f64 {
        match self {
            ErrorBound::Abs(eb) => eb,
            ErrorBound::Rel(rel) => rel * value_range(data).max(f64::MIN_POSITIVE),
            ErrorBound::Psnr(db) => {
                // For uniform error in [-eb, eb]: mse = eb²/3, so
                // PSNR = 10·log10(range²·3/eb²)  ⇒  eb = range·√3·10^(−db/20).
                let range = value_range(data).max(f64::MIN_POSITIVE);
                range * 3f64.sqrt() * 10f64.powf(-db / 20.0)
            }
        }
    }
}

/// Width of the finite value range of `data` (0 when empty/non-finite).
pub fn value_range(data: &[f32]) -> f64 {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &x in data {
        if x.is_finite() {
            lo = lo.min(x as f64);
            hi = hi.max(x as f64);
        }
    }
    if hi >= lo {
        hi - lo
    } else {
        0.0
    }
}

/// Errors from the SZ codec.
#[derive(Debug, Clone, PartialEq)]
pub enum SzError {
    /// The requested error bound is not a positive finite number.
    BadErrorBound(f64),
    /// The compressed stream is invalid.
    Codec(CodecError),
}

impl fmt::Display for SzError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SzError::BadErrorBound(eb) => {
                write!(f, "error bound must be positive and finite, got {eb}")
            }
            SzError::Codec(e) => write!(f, "sz stream error: {e}"),
        }
    }
}

impl std::error::Error for SzError {}

impl From<CodecError> for SzError {
    fn from(e: CodecError) -> Self {
        SzError::Codec(e)
    }
}

/// Compresses `data` under `bound` with the default configuration.
pub fn compress(data: &[f32], bound: ErrorBound) -> Result<Vec<u8>, SzError> {
    SzConfig::default().compress(data, bound)
}

/// Decompresses a stream produced by [`compress`] / [`SzConfig::compress`].
pub fn decompress(bytes: &[u8]) -> Result<Vec<f32>, SzError> {
    codec::decompress(bytes)
}

/// [`decompress`] into a caller-owned buffer (resized, capacity reused) —
/// the scratch entry point for repeated-decode loops such as incremental
/// assessment. Output bytes equal the allocating twin's.
pub fn decompress_into(bytes: &[u8], out: &mut Vec<f32>) -> Result<(), SzError> {
    codec::decompress_into(bytes, out)
}

/// Reads the self-describing header of a compressed stream.
pub fn info(bytes: &[u8]) -> Result<SzInfo, SzError> {
    codec::info(bytes)
}

/// Maximum pointwise absolute error between two equal-length slices
/// (∞ if lengths differ, or a non-finite value is not reproduced bit-for-bit).
pub fn max_abs_error(a: &[f32], b: &[f32]) -> f64 {
    if a.len() != b.len() {
        return f64::INFINITY;
    }
    let mut m = 0f64;
    for (&x, &y) in a.iter().zip(b) {
        let d = if x.is_finite() && y.is_finite() {
            (x as f64 - y as f64).abs()
        } else if x.to_bits() == y.to_bits() || (x.is_nan() && y.is_nan()) {
            0.0
        } else {
            f64::INFINITY
        };
        m = m.max(d);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg_weights(n: usize, seed: u64, scale: f32) -> Vec<f32> {
        // Roughly Gaussian weight-like values via sum of uniforms.
        let mut s = seed;
        let mut next = || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 11) as f64 / (1u64 << 53) as f64) as f32
        };
        (0..n)
            .map(|_| {
                let u = next() + next() + next() + next() - 2.0;
                u * scale
            })
            .collect()
    }

    #[test]
    fn abs_bound_is_respected() {
        let data = lcg_weights(10_000, 7, 0.1);
        for eb in [1e-1f64, 1e-2, 1e-3, 1e-4] {
            let blob = compress(&data, ErrorBound::Abs(eb)).unwrap();
            let back = decompress(&blob).unwrap();
            assert_eq!(back.len(), data.len());
            let err = max_abs_error(&data, &back);
            assert!(err <= eb * (1.0 + 1e-9), "eb={eb} err={err}");
        }
    }

    #[test]
    fn rel_bound_resolves_to_range_fraction() {
        let data = lcg_weights(5_000, 13, 0.25);
        let blob = compress(&data, ErrorBound::Rel(1e-3)).unwrap();
        let back = decompress(&blob).unwrap();
        let range = value_range(&data);
        assert!(max_abs_error(&data, &back) <= 1e-3 * range * (1.0 + 1e-9));
    }

    #[test]
    fn psnr_bound_achieves_target() {
        let data = lcg_weights(20_000, 21, 0.1);
        let target_db = 60.0;
        let blob = compress(&data, ErrorBound::Psnr(target_db)).unwrap();
        let back = decompress(&blob).unwrap();
        let range = value_range(&data);
        let mse: f64 = data
            .iter()
            .zip(&back)
            .map(|(&x, &y)| {
                let d = x as f64 - y as f64;
                d * d
            })
            .sum::<f64>()
            / data.len() as f64;
        let psnr = 10.0 * (range * range / mse.max(1e-300)).log10();
        assert!(psnr >= target_db - 0.5, "psnr {psnr} < target {target_db}");
    }

    #[test]
    fn tighter_bounds_cost_more_bytes() {
        let data = lcg_weights(50_000, 3, 0.05);
        let loose = compress(&data, ErrorBound::Abs(1e-2)).unwrap();
        let tight = compress(&data, ErrorBound::Abs(1e-4)).unwrap();
        assert!(loose.len() < tight.len());
        // And the loose bound beats raw f32 storage by a wide margin.
        assert!(loose.len() * 4 < data.len() * 4, "loose={}", loose.len());
    }

    #[test]
    fn empty_and_singleton() {
        for data in [vec![], vec![0.5f32]] {
            let blob = compress(&data, ErrorBound::Abs(1e-3)).unwrap();
            assert_eq!(decompress(&blob).unwrap(), data);
        }
    }

    #[test]
    fn constant_data_is_tiny() {
        let data = vec![0.125f32; 100_000];
        // Pin a single chunk: the default adaptive geometry tracks
        // `DSZ_THREADS` (more workers → more chunks → more framing), and
        // this test asserts an absolute size, not a chunk count.
        let cfg = SzConfig {
            chunk_elems: data.len(),
            ..SzConfig::default()
        };
        let blob = cfg.compress(&data, ErrorBound::Abs(1e-3)).unwrap();
        assert!(
            blob.len() < 2_000,
            "constant data should collapse, got {}",
            blob.len()
        );
        let back = decompress(&blob).unwrap();
        assert!(max_abs_error(&data, &back) <= 1e-3);

        // The adaptive default still collapses ~400 KB to a few KB at any
        // worker budget (each chunk pays its own small framing).
        let adaptive = compress(&data, ErrorBound::Abs(1e-3)).unwrap();
        assert!(
            adaptive.len() < 8_000,
            "adaptive geometry should still collapse, got {}",
            adaptive.len()
        );
        assert!(max_abs_error(&data, &decompress(&adaptive).unwrap()) <= 1e-3);
    }

    #[test]
    fn nan_and_inf_survive_verbatim() {
        let mut data = lcg_weights(1000, 5, 0.1);
        data[10] = f32::NAN;
        data[500] = f32::INFINITY;
        data[900] = f32::NEG_INFINITY;
        let blob = compress(&data, ErrorBound::Abs(1e-3)).unwrap();
        let back = decompress(&blob).unwrap();
        assert!(back[10].is_nan());
        assert_eq!(back[500], f32::INFINITY);
        assert_eq!(back[900], f32::NEG_INFINITY);
        assert!(max_abs_error(&data, &back) <= 1e-3);
    }

    #[test]
    fn bad_error_bound_rejected() {
        let data = [1.0f32, 2.0];
        assert!(compress(&data, ErrorBound::Abs(0.0)).is_err());
        assert!(compress(&data, ErrorBound::Abs(-1.0)).is_err());
        assert!(compress(&data, ErrorBound::Abs(f64::NAN)).is_err());
    }

    #[test]
    fn info_reports_header() {
        let data = lcg_weights(1234, 9, 0.1);
        let blob = compress(&data, ErrorBound::Abs(2e-3)).unwrap();
        let info = info(&blob).unwrap();
        assert_eq!(info.n, 1234);
        assert!((info.abs_eb - 2e-3).abs() < 1e-12);
    }

    #[test]
    fn smooth_data_compresses_much_better_than_noise() {
        let smooth: Vec<f32> = (0..50_000).map(|i| (i as f32 * 1e-3).sin()).collect();
        let noise = lcg_weights(50_000, 11, 0.5);
        let bs = compress(&smooth, ErrorBound::Abs(1e-3)).unwrap();
        let bn = compress(&noise, ErrorBound::Abs(1e-3)).unwrap();
        assert!(
            bs.len() * 3 < bn.len(),
            "smooth {} vs noise {}",
            bs.len(),
            bn.len()
        );
    }

    #[test]
    fn predictor_modes_all_respect_bound() {
        let data = lcg_weights(8_000, 17, 0.08);
        for mode in [
            PredictorMode::Adaptive,
            PredictorMode::LorenzoOnly,
            PredictorMode::RegressionOnly,
        ] {
            let cfg = SzConfig {
                predictor: mode,
                ..SzConfig::default()
            };
            let blob = cfg.compress(&data, ErrorBound::Abs(1e-3)).unwrap();
            let back = decompress(&blob).unwrap();
            assert!(
                max_abs_error(&data, &back) <= 1e-3 * (1.0 + 1e-9),
                "{mode:?}"
            );
        }
    }
}
