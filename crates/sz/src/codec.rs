//! The SZ compression pipeline: prediction, quantization, entropy stage,
//! lossless backend, and the self-describing stream format.
//!
//! # Stream versions and the chunked layout
//!
//! Three wire formats share the `SZ1D` magic and differ in the version
//! byte (see `docs/FORMAT.md` for the byte-level reference):
//!
//! * **v1** — one monolithic payload for the whole array (the original
//!   format). Decoding is inherently serial because the Lorenzo predictor
//!   chains every value to the previous reconstruction.
//! * **v2** — the array is split into fixed-size **chunks** (a multiple of
//!   the prediction block size; [`SzConfig::chunk_elems`] elements each,
//!   last chunk ragged). Every chunk is a fully independent compression
//!   unit: its predictor state starts fresh, and it carries its own
//!   selector RLE, regression parameters, Huffman table, verbatim values,
//!   and lossless-backend decision. Chunks are laid out as
//!   `[backend_id u8][len varint][bytes]` records after the shared header:
//!
//!   ```text
//!   "SZ1D" | 0x02 | n | abs_eb f64 | predictor | block | radius
//!          | chunk_elems | n_chunks | chunk record * n_chunks
//!   ```
//!
//! * **v3** — chunked like v2, but the quantization codes of
//!   *all* chunks are entropy-coded against **one shared canonical
//!   Huffman table** carried in the layer header. Encoding is two-pass
//!   (COMET-style): pass one quantizes chunks in parallel and pools a
//!   global code histogram; pass two encodes each chunk's payload in
//!   parallel against the shared table. Decode stays chunk-parallel —
//!   every chunk only needs the (read-only) shared decode LUT. Per-chunk
//!   payloads drop the code book *and* the symbol count (implied by the
//!   chunk's element count):
//!
//!   ```text
//!   "SZ1D" | 0x03 | n | abs_eb f64 | predictor | block | radius
//!          | chunk_elems | n_chunks | entropy_id
//!          | shared huffman table (entropy_id 0 only)
//!          | chunk record * n_chunks
//!   ```
//!
//! * **v4** (default) — identical to v3 except the shared Huffman table
//!   itself goes through the lossless backend competition
//!   ([`dsz_lossless::best_fit`]; disabled together with
//!   [`SzConfig::backend`], so `backend: None` streams stay backend-free
//!   end to end): a flag byte precedes the table, `0xff` meaning the
//!   table is stored raw (the v3 serialization — small tables stay raw
//!   because compression would not pay for its framing) and any
//!   [`LosslessKind`] id meaning `[len varint][compressed table bytes]`
//!   follows. Wide-alphabet tables (tight bounds over noisy layers)
//!   shave a few hundred bytes per layer; everything after the table is
//!   byte-identical to v3.
//!
//!   ```text
//!   "SZ1D" | 0x04 | n | abs_eb f64 | predictor | block | radius
//!          | chunk_elems | n_chunks | entropy_id
//!          | table_flag u8                       (entropy_id 0 only)
//!          |   0xff: raw table | else: len varint + backed table bytes
//!          | chunk record * n_chunks
//!   ```
//!
//!   With `chunk_elems = 0` (the default) the chunk size is chosen
//!   **adaptively** per layer: `clamp(n / (4·workers), 16Ki, 256Ki)`
//!   elements, where `workers` is the process-level
//!   [`dsz_tensor::parallel::layout_workers`] budget. Small layers become
//!   a single chunk (no table or framing duplication at all) while large
//!   layers expose at least ~4 work items per worker. The resolved size is
//!   recorded in the header, so decode never depends on the encoder's
//!   host; encode bytes are independent of [`with_workers`] execution
//!   pinning but do track `DSZ_THREADS`/core count through the adaptive
//!   choice — pin `chunk_elems` explicitly when cross-host byte equality
//!   matters.
//!
//! Independence is what buys parallelism: both [`SzConfig::compress`] and
//! [`decompress`] fan chunks out over [`dsz_tensor::parallel`] workers
//! (encode via `parallel_map`, decode via `parallel_chunks` straight into
//! disjoint slices of the output buffer — no per-chunk allocation or
//! concatenation), which since PR 3 dispatch onto the persistent worker
//! pool (`dsz_tensor::pool`, see `docs/PARALLEL.md`) instead of spawning
//! threads per call. Chunk payloads are byte-identical regardless of
//! worker count or pool occupancy, so containers stay deterministic. Each worker thread reuses a
//! thread-local scratch ([`huffman::decode_stream_into`],
//! [`rle::decompress_into`], `Codec::decompress_into`) to keep the decode
//! hot loop allocation-light.
//!
//! v1, v2, and v3 streams still decode (the version byte dispatches);
//! setting [`SzConfig::format`] to [`SzFormat::V1`] / [`SzFormat::V2`] /
//! [`SzFormat::V3`] makes the encoder emit those layouts for
//! compatibility tests and single-stream comparisons.
//!
//! [`with_workers`]: dsz_tensor::parallel::with_workers

use crate::{ErrorBound, SzError};
use dsz_lossless::bits::{read_varint, write_varint};
use dsz_lossless::huffman;
use dsz_lossless::huffman::{HuffmanCode, HuffmanDecoder, HuffmanEncoder};
use dsz_lossless::{best_fit, rle, CodecError, LosslessKind};
use dsz_tensor::parallel::{layout_workers, parallel_chunks, parallel_map};
use std::cell::RefCell;

pub(crate) const MAGIC: &[u8; 4] = b"SZ1D";
pub(crate) const VERSION_V1: u8 = 1;
pub(crate) const VERSION_V2: u8 = 2;
pub(crate) const VERSION_V3: u8 = 3;
pub(crate) const VERSION_V4: u8 = 4;

/// Decode-side cap on elements per compressed byte, checked before the
/// output buffer is allocated so a crafted header cannot demand absurd
/// memory. Default-chunk streams top out around ~1.3 K elements/byte, but
/// constant data in a single user-configured giant chunk (Huffman 1 bit
/// per element, then the backend squeezing the bit stream further) can
/// legitimately reach several K elements/byte — 2^16 keeps clear margin
/// over every encodable stream while still bounding amplification.
const MAX_ELEMS_PER_BYTE: usize = 1 << 16;

/// Escape code marking a verbatim ("unpredictable") value.
const ESCAPE: u32 = 0;

/// Which predictors the encoder may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredictorMode {
    /// Per-block best of Lorenzo and regression (SZ 2.x behaviour).
    Adaptive,
    /// Lorenzo (previous reconstructed value) everywhere — SZ 1.x style.
    LorenzoOnly,
    /// Least-squares line per block everywhere.
    RegressionOnly,
}

impl PredictorMode {
    fn id(self) -> u8 {
        match self {
            PredictorMode::Adaptive => 0,
            PredictorMode::LorenzoOnly => 1,
            PredictorMode::RegressionOnly => 2,
        }
    }

    fn from_id(id: u8) -> Result<Self, CodecError> {
        match id {
            0 => Ok(PredictorMode::Adaptive),
            1 => Ok(PredictorMode::LorenzoOnly),
            2 => Ok(PredictorMode::RegressionOnly),
            _ => Err(CodecError::corrupt("unknown predictor mode")),
        }
    }
}

/// Entropy stage for the quantization codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntropyStage {
    /// Canonical Huffman (default; SZ's choice).
    Huffman,
    /// Raw varints — only useful for the entropy-stage ablation bench.
    Raw,
}

impl EntropyStage {
    pub(crate) fn id(self) -> u8 {
        match self {
            EntropyStage::Huffman => 0,
            EntropyStage::Raw => 1,
        }
    }

    fn from_id(id: u8) -> Result<Self, CodecError> {
        match id {
            0 => Ok(EntropyStage::Huffman),
            1 => Ok(EntropyStage::Raw),
            _ => Err(CodecError::corrupt("bad entropy stage id")),
        }
    }
}

/// Which stream layout the encoder emits. All three keep decoding forever
/// via the version-byte dispatch in [`decompress`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SzFormat {
    /// Legacy monolithic v1 stream (serial decode).
    V1,
    /// Chunked v2: every chunk carries its own Huffman table.
    V2,
    /// Chunked v3 with one shared Huffman table per layer (stored raw).
    V3,
    /// v3 layout with the shared table backend-compressed via
    /// [`dsz_lossless::best_fit`] when that wins (default).
    V4,
}

/// Tunable compressor configuration. The defaults mirror SZ 2.x plus the
/// chunk-parallel v2 layout.
#[derive(Debug, Clone, Copy)]
pub struct SzConfig {
    /// Predictor selection policy.
    pub predictor: PredictorMode,
    /// Samples per prediction block.
    pub block_size: usize,
    /// Quantization radius: codes cover `[-radius, radius-1]`; residuals
    /// outside become verbatim values. SZ's default is 2^15.
    pub radius: u32,
    /// Entropy stage for quantization codes.
    pub entropy: EntropyStage,
    /// Byte codec applied per compression unit (`None` disables).
    pub backend: Option<LosslessKind>,
    /// Elements per independently compressed chunk in the v2/v3 formats
    /// (rounded up to a multiple of `block_size`). `0` (the default) picks
    /// the size adaptively from the layer length and the process worker
    /// budget — `clamp(n / (4·workers), 16Ki, 256Ki)` — so small layers
    /// collapse to a single chunk and large layers expose parallelism.
    /// Ignored by [`SzFormat::V1`].
    pub chunk_elems: usize,
    /// Stream layout to emit; see [`SzFormat`].
    pub format: SzFormat,
}

impl Default for SzConfig {
    fn default() -> Self {
        Self {
            predictor: PredictorMode::Adaptive,
            block_size: 128,
            radius: 1 << 15,
            entropy: EntropyStage::Huffman,
            backend: Some(LosslessKind::Zstd),
            chunk_elems: 0,
            format: SzFormat::V4,
        }
    }
}

/// Header information of a compressed stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SzInfo {
    /// Stream format version (1 = monolithic, 2 = chunked with per-chunk
    /// tables, 3 = chunked with a shared table, 4 = shared table behind
    /// the lossless backend competition).
    pub version: u8,
    /// Element count.
    pub n: usize,
    /// Resolved absolute error bound.
    pub abs_eb: f64,
    /// Predictor policy used.
    pub predictor: PredictorMode,
    /// Block size used.
    pub block_size: usize,
    /// Quantization radius used.
    pub radius: u32,
    /// Lossless backend used (if any). For v2 this is per chunk; the
    /// header reports the first chunk's choice (`None` when empty).
    pub backend: Option<LosslessKind>,
    /// Elements per chunk (v2; equals `n` for v1 streams).
    pub chunk_elems: usize,
    /// Number of chunks (v2; 1 for non-empty v1 streams).
    pub chunks: usize,
}

/// Encoder-side statistics, for benches and ablations.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CompressStats {
    /// Element count.
    pub n: usize,
    /// Values stored verbatim because quantization would break the bound.
    pub unpredictable: usize,
    /// Blocks that chose the regression predictor.
    pub regression_blocks: usize,
    /// Total block count.
    pub blocks: usize,
    /// Final compressed size in bytes.
    pub compressed_bytes: usize,
}

impl CompressStats {
    /// Compression ratio vs raw f32 storage.
    pub fn ratio(&self) -> f64 {
        (self.n * 4) as f64 / self.compressed_bytes.max(1) as f64
    }
}

#[derive(Clone, Copy)]
enum Sel {
    Lorenzo,
    Regression { a: f32, b: f32 },
}

/// Least-squares line over `block` with x = 0..m-1.
fn fit_line(block: &[f32]) -> (f32, f32) {
    let m = block.len();
    if m == 1 {
        let b = if block[0].is_finite() { block[0] } else { 0.0 };
        return (0.0, b);
    }
    let mf = m as f64;
    let mean_x = (mf - 1.0) / 2.0;
    let mut mean_y = 0f64;
    let mut finite = 0usize;
    for &v in block {
        if v.is_finite() {
            mean_y += v as f64;
            finite += 1;
        }
    }
    if finite == 0 {
        return (0.0, 0.0);
    }
    mean_y /= finite as f64;
    let mut cov = 0f64;
    let mut var = 0f64;
    for (i, &v) in block.iter().enumerate() {
        if v.is_finite() {
            let dx = i as f64 - mean_x;
            cov += dx * (v as f64 - mean_y);
            var += dx * dx;
        }
    }
    let a = if var > 0.0 { cov / var } else { 0.0 };
    let b = mean_y - a * mean_x;
    let (a, b) = (a as f32, b as f32);
    if a.is_finite() && b.is_finite() {
        (a, b)
    } else {
        (0.0, 0.0)
    }
}

/// Simulates quantizing `chunk` with the given predictor (0 = Lorenzo with
/// true reconstruction feedback, starting at `last`; otherwise the supplied
/// regression line) and returns the estimated encoded bits: empirical code
/// entropy + escape payloads. This mirrors SZ 2.x, which picks the per-block
/// predictor by sampled encoding cost rather than a closed-form proxy.
fn simulate_block_cost(
    chunk: &[f32],
    reg: Option<(f32, f32)>,
    two_eb: f64,
    abs_eb: f64,
    radius: u32,
    last: f32,
) -> f64 {
    let mut counts: std::collections::HashMap<i64, u32> =
        std::collections::HashMap::with_capacity(chunk.len().min(64));
    let mut escapes = 0u32;
    let mut prev = last;
    for (i, &x) in chunk.iter().enumerate() {
        let pred = match reg {
            None => prev,
            Some((a, b)) => a * (i as f32) + b,
        };
        let mut escaped = true;
        if pred.is_finite() {
            let q = ((x as f64 - pred as f64) / two_eb).round();
            if q.is_finite() && q.abs() < f64::from(radius) {
                let qi = q as i64;
                let recon = (pred as f64 + two_eb * qi as f64) as f32;
                if recon.is_finite() && (recon as f64 - x as f64).abs() <= abs_eb {
                    *counts.entry(qi).or_insert(0) += 1;
                    prev = recon;
                    escaped = false;
                }
            }
        }
        if escaped {
            escapes += 1;
            prev = if x.is_finite() { x } else { 0.0 };
        }
    }
    let coded: u32 = counts.values().sum();
    let n = f64::from(coded.max(1));
    // Sum in sorted-key order: HashMap iteration order varies per
    // instance, and a different float summation order could flip a
    // near-tie predictor choice, breaking container byte-determinism.
    let mut sorted: Vec<(i64, u32)> = counts.into_iter().collect();
    sorted.sort_unstable_by_key(|&(k, _)| k);
    let entropy_bits: f64 = sorted
        .iter()
        .map(|&(_, c)| {
            let c = f64::from(c);
            c * (n / c).log2()
        })
        .sum();
    entropy_bits + f64::from(escapes) * 34.0
}

/// Resolved per-stream quantization parameters shared by every chunk.
#[derive(Clone, Copy)]
pub(crate) struct QuantParams {
    pub(crate) abs_eb: f64,
    pub(crate) two_eb: f64,
    pub(crate) radius: u32,
    pub(crate) block: usize,
}

/// Per-chunk encoder output counts (summed into [`CompressStats`]).
#[derive(Default, Clone, Copy)]
pub(crate) struct ChunkCounts {
    pub(crate) unpredictable: usize,
    pub(crate) regression_blocks: usize,
    pub(crate) blocks: usize,
}

impl SzConfig {
    /// Compresses `data`; see [`crate::compress`].
    pub fn compress(&self, data: &[f32], bound: ErrorBound) -> Result<Vec<u8>, SzError> {
        self.compress_with_stats(data, bound).map(|(b, _)| b)
    }

    /// Compresses `data` and also returns encoder statistics.
    ///
    /// [`SzConfig::format`] picks the layout: v3 (default) and v2 compress
    /// chunks in parallel with container bytes independent of the worker
    /// count; v1 emits the legacy monolithic stream.
    pub fn compress_with_stats(
        &self,
        data: &[f32],
        bound: ErrorBound,
    ) -> Result<(Vec<u8>, CompressStats), SzError> {
        let q = self.resolved_params(data, bound)?;
        match self.format {
            SzFormat::V1 => self.compress_v1(data, q),
            SzFormat::V2 => self.compress_v2(data, q),
            SzFormat::V3 => self.compress_shared_table(data, q, VERSION_V3),
            SzFormat::V4 => self.compress_shared_table(data, q, VERSION_V4),
        }
    }

    /// Validates `bound` against `data` and resolves the per-stream
    /// quantization parameters — the shared front door of the batch and
    /// streaming encoders, so their validation cannot diverge.
    pub(crate) fn resolved_params(
        &self,
        data: &[f32],
        bound: ErrorBound,
    ) -> Result<QuantParams, SzError> {
        let abs_eb = bound.resolve(data);
        if !(abs_eb.is_finite() && abs_eb > 0.0) {
            return Err(SzError::BadErrorBound(abs_eb));
        }
        Ok(QuantParams {
            abs_eb,
            two_eb: 2.0 * abs_eb,
            radius: self.radius.max(2),
            // Clamped on both ends: ≥ 4 for the predictor, and small
            // enough that chunk rounding arithmetic can never overflow.
            block: self.block_size.clamp(4, 1 << 24),
        })
    }

    /// Resolves the effective chunk length for the chunked formats:
    /// explicit `chunk_elems`, or the adaptive size for `0`.
    pub(crate) fn resolve_chunk_len(&self, n: usize, block: usize) -> usize {
        if self.chunk_elems == 0 {
            chunk_len(adaptive_chunk_elems(n, layout_workers()), block)
        } else {
            chunk_len(self.chunk_elems, block)
        }
    }

    /// Serializes the header fields shared by both stream versions.
    pub(crate) fn write_common_header(
        &self,
        out: &mut Vec<u8>,
        version: u8,
        n: usize,
        q: QuantParams,
    ) {
        out.extend_from_slice(MAGIC);
        out.push(version);
        write_varint(out, n as u64);
        out.extend_from_slice(&q.abs_eb.to_le_bytes());
        out.push(self.predictor.id());
        write_varint(out, q.block as u64);
        write_varint(out, u64::from(q.radius));
    }

    /// Legacy monolithic stream (one compression unit, serial decode).
    fn compress_v1(
        &self,
        data: &[f32],
        q: QuantParams,
    ) -> Result<(Vec<u8>, CompressStats), SzError> {
        let (payload, counts) = self.encode_unit(data, q);
        let mut out = Vec::with_capacity(payload.len() / 2 + 64);
        self.write_common_header(&mut out, VERSION_V1, data.len(), q);
        // Legacy layout: backend byte, then the payload running to the end
        // of the stream (no length field — this matches the seed format).
        match self.backend_compress(&payload) {
            Some((id, comp)) => {
                out.push(id);
                out.extend_from_slice(&comp);
            }
            None => {
                out.push(0xff);
                out.extend_from_slice(&payload);
            }
        }
        let stats = CompressStats {
            n: data.len(),
            unpredictable: counts.unpredictable,
            regression_blocks: counts.regression_blocks,
            blocks: counts.blocks,
            compressed_bytes: out.len(),
        };
        Ok((out, stats))
    }

    /// Chunked v2 stream; chunks compress in parallel.
    fn compress_v2(
        &self,
        data: &[f32],
        q: QuantParams,
    ) -> Result<(Vec<u8>, CompressStats), SzError> {
        let n = data.len();
        let chunk = self.resolve_chunk_len(n, q.block);
        let n_chunks = n.div_ceil(chunk);
        let ranges: Vec<(usize, usize)> = (0..n_chunks)
            .map(|c| (c * chunk, ((c + 1) * chunk).min(n)))
            .collect();

        // Each chunk is a fully independent unit: encode payload, then
        // apply the backend decision locally. Pure per chunk ⇒ the joined
        // container is deterministic for any worker count.
        let encoded: Vec<(Vec<u8>, ChunkCounts)> = parallel_map(&ranges, |&(s, e)| {
            let (payload, counts) = self.encode_unit(&data[s..e], q);
            let mut record = Vec::with_capacity(payload.len() / 2 + 8);
            self.append_backed_payload(&mut record, &payload);
            (record, counts)
        });

        let mut out = Vec::with_capacity(encoded.iter().map(|(r, _)| r.len()).sum::<usize>() + 64);
        self.write_common_header(&mut out, VERSION_V2, n, q);
        write_varint(&mut out, chunk as u64);
        write_varint(&mut out, n_chunks as u64);
        let mut counts = ChunkCounts::default();
        for (record, c) in &encoded {
            out.extend_from_slice(record);
            counts.unpredictable += c.unpredictable;
            counts.regression_blocks += c.regression_blocks;
            counts.blocks += c.blocks;
        }
        let stats = CompressStats {
            n,
            unpredictable: counts.unpredictable,
            regression_blocks: counts.regression_blocks,
            blocks: counts.blocks,
            compressed_bytes: out.len(),
        };
        Ok((out, stats))
    }

    /// Chunked v3/v4 stream: two-pass encode with one shared Huffman
    /// table (raw in the v3 header, backend-competed in v4).
    ///
    /// Pass one quantizes every chunk in parallel (fresh predictor state
    /// per chunk, exactly as v2) and pools a global histogram of the
    /// quantization codes; a single canonical table is built from it and
    /// written once in the layer header. Pass two serializes each chunk's
    /// payload in parallel against the shared encoder. Both passes are
    /// pure per chunk, so container bytes are deterministic for any
    /// execution worker count.
    fn compress_shared_table(
        &self,
        data: &[f32],
        q: QuantParams,
        version: u8,
    ) -> Result<(Vec<u8>, CompressStats), SzError> {
        let n = data.len();
        let chunk = self.resolve_chunk_len(n, q.block);
        let n_chunks = n.div_ceil(chunk);
        let ranges: Vec<(usize, usize)> = (0..n_chunks)
            .map(|c| (c * chunk, ((c + 1) * chunk).min(n)))
            .collect();

        // Pass 1: quantize chunks in parallel, each with its own code
        // histogram, so the only serial work between the passes is the
        // O(chunks × alphabet) merge — not an O(n) rescan of every code.
        let want_hist = self.entropy == EntropyStage::Huffman;
        let (units, hists): (Vec<QuantizedUnit>, Vec<Vec<u64>>) =
            parallel_map(&ranges, |&(s, e)| {
                let u = self.quantize_unit(&data[s..e], q);
                let mut hist = Vec::new();
                if want_hist {
                    huffman::accumulate_counts(&mut hist, &u.codes);
                }
                (u, hist)
            })
            .into_iter()
            .unzip();

        // Merge → one shared code book for the whole layer. Per-symbol
        // integer sums are order-independent, so the resulting table (and
        // thus the container bytes) never depends on scheduling.
        let shared = match self.entropy {
            EntropyStage::Huffman => {
                let mut counts: Vec<u64> = Vec::new();
                for hist in &hists {
                    if counts.len() < hist.len() {
                        counts.resize(hist.len(), 0);
                    }
                    for (total, &c) in counts.iter_mut().zip(hist) {
                        *total += c;
                    }
                }
                let code = HuffmanCode::from_counts(&counts);
                let enc = code.encoder();
                Some((code, enc))
            }
            EntropyStage::Raw => None,
        };
        // The per-chunk histograms are dead once merged; release them
        // before pass 2 so concurrently encoded layers don't stack
        // n_chunks × alphabet-sized dead buffers.
        drop(hists);

        // Pass 2: serialize chunk payloads against the shared table and
        // apply the per-chunk backend decision.
        let enc = shared.as_ref().map(|(_, e)| e);
        let records: Vec<Vec<u8>> = parallel_map(&units, |u| {
            let payload = self.serialize_unit_shared(u, enc);
            let mut record = Vec::with_capacity(payload.len() / 2 + 8);
            self.append_backed_payload(&mut record, &payload);
            record
        });

        let mut out = Vec::with_capacity(records.iter().map(Vec::len).sum::<usize>() + 64);
        self.write_common_header(&mut out, version, n, q);
        write_varint(&mut out, chunk as u64);
        write_varint(&mut out, n_chunks as u64);
        out.push(self.entropy.id());
        if let Some((code, _)) = &shared {
            if version == VERSION_V3 {
                code.serialize(&mut out);
            } else {
                write_backed_table(&mut out, code, self.backend.is_some());
            }
        }
        let mut counts = ChunkCounts::default();
        for (record, u) in records.iter().zip(&units) {
            out.extend_from_slice(record);
            counts.unpredictable += u.counts.unpredictable;
            counts.regression_blocks += u.counts.regression_blocks;
            counts.blocks += u.counts.blocks;
        }
        let stats = CompressStats {
            n,
            unpredictable: counts.unpredictable,
            regression_blocks: counts.regression_blocks,
            blocks: counts.blocks,
            compressed_bytes: out.len(),
        };
        Ok((out, stats))
    }

    /// Runs the configured backend over `payload` and keeps the result
    /// only when it is actually smaller; `None` means "store raw" (wire
    /// id 0xff). Shared by the v1 and v2 serializers so the fallback rule
    /// cannot diverge between formats.
    pub(crate) fn backend_compress(&self, payload: &[u8]) -> Option<(u8, Vec<u8>)> {
        let kind = self.backend?;
        let comp = kind.codec().compress(payload);
        (comp.len() < payload.len()).then(|| (kind.id(), comp))
    }

    /// Appends `[backend_id u8][len varint][bytes]`, keeping whichever of
    /// the raw/compressed payload is smaller (0xff = stored raw).
    pub(crate) fn append_backed_payload(&self, out: &mut Vec<u8>, payload: &[u8]) {
        match self.backend_compress(payload) {
            Some((id, comp)) => {
                out.push(id);
                write_varint(out, comp.len() as u64);
                out.extend_from_slice(&comp);
            }
            None => {
                out.push(0xff);
                write_varint(out, payload.len() as u64);
                out.extend_from_slice(payload);
            }
        }
    }

    /// Encodes one compression unit (the whole array for v1, one chunk for
    /// v2) into a self-contained payload: selector RLE, regression params,
    /// entropy-coded quantization codes (own code book), and verbatim
    /// values.
    pub(crate) fn encode_unit(&self, data: &[f32], q: QuantParams) -> (Vec<u8>, ChunkCounts) {
        let unit = self.quantize_unit(data, q);
        let payload = self.serialize_unit_own_table(&unit);
        (payload, unit.counts)
    }

    /// Quantizes one compression unit: per-block predictor selection plus
    /// error-bounded quantization, producing the code/verbatim/selector
    /// streams but no bytes yet. Predictor state starts fresh (`last = 0`),
    /// which is what makes units independent — and what lets the v3
    /// encoder pool the codes of all units into one histogram before any
    /// entropy coding happens.
    pub(crate) fn quantize_unit(&self, data: &[f32], q: QuantParams) -> QuantizedUnit {
        let n = data.len();
        let mut codes: Vec<u32> = Vec::with_capacity(n);
        let mut verbatim: Vec<f32> = Vec::new();
        let mut selectors: Vec<u8> = Vec::with_capacity(n / q.block + 1);
        let mut reg_params: Vec<(f32, f32)> = Vec::new();

        let mut last = 0f32; // last reconstructed value (decoder-synchronized)
        let mut start = 0usize;
        while start < n {
            let end = (start + q.block).min(n);
            let chunk = &data[start..end];
            let sel = match self.predictor {
                PredictorMode::LorenzoOnly => Sel::Lorenzo,
                PredictorMode::RegressionOnly => {
                    let (a, b) = fit_line(chunk);
                    Sel::Regression { a, b }
                }
                PredictorMode::Adaptive => {
                    let (a, b) = fit_line(chunk);
                    let cost_l =
                        simulate_block_cost(chunk, None, q.two_eb, q.abs_eb, q.radius, last);
                    let cost_r = simulate_block_cost(
                        chunk,
                        Some((a, b)),
                        q.two_eb,
                        q.abs_eb,
                        q.radius,
                        last,
                    );
                    // Regression pays 64 bits of parameters per block.
                    if cost_r + 64.0 < cost_l {
                        Sel::Regression { a, b }
                    } else {
                        Sel::Lorenzo
                    }
                }
            };
            match sel {
                Sel::Lorenzo => selectors.push(0),
                Sel::Regression { a, b } => {
                    selectors.push(1);
                    reg_params.push((a, b));
                }
            }
            for (i, &x) in chunk.iter().enumerate() {
                let pred = match sel {
                    Sel::Lorenzo => last,
                    Sel::Regression { a, b } => a * (i as f32) + b,
                };
                let mut escaped = true;
                if pred.is_finite() {
                    let diff = x as f64 - pred as f64;
                    let qv = (diff / q.two_eb).round();
                    if qv.is_finite() && qv.abs() < f64::from(q.radius) {
                        let qi = qv as i64;
                        let recon = (pred as f64 + q.two_eb * qi as f64) as f32;
                        if recon.is_finite() && (recon as f64 - x as f64).abs() <= q.abs_eb {
                            codes.push((qi + i64::from(q.radius)) as u32 + 1);
                            last = recon;
                            escaped = false;
                        }
                    }
                }
                if escaped {
                    codes.push(ESCAPE);
                    verbatim.push(x);
                    last = if x.is_finite() { x } else { 0.0 };
                }
            }
            start = end;
        }

        let counts = ChunkCounts {
            unpredictable: verbatim.len(),
            regression_blocks: selectors.iter().filter(|&&s| s == 1).count(),
            blocks: selectors.len(),
        };
        QuantizedUnit {
            codes,
            verbatim,
            selectors,
            reg_params,
            counts,
        }
    }

    /// Serializes the selector RLE and regression parameters — the payload
    /// prefix shared by every stream version.
    fn serialize_unit_prefix(&self, unit: &QuantizedUnit, payload: &mut Vec<u8>) {
        let sel_rle = rle::compress(&unit.selectors);
        write_varint(payload, sel_rle.len() as u64);
        payload.extend_from_slice(&sel_rle);
        write_varint(payload, unit.reg_params.len() as u64);
        for &(a, b) in &unit.reg_params {
            payload.extend_from_slice(&a.to_le_bytes());
            payload.extend_from_slice(&b.to_le_bytes());
        }
    }

    /// Serializes the verbatim-value stream — the payload suffix shared by
    /// every stream version.
    fn serialize_unit_verbatim(&self, unit: &QuantizedUnit, payload: &mut Vec<u8>) {
        write_varint(payload, unit.verbatim.len() as u64);
        for &v in &unit.verbatim {
            payload.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// v1/v2 unit payload: self-contained, with an entropy-stage byte and
    /// (for Huffman) the unit's own code book. This layout is pinned by the
    /// golden-bytes compat tests and must never drift.
    fn serialize_unit_own_table(&self, unit: &QuantizedUnit) -> Vec<u8> {
        let mut payload = Vec::with_capacity(unit.codes.len() / 2 + 64);
        self.serialize_unit_prefix(unit, &mut payload);
        match self.entropy {
            EntropyStage::Huffman => {
                payload.push(EntropyStage::Huffman.id());
                let blob = huffman::encode_stream(&unit.codes);
                payload.extend_from_slice(&blob);
            }
            EntropyStage::Raw => {
                payload.push(EntropyStage::Raw.id());
                write_varint(&mut payload, unit.codes.len() as u64);
                for &c in &unit.codes {
                    write_varint(&mut payload, u64::from(c));
                }
            }
        }
        self.serialize_unit_verbatim(unit, &mut payload);
        payload
    }

    /// v3 unit payload: the entropy stage and code book live in the layer
    /// header, so the unit carries only the table-free bit payload (or raw
    /// varints), with the symbol count implied by the unit's element count.
    /// `enc` is `Some` exactly when the stage is Huffman.
    pub(crate) fn serialize_unit_shared(
        &self,
        unit: &QuantizedUnit,
        enc: Option<&HuffmanEncoder>,
    ) -> Vec<u8> {
        let mut payload = Vec::with_capacity(unit.codes.len() / 2 + 64);
        self.serialize_unit_prefix(unit, &mut payload);
        match enc {
            Some(enc) => huffman::encode_payload(enc, &unit.codes, &mut payload),
            None => {
                for &c in &unit.codes {
                    write_varint(&mut payload, u64::from(c));
                }
            }
        }
        self.serialize_unit_verbatim(unit, &mut payload);
        payload
    }
}

/// Serializes the v4 shared-table field: the raw code book competes
/// *all* lossless backends ([`best_fit`] — the table is written once per
/// layer, so unlike per-chunk payloads the three trial compressions are
/// affordable) and the compressed form is kept only when it beats the
/// raw bytes *including* its length framing — so small tables stay raw
/// behind the `0xff` flag. With the backend disabled (`backend: None`)
/// the table is always stored raw, keeping such streams backend-free
/// end to end.
pub(crate) fn write_backed_table(out: &mut Vec<u8>, code: &HuffmanCode, backend_enabled: bool) {
    let mut raw = Vec::new();
    code.serialize(&mut raw);
    if backend_enabled {
        let (kind, comp) = best_fit(&raw);
        let mut framed = Vec::with_capacity(comp.len() + 6);
        write_varint(&mut framed, comp.len() as u64);
        framed.extend_from_slice(&comp);
        if framed.len() < raw.len() {
            out.push(kind.id());
            out.extend_from_slice(&framed);
            return;
        }
    }
    out.push(0xff);
    out.extend_from_slice(&raw);
}

/// Decode-side cap on a backed shared table's decompressed size. A
/// serialized table costs ≤ 6 bytes per coded symbol, and the canonical
/// code's 24-bit length limit bounds real alphabets far below this —
/// 16 MiB covers every encodable table with orders-of-magnitude margin
/// while stopping a crafted stream from demanding gigabytes.
const MAX_TABLE_BYTES: usize = 1 << 24;

/// Parses the v4 shared-table field written by [`write_backed_table`].
fn read_backed_table(bytes: &[u8], pos: &mut usize) -> Result<HuffmanCode, SzError> {
    let flag = *bytes.get(*pos).ok_or(CodecError::Truncated)?;
    *pos += 1;
    match read_backend_id(flag)? {
        None => HuffmanCode::deserialize(bytes, pos).map_err(SzError::Codec),
        Some(kind) => {
            let len = read_varint(bytes, pos)? as usize;
            let end = pos.checked_add(len).ok_or(CodecError::Truncated)?;
            let comp = bytes.get(*pos..end).ok_or(CodecError::Truncated)?;
            *pos = end;
            // Reject an absurd declared size before the backend's decode
            // loop commits memory to it (the real length is still
            // verified during decompression).
            if kind.codec().declared_len(comp)? > MAX_TABLE_BYTES {
                return Err(SzError::Codec(CodecError::corrupt(
                    "backed huffman table too large",
                )));
            }
            let raw = kind.codec().decompress(comp)?;
            let mut table_pos = 0usize;
            let code = HuffmanCode::deserialize(&raw, &mut table_pos).map_err(SzError::Codec)?;
            if table_pos != raw.len() {
                return Err(SzError::Codec(CodecError::corrupt(
                    "trailing bytes after backed huffman table",
                )));
            }
            Ok(code)
        }
    }
}

/// One compression unit's quantized-but-not-yet-entropy-coded streams.
pub(crate) struct QuantizedUnit {
    /// Quantization codes, one per element ([`ESCAPE`] marks verbatim).
    pub(crate) codes: Vec<u32>,
    /// Values stored verbatim, in element order.
    pub(crate) verbatim: Vec<f32>,
    /// Per-block predictor selectors (0 = Lorenzo, 1 = regression).
    pub(crate) selectors: Vec<u8>,
    /// Regression (a, b) per selector-1 block, in block order.
    pub(crate) reg_params: Vec<(f32, f32)>,
    pub(crate) counts: ChunkCounts,
}

impl QuantizedUnit {
    /// Heap bytes held by the unit's streams — what the streaming
    /// encoder's retention ledger charges to keep a quantized chunk alive
    /// between the two shared-table passes.
    pub(crate) fn heap_bytes(&self) -> usize {
        self.codes.len() * 4
            + self.verbatim.len() * 4
            + self.selectors.len()
            + self.reg_params.len() * 8
    }
}

/// Bounds for the adaptive chunk size (elements).
const MIN_ADAPTIVE_CHUNK: usize = 1 << 14;
const MAX_ADAPTIVE_CHUNK: usize = 1 << 18;

/// Adaptive chunk size for a layer of `n` elements under a budget of
/// `workers`: `clamp(n / (4·workers), 16Ki, 256Ki)`. Aiming for ~4 chunks
/// per worker keeps the dynamic work queue balanced even when chunk costs
/// are skewed; the floor stops small layers from paying per-chunk framing
/// (an 8Ki fc layer becomes a single chunk), and the ceiling keeps
/// per-chunk scratch cache-friendly on huge layers.
pub fn adaptive_chunk_elems(n: usize, workers: usize) -> usize {
    (n / (4 * workers.max(1))).clamp(MIN_ADAPTIVE_CHUNK, MAX_ADAPTIVE_CHUNK)
}

/// Upper clamp on configured chunk sizes: keeps the rounding arithmetic in
/// [`chunk_len`] overflow-free for any `SzConfig::chunk_elems` value while
/// being far beyond any useful chunk (2^30 elements = 4 GiB of f32).
const MAX_CHUNK_ELEMS: usize = 1 << 30;

/// Effective chunk length: `chunk_elems` (clamped) rounded up to a whole
/// number of prediction blocks so selector blocks never straddle a chunk
/// boundary.
fn chunk_len(chunk_elems: usize, block: usize) -> usize {
    chunk_elems.clamp(block, MAX_CHUNK_ELEMS).div_ceil(block) * block
}

struct Header {
    version: u8,
    n: usize,
    abs_eb: f64,
    predictor: PredictorMode,
    block: usize,
    radius: u32,
    /// v1 only: whole-payload backend.
    backend: Option<LosslessKind>,
    /// v2+: elements per chunk (equals `n` for v1).
    chunk_elems: usize,
    /// v2+: chunk count (1 for non-empty v1 streams).
    n_chunks: usize,
    /// v3/v4 only: entropy stage shared by every chunk.
    entropy: EntropyStage,
    /// v3/v4 + Huffman only: the shared code book from the layer header.
    shared_code: Option<HuffmanCode>,
    payload_at: usize,
}

fn parse_header(bytes: &[u8]) -> Result<Header, SzError> {
    if bytes.len() < 5 || &bytes[..4] != MAGIC {
        return Err(SzError::Codec(CodecError::corrupt("bad SZ magic")));
    }
    let version = bytes[4];
    if !(VERSION_V1..=VERSION_V4).contains(&version) {
        return Err(SzError::Codec(CodecError::corrupt(
            "unsupported SZ version",
        )));
    }
    let mut pos = 5usize;
    let n = read_varint(bytes, &mut pos)? as usize;
    if n > bytes.len().saturating_mul(MAX_ELEMS_PER_BYTE) {
        return Err(SzError::Codec(CodecError::corrupt(
            "element count exceeds stream capacity",
        )));
    }
    let eb_bytes: [u8; 8] = bytes
        .get(pos..pos + 8)
        .ok_or(CodecError::Truncated)?
        .try_into()
        .map_err(|_| CodecError::Truncated)?;
    let abs_eb = f64::from_le_bytes(eb_bytes);
    pos += 8;
    let predictor = PredictorMode::from_id(*bytes.get(pos).ok_or(CodecError::Truncated)?)
        .map_err(SzError::Codec)?;
    pos += 1;
    let block = read_varint(bytes, &mut pos)? as usize;
    let radius = read_varint(bytes, &mut pos)? as u32;
    if block < 4 || !(abs_eb.is_finite() && abs_eb > 0.0) {
        return Err(SzError::Codec(CodecError::corrupt("bad SZ header fields")));
    }
    let mut entropy = EntropyStage::Huffman;
    let mut shared_code = None;
    let (backend, chunk_elems, n_chunks) = match version {
        VERSION_V1 => {
            let backend_id = *bytes.get(pos).ok_or(CodecError::Truncated)?;
            pos += 1;
            (read_backend_id(backend_id)?, n, usize::from(n > 0))
        }
        _ => {
            let chunk_elems = read_varint(bytes, &mut pos)? as usize;
            let n_chunks = read_varint(bytes, &mut pos)? as usize;
            if chunk_elems == 0 || !chunk_elems.is_multiple_of(block) {
                return Err(SzError::Codec(CodecError::corrupt("bad SZ chunk size")));
            }
            if n_chunks != n.div_ceil(chunk_elems) {
                return Err(SzError::Codec(CodecError::corrupt("bad SZ chunk count")));
            }
            if version >= VERSION_V3 {
                // The shared entropy stage and (for Huffman) the layer-wide
                // code book sit between the chunk geometry and the records;
                // v4 additionally backend-compresses the code book behind a
                // flag byte.
                entropy = EntropyStage::from_id(*bytes.get(pos).ok_or(CodecError::Truncated)?)
                    .map_err(SzError::Codec)?;
                pos += 1;
                if entropy == EntropyStage::Huffman {
                    shared_code = Some(if version == VERSION_V3 {
                        HuffmanCode::deserialize(bytes, &mut pos).map_err(SzError::Codec)?
                    } else {
                        read_backed_table(bytes, &mut pos)?
                    });
                }
            }
            // Every chunk record needs at least 2 bytes (backend id + len),
            // so a count beyond that bounds check is corrupt — checked
            // before any n_chunks-sized allocation happens.
            if n_chunks > bytes.len().saturating_sub(pos) / 2 {
                return Err(SzError::Codec(CodecError::corrupt(
                    "chunk count exceeds stream",
                )));
            }
            (None, chunk_elems, n_chunks)
        }
    };
    Ok(Header {
        version,
        n,
        abs_eb,
        predictor,
        block,
        radius,
        backend,
        chunk_elems,
        n_chunks,
        entropy,
        shared_code,
        payload_at: pos,
    })
}

/// Reads the stream header; see [`crate::info`].
pub fn info(bytes: &[u8]) -> Result<SzInfo, SzError> {
    let h = parse_header(bytes)?;
    let backend = match h.version {
        VERSION_V1 => h.backend,
        _ => {
            // Report the first chunk's backend decision, if any.
            if h.n_chunks > 0 {
                read_backend_id(*bytes.get(h.payload_at).ok_or(CodecError::Truncated)?)?
            } else {
                None
            }
        }
    };
    Ok(SzInfo {
        version: h.version,
        n: h.n,
        abs_eb: h.abs_eb,
        predictor: h.predictor,
        block_size: h.block,
        radius: h.radius,
        backend,
        chunk_elems: h.chunk_elems,
        chunks: h.n_chunks,
    })
}

/// Reusable per-thread decode scratch: backend payload, entropy codes, and
/// selector bytes all land in buffers that survive across chunks/streams.
#[derive(Default)]
struct Scratch {
    payload: Vec<u8>,
    codes: Vec<u32>,
    selectors: Vec<u8>,
}

/// Bytes of capacity a scratch buffer may keep between decodes. Default
/// chunks stay well under this (64 Ki codes = 256 KiB); only oversized
/// one-off units (e.g. a giant legacy v1 stream decoded on a long-lived
/// thread) get released, so the thread-local cannot pin a full layer's
/// worth of memory after decoding finishes.
const MAX_RETAINED_SCRATCH: usize = 4 << 20;

impl Scratch {
    /// Drops buffers that grew past the retention cap (they still hold the
    /// just-decoded unit's contents, so shrinking in place cannot release
    /// anything — every consumer clears them before reuse anyway).
    fn trim(&mut self) {
        if self.payload.capacity() > MAX_RETAINED_SCRATCH {
            self.payload = Vec::new();
        }
        if self.codes.capacity() > MAX_RETAINED_SCRATCH / 4 {
            self.codes = Vec::new();
        }
        if self.selectors.capacity() > MAX_RETAINED_SCRATCH {
            self.selectors = Vec::new();
        }
    }
}

thread_local! {
    static SCRATCH: RefCell<Scratch> = RefCell::default();
}

/// Decodes the one-byte backend field used by both stream versions
/// (0xff = stored raw, otherwise a [`LosslessKind`] id).
fn read_backend_id(byte: u8) -> Result<Option<LosslessKind>, SzError> {
    if byte == 0xff {
        Ok(None)
    } else {
        Ok(Some(LosslessKind::from_id(byte).map_err(SzError::Codec)?))
    }
}

/// Where a unit's entropy-coded quantization codes come from.
#[derive(Clone, Copy)]
enum UnitEntropy<'a> {
    /// v1/v2: an entropy-stage byte plus (for Huffman) the unit's own code
    /// book are embedded in each payload.
    Embedded,
    /// v3/v4 Huffman: the shared decoder built once from the layer header;
    /// the code count equals the unit's element count.
    Shared(&'a HuffmanDecoder),
    /// v3/v4 raw stage: bare varints, count equal to the unit's element
    /// count.
    SharedRaw,
}

/// Decompresses a stream; see [`crate::decompress`]. Dispatches on the
/// version byte: v1 decodes serially, v2/v3/v4 fan chunks out across
/// workers (v3/v4 additionally build their shared Huffman decoder exactly
/// once).
pub fn decompress(bytes: &[u8]) -> Result<Vec<f32>, SzError> {
    let mut out = Vec::new();
    decompress_into(bytes, &mut out)?;
    Ok(out)
}

/// [`decompress`] into a caller-owned buffer: `out` is resized (reusing
/// its capacity) to the stream's element count and filled. The scratch
/// entry point for loops decoding many streams — steady state allocates
/// only when the buffer grows. Output bytes equal the allocating twin's.
pub fn decompress_into(bytes: &[u8], out: &mut Vec<f32>) -> Result<(), SzError> {
    let h = parse_header(bytes)?;
    out.clear();
    out.resize(h.n, 0.0);
    match h.version {
        VERSION_V1 => decompress_v1(bytes, &h, out),
        VERSION_V2 => decompress_chunked(bytes, &h, UnitEntropy::Embedded, out),
        _ => match h.entropy {
            EntropyStage::Huffman => {
                let Some(code) = h.shared_code.as_ref() else {
                    // parse_header always installs the table for v3/v4
                    // Huffman streams; defensive rather than unreachable.
                    return Err(SzError::Codec(CodecError::corrupt(
                        "v3/v4 huffman stream without a shared code book",
                    )));
                };
                let dec = code.decoder();
                decompress_chunked(bytes, &h, UnitEntropy::Shared(&dec), out)
            }
            EntropyStage::Raw => decompress_chunked(bytes, &h, UnitEntropy::SharedRaw, out),
        },
    }
}

/// Decodes one backend-wrapped unit into `out` using the calling thread's
/// scratch: the single decode path shared by v1 (whole stream) and v2/v3
/// (each chunk), so backend fallback and scratch handling cannot diverge.
fn decode_backed_unit(
    kind: Option<LosslessKind>,
    record: &[u8],
    block: usize,
    radius: u32,
    abs_eb: f64,
    entropy: UnitEntropy<'_>,
    out: &mut [f32],
) -> Result<(), SzError> {
    SCRATCH.with(|scratch| {
        let scratch = &mut *scratch.borrow_mut();
        let r = match kind {
            Some(k) => {
                // Declared-len gate (the PR 4 pattern, extended to every
                // backend): a legitimate unit payload for `out.len()`
                // elements is far under 32 bytes/element (codes ≤ 5-byte
                // varints, verbatim 4 bytes, selectors/params amortized),
                // so reject absurd declared lengths before the backend
                // decode commits memory or time to them.
                let declared = k.codec().declared_len(record)?;
                if declared > out.len().saturating_mul(32).saturating_add(1024) {
                    return Err(SzError::Codec(CodecError::corrupt(
                        "unit payload length exceeds element capacity",
                    )));
                }
                // Move the payload scratch out so the unit decoder can
                // borrow the scratch struct for its own buffers.
                let mut payload = std::mem::take(&mut scratch.payload);
                k.codec().decompress_into(record, &mut payload)?;
                let r = decode_unit_into(&payload, block, radius, abs_eb, entropy, out, scratch);
                scratch.payload = payload;
                r
            }
            None => decode_unit_into(record, block, radius, abs_eb, entropy, out, scratch),
        };
        scratch.trim();
        r
    })
}

fn decompress_v1(bytes: &[u8], h: &Header, out: &mut [f32]) -> Result<(), SzError> {
    let raw_payload = &bytes[h.payload_at..];
    decode_backed_unit(
        h.backend,
        raw_payload,
        h.block,
        h.radius,
        h.abs_eb,
        UnitEntropy::Embedded,
        out,
    )
}

/// Chunk-parallel decode shared by v2 and v3; only the entropy source
/// differs between the two.
fn decompress_chunked(
    bytes: &[u8],
    h: &Header,
    entropy: UnitEntropy<'_>,
    out: &mut [f32],
) -> Result<(), SzError> {
    // Zero-copy chunk table: slice out every record before decoding.
    let mut pos = h.payload_at;
    let mut records: Vec<(Option<LosslessKind>, &[u8])> = Vec::with_capacity(h.n_chunks);
    let mut sizes: Vec<usize> = Vec::with_capacity(h.n_chunks);
    for c in 0..h.n_chunks {
        let id = *bytes.get(pos).ok_or(CodecError::Truncated)?;
        pos += 1;
        let kind = read_backend_id(id)?;
        let len = read_varint(bytes, &mut pos)? as usize;
        let end = pos.checked_add(len).ok_or(CodecError::Truncated)?;
        records.push((kind, bytes.get(pos..end).ok_or(CodecError::Truncated)?));
        pos = end;
        // `c * chunk_elems < n` is guaranteed by the header validation, but
        // `(c + 1) * chunk_elems` may overflow for near-usize::MAX `n`.
        let start = c * h.chunk_elems;
        let end_elem = start
            .checked_add(h.chunk_elems)
            .ok_or(CodecError::Truncated)?
            .min(h.n);
        sizes.push(end_elem - start);
    }
    let (block, radius, abs_eb) = (h.block, h.radius, h.abs_eb);
    parallel_chunks(out, &sizes, |ci, slice| {
        let (kind, record) = records[ci];
        decode_backed_unit(kind, record, block, radius, abs_eb, entropy, slice)
    })
}

/// Bounds-checked little-endian `f32` read at byte offset `off`.
#[inline]
fn read_f32_le(bytes: &[u8], off: usize) -> Result<f32, SzError> {
    let b: [u8; 4] = bytes
        .get(off..off.checked_add(4).ok_or(CodecError::Truncated)?)
        .ok_or(CodecError::Truncated)?
        .try_into()
        .map_err(|_| CodecError::Truncated)?;
    Ok(f32::from_le_bytes(b))
}

/// Decodes one compression unit's payload into `out` (whose length is the
/// unit's element count). Scratch buffers hold the intermediate selector
/// and code streams; verbatim values are read straight from the payload.
fn decode_unit_into(
    payload: &[u8],
    block: usize,
    radius: u32,
    abs_eb: f64,
    entropy: UnitEntropy<'_>,
    out: &mut [f32],
    scratch: &mut Scratch,
) -> Result<(), SzError> {
    let n = out.len();
    let mut pos = 0usize;
    let sel_len = read_varint(payload, &mut pos)? as usize;
    let sel_end = pos.checked_add(sel_len).ok_or(CodecError::Truncated)?;
    // The selector count is fixed by the unit's element count, so cap the
    // RLE decode at it — a hostile declared length errors before any
    // memory is committed (the exact-count check below still applies).
    rle::decompress_into_capped(
        payload.get(pos..sel_end).ok_or(CodecError::Truncated)?,
        &mut scratch.selectors,
        n.div_ceil(block),
    )?;
    pos = sel_end;
    let n_reg = read_varint(payload, &mut pos)? as usize;
    if n_reg > scratch.selectors.len() {
        return Err(SzError::Codec(CodecError::corrupt(
            "regression param overflow",
        )));
    }
    let reg_end = pos
        .checked_add(n_reg.checked_mul(8).ok_or(CodecError::Truncated)?)
        .ok_or(CodecError::Truncated)?;
    let reg_bytes = payload.get(pos..reg_end).ok_or(CodecError::Truncated)?;
    pos = reg_end;
    match entropy {
        UnitEntropy::Embedded => {
            let entropy_id = *payload.get(pos).ok_or(CodecError::Truncated)?;
            pos += 1;
            match EntropyStage::from_id(entropy_id).map_err(SzError::Codec)? {
                EntropyStage::Huffman => {
                    huffman::decode_stream_into(payload, &mut pos, &mut scratch.codes)?
                }
                EntropyStage::Raw => {
                    let m = read_varint(payload, &mut pos)? as usize;
                    if m > n {
                        return Err(SzError::Codec(CodecError::corrupt("code count mismatch")));
                    }
                    scratch.codes.clear();
                    scratch.codes.reserve(m);
                    for _ in 0..m {
                        scratch.codes.push(read_varint(payload, &mut pos)? as u32);
                    }
                }
            }
        }
        UnitEntropy::Shared(dec) => {
            huffman::decode_payload_into(dec, payload, &mut pos, n, &mut scratch.codes)?
        }
        UnitEntropy::SharedRaw => {
            scratch.codes.clear();
            scratch.codes.reserve(n);
            for _ in 0..n {
                scratch.codes.push(read_varint(payload, &mut pos)? as u32);
            }
        }
    };
    if scratch.codes.len() != n {
        return Err(SzError::Codec(CodecError::corrupt("code count mismatch")));
    }
    let n_verb = read_varint(payload, &mut pos)? as usize;
    let verb_end = pos
        .checked_add(n_verb.checked_mul(4).ok_or(CodecError::Truncated)?)
        .ok_or(CodecError::Truncated)?;
    let verb_bytes = payload.get(pos..verb_end).ok_or(CodecError::Truncated)?;

    let expected_blocks = n.div_ceil(block);
    if scratch.selectors.len() != expected_blocks {
        return Err(SzError::Codec(CodecError::corrupt(
            "selector count mismatch",
        )));
    }

    let two_eb = 2.0 * abs_eb;
    let mut last = 0f32;
    let mut vi = 0usize;
    let mut ri = 0usize;
    for (bi, &sel) in scratch.selectors.iter().enumerate() {
        let start = bi * block;
        let end = (start + block).min(n);
        let reg = match sel {
            0 => None,
            1 => {
                if ri >= n_reg {
                    return Err(SzError::Codec(CodecError::Truncated));
                }
                let a = read_f32_le(reg_bytes, ri * 8)?;
                let b = read_f32_le(reg_bytes, ri * 8 + 4)?;
                ri += 1;
                Some((a, b))
            }
            _ => return Err(SzError::Codec(CodecError::corrupt("bad selector"))),
        };
        for i in 0..end - start {
            let pred = match reg {
                None => last,
                Some((a, b)) => a * (i as f32) + b,
            };
            let code = scratch.codes[start + i];
            let value = if code == ESCAPE {
                if vi >= n_verb {
                    return Err(SzError::Codec(CodecError::Truncated));
                }
                let x = read_f32_le(verb_bytes, vi * 4)?;
                vi += 1;
                last = if x.is_finite() { x } else { 0.0 };
                x
            } else {
                let qi = i64::from(code) - 1 - i64::from(radius);
                let recon = (pred as f64 + two_eb * qi as f64) as f32;
                last = recon;
                recon
            };
            out[start + i] = value;
        }
    }
    Ok(())
}
