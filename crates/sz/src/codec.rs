//! The SZ compression pipeline: prediction, quantization, entropy stage,
//! lossless backend, and the self-describing stream format.

use crate::{ErrorBound, SzError};
use dsz_lossless::bits::{read_varint, write_varint};
use dsz_lossless::huffman;
use dsz_lossless::{rle, CodecError, LosslessKind};

const MAGIC: &[u8; 4] = b"SZ1D";
const VERSION: u8 = 1;

/// Escape code marking a verbatim ("unpredictable") value.
const ESCAPE: u32 = 0;

/// Which predictors the encoder may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredictorMode {
    /// Per-block best of Lorenzo and regression (SZ 2.x behaviour).
    Adaptive,
    /// Lorenzo (previous reconstructed value) everywhere — SZ 1.x style.
    LorenzoOnly,
    /// Least-squares line per block everywhere.
    RegressionOnly,
}

impl PredictorMode {
    fn id(self) -> u8 {
        match self {
            PredictorMode::Adaptive => 0,
            PredictorMode::LorenzoOnly => 1,
            PredictorMode::RegressionOnly => 2,
        }
    }

    fn from_id(id: u8) -> Result<Self, CodecError> {
        match id {
            0 => Ok(PredictorMode::Adaptive),
            1 => Ok(PredictorMode::LorenzoOnly),
            2 => Ok(PredictorMode::RegressionOnly),
            _ => Err(CodecError::corrupt("unknown predictor mode")),
        }
    }
}

/// Entropy stage for the quantization codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntropyStage {
    /// Canonical Huffman (default; SZ's choice).
    Huffman,
    /// Raw varints — only useful for the entropy-stage ablation bench.
    Raw,
}

/// Tunable compressor configuration. The defaults mirror SZ 2.x.
#[derive(Debug, Clone, Copy)]
pub struct SzConfig {
    /// Predictor selection policy.
    pub predictor: PredictorMode,
    /// Samples per prediction block.
    pub block_size: usize,
    /// Quantization radius: codes cover `[-radius, radius-1]`; residuals
    /// outside become verbatim values. SZ's default is 2^15.
    pub radius: u32,
    /// Entropy stage for quantization codes.
    pub entropy: EntropyStage,
    /// Byte codec applied over the whole payload (`None` disables).
    pub backend: Option<LosslessKind>,
}

impl Default for SzConfig {
    fn default() -> Self {
        Self {
            predictor: PredictorMode::Adaptive,
            block_size: 128,
            radius: 1 << 15,
            entropy: EntropyStage::Huffman,
            backend: Some(LosslessKind::Zstd),
        }
    }
}

/// Header information of a compressed stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SzInfo {
    /// Element count.
    pub n: usize,
    /// Resolved absolute error bound.
    pub abs_eb: f64,
    /// Predictor policy used.
    pub predictor: PredictorMode,
    /// Block size used.
    pub block_size: usize,
    /// Quantization radius used.
    pub radius: u32,
    /// Lossless backend used (if any).
    pub backend: Option<LosslessKind>,
}

/// Encoder-side statistics, for benches and ablations.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CompressStats {
    /// Element count.
    pub n: usize,
    /// Values stored verbatim because quantization would break the bound.
    pub unpredictable: usize,
    /// Blocks that chose the regression predictor.
    pub regression_blocks: usize,
    /// Total block count.
    pub blocks: usize,
    /// Final compressed size in bytes.
    pub compressed_bytes: usize,
}

impl CompressStats {
    /// Compression ratio vs raw f32 storage.
    pub fn ratio(&self) -> f64 {
        (self.n * 4) as f64 / self.compressed_bytes.max(1) as f64
    }
}

#[derive(Clone, Copy)]
enum Sel {
    Lorenzo,
    Regression { a: f32, b: f32 },
}

/// Least-squares line over `block` with x = 0..m-1.
fn fit_line(block: &[f32]) -> (f32, f32) {
    let m = block.len();
    if m == 1 {
        let b = if block[0].is_finite() { block[0] } else { 0.0 };
        return (0.0, b);
    }
    let mf = m as f64;
    let mean_x = (mf - 1.0) / 2.0;
    let mut mean_y = 0f64;
    let mut finite = 0usize;
    for &v in block {
        if v.is_finite() {
            mean_y += v as f64;
            finite += 1;
        }
    }
    if finite == 0 {
        return (0.0, 0.0);
    }
    mean_y /= finite as f64;
    let mut cov = 0f64;
    let mut var = 0f64;
    for (i, &v) in block.iter().enumerate() {
        if v.is_finite() {
            let dx = i as f64 - mean_x;
            cov += dx * (v as f64 - mean_y);
            var += dx * dx;
        }
    }
    let a = if var > 0.0 { cov / var } else { 0.0 };
    let b = mean_y - a * mean_x;
    let (a, b) = (a as f32, b as f32);
    if a.is_finite() && b.is_finite() {
        (a, b)
    } else {
        (0.0, 0.0)
    }
}

/// Simulates quantizing `chunk` with the given predictor (0 = Lorenzo with
/// true reconstruction feedback, starting at `last`; otherwise the supplied
/// regression line) and returns the estimated encoded bits: empirical code
/// entropy + escape payloads. This mirrors SZ 2.x, which picks the per-block
/// predictor by sampled encoding cost rather than a closed-form proxy.
fn simulate_block_cost(
    chunk: &[f32],
    reg: Option<(f32, f32)>,
    two_eb: f64,
    abs_eb: f64,
    radius: u32,
    last: f32,
) -> f64 {
    let mut counts: std::collections::HashMap<i64, u32> =
        std::collections::HashMap::with_capacity(chunk.len().min(64));
    let mut escapes = 0u32;
    let mut prev = last;
    for (i, &x) in chunk.iter().enumerate() {
        let pred = match reg {
            None => prev,
            Some((a, b)) => a * (i as f32) + b,
        };
        let mut escaped = true;
        if pred.is_finite() {
            let q = ((x as f64 - pred as f64) / two_eb).round();
            if q.is_finite() && q.abs() < f64::from(radius) {
                let qi = q as i64;
                let recon = (pred as f64 + two_eb * qi as f64) as f32;
                if recon.is_finite() && (recon as f64 - x as f64).abs() <= abs_eb {
                    *counts.entry(qi).or_insert(0) += 1;
                    prev = recon;
                    escaped = false;
                }
            }
        }
        if escaped {
            escapes += 1;
            prev = if x.is_finite() { x } else { 0.0 };
        }
    }
    let coded: u32 = counts.values().sum();
    let n = f64::from(coded.max(1));
    let entropy_bits: f64 = counts
        .values()
        .map(|&c| {
            let c = f64::from(c);
            c * (n / c).log2()
        })
        .sum();
    entropy_bits + f64::from(escapes) * 34.0
}

impl SzConfig {
    /// Compresses `data`; see [`crate::compress`].
    pub fn compress(&self, data: &[f32], bound: ErrorBound) -> Result<Vec<u8>, SzError> {
        self.compress_with_stats(data, bound).map(|(b, _)| b)
    }

    /// Compresses `data` and also returns encoder statistics.
    pub fn compress_with_stats(
        &self,
        data: &[f32],
        bound: ErrorBound,
    ) -> Result<(Vec<u8>, CompressStats), SzError> {
        let abs_eb = bound.resolve(data);
        if !(abs_eb.is_finite() && abs_eb > 0.0) {
            return Err(SzError::BadErrorBound(abs_eb));
        }
        let two_eb = 2.0 * abs_eb;
        let radius = self.radius.max(2);
        let block = self.block_size.max(4);
        let n = data.len();

        let mut codes: Vec<u32> = Vec::with_capacity(n);
        let mut verbatim: Vec<f32> = Vec::new();
        let mut selectors: Vec<u8> = Vec::with_capacity(n / block + 1);
        let mut reg_params: Vec<(f32, f32)> = Vec::new();

        let mut last = 0f32; // last reconstructed value (decoder-synchronized)
        let mut start = 0usize;
        while start < n {
            let end = (start + block).min(n);
            let chunk = &data[start..end];
            let sel = match self.predictor {
                PredictorMode::LorenzoOnly => Sel::Lorenzo,
                PredictorMode::RegressionOnly => {
                    let (a, b) = fit_line(chunk);
                    Sel::Regression { a, b }
                }
                PredictorMode::Adaptive => {
                    let (a, b) = fit_line(chunk);
                    let cost_l = simulate_block_cost(chunk, None, two_eb, abs_eb, radius, last);
                    let cost_r =
                        simulate_block_cost(chunk, Some((a, b)), two_eb, abs_eb, radius, last);
                    // Regression pays 64 bits of parameters per block.
                    if cost_r + 64.0 < cost_l {
                        Sel::Regression { a, b }
                    } else {
                        Sel::Lorenzo
                    }
                }
            };
            match sel {
                Sel::Lorenzo => selectors.push(0),
                Sel::Regression { a, b } => {
                    selectors.push(1);
                    reg_params.push((a, b));
                }
            }
            for (i, &x) in chunk.iter().enumerate() {
                let pred = match sel {
                    Sel::Lorenzo => last,
                    Sel::Regression { a, b } => a * (i as f32) + b,
                };
                let mut escaped = true;
                if pred.is_finite() {
                    let diff = x as f64 - pred as f64;
                    let q = (diff / two_eb).round();
                    if q.is_finite() && q.abs() < f64::from(radius) {
                        let qi = q as i64;
                        let recon = (pred as f64 + two_eb * qi as f64) as f32;
                        if recon.is_finite() && (recon as f64 - x as f64).abs() <= abs_eb {
                            codes.push((qi + i64::from(radius)) as u32 + 1);
                            last = recon;
                            escaped = false;
                        }
                    }
                }
                if escaped {
                    codes.push(ESCAPE);
                    verbatim.push(x);
                    last = if x.is_finite() { x } else { 0.0 };
                }
            }
            start = end;
        }

        // ---- serialize payload ----
        let mut payload = Vec::with_capacity(n / 2 + 64);
        let sel_rle = rle::compress(&selectors);
        write_varint(&mut payload, sel_rle.len() as u64);
        payload.extend_from_slice(&sel_rle);
        write_varint(&mut payload, reg_params.len() as u64);
        for &(a, b) in &reg_params {
            payload.extend_from_slice(&a.to_le_bytes());
            payload.extend_from_slice(&b.to_le_bytes());
        }
        match self.entropy {
            EntropyStage::Huffman => {
                payload.push(0);
                let blob = huffman::encode_stream(&codes, 2 * radius as usize + 2);
                payload.extend_from_slice(&blob);
            }
            EntropyStage::Raw => {
                payload.push(1);
                write_varint(&mut payload, codes.len() as u64);
                for &c in &codes {
                    write_varint(&mut payload, u64::from(c));
                }
            }
        }
        write_varint(&mut payload, verbatim.len() as u64);
        for &v in &verbatim {
            payload.extend_from_slice(&v.to_le_bytes());
        }

        // ---- header + backend ----
        let mut out = Vec::with_capacity(payload.len() / 2 + 64);
        out.extend_from_slice(MAGIC);
        out.push(VERSION);
        write_varint(&mut out, n as u64);
        out.extend_from_slice(&abs_eb.to_le_bytes());
        out.push(self.predictor.id());
        write_varint(&mut out, block as u64);
        write_varint(&mut out, u64::from(radius));
        match self.backend {
            Some(kind) => {
                out.push(kind.id());
                let comp = kind.codec().compress(&payload);
                // Keep whichever of raw/compressed payload is smaller.
                if comp.len() < payload.len() {
                    out.extend_from_slice(&comp);
                } else {
                    // Rewrite the backend byte as "none".
                    let pos = out.len() - 1;
                    out[pos] = 0xff;
                    out.extend_from_slice(&payload);
                }
            }
            None => {
                out.push(0xff);
                out.extend_from_slice(&payload);
            }
        }

        let stats = CompressStats {
            n,
            unpredictable: verbatim.len(),
            regression_blocks: selectors.iter().filter(|&&s| s == 1).count(),
            blocks: selectors.len(),
            compressed_bytes: out.len(),
        };
        Ok((out, stats))
    }
}

struct Header {
    n: usize,
    abs_eb: f64,
    predictor: PredictorMode,
    block: usize,
    radius: u32,
    backend: Option<LosslessKind>,
    payload_at: usize,
}

fn parse_header(bytes: &[u8]) -> Result<Header, SzError> {
    if bytes.len() < 5 || &bytes[..4] != MAGIC {
        return Err(SzError::Codec(CodecError::corrupt("bad SZ magic")));
    }
    if bytes[4] != VERSION {
        return Err(SzError::Codec(CodecError::corrupt("unsupported SZ version")));
    }
    let mut pos = 5usize;
    let n = read_varint(bytes, &mut pos)? as usize;
    let eb_bytes: [u8; 8] = bytes
        .get(pos..pos + 8)
        .ok_or(CodecError::Truncated)?
        .try_into()
        .expect("slice length checked");
    let abs_eb = f64::from_le_bytes(eb_bytes);
    pos += 8;
    let predictor = PredictorMode::from_id(*bytes.get(pos).ok_or(CodecError::Truncated)?)
        .map_err(SzError::Codec)?;
    pos += 1;
    let block = read_varint(bytes, &mut pos)? as usize;
    let radius = read_varint(bytes, &mut pos)? as u32;
    let backend_id = *bytes.get(pos).ok_or(CodecError::Truncated)?;
    pos += 1;
    let backend = if backend_id == 0xff {
        None
    } else {
        Some(LosslessKind::from_id(backend_id).map_err(SzError::Codec)?)
    };
    if block < 4 || !(abs_eb.is_finite() && abs_eb > 0.0) {
        return Err(SzError::Codec(CodecError::corrupt("bad SZ header fields")));
    }
    Ok(Header { n, abs_eb, predictor, block, radius, backend, payload_at: pos })
}

/// Reads the stream header; see [`crate::info`].
pub fn info(bytes: &[u8]) -> Result<SzInfo, SzError> {
    let h = parse_header(bytes)?;
    Ok(SzInfo {
        n: h.n,
        abs_eb: h.abs_eb,
        predictor: h.predictor,
        block_size: h.block,
        radius: h.radius,
        backend: h.backend,
    })
}

/// Decompresses a stream; see [`crate::decompress`].
pub fn decompress(bytes: &[u8]) -> Result<Vec<f32>, SzError> {
    let h = parse_header(bytes)?;
    let raw_payload = &bytes[h.payload_at..];
    let owned;
    let payload: &[u8] = match h.backend {
        Some(kind) => {
            owned = kind.codec().decompress(raw_payload)?;
            &owned
        }
        None => raw_payload,
    };

    let mut pos = 0usize;
    let sel_len = read_varint(payload, &mut pos)? as usize;
    let sel_end = pos.checked_add(sel_len).ok_or(CodecError::Truncated)?;
    let selectors = rle::decompress(payload.get(pos..sel_end).ok_or(CodecError::Truncated)?)?;
    pos = sel_end;
    let n_reg = read_varint(payload, &mut pos)? as usize;
    let mut reg_params = Vec::with_capacity(n_reg);
    for _ in 0..n_reg {
        let a = f32::from_le_bytes(
            payload.get(pos..pos + 4).ok_or(CodecError::Truncated)?.try_into().expect("len 4"),
        );
        let b = f32::from_le_bytes(
            payload
                .get(pos + 4..pos + 8)
                .ok_or(CodecError::Truncated)?
                .try_into()
                .expect("len 4"),
        );
        reg_params.push((a, b));
        pos += 8;
    }
    let entropy_id = *payload.get(pos).ok_or(CodecError::Truncated)?;
    pos += 1;
    let codes: Vec<u32> = match entropy_id {
        0 => huffman::decode_stream(payload, &mut pos)?,
        1 => {
            let m = read_varint(payload, &mut pos)? as usize;
            let mut v = Vec::with_capacity(m);
            for _ in 0..m {
                v.push(read_varint(payload, &mut pos)? as u32);
            }
            v
        }
        _ => return Err(SzError::Codec(CodecError::corrupt("bad entropy stage id"))),
    };
    if codes.len() != h.n {
        return Err(SzError::Codec(CodecError::corrupt("code count mismatch")));
    }
    let n_verb = read_varint(payload, &mut pos)? as usize;
    let mut verbatim = Vec::with_capacity(n_verb);
    for _ in 0..n_verb {
        let v = f32::from_le_bytes(
            payload.get(pos..pos + 4).ok_or(CodecError::Truncated)?.try_into().expect("len 4"),
        );
        verbatim.push(v);
        pos += 4;
    }

    let expected_blocks = h.n.div_ceil(h.block);
    if selectors.len() != expected_blocks {
        return Err(SzError::Codec(CodecError::corrupt("selector count mismatch")));
    }

    let two_eb = 2.0 * h.abs_eb;
    let mut out = Vec::with_capacity(h.n);
    let mut last = 0f32;
    let mut vi = 0usize;
    let mut ri = 0usize;
    for (bi, &sel) in selectors.iter().enumerate() {
        let start = bi * h.block;
        let end = (start + h.block).min(h.n);
        let reg = match sel {
            0 => None,
            1 => {
                let p = *reg_params.get(ri).ok_or(CodecError::Truncated)?;
                ri += 1;
                Some(p)
            }
            _ => return Err(SzError::Codec(CodecError::corrupt("bad selector"))),
        };
        for i in 0..end - start {
            let pred = match reg {
                None => last,
                Some((a, b)) => a * (i as f32) + b,
            };
            let code = codes[start + i];
            if code == ESCAPE {
                let x = *verbatim.get(vi).ok_or(CodecError::Truncated)?;
                vi += 1;
                out.push(x);
                last = if x.is_finite() { x } else { 0.0 };
            } else {
                let qi = i64::from(code) - 1 - i64::from(h.radius);
                let recon = (pred as f64 + two_eb * qi as f64) as f32;
                out.push(recon);
                last = recon;
            }
        }
    }
    Ok(out)
}
