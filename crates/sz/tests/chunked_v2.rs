//! Tests for the chunked v2 stream format: round-trips across chunk-size ×
//! worker-count combinations, v1 backward compatibility, and container
//! determinism regardless of parallelism.

use dsz_sz::{decompress, info, max_abs_error, ErrorBound, SzConfig, SzFormat};
use dsz_tensor::parallel::with_workers;
use proptest::prelude::*;

fn weights(n: usize, seed: u64, scale: f32) -> Vec<f32> {
    let mut s = seed;
    let mut next = || {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((s >> 11) as f64 / (1u64 << 53) as f64) as f32
    };
    (0..n)
        .map(|_| (next() + next() + next() + next() - 2.0) * scale)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn roundtrip_across_chunk_sizes_and_workers(
        data in proptest::collection::vec(-0.4f32..0.4f32, 0..6000),
        chunk_idx in 0usize..5,
        workers in 1usize..5,
    ) {
        // 0 = legacy v1; small chunks force many units; large = one unit.
        let chunk_elems = [0usize, 128, 512, 4096, 1 << 16][chunk_idx];
        let format = if chunk_elems == 0 { SzFormat::V1 } else { SzFormat::V2 };
        let cfg = SzConfig { chunk_elems, format, ..SzConfig::default() };
        let eb = 1e-3;
        let (blob, back) = with_workers(workers, || {
            let blob = cfg.compress(&data, ErrorBound::Abs(eb)).unwrap();
            let back = decompress(&blob).unwrap();
            (blob, back)
        });
        prop_assert_eq!(back.len(), data.len());
        prop_assert!(max_abs_error(&data, &back) <= eb * (1.0 + 1e-9));
        let i = info(&blob).unwrap();
        prop_assert_eq!(i.version, if chunk_elems == 0 { 1 } else { 2 });
        prop_assert_eq!(i.n, data.len());
    }

    #[test]
    fn v2_decoder_never_panics_on_garbage(
        data in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        // Arbitrary bytes, and bytes doctored to carry the v2 version.
        let _ = decompress(&data);
        let _ = info(&data);
        let mut doctored = b"SZ1D\x02".to_vec();
        doctored.extend_from_slice(&data);
        let _ = decompress(&doctored);
        let _ = info(&doctored);
    }
}

/// The byte layout must not depend on how many workers encoded it, and the
/// decoded values must not depend on how many workers decoded it.
#[test]
fn container_bytes_deterministic_across_worker_counts() {
    let data = weights(200_000, 7, 0.1);
    let cfg = SzConfig {
        chunk_elems: 8192,
        format: SzFormat::V2,
        ..SzConfig::default()
    };
    let reference = with_workers(1, || cfg.compress(&data, ErrorBound::Abs(1e-3)).unwrap());
    for workers in [2usize, 3, 4, 8] {
        let blob = with_workers(workers, || {
            cfg.compress(&data, ErrorBound::Abs(1e-3)).unwrap()
        });
        assert_eq!(blob, reference, "encode bytes differ at {workers} workers");
    }
    let decoded_1 = with_workers(1, || decompress(&reference).unwrap());
    for workers in [2usize, 4, 8] {
        let decoded_n = with_workers(workers, || decompress(&reference).unwrap());
        // Bit-exact, not just within-bound: same chunks, same arithmetic.
        assert_eq!(
            decoded_1.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            decoded_n.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "decode differs at {workers} workers"
        );
    }
}

/// v1 streams (`SzFormat::V1` encodes the legacy layout) still decode,
/// and the header survives the version dispatch.
#[test]
fn v1_streams_still_decode() {
    let data = weights(50_000, 13, 0.08);
    let v1_cfg = SzConfig {
        format: SzFormat::V1,
        ..SzConfig::default()
    };
    let blob = v1_cfg.compress(&data, ErrorBound::Abs(2e-3)).unwrap();
    assert_eq!(&blob[..4], b"SZ1D");
    assert_eq!(blob[4], 1, "SzFormat::V1 must emit a v1 stream");

    let i = info(&blob).unwrap();
    assert_eq!(i.version, 1);
    assert_eq!(i.n, data.len());
    assert!((i.abs_eb - 2e-3).abs() < 1e-12);
    assert_eq!(i.chunks, 1);

    // Decode through the same entry point as v2, at several worker counts.
    let back = decompress(&blob).unwrap();
    assert!(max_abs_error(&data, &back) <= 2e-3 * (1.0 + 1e-9));
    let back_mt = with_workers(4, || decompress(&blob).unwrap());
    assert_eq!(
        back.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        back_mt.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
    );
}

/// A fixed v1 container captured from the legacy encoder (8 values at
/// eb = 1e-2, default configuration): hardcoded bytes, so *any* drift in
/// the v1 wire layout or decode arithmetic fails here even if encoder and
/// decoder drift together.
#[test]
fn v1_golden_stream_decodes() {
    let original: [f32; 8] = [0.5, 0.25, -0.125, 0.0, 1.0, -1.0, 0.75, -0.5];
    const GOLDEN: [u8; 56] = [
        0x53, 0x5a, 0x31, 0x44, 0x01, 0x08, 0x7b, 0x14, 0xae, 0x47, 0xe1, 0x7a, 0x84, 0x3f, 0x00,
        0x80, 0x01, 0x80, 0x80, 0x02, 0xff, 0x03, 0x01, 0x01, 0x00, 0x00, 0x00, 0x08, 0x08, 0x00,
        0x03, 0x9d, 0xff, 0x01, 0x03, 0x25, 0x03, 0x2c, 0x03, 0x19, 0x03, 0x13, 0x03, 0x19, 0x03,
        0x26, 0x03, 0x03, 0x85, 0x33, 0x5e, 0x01, 0x00, 0x00, 0x80, 0x3e,
    ];
    // Today's encoder must still produce these bytes for this input…
    let v1_cfg = SzConfig {
        format: SzFormat::V1,
        ..SzConfig::default()
    };
    let encoded = v1_cfg.compress(&original, ErrorBound::Abs(1e-2)).unwrap();
    assert_eq!(encoded, GOLDEN, "v1 encoder output drifted");
    // …and the captured bytes must decode to the captured reconstruction.
    let back = decompress(&GOLDEN).unwrap();
    let expected: [f32; 8] = [0.5, 0.25, -0.13, -0.009999995, 0.99, -1.01, 0.75, -0.51];
    assert_eq!(
        back.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        expected.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        "v1 decode drifted"
    );
    assert!(max_abs_error(&original, &back) <= 1e-2 * (1.0 + 1e-9));
}

/// Ragged tails: element counts straddling chunk and block boundaries.
#[test]
fn chunk_boundary_edge_cases() {
    let cfg = SzConfig {
        chunk_elems: 1024,
        format: SzFormat::V2,
        ..SzConfig::default()
    };
    for n in [0usize, 1, 127, 128, 1023, 1024, 1025, 2048, 2049, 5000] {
        let data = weights(n, n as u64 + 1, 0.2);
        let blob = cfg.compress(&data, ErrorBound::Abs(1e-3)).unwrap();
        let back = decompress(&blob).unwrap();
        assert_eq!(back.len(), n, "n={n}");
        assert!(max_abs_error(&data, &back) <= 1e-3 * (1.0 + 1e-9), "n={n}");
        let i = info(&blob).unwrap();
        if n > 0 {
            assert_eq!(i.chunks, n.div_ceil(i.chunk_elems), "n={n}");
        }
    }
}

/// Chunking pays one Huffman table per chunk; at the default chunk size
/// the overhead vs the monolithic v1 stream must stay small.
#[test]
fn v2_size_overhead_is_bounded() {
    let data = weights(300_000, 3, 0.05);
    let v1 = SzConfig {
        format: SzFormat::V1,
        ..SzConfig::default()
    }
    .compress(&data, ErrorBound::Abs(1e-3))
    .unwrap();
    let v2 = SzConfig {
        chunk_elems: 1 << 16,
        format: SzFormat::V2,
        ..SzConfig::default()
    }
    .compress(&data, ErrorBound::Abs(1e-3))
    .unwrap();
    let inflation = v2.len() as f64 / v1.len() as f64;
    assert!(inflation < 1.10, "v2 is {inflation:.3}x the v1 size");
}

/// Both formats must honor every predictor mode.
#[test]
fn all_predictors_roundtrip_in_v2() {
    use dsz_sz::PredictorMode;
    let data = weights(20_000, 17, 0.08);
    for mode in [
        PredictorMode::Adaptive,
        PredictorMode::LorenzoOnly,
        PredictorMode::RegressionOnly,
    ] {
        let cfg = SzConfig {
            predictor: mode,
            chunk_elems: 2048,
            format: SzFormat::V2,
            ..SzConfig::default()
        };
        let blob = cfg.compress(&data, ErrorBound::Abs(1e-3)).unwrap();
        let back = with_workers(4, || decompress(&blob).unwrap());
        assert!(
            max_abs_error(&data, &back) <= 1e-3 * (1.0 + 1e-9),
            "{mode:?}"
        );
    }
}
