//! Property-based tests for the SZ codec: the error-bound guarantee must
//! hold for *arbitrary* finite inputs under *arbitrary* positive bounds and
//! any configuration, and non-finite values must survive bit-exactly.

use dsz_sz::{decompress, max_abs_error, ErrorBound, PredictorMode, SzConfig};
use proptest::prelude::*;

fn finite_f32() -> impl Strategy<Value = f32> {
    // Mix of weight-scale values and extreme magnitudes.
    prop_oneof![
        4 => -0.5f32..0.5f32,
        1 => -1e6f32..1e6f32,
        1 => -1e-6f32..1e-6f32,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn bound_holds_for_arbitrary_data(
        data in proptest::collection::vec(finite_f32(), 0..3000),
        eb_exp in -5i32..0,
    ) {
        let eb = 10f64.powi(eb_exp);
        let blob = SzConfig::default().compress(&data, ErrorBound::Abs(eb)).unwrap();
        let back = decompress(&blob).unwrap();
        prop_assert_eq!(back.len(), data.len());
        let err = max_abs_error(&data, &back);
        prop_assert!(err <= eb * (1.0 + 1e-9), "err {} > eb {}", err, eb);
    }

    #[test]
    fn bound_holds_for_every_predictor(
        data in proptest::collection::vec(-0.4f32..0.4f32, 1..1500),
        mode_idx in 0usize..3,
    ) {
        let mode = [PredictorMode::Adaptive, PredictorMode::LorenzoOnly, PredictorMode::RegressionOnly][mode_idx];
        let cfg = SzConfig { predictor: mode, ..SzConfig::default() };
        let blob = cfg.compress(&data, ErrorBound::Abs(1e-3)).unwrap();
        let back = decompress(&blob).unwrap();
        prop_assert!(max_abs_error(&data, &back) <= 1e-3 * (1.0 + 1e-9));
    }

    #[test]
    fn small_radius_forces_escapes_but_keeps_bound(
        data in proptest::collection::vec(-10.0f32..10.0f32, 1..800),
    ) {
        // Radius 4 means almost everything escapes; the bound must survive.
        let cfg = SzConfig { radius: 4, ..SzConfig::default() };
        let (blob, stats) = cfg.compress_with_stats(&data, ErrorBound::Abs(1e-4)).unwrap();
        let back = decompress(&blob).unwrap();
        prop_assert!(max_abs_error(&data, &back) <= 1e-4 * (1.0 + 1e-9));
        prop_assert_eq!(stats.n, data.len());
    }

    #[test]
    fn rel_mode_scales_with_range(
        data in proptest::collection::vec(-1.0f32..1.0f32, 2..1000),
        scale in 1f32..1000.0,
    ) {
        let scaled: Vec<f32> = data.iter().map(|v| v * scale).collect();
        let blob = SzConfig::default().compress(&scaled, ErrorBound::Rel(1e-3)).unwrap();
        let back = decompress(&blob).unwrap();
        let range = dsz_sz::value_range(&scaled);
        prop_assert!(max_abs_error(&scaled, &back) <= 1e-3 * range.max(f64::MIN_POSITIVE) * (1.0 + 1e-9));
    }

    #[test]
    fn non_finite_values_bit_exact(
        mut data in proptest::collection::vec(-0.3f32..0.3f32, 1..500),
        idx in proptest::collection::vec(0usize..500, 0..8),
        which in 0u8..3,
    ) {
        let special = [f32::NAN, f32::INFINITY, f32::NEG_INFINITY][which as usize];
        for &i in &idx {
            if i < data.len() {
                data[i] = special;
            }
        }
        let blob = SzConfig::default().compress(&data, ErrorBound::Abs(1e-3)).unwrap();
        let back = decompress(&blob).unwrap();
        prop_assert!(max_abs_error(&data, &back) <= 1e-3 * (1.0 + 1e-9));
    }

    #[test]
    fn decoder_never_panics_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = decompress(&data);
        let _ = dsz_sz::info(&data);
    }
}
