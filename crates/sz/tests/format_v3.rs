//! Tests pinning the v3/v4 shared-Huffman-table stream formats:
//! golden-bytes v2 and v3 compatibility, proptest roundtrips across
//! layer sizes × worker counts × error bounds × formats, byte
//! determinism, adaptive chunk sizing, the shared-table size win over
//! v2, the v4 backend-compressed table win over v3, and cross-format
//! decode equality.

use dsz_sz::{
    adaptive_chunk_elems, decompress, info, max_abs_error, EntropyStage, ErrorBound, SzConfig,
    SzFormat,
};
use dsz_tensor::parallel::with_workers;
use proptest::prelude::*;

fn weights(n: usize, seed: u64, scale: f32) -> Vec<f32> {
    let mut s = seed;
    let mut next = || {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((s >> 11) as f64 / (1u64 << 53) as f64) as f32
    };
    (0..n)
        .map(|_| (next() + next() + next() + next() - 2.0) * scale)
        .collect()
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// A fixed v2 container captured from the v2 encoder (300 lcg-seed-42
/// weights, chunk_elems = 128 → 3 chunks, eb = 1e-2, default predictor):
/// the checked-in bytes must decode identically forever, and a
/// `SzFormat::V2` re-encode of the same input must reproduce them
/// byte-for-byte, so *any* drift in the v2 wire layout fails here even if
/// encoder and decoder drift together.
#[test]
fn v2_golden_stream_roundtrips() {
    const GOLDEN_V2: [u8; 322] = [
        0x53, 0x5a, 0x31, 0x44, 0x02, 0xac, 0x02, 0x7b, 0x14, 0xae, 0x47, 0xe1, 0x7a, 0x84, 0x3f,
        0x00, 0x80, 0x01, 0x80, 0x80, 0x02, 0x80, 0x01, 0x03, 0xff, 0x72, 0x03, 0x01, 0x01, 0x00,
        0x00, 0x00, 0x80, 0x01, 0x13, 0xf8, 0xff, 0x01, 0x06, 0x01, 0x07, 0x01, 0x05, 0x01, 0x05,
        0x01, 0x04, 0x01, 0x04, 0x01, 0x04, 0x01, 0x03, 0x01, 0x03, 0x01, 0x03, 0x01, 0x04, 0x01,
        0x04, 0x01, 0x04, 0x01, 0x04, 0x01, 0x04, 0x02, 0x06, 0x01, 0x07, 0x01, 0x07, 0x01, 0x07,
        0x3f, 0xb4, 0x5e, 0xa0, 0xda, 0x6b, 0x0e, 0x94, 0xdd, 0x88, 0xd2, 0xe4, 0xb3, 0x64, 0xe5,
        0x5c, 0xa9, 0xce, 0xac, 0x63, 0x83, 0x5c, 0x08, 0x4d, 0xf0, 0x45, 0x28, 0xb0, 0x35, 0x3e,
        0x36, 0x57, 0x5c, 0x43, 0xfb, 0x17, 0x49, 0xc7, 0xdf, 0x54, 0x54, 0x87, 0xbd, 0xe8, 0xcf,
        0xa4, 0x32, 0x3a, 0xaf, 0x7e, 0x87, 0xd3, 0xf1, 0xcc, 0x7a, 0x4d, 0x50, 0xac, 0x39, 0x28,
        0xad, 0xa7, 0xfa, 0x00, 0x00, 0xff, 0x74, 0x03, 0x01, 0x01, 0x00, 0x00, 0x00, 0x80, 0x01,
        0x14, 0xf6, 0xff, 0x01, 0x07, 0x01, 0x07, 0x01, 0x07, 0x01, 0x06, 0x01, 0x05, 0x01, 0x07,
        0x01, 0x05, 0x01, 0x04, 0x01, 0x04, 0x01, 0x04, 0x01, 0x04, 0x01, 0x03, 0x01, 0x03, 0x01,
        0x03, 0x01, 0x04, 0x01, 0x03, 0x01, 0x05, 0x01, 0x05, 0x02, 0x07, 0x02, 0x07, 0x3f, 0x13,
        0xa1, 0xf6, 0xac, 0x71, 0x67, 0x69, 0x36, 0xfc, 0xbd, 0xe8, 0x12, 0xaa, 0x2f, 0x98, 0x3d,
        0x40, 0x92, 0xcf, 0xb4, 0x7b, 0x52, 0x9a, 0x87, 0x25, 0xb6, 0x90, 0x3e, 0xbb, 0x18, 0x9e,
        0x52, 0x10, 0x7b, 0xba, 0x70, 0xc3, 0x45, 0xa6, 0xe0, 0xd8, 0xce, 0xbc, 0xd2, 0xeb, 0xff,
        0xb6, 0x1c, 0x5e, 0xbf, 0xcf, 0x69, 0xaa, 0x38, 0x25, 0x74, 0x05, 0x2e, 0x33, 0x3a, 0xef,
        0x59, 0x07, 0x00, 0xff, 0x3e, 0x03, 0x01, 0x01, 0x00, 0x00, 0x00, 0x2c, 0x0f, 0xf9, 0xff,
        0x01, 0x05, 0x01, 0x05, 0x01, 0x05, 0x01, 0x05, 0x01, 0x04, 0x01, 0x05, 0x01, 0x03, 0x01,
        0x03, 0x01, 0x03, 0x01, 0x04, 0x01, 0x04, 0x01, 0x04, 0x01, 0x04, 0x01, 0x03, 0x03, 0x05,
        0x14, 0x61, 0xcc, 0xb2, 0xc4, 0x8e, 0x92, 0x8c, 0xd3, 0x48, 0x49, 0x6f, 0x98, 0x30, 0x79,
        0xdb, 0xfb, 0x93, 0x87, 0xb0, 0x0a, 0x00,
    ];
    let data = weights(300, 42, 0.1);
    let cfg = SzConfig {
        chunk_elems: 128,
        format: SzFormat::V2,
        ..SzConfig::default()
    };
    let encoded = cfg.compress(&data, ErrorBound::Abs(1e-2)).unwrap();
    assert_eq!(
        encoded.as_slice(),
        &GOLDEN_V2[..],
        "v2 encoder output drifted"
    );

    // …and the captured bytes must decode to the captured reconstruction
    // (FNV-1a over the decoded bit patterns, captured with the bytes).
    let back = decompress(&GOLDEN_V2).unwrap();
    assert_eq!(back.len(), 300);
    assert!(max_abs_error(&data, &back) <= 1e-2 * (1.0 + 1e-9));
    let mut h = 0xcbf29ce484222325u64;
    for v in &back {
        h ^= u64::from(v.to_bits());
        h = h.wrapping_mul(0x100000001b3);
    }
    assert_eq!(h, 0x318430bb03f22fd4, "v2 decode drifted");
    let i = info(&GOLDEN_V2).unwrap();
    assert_eq!(i.version, 2);
    assert_eq!(i.chunks, 3);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random layer sizes (empty, singleton, sub-chunk, straddling chunk
    /// boundaries) × worker counts × error bounds × shared-table formats:
    /// v3 and v4 must roundtrip within the bound and produce identical
    /// bytes at every worker count.
    #[test]
    fn v3_roundtrip_sizes_workers_bounds(
        size_pick in prop_oneof![
            Just(0usize),
            Just(1usize),
            2usize..700,          // far below any chunk size
            4000usize..6000,
            Just(4096usize),      // exactly on a 4Ki chunk boundary
            Just(4097usize),
            Just(8192usize),
        ],
        chunk_idx in 0usize..3,
        workers in 1usize..5,
        eb_idx in 0usize..3,
        fmt_idx in 0usize..2,
    ) {
        // 0 = adaptive sizing; the explicit sizes force multi-chunk layers.
        let chunk_elems = [0usize, 512, 4096][chunk_idx];
        let eb = [1e-2f64, 1e-3, 1e-4][eb_idx];
        let format = [SzFormat::V3, SzFormat::V4][fmt_idx];
        let data = weights(size_pick, size_pick as u64 + 7, 0.1);
        let cfg = SzConfig { chunk_elems, format, ..SzConfig::default() };

        let reference = with_workers(1, || cfg.compress(&data, ErrorBound::Abs(eb)).unwrap());
        let (blob, back) = with_workers(workers, || {
            let blob = cfg.compress(&data, ErrorBound::Abs(eb)).unwrap();
            let back = decompress(&blob).unwrap();
            (blob, back)
        });
        prop_assert_eq!(&blob, &reference, "encode bytes differ at {} workers", workers);
        prop_assert_eq!(back.len(), data.len());
        prop_assert!(max_abs_error(&data, &back) <= eb * (1.0 + 1e-9));

        let i = info(&blob).unwrap();
        prop_assert_eq!(i.version, [3u8, 4][fmt_idx]);
        prop_assert_eq!(i.n, data.len());
        if !data.is_empty() {
            prop_assert_eq!(i.chunks, data.len().div_ceil(i.chunk_elems));
        }
    }

    /// Arbitrary bytes, and bytes doctored to carry the v3 or v4 version,
    /// must never panic the decoder.
    #[test]
    fn v3_decoder_never_panics_on_garbage(
        data in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let _ = decompress(&data);
        let _ = info(&data);
        for version in [3u8, 4] {
            let mut doctored = b"SZ1D".to_vec();
            doctored.push(version);
            doctored.extend_from_slice(&data);
            let _ = decompress(&doctored);
            let _ = info(&doctored);
        }
    }
}

/// Every truncation of a valid v3 or v4 stream errors cleanly (no panic,
/// no wrong-but-Ok decode).
#[test]
fn v3_truncations_error() {
    let data = weights(2000, 3, 0.1);
    for format in [SzFormat::V3, SzFormat::V4] {
        let cfg = SzConfig {
            chunk_elems: 512,
            format,
            ..SzConfig::default()
        };
        let blob = cfg.compress(&data, ErrorBound::Abs(1e-3)).unwrap();
        for len in 0..blob.len() {
            assert!(
                decompress(&blob[..len]).is_err(),
                "{format:?} truncation at {len} decoded"
            );
        }
        assert!(decompress(&blob).is_ok());
    }
}

/// All-constant input → every chunk quantizes to one symbol → a
/// degenerate single-entry shared Huffman table. Must roundtrip exactly
/// (constant data reconstructs within any bound) across chunk counts.
#[test]
fn v3_degenerate_single_symbol_table() {
    for n in [1usize, 4096, 20_000] {
        let data = vec![0.3125f32; n];
        let cfg = SzConfig {
            chunk_elems: 4096,
            ..SzConfig::default()
        };
        let blob = cfg.compress(&data, ErrorBound::Abs(1e-3)).unwrap();
        let back = decompress(&blob).unwrap();
        assert_eq!(back.len(), n);
        assert!(max_abs_error(&data, &back) <= 1e-3, "n={n}");
        // One shared 2-entry-max table plus ~1 bit/element, then the
        // backend squeezes the constant bit stream: far below raw size.
        assert!(
            blob.len() < n / 4 + 200,
            "constant n={n} gave {} bytes",
            blob.len()
        );
    }
}

/// The ROADMAP case the shared table exists for: a small fc layer split
/// into chunks pays one code book per chunk in v2; v3 must be strictly
/// smaller on the same data and chunk geometry, and adaptive sizing must
/// collapse the layer to a single chunk without growing the stream.
#[test]
fn v3_smaller_than_v2_on_8ki_layer() {
    let n = 8192;
    let data = weights(n, 99, 0.1);
    let eb = ErrorBound::Abs(1e-3);
    let v2 = SzConfig {
        chunk_elems: 4096,
        format: SzFormat::V2,
        ..SzConfig::default()
    }
    .compress(&data, eb)
    .unwrap();
    let v3_fixed = SzConfig {
        chunk_elems: 4096,
        format: SzFormat::V3,
        ..SzConfig::default()
    }
    .compress(&data, eb)
    .unwrap();
    let v3_adaptive = SzConfig::default().compress(&data, eb).unwrap();
    assert!(
        v3_fixed.len() < v2.len(),
        "shared table must beat per-chunk tables: v3 {} vs v2 {}",
        v3_fixed.len(),
        v2.len()
    );
    assert!(
        v3_adaptive.len() <= v3_fixed.len(),
        "single-chunk adaptive layout must not exceed the 2-chunk one: {} vs {}",
        v3_adaptive.len(),
        v3_fixed.len()
    );
    let i = info(&v3_adaptive).unwrap();
    assert_eq!(
        i.chunks, 1,
        "an 8Ki layer must collapse to one adaptive chunk"
    );

    // Same chunk geometry ⇒ same quantization ⇒ bit-identical decode: the
    // 4Ki-chunk v2 and v3 streams agree with each other, and the
    // single-chunk adaptive v3 agrees with the single-unit v1 stream.
    let v1 = SzConfig {
        format: SzFormat::V1,
        ..SzConfig::default()
    }
    .compress(&data, eb)
    .unwrap();
    assert_eq!(
        bits(&decompress(&v2).unwrap()),
        bits(&decompress(&v3_fixed).unwrap())
    );
    assert_eq!(
        bits(&decompress(&v1).unwrap()),
        bits(&decompress(&v3_adaptive).unwrap())
    );
}

/// Acceptance sweep: decode output is bit-identical across formats
/// v1/v2/v3 and across worker counts 1/2/4/8, on a layer large enough for
/// real multi-chunk layouts. Chunk boundaries reset predictor state, so
/// bit-identity across *formats* holds exactly when the chunk geometry
/// matches: v2 and v3 at the same `chunk_elems` share quantization, and a
/// v1 stream matches any single-chunk layout.
#[test]
fn decode_bit_identical_across_formats_and_workers() {
    let data = weights(150_000, 11, 0.08);
    let eb = ErrorBound::Abs(1e-3);
    let n = data.len();
    let v1 = SzConfig {
        format: SzFormat::V1,
        ..SzConfig::default()
    }
    .compress(&data, eb)
    .unwrap();
    // Single-chunk v2/v3 (chunk_elems ≥ n) quantize exactly like v1.
    let v2_one = SzConfig {
        format: SzFormat::V2,
        chunk_elems: n,
        ..SzConfig::default()
    }
    .compress(&data, eb)
    .unwrap();
    let v3_one = SzConfig {
        format: SzFormat::V3,
        chunk_elems: n,
        ..SzConfig::default()
    }
    .compress(&data, eb)
    .unwrap();
    // Multi-chunk v2/v3 with matching geometry quantize exactly alike.
    let v2_many = SzConfig {
        format: SzFormat::V2,
        chunk_elems: 1 << 14,
        ..SzConfig::default()
    }
    .compress(&data, eb)
    .unwrap();
    let v3_many = SzConfig {
        format: SzFormat::V3,
        chunk_elems: 1 << 14,
        ..SzConfig::default()
    }
    .compress(&data, eb)
    .unwrap();
    let v4_one = SzConfig {
        format: SzFormat::V4,
        chunk_elems: n,
        ..SzConfig::default()
    }
    .compress(&data, eb)
    .unwrap();
    let v4_many = SzConfig {
        format: SzFormat::V4,
        chunk_elems: 1 << 14,
        ..SzConfig::default()
    }
    .compress(&data, eb)
    .unwrap();

    let reference_one = with_workers(1, || decompress(&v1).unwrap());
    let reference_many = with_workers(1, || decompress(&v3_many).unwrap());
    assert!(max_abs_error(&data, &reference_one) <= 1e-3 * (1.0 + 1e-9));
    assert!(max_abs_error(&data, &reference_many) <= 1e-3 * (1.0 + 1e-9));

    let groups: [(&[u8], &[f32]); 7] = [
        (&v1, &reference_one),
        (&v2_one, &reference_one),
        (&v3_one, &reference_one),
        (&v4_one, &reference_one),
        (&v2_many, &reference_many),
        (&v3_many, &reference_many),
        (&v4_many, &reference_many),
    ];
    for (gi, (blob, want)) in groups.iter().enumerate() {
        for workers in [1usize, 2, 4, 8] {
            let got = with_workers(workers, || decompress(blob).unwrap());
            assert_eq!(
                bits(&got),
                bits(want),
                "stream {gi} decode differs at {workers} workers"
            );
        }
    }
}

/// v3 containers are byte-deterministic across worker counts even for
/// layers big enough that the adaptive size formula is in its
/// size-proportional regime (layout uses the process budget, not the
/// execution pinning).
#[test]
fn v3_adaptive_bytes_deterministic_across_workers() {
    let data = weights(400_000, 5, 0.1);
    let cfg = SzConfig::default();
    let reference = with_workers(1, || cfg.compress(&data, ErrorBound::Abs(1e-3)).unwrap());
    for workers in [2usize, 3, 4, 8] {
        let blob = with_workers(workers, || {
            cfg.compress(&data, ErrorBound::Abs(1e-3)).unwrap()
        });
        assert_eq!(blob, reference, "encode bytes differ at {workers} workers");
    }
    let i = info(&reference).unwrap();
    assert_eq!(i.version, 4);
    assert_eq!(i.chunks, 400_000usize.div_ceil(i.chunk_elems));
}

/// The adaptive formula itself: floor for small layers, ceiling for huge
/// ones, ~4 chunks per worker in between.
#[test]
fn adaptive_chunk_formula() {
    assert_eq!(adaptive_chunk_elems(0, 4), 1 << 14);
    assert_eq!(adaptive_chunk_elems(8192, 1), 1 << 14);
    assert_eq!(adaptive_chunk_elems(1 << 16, 1), 1 << 14);
    assert_eq!(adaptive_chunk_elems(1 << 20, 4), 1 << 16);
    assert_eq!(adaptive_chunk_elems(usize::MAX / 2, 1), 1 << 18);
    // Worker count 0 is treated as 1 rather than dividing by zero.
    assert_eq!(
        adaptive_chunk_elems(1 << 20, 0),
        adaptive_chunk_elems(1 << 20, 1)
    );
}

/// The raw entropy stage (ablation path) works through the v3 layout too:
/// entropy id in the layer header, bare varint codes per chunk.
#[test]
fn v3_raw_entropy_roundtrips() {
    let data = weights(10_000, 21, 0.1);
    let cfg = SzConfig {
        entropy: EntropyStage::Raw,
        chunk_elems: 2048,
        ..SzConfig::default()
    };
    let blob = cfg.compress(&data, ErrorBound::Abs(1e-3)).unwrap();
    assert_eq!(info(&blob).unwrap().version, 4);
    let back = with_workers(4, || decompress(&blob).unwrap());
    assert!(max_abs_error(&data, &back) <= 1e-3 * (1.0 + 1e-9));
    // And the Huffman default is smaller than raw codes on the same data.
    let huff = SzConfig {
        chunk_elems: 2048,
        ..SzConfig::default()
    }
    .compress(&data, ErrorBound::Abs(1e-3))
    .unwrap();
    assert!(huff.len() < blob.len());
}

/// Every predictor mode roundtrips through the shared-table layout.
#[test]
fn all_predictors_roundtrip_in_v3() {
    use dsz_sz::PredictorMode;
    let data = weights(20_000, 17, 0.08);
    for mode in [
        PredictorMode::Adaptive,
        PredictorMode::LorenzoOnly,
        PredictorMode::RegressionOnly,
    ] {
        let cfg = SzConfig {
            predictor: mode,
            chunk_elems: 2048,
            ..SzConfig::default()
        };
        let blob = cfg.compress(&data, ErrorBound::Abs(1e-3)).unwrap();
        let back = with_workers(4, || decompress(&blob).unwrap());
        assert!(
            max_abs_error(&data, &back) <= 1e-3 * (1.0 + 1e-9),
            "{mode:?}"
        );
    }
}

/// A fixed v3 stream captured from the v3 encoder before v4 became the
/// default (300 lcg-seed-42 weights, chunk_elems = 128 → 3 chunks,
/// eb = 1e-2): the checked-in bytes must decode identically forever, and
/// a `SzFormat::V3` re-encode of the same input must reproduce them
/// byte-for-byte, so any drift in the v3 wire layout fails here even if
/// encoder and decoder drift together.
#[test]
fn v3_golden_stream_roundtrips() {
    const GOLDEN_V3: [u8; 248] = [
        0x53, 0x5a, 0x31, 0x44, 0x03, 0xac, 0x02, 0x7b, 0x14, 0xae, 0x47, 0xe1, 0x7a, 0x84, 0x3f,
        0x00, 0x80, 0x01, 0x80, 0x80, 0x02, 0x80, 0x01, 0x03, 0x00, 0x16, 0xf6, 0xff, 0x01, 0x08,
        0x01, 0x08, 0x01, 0x06, 0x01, 0x06, 0x01, 0x05, 0x01, 0x06, 0x01, 0x05, 0x01, 0x04, 0x01,
        0x04, 0x01, 0x03, 0x01, 0x03, 0x01, 0x03, 0x01, 0x04, 0x01, 0x04, 0x01, 0x04, 0x01, 0x04,
        0x01, 0x04, 0x01, 0x05, 0x01, 0x07, 0x01, 0x06, 0x01, 0x07, 0x01, 0x07, 0xff, 0x47, 0x03,
        0x01, 0x01, 0x00, 0x00, 0x40, 0xdc, 0x35, 0x40, 0x96, 0x65, 0x2f, 0x28, 0xaa, 0xe0, 0xa9,
        0x8e, 0x6b, 0xc8, 0x8c, 0x7e, 0xa4, 0x5c, 0x3d, 0x86, 0x71, 0x72, 0x20, 0x14, 0xc1, 0x0f,
        0x5c, 0x8e, 0xc9, 0xb6, 0xde, 0xfd, 0x88, 0xb3, 0x51, 0xf6, 0x22, 0x68, 0xf8, 0x6d, 0x25,
        0x55, 0xbe, 0x3f, 0xa8, 0xbb, 0x43, 0xe1, 0x15, 0x8f, 0xbe, 0x8b, 0x5d, 0x7e, 0xf5, 0x58,
        0xb6, 0x53, 0xcc, 0x5e, 0x48, 0x8d, 0x85, 0x6a, 0x01, 0x00, 0xff, 0x47, 0x03, 0x01, 0x01,
        0x00, 0x00, 0x40, 0x65, 0x96, 0xec, 0x5a, 0xd5, 0x74, 0x64, 0x6d, 0xf5, 0x73, 0x44, 0xa4,
        0xc0, 0xa3, 0x70, 0x96, 0xe4, 0x11, 0x77, 0xb1, 0x59, 0x9e, 0x59, 0x77, 0x20, 0x83, 0x29,
        0xef, 0xd9, 0x08, 0xeb, 0x42, 0x5a, 0x68, 0x17, 0xa1, 0x63, 0x8d, 0x08, 0x4f, 0xb5, 0xed,
        0x76, 0x3f, 0x99, 0x7f, 0xbf, 0xff, 0xce, 0xb6, 0x5e, 0xef, 0x35, 0x8c, 0x44, 0x14, 0x52,
        0x84, 0xe9, 0x84, 0x1b, 0xfd, 0xcc, 0x1a, 0x00, 0xff, 0x1c, 0x03, 0x01, 0x01, 0x00, 0x00,
        0x15, 0x36, 0xe8, 0x7b, 0x24, 0x96, 0xa5, 0x34, 0x78, 0x0a, 0x21, 0xc9, 0x9b, 0x81, 0x21,
        0x77, 0xcd, 0x7a, 0xc9, 0x87, 0x18, 0x25, 0x00,
    ];
    let data = weights(300, 42, 0.1);
    let cfg = SzConfig {
        chunk_elems: 128,
        format: SzFormat::V3,
        ..SzConfig::default()
    };
    let encoded = cfg.compress(&data, ErrorBound::Abs(1e-2)).unwrap();
    assert_eq!(
        encoded.as_slice(),
        &GOLDEN_V3[..],
        "v3 encoder output drifted"
    );

    let back = decompress(&GOLDEN_V3).unwrap();
    assert_eq!(back.len(), 300);
    assert!(max_abs_error(&data, &back) <= 1e-2 * (1.0 + 1e-9));
    let mut h = 0xcbf29ce484222325u64;
    for v in &back {
        h ^= u64::from(v.to_bits());
        h = h.wrapping_mul(0x100000001b3);
    }
    assert_eq!(h, 0x318430bb03f22fd4, "v3 decode drifted");
    let i = info(&GOLDEN_V3).unwrap();
    assert_eq!(i.version, 3);
    assert_eq!(i.chunks, 3);
}

/// The point of v4 (ROADMAP "backend-compress the v3 shared table"): on a
/// wide-alphabet table — a tight bound over noisy data spreads the
/// quantization codes across thousands of symbols — running the code book
/// through `best_fit` must make the stream strictly smaller than v3,
/// while decoding bit-identically.
#[test]
fn v4_backed_table_beats_v3_on_wide_alphabets() {
    let data = weights(60_000, 13, 0.4);
    let eb = ErrorBound::Abs(1e-6);
    let mk = |format| SzConfig {
        chunk_elems: 1 << 14,
        format,
        ..SzConfig::default()
    };
    let v3 = mk(SzFormat::V3).compress(&data, eb).unwrap();
    let v4 = mk(SzFormat::V4).compress(&data, eb).unwrap();
    assert!(
        v4.len() < v3.len(),
        "backed table must win on a wide alphabet: v4 {} vs v3 {}",
        v4.len(),
        v3.len()
    );
    assert_eq!(
        bits(&decompress(&v3).unwrap()),
        bits(&decompress(&v4).unwrap()),
        "v3 and v4 must reconstruct identically at the same geometry"
    );
}

/// `backend: None` must disable the table competition too: the v4
/// stream of a backend-free config contains no backend id anywhere —
/// every chunk record *and* the table flag say "raw" — and still
/// roundtrips.
#[test]
fn v4_backend_none_keeps_table_raw() {
    // Wide alphabet (tight bound over noise): with the backend enabled
    // this table compresses (see the test above), so a raw table here
    // proves the knob — not the size rule — kept it raw.
    let data = weights(60_000, 13, 0.4);
    let cfg = SzConfig {
        chunk_elems: 1 << 14,
        backend: None,
        ..SzConfig::default()
    };
    let blob = cfg.compress(&data, ErrorBound::Abs(1e-6)).unwrap();
    let i = info(&blob).unwrap();
    assert_eq!(i.version, 4);
    assert_eq!(i.backend, None, "chunk records must be raw");
    let back = decompress(&blob).unwrap();
    assert!(max_abs_error(&data, &back) <= 1e-6 * (1.0 + 1e-9));
    // Same stream with the backend enabled is strictly smaller (both the
    // table and the chunk payloads compress on this data).
    let backed = SzConfig {
        chunk_elems: 1 << 14,
        ..SzConfig::default()
    }
    .compress(&data, ErrorBound::Abs(1e-6))
    .unwrap();
    assert!(backed.len() < blob.len());
    assert_eq!(bits(&back), bits(&decompress(&backed).unwrap()));
}

/// Small tables must stay raw behind the 0xff flag: on an easy layer the
/// v4 stream is exactly the v3 stream plus the one flag byte (and the
/// version byte differs), never larger.
#[test]
fn v4_small_table_stays_raw() {
    let data = weights(4096, 7, 0.05);
    let eb = ErrorBound::Abs(1e-2);
    let mk = |format| SzConfig {
        chunk_elems: 4096,
        format,
        ..SzConfig::default()
    };
    let v3 = mk(SzFormat::V3).compress(&data, eb).unwrap();
    let v4 = mk(SzFormat::V4).compress(&data, eb).unwrap();
    assert_eq!(
        v4.len(),
        v3.len() + 1,
        "a small raw table must cost exactly the flag byte"
    );
    // Beyond the version byte, the streams differ only by the inserted
    // 0xff flag: everything before it and everything after it agrees.
    assert_eq!(v3[..4], v4[..4]);
    assert_eq!((v3[4], v4[4]), (3, 4));
    let split = v3
        .iter()
        .zip(&v4)
        .skip(5)
        .position(|(a, b)| a != b)
        .map(|p| p + 5)
        .expect("streams must diverge at the flag byte");
    assert_eq!(v4[split], 0xff, "flag byte must mark a raw table");
    assert_eq!(v3[split..], v4[split + 1..], "raw table + records drifted");
    assert_eq!(
        bits(&decompress(&v3).unwrap()),
        bits(&decompress(&v4).unwrap())
    );
}

/// A crafted v4 stream whose backed table declares a multi-gigabyte
/// decompressed size must be rejected by the declared-length guard
/// before the backend's decode loop commits any memory to it.
#[test]
fn v4_backed_table_size_bomb_rejected() {
    use dsz_lossless::bits::write_varint;
    let mut bytes = Vec::new();
    bytes.extend_from_slice(b"SZ1D");
    bytes.push(4); // version
    write_varint(&mut bytes, 128); // n
    bytes.extend_from_slice(&1e-3f64.to_le_bytes());
    bytes.push(0); // predictor: adaptive
    write_varint(&mut bytes, 128); // block
    write_varint(&mut bytes, 1 << 15); // radius
    write_varint(&mut bytes, 128); // chunk_elems
    write_varint(&mut bytes, 1); // n_chunks
    bytes.push(0); // entropy: huffman
    bytes.push(1); // table flag: zstd-backed
                   // Backed blob: a zstd-like stream whose header claims 2^40 raw bytes.
    let mut bomb = Vec::new();
    write_varint(&mut bomb, 1u64 << 40);
    bomb.extend_from_slice(&[4, 0, 0, 0, 0]); // junk past the claim
    write_varint(&mut bytes, bomb.len() as u64);
    bytes.extend_from_slice(&bomb);
    let err = decompress(&bytes).unwrap_err();
    assert!(
        format!("{err}").contains("table too large"),
        "expected the size guard, got: {err}"
    );
}
