//! Network pruning — step 1 of the DeepSZ pipeline (§3.2).
//!
//! Implements the paper's *Magnitude* method: per-layer magnitude-threshold
//! pruning to a target kept-density, followed by masked SGD retraining in
//! which pruned weights are pinned at zero. The densities suggested by the
//! paper for each network are exposed via `dsz_nn::Arch::pruning_densities`.

use dsz_nn::{train, Dataset, Layer, Network, TrainConfig, WeightMask};

/// Magnitude at or above which a weight survives pruning to `density`.
///
/// `density` is the kept fraction in (0, 1]; e.g. 0.09 keeps 9% of weights
/// (the paper's AlexNet fc6/fc7 setting).
pub fn magnitude_threshold(weights: &[f32], density: f64) -> f32 {
    assert!((0.0..=1.0).contains(&density), "density must be in (0,1]");
    if weights.is_empty() || density >= 1.0 {
        return 0.0;
    }
    let keep = ((weights.len() as f64) * density).round() as usize;
    if keep == 0 {
        return f32::INFINITY;
    }
    let mut mags: Vec<f32> = weights.iter().map(|w| w.abs()).collect();
    let k = weights.len() - keep;
    // k-th smallest magnitude = threshold below which weights die.
    let k = k.min(mags.len() - 1);
    mags.select_nth_unstable_by(k, |a, b| a.partial_cmp(b).expect("finite weights"));
    mags[k]
}

/// Prunes `weights` in place to `density`, returning the keep mask.
pub fn prune_to_density(weights: &mut [f32], density: f64) -> WeightMask {
    let thr = magnitude_threshold(weights, density);
    weights
        .iter_mut()
        .map(|w| {
            let keep = w.abs() >= thr && *w != 0.0;
            if !keep {
                *w = 0.0;
            }
            keep
        })
        .collect()
}

/// Outcome of pruning one fc layer.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerPruneStats {
    /// Layer name.
    pub name: String,
    /// Weight count before pruning.
    pub total: usize,
    /// Surviving nonzero weights.
    pub kept: usize,
    /// Threshold used.
    pub threshold: f32,
}

impl LayerPruneStats {
    /// Achieved kept density.
    pub fn density(&self) -> f64 {
        self.kept as f64 / self.total.max(1) as f64
    }
}

/// Prunes every fc layer of `net` to the corresponding density in
/// `densities` (ordered like `net.fc_layers()`). Returns per-network-layer
/// masks (aligned with `net.layers`, `None` for non-dense layers) and
/// per-fc-layer stats.
pub fn prune_network(
    net: &mut Network,
    densities: &[f64],
) -> (Vec<Option<WeightMask>>, Vec<LayerPruneStats>) {
    let fcs = net.fc_layers();
    assert_eq!(
        fcs.len(),
        densities.len(),
        "one density per fc layer required"
    );
    let mut masks: Vec<Option<WeightMask>> = vec![None; net.layers.len()];
    let mut stats = Vec::with_capacity(fcs.len());
    for (fc, &density) in fcs.iter().zip(densities) {
        let dense = net.dense_mut(fc.layer_index);
        let thr = magnitude_threshold(&dense.w.data, density);
        let mask = prune_to_density(&mut dense.w.data, density);
        let kept = mask.iter().filter(|&&m| m).count();
        stats.push(LayerPruneStats {
            name: fc.name.clone(),
            total: dense.w.data.len(),
            kept,
            threshold: thr,
        });
        masks[fc.layer_index] = Some(mask);
    }
    (masks, stats)
}

/// Masked retraining: continues SGD with pruned weights pinned at zero
/// (the paper's "retrain with masks" step). Returns final mean loss.
pub fn retrain(
    net: &mut Network,
    data: &Dataset,
    cfg: &TrainConfig,
    masks: &[Option<WeightMask>],
) -> f64 {
    let stats = train(net, data, cfg, Some(masks));
    stats.epoch_loss.last().copied().unwrap_or(f64::NAN)
}

/// Asserts that every masked-off weight in `net` is exactly zero —
/// a pipeline invariant after pruning/retraining.
pub fn masks_hold(net: &Network, masks: &[Option<WeightMask>]) -> bool {
    net.layers
        .iter()
        .zip(masks)
        .all(|(layer, mask)| match (layer, mask) {
            (Layer::Dense(d), Some(m)) => {
                d.w.data.iter().zip(m).all(|(&w, &keep)| keep || w == 0.0)
            }
            _ => true,
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsz_nn::{zoo, Arch, Scale};
    use dsz_tensor::VolShape;

    fn lcg_weights(n: usize, seed: u64) -> Vec<f32> {
        let mut s = seed;
        (0..n)
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                (((s >> 33) as f32 / (1u64 << 31) as f32) - 0.5) * 0.2
            })
            .collect()
    }

    #[test]
    fn threshold_keeps_requested_fraction() {
        let w = lcg_weights(10_000, 3);
        for density in [0.05, 0.1, 0.25, 0.5, 0.9] {
            let thr = magnitude_threshold(&w, density);
            let kept = w.iter().filter(|v| v.abs() >= thr).count();
            let want = (10_000.0 * density) as usize;
            assert!(
                (kept as i64 - want as i64).unsigned_abs() <= 2,
                "density {density}: kept {kept} want {want}"
            );
        }
    }

    #[test]
    fn prune_zeroes_below_threshold() {
        let mut w = lcg_weights(5_000, 5);
        let orig = w.clone();
        let mask = prune_to_density(&mut w, 0.1);
        let kept = mask.iter().filter(|&&m| m).count();
        assert!((kept as f64 / 5_000.0 - 0.1).abs() < 0.01);
        for ((w, m), o) in w.iter().zip(&mask).zip(&orig) {
            if *m {
                assert_eq!(w, o);
            } else {
                assert_eq!(*w, 0.0);
            }
        }
        // Survivors all have magnitude ≥ every pruned weight's magnitude.
        let min_kept = w
            .iter()
            .filter(|v| **v != 0.0)
            .map(|v| v.abs())
            .fold(f32::MAX, f32::min);
        let max_pruned = orig
            .iter()
            .zip(&mask)
            .filter(|(_, &m)| !m)
            .map(|(v, _)| v.abs())
            .fold(0f32, f32::max);
        assert!(min_kept >= max_pruned);
    }

    #[test]
    fn degenerate_densities() {
        let mut w = lcg_weights(100, 7);
        let m = prune_to_density(&mut w.clone(), 1.0);
        assert!(m.iter().filter(|&&k| k).count() >= 99); // exact zeros may drop
        let m0 = prune_to_density(&mut w, 0.0);
        assert!(m0.iter().all(|&k| !k));
        assert!(w.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn prune_network_matches_paper_densities() {
        let mut net = zoo::build(Arch::LeNet300, Scale::Full, 11);
        let densities = Arch::LeNet300.pruning_densities();
        let (masks, stats) = prune_network(&mut net, densities);
        assert!(masks_hold(&net, &masks));
        for (s, &d) in stats.iter().zip(densities) {
            assert!(
                (s.density() - d).abs() < 0.01,
                "{}: {} vs {}",
                s.name,
                s.density(),
                d
            );
        }
    }

    #[test]
    fn masked_retraining_preserves_sparsity_and_recovers_accuracy() {
        use dsz_nn::{accuracy, DenseLayer};
        use dsz_tensor::Matrix;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        // Small 2-class problem with a 2-layer MLP.
        let mut rng = StdRng::seed_from_u64(17);
        let n = 600usize;
        let dim = 16usize;
        let mut x = Vec::with_capacity(n * dim);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let c = (i % 2) as u16;
            for d in 0..dim {
                let center = if c == 0 { 0.4 } else { -0.4 } * if d % 3 == 0 { 1.0 } else { 0.2 };
                x.push(center + rng.gen_range(-0.3..0.3));
            }
            labels.push(c);
        }
        let data = Dataset {
            shape: VolShape { c: dim, h: 1, w: 1 },
            x,
            labels,
        };

        let mut init = StdRng::seed_from_u64(23);
        let mut rand_w = |r: usize, c: usize| -> Matrix {
            Matrix::from_vec(
                r,
                c,
                (0..r * c).map(|_| init.gen_range(-0.4..0.4)).collect(),
            )
        };
        let mut net = Network {
            input_shape: VolShape { c: dim, h: 1, w: 1 },
            layers: vec![
                Layer::Dense(DenseLayer {
                    name: "ip1".into(),
                    w: rand_w(12, dim),
                    b: vec![0.0; 12],
                }),
                Layer::ReLU,
                Layer::Dense(DenseLayer {
                    name: "ip2".into(),
                    w: rand_w(2, 12),
                    b: vec![0.0; 2],
                }),
            ],
        };
        let cfg = TrainConfig {
            epochs: 6,
            ..Default::default()
        };
        train(&mut net, &data, &cfg, None);
        let (base, _) = accuracy(&net, &data, 64, 2);
        assert!(base > 0.9, "base accuracy {base}");

        let (masks, _) = prune_network(&mut net, &[0.3, 0.5]);
        let loss = retrain(&mut net, &data, &cfg, &masks);
        assert!(loss.is_finite());
        assert!(masks_hold(&net, &masks), "retraining violated masks");
        let (after, _) = accuracy(&net, &data, 64, 2);
        assert!(
            after > base - 0.05,
            "pruned+retrained accuracy {after} vs base {base}"
        );
    }
}
