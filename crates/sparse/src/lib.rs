//! Sparse weight-matrix formats used by the DeepSZ pipeline.
//!
//! After magnitude pruning an fc-layer becomes sparse. The paper (§3.2)
//! stores it in *two* 1-D arrays instead of classic three-array CSR:
//!
//! * a `data` array of f32 nonzero weights, and
//! * an `index` array of 8-bit gaps between consecutive nonzeros; when a gap
//!   is too large for 8 bits, a padding pair (index `255`, data `0.0`) is
//!   inserted, so every stored entry costs exactly 40 bits.
//!
//! The `data` array is what SZ compresses lossily; the `index` array is what
//! the lossless codec compresses. Classic [`Csr`] is provided for size
//! comparisons and for the dense reconstruction path.

// Reconstruction runs on container-supplied (untrusted) dims and streams:
// failures must surface as `SparseError`, never a panic
// (`docs/ROBUSTNESS.md`).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use dsz_tensor::parallel::{parallel_map, worker_count};
use std::fmt;

/// Gap value reserved as the "advance 255 positions, no weight" marker.
pub const PAD_MARKER: u8 = 255;
/// Bits per stored entry in the two-array format (8 index + 32 data).
pub const BITS_PER_ENTRY: usize = 40;

/// Entry count below which [`PairArray::to_dense`] stays serial: the gap
/// walk is one add + one store per entry, so even pooled dispatch (an
/// enqueue + condvar wakeup per call since PR 3) only pays for itself on
/// decode-path-sized layers.
const MIN_PARALLEL_ENTRIES: usize = 1 << 15;

/// Walks a gap-stream segment from running cursor `start`, invoking
/// `write(position, value)` for every real (non-padding) entry. Positions
/// are bounds-checked against `len` exactly like the serial
/// reconstruction always did; padding markers advance the cursor without
/// writing (even past `len`, which is legal for trailing pads).
#[inline]
fn walk_entries(
    index: &[u8],
    data: &[f32],
    start: i64,
    len: usize,
    mut write: impl FnMut(usize, f32),
) -> Result<(), SparseError> {
    let mut pos = start;
    for (&g, &v) in index.iter().zip(data) {
        if g == PAD_MARKER {
            pos += i64::from(PAD_MARKER);
            continue;
        }
        pos += i64::from(g);
        let p = usize::try_from(pos).map_err(|_| SparseError::PositionOverflow)?;
        if p >= len {
            return Err(SparseError::PositionOverflow);
        }
        write(p, v);
    }
    Ok(())
}

/// Shared pointer to the dense output buffer. Safety: the segmented walk
/// in [`PairArray::to_dense`] gives every segment a disjoint span of
/// positions, so each slot has at most one writer, and the scope join in
/// `parallel_map` publishes the writes before the buffer is read.
struct DenseOut(*mut f32);

unsafe impl Sync for DenseOut {}

/// Errors from sparse-format operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparseError {
    /// data/index arrays have different lengths.
    LengthMismatch,
    /// Decoded position falls outside `rows × cols`.
    PositionOverflow,
    /// `rows × cols` overflows `usize` — only reachable from corrupt
    /// container dims, never from a matrix that fit in memory.
    DimsOverflow,
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::LengthMismatch => write!(f, "data and index arrays differ in length"),
            SparseError::PositionOverflow => write!(f, "sparse entry beyond matrix bounds"),
            SparseError::DimsOverflow => write!(f, "rows x cols overflows"),
        }
    }
}

impl std::error::Error for SparseError {}

/// The paper's two-array sparse format (§3.2).
#[derive(Debug, Clone, PartialEq)]
pub struct PairArray {
    /// Matrix rows (output neurons).
    pub rows: usize,
    /// Matrix columns (input neurons).
    pub cols: usize,
    /// Stored weights, including `0.0` entries for padding markers.
    pub data: Vec<f32>,
    /// 8-bit gaps; [`PAD_MARKER`] advances the cursor without a weight.
    pub index: Vec<u8>,
}

impl PairArray {
    /// Encodes the nonzero entries of a dense row-major `rows × cols` matrix.
    pub fn from_dense(weights: &[f32], rows: usize, cols: usize) -> Self {
        assert_eq!(weights.len(), rows * cols, "dense shape mismatch");
        let mut data = Vec::new();
        let mut index = Vec::new();
        let mut prev: i64 = -1;
        for (p, &w) in weights.iter().enumerate() {
            if w == 0.0 {
                continue;
            }
            let mut gap = p as i64 - prev;
            while gap >= i64::from(PAD_MARKER) {
                index.push(PAD_MARKER);
                data.push(0.0);
                gap -= i64::from(PAD_MARKER);
            }
            index.push(gap as u8);
            data.push(w);
            prev = p as i64;
        }
        Self {
            rows,
            cols,
            data,
            index,
        }
    }

    /// Reconstructs the dense row-major matrix.
    ///
    /// The index array is a gap stream, so entry positions are a prefix
    /// sum; large layers reconstruct in parallel by splitting the entry
    /// list into segments, prefix-scanning each segment's total gap
    /// advance (cheap: one add per entry), and then filling every
    /// segment's disjoint span of the output concurrently. Small layers
    /// and single-worker budgets take the serial path; both paths produce
    /// identical output (and the same error on corrupt streams).
    pub fn to_dense(&self) -> Result<Vec<f32>, SparseError> {
        let mut out = Vec::new();
        self.to_dense_into(&mut out)?;
        Ok(out)
    }

    /// [`PairArray::to_dense`] into a caller-owned buffer: `out` is
    /// resized (reusing capacity) to `rows × cols`, zeroed, and filled.
    /// The scratch-arena entry point for loops that reconstruct many
    /// candidates — steady state allocates only when the buffer grows.
    /// Output bytes are identical to the allocating twin's.
    pub fn to_dense_into(&self, out: &mut Vec<f32>) -> Result<(), SparseError> {
        self.to_dense_with(&self.data, out)
    }

    /// Like [`PairArray::to_dense_into`] but reconstructing from a
    /// *replacement* data array (e.g. freshly decompressed values) without
    /// materializing a new `PairArray`. Equivalent to
    /// `self.with_data(data.to_vec())?.to_dense()` — values at padding
    /// positions are ignored either way, because the gap walk never writes
    /// a padding entry — minus both allocations.
    pub fn to_dense_with(&self, data: &[f32], out: &mut Vec<f32>) -> Result<(), SparseError> {
        if data.len() != self.index.len() {
            return Err(SparseError::LengthMismatch);
        }
        let elems = self
            .rows
            .checked_mul(self.cols)
            .ok_or(SparseError::DimsOverflow)?;
        out.clear();
        out.resize(elems, 0.0);
        let workers = worker_count();
        if workers <= 1 || self.index.len() < MIN_PARALLEL_ENTRIES {
            self.fill_dense_serial(data, out)?;
        } else {
            self.fill_dense_parallel(data, out, workers)?;
        }
        Ok(())
    }

    /// Serial gap walk (the reference implementation).
    fn fill_dense_serial(&self, data: &[f32], out: &mut [f32]) -> Result<(), SparseError> {
        let len = out.len();
        walk_entries(&self.index, data, -1, len, |p, v| out[p] = v)
    }

    /// Segmented parallel reconstruction; see [`PairArray::to_dense`].
    fn fill_dense_parallel(
        &self,
        data: &[f32],
        out: &mut [f32],
        workers: usize,
    ) -> Result<(), SparseError> {
        let entries = self.index.len();
        // Segment boundaries, adjusted so no segment starts with a gap-0
        // entry: a gap-0 entry re-writes the running cursor's position
        // (legal directly after a padding marker, and reachable after a
        // real entry in corrupt streams), and keeping it in its
        // predecessor's segment is what makes the written position ranges
        // strictly disjoint across segments.
        let per_seg = entries.div_ceil(workers * 4).max(MIN_PARALLEL_ENTRIES / 4);
        let mut bounds: Vec<usize> = vec![0];
        let mut s = per_seg;
        while s < entries {
            while s < entries && self.index[s] == 0 {
                s += 1;
            }
            if s >= entries {
                break;
            }
            bounds.push(s);
            s += per_seg;
        }
        bounds.push(entries);
        let segs: Vec<(usize, usize)> = bounds.windows(2).map(|w| (w[0], w[1])).collect();

        // Pass 1 (parallel): each segment's total position advance. A
        // padding marker advances exactly its own gap value (255), so the
        // advance is simply the sum of gap bytes.
        let advances: Vec<i64> = parallel_map(&segs, |&(lo, hi)| {
            self.index[lo..hi].iter().map(|&g| i64::from(g)).sum()
        });

        // Serial prefix over the few segment sums → the running cursor
        // each segment's walk starts from (what the serial walk would
        // hold when reaching that entry).
        let mut jobs: Vec<(usize, usize, i64)> = Vec::with_capacity(segs.len());
        let mut cursor: i64 = -1;
        for (&(lo, hi), &adv) in segs.iter().zip(&advances) {
            jobs.push((lo, hi, cursor));
            cursor += adv;
        }

        // Pass 2 (parallel): walk each segment, writing into its disjoint
        // position span of the output.
        let len = out.len();
        let shared = DenseOut(out.as_mut_ptr());
        let results: Vec<Result<(), SparseError>> = parallel_map(&jobs, |&(lo, hi, start)| {
            let shared = &shared;
            walk_entries(&self.index[lo..hi], &data[lo..hi], start, len, |p, v| {
                // SAFETY: positions are non-decreasing along the gap
                // stream and every segment starts with a nonzero advance
                // (boundary rule above), so this segment's writes all land
                // strictly after the previous segment's last write — each
                // slot has at most one writing thread, `p < len` is
                // checked by the walk, and the scope join inside
                // `parallel_map` publishes the writes.
                unsafe { *shared.0.add(p) = v };
            })
        });
        results.into_iter().collect()
    }

    /// Number of stored entries (real weights + padding pairs).
    pub fn stored_entries(&self) -> usize {
        self.data.len()
    }

    /// Number of real (non-padding) weights.
    pub fn nnz(&self) -> usize {
        self.index.iter().filter(|&&g| g != PAD_MARKER).count()
    }

    /// Storage footprint of this format: 40 bits per stored entry.
    pub fn size_bytes(&self) -> usize {
        self.stored_entries() * BITS_PER_ENTRY / 8
    }

    /// Size of the dense f32 matrix this came from.
    pub fn dense_bytes(&self) -> usize {
        self.rows * self.cols * 4
    }

    /// Replaces the data array (e.g. with SZ-decompressed values), keeping
    /// the index structure. Padding entries' values are irrelevant on decode
    /// but are normalized back to `0.0` for cleanliness.
    pub fn with_data(&self, mut new_data: Vec<f32>) -> Result<Self, SparseError> {
        if new_data.len() != self.index.len() {
            return Err(SparseError::LengthMismatch);
        }
        for (v, &g) in new_data.iter_mut().zip(&self.index) {
            if g == PAD_MARKER {
                *v = 0.0;
            }
        }
        Ok(Self {
            rows: self.rows,
            cols: self.cols,
            data: new_data,
            index: self.index.clone(),
        })
    }
}

/// Classic compressed-sparse-row with three arrays, for comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    /// Matrix rows.
    pub rows: usize,
    /// Matrix columns.
    pub cols: usize,
    /// Nonzero values, row-major order.
    pub values: Vec<f32>,
    /// Column index per value.
    pub col_idx: Vec<u32>,
    /// `row_ptr[r]..row_ptr[r+1]` spans row `r`'s values.
    pub row_ptr: Vec<u32>,
}

impl Csr {
    /// Builds CSR from a dense row-major matrix.
    pub fn from_dense(weights: &[f32], rows: usize, cols: usize) -> Self {
        assert_eq!(weights.len(), rows * cols, "dense shape mismatch");
        let mut values = Vec::new();
        let mut col_idx = Vec::new();
        let mut row_ptr = Vec::with_capacity(rows + 1);
        row_ptr.push(0u32);
        for r in 0..rows {
            for c in 0..cols {
                let w = weights[r * cols + c];
                if w != 0.0 {
                    values.push(w);
                    col_idx.push(c as u32);
                }
            }
            row_ptr.push(values.len() as u32);
        }
        Self {
            rows,
            cols,
            values,
            col_idx,
            row_ptr,
        }
    }

    /// Reconstructs the dense matrix.
    pub fn to_dense(&self) -> Vec<f32> {
        let mut out = vec![0f32; self.rows * self.cols];
        for r in 0..self.rows {
            let (lo, hi) = (self.row_ptr[r] as usize, self.row_ptr[r + 1] as usize);
            for k in lo..hi {
                out[r * self.cols + self.col_idx[k] as usize] = self.values[k];
            }
        }
        out
    }

    /// Number of nonzeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Storage footprint (4 B value + 4 B column + row pointers).
    pub fn size_bytes(&self) -> usize {
        self.values.len() * 4 + self.col_idx.len() * 4 + self.row_ptr.len() * 4
    }
}

/// Sparse × dense matrix-vector product `y = W·x` straight from the
/// two-array format — used by the decode-path benchmarks.
pub fn pair_matvec(w: &PairArray, x: &[f32], y: &mut [f32]) -> Result<(), SparseError> {
    assert_eq!(x.len(), w.cols, "input length mismatch");
    assert_eq!(y.len(), w.rows, "output length mismatch");
    y.fill(0.0);
    let mut pos: i64 = -1;
    for (&g, &v) in w.index.iter().zip(&w.data) {
        if g == PAD_MARKER {
            pos += i64::from(PAD_MARKER);
            continue;
        }
        pos += i64::from(g);
        let p = usize::try_from(pos).map_err(|_| SparseError::PositionOverflow)?;
        let (r, c) = (p / w.cols, p % w.cols);
        if r >= w.rows {
            return Err(SparseError::PositionOverflow);
        }
        y[r] += v * x[c];
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_sparse(rows: usize, cols: usize, density: f64, seed: u64) -> Vec<f32> {
        let mut s = seed;
        (0..rows * cols)
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                let u = (s >> 11) as f64 / (1u64 << 53) as f64;
                if u < density {
                    ((s >> 33) as f32 / (1u64 << 31) as f32) - 0.5
                } else {
                    0.0
                }
            })
            .collect()
    }

    #[test]
    fn pair_roundtrip_typical_density() {
        let dense = sample_sparse(64, 100, 0.1, 3);
        let pa = PairArray::from_dense(&dense, 64, 100);
        assert_eq!(pa.to_dense().unwrap(), dense);
        assert_eq!(pa.nnz(), dense.iter().filter(|&&w| w != 0.0).count());
    }

    #[test]
    fn pair_roundtrip_long_gaps_need_padding() {
        let mut dense = vec![0f32; 4000];
        dense[0] = 1.0;
        dense[300] = 2.0; // gap 300 > 255 → one padding pair
        dense[3999] = 3.0;
        let pa = PairArray::from_dense(&dense, 40, 100);
        assert!(pa.index.contains(&PAD_MARKER));
        assert!(pa.stored_entries() > pa.nnz());
        assert_eq!(pa.to_dense().unwrap(), dense);
    }

    #[test]
    fn pair_roundtrip_gap_boundaries() {
        // Exercise gaps of exactly 254, 255, 256, 510, 511.
        for gap in [254usize, 255, 256, 510, 511] {
            let mut dense = vec![0f32; gap + 2];
            dense[0] = 1.0;
            dense[gap + 1] = 2.0;
            let pa = PairArray::from_dense(&dense, 1, gap + 2);
            assert_eq!(pa.to_dense().unwrap(), dense, "gap {gap}");
        }
    }

    #[test]
    fn pair_first_element_and_leading_gap() {
        let mut dense = vec![0f32; 1000];
        dense[999] = 5.0; // all leading positions empty
        let pa = PairArray::from_dense(&dense, 10, 100);
        assert_eq!(pa.to_dense().unwrap(), dense);
        let mut dense2 = vec![0f32; 10];
        dense2[0] = 1.0;
        let pa2 = PairArray::from_dense(&dense2, 2, 5);
        assert_eq!(pa2.index[0], 1); // gap from virtual position −1
        assert_eq!(pa2.to_dense().unwrap(), dense2);
    }

    #[test]
    fn empty_matrix() {
        let dense = vec![0f32; 100];
        let pa = PairArray::from_dense(&dense, 10, 10);
        assert_eq!(pa.stored_entries(), 0);
        assert_eq!(pa.size_bytes(), 0);
        assert_eq!(pa.to_dense().unwrap(), dense);
    }

    #[test]
    fn fully_dense_matrix() {
        let dense: Vec<f32> = (1..=100).map(|i| i as f32).collect();
        let pa = PairArray::from_dense(&dense, 10, 10);
        assert_eq!(pa.nnz(), 100);
        assert_eq!(pa.stored_entries(), 100); // every gap is 1
        assert_eq!(pa.to_dense().unwrap(), dense);
    }

    #[test]
    fn forty_bits_per_entry_accounting() {
        let dense = sample_sparse(100, 100, 0.08, 7);
        let pa = PairArray::from_dense(&dense, 100, 100);
        assert_eq!(pa.size_bytes(), pa.stored_entries() * 5);
        // Pruned storage beats dense storage at 8% density.
        assert!(pa.size_bytes() < pa.dense_bytes() / 5);
    }

    #[test]
    fn with_data_preserves_structure() {
        let dense = sample_sparse(50, 80, 0.1, 11);
        let pa = PairArray::from_dense(&dense, 50, 80);
        let perturbed: Vec<f32> = pa.data.iter().map(|v| v + 0.001).collect();
        let pb = pa.with_data(perturbed).unwrap();
        let back = pb.to_dense().unwrap();
        for (i, (&a, &b)) in dense.iter().zip(&back).enumerate() {
            if a != 0.0 {
                assert!((a - b).abs() < 0.0011, "entry {i}");
            } else {
                assert_eq!(b, 0.0, "zero entry {i} must stay zero");
            }
        }
        assert!(pa.with_data(vec![0.0; pa.data.len() + 1]).is_err());
    }

    #[test]
    fn csr_roundtrip_and_sizes() {
        let dense = sample_sparse(64, 128, 0.09, 5);
        let csr = Csr::from_dense(&dense, 64, 128);
        assert_eq!(csr.to_dense(), dense);
        let pa = PairArray::from_dense(&dense, 64, 128);
        // Two-array format (5 B/entry) beats classic CSR (8 B/nnz + rows).
        assert!(pa.size_bytes() < csr.size_bytes());
    }

    #[test]
    fn pair_matvec_matches_dense() {
        let dense = sample_sparse(32, 48, 0.15, 13);
        let pa = PairArray::from_dense(&dense, 32, 48);
        let x: Vec<f32> = (0..48).map(|i| (i as f32 * 0.1).sin()).collect();
        let mut y = vec![0f32; 32];
        pair_matvec(&pa, &x, &mut y).unwrap();
        for r in 0..32 {
            let want: f32 = (0..48).map(|c| dense[r * 48 + c] * x[c]).sum();
            assert!((y[r] - want).abs() < 1e-4, "row {r}: {} vs {}", y[r], want);
        }
    }

    #[test]
    fn corrupt_pair_array_errors() {
        let pa = PairArray {
            rows: 2,
            cols: 2,
            data: vec![1.0, 2.0, 3.0],
            index: vec![1, 1, 3], // walks past 2×2
        };
        assert_eq!(pa.to_dense(), Err(SparseError::PositionOverflow));
        let bad = PairArray {
            rows: 2,
            cols: 2,
            data: vec![1.0],
            index: vec![],
        };
        assert_eq!(bad.to_dense(), Err(SparseError::LengthMismatch));
    }
}
