//! Tests for the segmented parallel `PairArray::to_dense` path: bit-exact
//! equivalence with the serial walk at every worker count, pathological
//! gap streams (all-padding, max gaps, gap-0 runs straddling segment
//! boundaries), and identical error behavior on corrupt streams.

use dsz_sparse::{PairArray, SparseError, PAD_MARKER};
use dsz_tensor::parallel::with_workers;

fn sample_sparse(rows: usize, cols: usize, density: f64, seed: u64) -> Vec<f32> {
    let mut s = seed;
    (0..rows * cols)
        .map(|_| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            let u = (s >> 11) as f64 / (1u64 << 53) as f64;
            if u < density {
                ((s >> 33) as f32 / (1u64 << 31) as f32) - 0.5
            } else {
                0.0
            }
        })
        .collect()
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Large enough to cross the parallel threshold: the parallel walk must
/// reproduce the serial walk bit-for-bit at every worker count.
#[test]
fn serial_and_parallel_reconstruction_agree() {
    for (rows, cols, density, seed) in [
        (400usize, 600usize, 0.2f64, 3u64),
        (150, 1000, 0.5, 7),
        (64, 4096, 0.9, 11),
    ] {
        let dense = sample_sparse(rows, cols, density, seed);
        let pa = PairArray::from_dense(&dense, rows, cols);
        assert!(
            pa.stored_entries() > 1 << 15,
            "case must exercise the parallel path"
        );
        let serial = with_workers(1, || pa.to_dense().unwrap());
        assert_eq!(bits(&serial), bits(&dense));
        for workers in [2usize, 3, 4, 8] {
            let parallel = with_workers(workers, || pa.to_dense().unwrap());
            assert_eq!(bits(&parallel), bits(&serial), "workers={workers}");
        }
    }
}

/// Pathological stream the ROADMAP calls out: every entry is the padding
/// marker (the all-max-gap stream). Decoding is a pure cursor walk with
/// zero writes and must stay linear in the entry count — far past any
/// matrix bound is fine because pads never write.
#[test]
fn all_padding_stream_decodes_to_zero() {
    let entries = 2_000_000;
    let pa = PairArray {
        rows: 4,
        cols: 4,
        data: vec![0.0; entries],
        index: vec![PAD_MARKER; entries],
    };
    for workers in [1usize, 4] {
        let out = with_workers(workers, || pa.to_dense().unwrap());
        assert_eq!(out, vec![0f32; 16], "workers={workers}");
    }
}

/// Max non-padding gaps: every real entry sits 254 positions after the
/// previous one, so nearly every position is untouched.
#[test]
fn max_gap_stream_roundtrips() {
    let entries = 40_000usize;
    let cols = 1000;
    let rows = (entries * 254).div_ceil(cols);
    let pa = PairArray {
        rows,
        cols,
        data: (0..entries).map(|i| (i % 97) as f32 + 1.0).collect(),
        index: vec![254u8; entries],
    };
    let serial = with_workers(1, || pa.to_dense().unwrap());
    let parallel = with_workers(8, || pa.to_dense().unwrap());
    assert_eq!(bits(&serial), bits(&parallel));
    assert_eq!(serial.iter().filter(|&&v| v != 0.0).count(), entries);
    assert_eq!(serial[253], 1.0); // first entry: cursor −1 + 254
}

/// Gap-0 entries directly after padding markers are produced by the real
/// encoder for gaps that are exact multiples of 255; a long run of
/// `[pad, 0]` pairs forces the segment-boundary adjustment (a segment
/// must never *start* at a gap-0 entry) on every split point.
#[test]
fn pad_then_zero_gap_runs_agree() {
    let pairs = 60_000usize;
    let mut index = Vec::with_capacity(pairs * 2);
    let mut data = Vec::with_capacity(pairs * 2);
    for i in 0..pairs {
        index.push(PAD_MARKER);
        data.push(0.0);
        index.push(0);
        data.push((i % 31) as f32 + 0.5);
    }
    let cols = 5000;
    let rows = (pairs * 255).div_ceil(cols) + 1;
    let pa = PairArray {
        rows,
        cols,
        data,
        index,
    };
    let serial = with_workers(1, || pa.to_dense().unwrap());
    for workers in [2usize, 4, 8] {
        let parallel = with_workers(workers, || pa.to_dense().unwrap());
        assert_eq!(bits(&parallel), bits(&serial), "workers={workers}");
    }
    // Entry k lands at position 255(k+1) − 1.
    assert_eq!(serial[254], 0.5);
    assert_eq!(serial[2 * 255 - 1], 1.5);
}

/// Encoder-produced streams with gaps that are exact multiples of 255
/// (pad + gap-0 pairs) must roundtrip through both paths.
#[test]
fn encoder_multiple_of_255_gaps_roundtrip() {
    let cols = 255 * 4;
    let rows = 200;
    let mut dense = vec![0f32; rows * cols];
    // One nonzero per row at column 0 ⇒ consecutive gaps of exactly
    // 255·4, each encoded as four pads then a gap-0 entry.
    for r in 0..rows {
        dense[r * cols] = r as f32 + 1.0;
    }
    let pa = PairArray::from_dense(&dense, rows, cols);
    assert!(pa.index.contains(&0), "test must cover gap-0 entries");
    for workers in [1usize, 4] {
        let out = with_workers(workers, || pa.to_dense().unwrap());
        assert_eq!(bits(&out), bits(&dense), "workers={workers}");
    }
}

/// A stream that walks past the matrix bound must error — not panic, not
/// write out of bounds — in both the serial and parallel paths.
#[test]
fn corrupt_overflow_errors_in_both_paths() {
    let entries = 100_000usize;
    let pa = PairArray {
        rows: 10,
        cols: 10,
        data: vec![1.0; entries],
        index: vec![3u8; entries], // walks far past 10×10
    };
    for workers in [1usize, 4] {
        let got = with_workers(workers, || pa.to_dense());
        assert_eq!(got, Err(SparseError::PositionOverflow), "workers={workers}");
    }
}
