//! Property-based tests for the sparse formats: the two-array encoding and
//! CSR must reconstruct arbitrary sparse matrices exactly, including
//! pathological gap structures.

use dsz_sparse::{pair_matvec, Csr, PairArray, PAD_MARKER};
use proptest::prelude::*;

/// Strategy: a sparse dense matrix with arbitrary density and values.
fn sparse_matrix() -> impl Strategy<Value = (usize, usize, Vec<f32>)> {
    (1usize..24, 1usize..400).prop_flat_map(|(rows, cols)| {
        let n = rows * cols;
        proptest::collection::vec(
            prop_oneof![
                6 => Just(0f32),
                1 => (-1f32..1f32).prop_filter("nonzero", |v| *v != 0.0),
            ],
            n..=n,
        )
        .prop_map(move |dense| (rows, cols, dense))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pair_array_roundtrips((rows, cols, dense) in sparse_matrix()) {
        let pa = PairArray::from_dense(&dense, rows, cols);
        prop_assert_eq!(pa.to_dense().unwrap(), dense.clone());
        // Size accounting invariants.
        prop_assert_eq!(pa.data.len(), pa.index.len());
        prop_assert!(pa.nnz() <= pa.stored_entries());
        prop_assert_eq!(pa.nnz(), dense.iter().filter(|&&w| w != 0.0).count());
    }

    #[test]
    fn to_dense_into_matches_allocating_twin((rows, cols, dense) in sparse_matrix()) {
        let pa = PairArray::from_dense(&dense, rows, cols);
        let want = pa.to_dense().unwrap();
        // A dirty, wrongly-sized scratch buffer must come out byte-equal.
        let mut out = vec![9.0f32; 3];
        pa.to_dense_into(&mut out).unwrap();
        prop_assert_eq!(
            out.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            want.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn to_dense_with_matches_with_data_then_to_dense(
        (rows, cols, dense) in sparse_matrix(),
        delta in -0.5f32..0.5,
    ) {
        let pa = PairArray::from_dense(&dense, rows, cols);
        // Replacement values, deliberately nonzero at padding slots too.
        let replacement: Vec<f32> = pa.data.iter().map(|v| v + delta).collect();
        let want = pa.with_data(replacement.clone()).unwrap().to_dense().unwrap();
        let mut out = Vec::new();
        pa.to_dense_with(&replacement, &mut out).unwrap();
        prop_assert_eq!(
            out.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            want.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        // Length mismatch errors exactly like the allocating path.
        let mut short = replacement;
        short.pop();
        if !short.is_empty() || !pa.index.is_empty() {
            prop_assert!(pa.to_dense_with(&short, &mut out).is_err());
        }
    }

    #[test]
    fn csr_roundtrips((rows, cols, dense) in sparse_matrix()) {
        let csr = Csr::from_dense(&dense, rows, cols);
        prop_assert_eq!(csr.to_dense(), dense.clone());
        prop_assert_eq!(csr.nnz(), dense.iter().filter(|&&w| w != 0.0).count());
    }

    #[test]
    fn padding_only_on_long_gaps((rows, cols, dense) in sparse_matrix()) {
        let pa = PairArray::from_dense(&dense, rows, cols);
        // Every padding marker advances exactly PAD_MARKER positions and
        // carries a zero weight.
        for (&g, &v) in pa.index.iter().zip(&pa.data) {
            if g == PAD_MARKER {
                prop_assert_eq!(v, 0.0);
            }
        }
    }

    #[test]
    fn matvec_matches_dense((rows, cols, dense) in sparse_matrix(),
                            seed in 0u64..1000) {
        let pa = PairArray::from_dense(&dense, rows, cols);
        let mut s = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        let x: Vec<f32> = (0..cols).map(|_| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((s >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        }).collect();
        let mut y = vec![0f32; rows];
        pair_matvec(&pa, &x, &mut y).unwrap();
        for r in 0..rows {
            let want: f32 = (0..cols).map(|c| dense[r * cols + c] * x[c]).sum();
            prop_assert!((y[r] - want).abs() <= 1e-3 * (1.0 + want.abs()),
                         "row {}: {} vs {}", r, y[r], want);
        }
    }

    #[test]
    fn lossy_data_replacement_preserves_structure((rows, cols, dense) in sparse_matrix(),
                                                  eps in 0f32..0.01) {
        let pa = PairArray::from_dense(&dense, rows, cols);
        let perturbed: Vec<f32> = pa.data.iter().map(|v| v + eps).collect();
        let pb = pa.with_data(perturbed).unwrap();
        let back = pb.to_dense().unwrap();
        for (&orig, &rec) in dense.iter().zip(&back) {
            if orig == 0.0 {
                prop_assert_eq!(rec, 0.0);
            } else {
                prop_assert!((orig - rec).abs() <= eps + 1e-6);
            }
        }
    }
}
