//! Bloomier filter: an approximate key → value map with one-sided error.
//!
//! Construction uses the standard 3-uniform-hypergraph XOR scheme: each key
//! hashes to three table slots; greedy peeling orders the keys so each can
//! claim a slot no later key touches; values are stored as the XOR of the
//! three slots. Queries therefore cost a constant number of hash
//! evaluations (3 location hashes + 1 checksum hash = the "four hash
//! functions" the paper attributes to Weightless). Keys never inserted
//! return an arbitrary value; a `check_bits`-wide keyed checksum filters
//! those with false-positive rate `2^-check_bits`.

/// A constructed Bloomier filter mapping `u64` keys to `value_bits`-wide
/// values.
#[derive(Debug, Clone)]
pub struct Bloomier {
    /// Table of XOR shares, one `u64` cell per slot (low bits used).
    pub table: Vec<u64>,
    /// Width of stored payload values in bits.
    pub value_bits: u8,
    /// Width of the keyed checksum in bits.
    pub check_bits: u8,
    /// Hash seed that produced an acyclic peeling.
    pub seed: u64,
}

#[inline]
fn mix(mut x: u64) -> u64 {
    // splitmix64 finalizer.
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58476d1ce4e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d049bb133111eb);
    x ^= x >> 31;
    x
}

#[inline]
fn slots(key: u64, seed: u64, m: usize) -> [usize; 3] {
    let h = mix(key ^ seed);
    let a = (h & 0xffff_ffff) as usize % m;
    let b = ((h >> 32) as usize) % m;
    let c = (mix(h) & 0xffff_ffff) as usize % m;
    // Distinct-ify deterministically so degree counting is sound.
    let b = if b == a { (b + 1) % m } else { b };
    let mut c2 = c;
    while c2 == a || c2 == b {
        c2 = (c2 + 1) % m;
    }
    [a, b, c2]
}

#[inline]
fn checksum(key: u64, seed: u64, bits: u8) -> u64 {
    if bits == 0 {
        0
    } else {
        mix(key.wrapping_mul(0x9e3779b97f4a7c15) ^ seed ^ 0xdead_beef) & ((1 << bits) - 1)
    }
}

/// Construction failure: peeling found no acyclic ordering after retries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BuildError;

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bloomier peeling failed after retries")
    }
}

impl std::error::Error for BuildError {}

impl Bloomier {
    /// Builds a filter over `(key, value)` pairs. `load` ≥ 1.23 gives a high
    /// peeling success probability; different seeds are retried on failure.
    pub fn build(
        pairs: &[(u64, u64)],
        value_bits: u8,
        check_bits: u8,
        load: f64,
    ) -> Result<Bloomier, BuildError> {
        assert!(value_bits + check_bits <= 56, "payload too wide");
        let n = pairs.len();
        let m = ((n as f64 * load).ceil() as usize).max(8);
        'seed: for attempt in 0..32u64 {
            let seed = mix(0xc0ffee ^ attempt.wrapping_mul(0x51ab_cdef));
            // Peeling via degree counts and XOR-aggregated incidence.
            let mut degree = vec![0u32; m];
            let mut agg = vec![0u64; m]; // XOR of incident key indices
            let all: Vec<[usize; 3]> = pairs.iter().map(|&(k, _)| slots(k, seed, m)).collect();
            for (ki, s) in all.iter().enumerate() {
                for &sl in s {
                    degree[sl] += 1;
                    agg[sl] ^= ki as u64;
                }
            }
            let mut stack: Vec<usize> = (0..m).filter(|&s| degree[s] == 1).collect();
            let mut order: Vec<(usize, usize)> = Vec::with_capacity(n); // (key idx, slot)
            let mut placed = vec![false; n];
            while let Some(sl) = stack.pop() {
                if degree[sl] != 1 {
                    continue;
                }
                let ki = agg[sl] as usize;
                if placed[ki] {
                    continue;
                }
                placed[ki] = true;
                order.push((ki, sl));
                for &s2 in &all[ki] {
                    degree[s2] -= 1;
                    agg[s2] ^= ki as u64;
                    if degree[s2] == 1 {
                        stack.push(s2);
                    }
                }
            }
            if order.len() != n {
                continue 'seed;
            }
            // Assign in reverse peel order so each key's claimed slot is
            // still free of later-assigned constraints.
            let mut table = vec![0u64; m];
            for &(ki, sl) in order.iter().rev() {
                let (key, value) = pairs[ki];
                let payload = (value << check_bits) | checksum(key, seed, check_bits);
                let s = all[ki];
                let mut acc = payload;
                for &s2 in &s {
                    if s2 != sl {
                        acc ^= table[s2];
                    }
                }
                table[sl] = acc;
            }
            return Ok(Bloomier {
                table,
                value_bits,
                check_bits,
                seed,
            });
        }
        Err(BuildError)
    }

    /// Looks up `key`. Returns `Some(value)` when the checksum matches —
    /// always true for inserted keys, true with probability `2^-check_bits`
    /// for foreign keys (the filter's one-sided error).
    #[inline]
    pub fn query(&self, key: u64) -> Option<u64> {
        let m = self.table.len();
        let s = slots(key, self.seed, m);
        let raw = self.table[s[0]] ^ self.table[s[1]] ^ self.table[s[2]];
        let mask = if self.value_bits + self.check_bits >= 64 {
            u64::MAX
        } else {
            (1u64 << (self.value_bits + self.check_bits)) - 1
        };
        let raw = raw & mask;
        let check = raw & ((1u64 << self.check_bits) - 1);
        if self.check_bits == 0 || check == checksum(key, self.seed, self.check_bits) {
            Some(raw >> self.check_bits)
        } else {
            None
        }
    }

    /// Storage cost in bits: slots × payload width.
    pub fn storage_bits(&self) -> usize {
        self.table.len() * usize::from(self.value_bits + self.check_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pairs(n: usize, bits: u8, seed: u64) -> Vec<(u64, u64)> {
        let mut s = seed;
        (0..n as u64)
            .map(|k| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                (k * 37 + 5, (s >> 33) & ((1 << bits) - 1))
            })
            .collect()
    }

    #[test]
    fn all_inserted_keys_return_their_values() {
        let p = pairs(10_000, 5, 3);
        let f = Bloomier::build(&p, 5, 8, 1.30).unwrap();
        for &(k, v) in &p {
            assert_eq!(f.query(k), Some(v), "key {k}");
        }
    }

    #[test]
    fn foreign_keys_mostly_rejected() {
        let p = pairs(5_000, 4, 7);
        let f = Bloomier::build(&p, 4, 8, 1.30).unwrap();
        let inserted: std::collections::HashSet<u64> = p.iter().map(|&(k, _)| k).collect();
        let mut fp = 0usize;
        let probes = 20_000usize;
        for i in 0..probes {
            let k = 1_000_000 + i as u64;
            if !inserted.contains(&k) && f.query(k).is_some() {
                fp += 1;
            }
        }
        // Expected rate 2^-8 ≈ 0.39%; allow generous slack.
        assert!(fp < probes / 64, "false positives {fp}/{probes}");
    }

    #[test]
    fn zero_check_bits_always_answers() {
        let p = pairs(1_000, 6, 9);
        let f = Bloomier::build(&p, 6, 0, 1.35).unwrap();
        for &(k, v) in &p {
            assert_eq!(f.query(k), Some(v));
        }
        assert!(f.query(99_999_999).is_some()); // garbage, but Some
    }

    #[test]
    fn storage_scales_with_load_and_width() {
        let p = pairs(1_000, 4, 11);
        let f = Bloomier::build(&p, 4, 4, 1.30).unwrap();
        let bits = f.storage_bits();
        // ≈ 1.3 × 1000 slots × 8 bits.
        assert!((9_000..12_000).contains(&bits), "{bits}");
    }

    #[test]
    fn empty_filter() {
        let f = Bloomier::build(&[], 4, 4, 1.3).unwrap();
        // No key was inserted; queries may reject or return garbage, but
        // must not panic.
        let _ = f.query(42);
    }
}
