//! The two state-of-the-art comparison systems the paper evaluates against.
//!
//! * [`deep_compression`] — Han et al.'s Deep Compression: shared pruning,
//!   k-means codebook weight quantization (2^b clusters), Huffman coding of
//!   the index streams. Closed-form reimplementation of the storage format
//!   the paper sizes in Table 4/5.
//! * [`weightless`] — Reagen et al.'s Weightless: lossy weight encoding in a
//!   [`bloomier`] filter. Closed source upstream; rebuilt here from the
//!   paper's description (4 hash evaluations per query, O(n·log n)
//!   construction via peeling, single-layer scope, checksum-controlled
//!   false positives).
//!
//! Both expose `encode`/`decode`/`apply` so the benchmark harness can
//! compare compression ratio, accuracy degradation, and encode/decode time
//! against DeepSZ on identical pruned networks.

pub mod bloomier;
pub mod deep_compression;
pub mod kmeans;
pub mod weightless;
