//! 1-D k-means (Lloyd's algorithm) for codebook weight quantization.
//!
//! Deep Compression quantizes the surviving weights of each layer to a
//! 2^b-entry codebook; Weightless quantizes before Bloomier encoding. Both
//! use linear (range-spanning) initialization, which Han et al. found best
//! for preserving the long tails of the weight distribution.

/// Result of a 1-D k-means run.
#[derive(Debug, Clone)]
pub struct Kmeans1d {
    /// Cluster centroids, ascending.
    pub centroids: Vec<f32>,
    /// Per-input cluster assignment.
    pub assignment: Vec<u32>,
}

/// Runs Lloyd's algorithm with linear initialization over `values`.
/// `k` is clamped to the number of distinct inputs; `iters` bounds the
/// refinement sweeps.
pub fn kmeans_1d(values: &[f32], k: usize, iters: usize) -> Kmeans1d {
    assert!(k >= 1, "k must be positive");
    if values.is_empty() {
        return Kmeans1d {
            centroids: vec![0.0; k.max(1)],
            assignment: Vec::new(),
        };
    }
    let lo = values.iter().copied().fold(f32::INFINITY, f32::min);
    let hi = values.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let k = k.max(1);
    let mut centroids: Vec<f32> = if hi > lo {
        (0..k)
            .map(|i| lo + (hi - lo) * (i as f32 + 0.5) / k as f32)
            .collect()
    } else {
        vec![lo; k]
    };

    let mut assignment = vec![0u32; values.len()];
    for _ in 0..iters {
        // Assign: centroids are sorted, so the nearest is found by binary
        // search over midpoints.
        let mids: Vec<f32> = centroids.windows(2).map(|w| (w[0] + w[1]) * 0.5).collect();
        for (a, &v) in assignment.iter_mut().zip(values) {
            *a = mids.partition_point(|&m| m < v) as u32;
        }
        // Update.
        let mut sums = vec![0f64; k];
        let mut counts = vec![0usize; k];
        for (&a, &v) in assignment.iter().zip(values) {
            sums[a as usize] += v as f64;
            counts[a as usize] += 1;
        }
        let mut moved = false;
        for i in 0..k {
            if counts[i] > 0 {
                let c = (sums[i] / counts[i] as f64) as f32;
                if c != centroids[i] {
                    moved = true;
                }
                centroids[i] = c;
            }
        }
        centroids.sort_by(|a, b| a.partial_cmp(b).expect("finite centroids"));
        if !moved {
            break;
        }
    }
    // Final assignment against the converged centroids.
    let mids: Vec<f32> = centroids.windows(2).map(|w| (w[0] + w[1]) * 0.5).collect();
    for (a, &v) in assignment.iter_mut().zip(values) {
        *a = mids.partition_point(|&m| m < v) as u32;
    }
    Kmeans1d {
        centroids,
        assignment,
    }
}

/// Mean squared quantization error of a fitted codebook.
pub fn quantization_mse(values: &[f32], km: &Kmeans1d) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values
        .iter()
        .zip(&km.assignment)
        .map(|(&v, &a)| {
            let d = v as f64 - km.centroids[a as usize] as f64;
            d * d
        })
        .sum::<f64>()
        / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_well_separated_clusters() {
        let mut values = Vec::new();
        for i in 0..300 {
            values.push(-1.0 + 0.01 * ((i % 7) as f32 - 3.0));
            values.push(0.5 + 0.01 * ((i % 5) as f32 - 2.0));
            values.push(2.0 + 0.01 * ((i % 3) as f32 - 1.0));
        }
        let km = kmeans_1d(&values, 3, 30);
        let mut c = km.centroids.clone();
        c.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        assert!((c[0] + 1.0).abs() < 0.05, "{c:?}");
        assert!((c[1] - 0.5).abs() < 0.05, "{c:?}");
        assert!((c[2] - 2.0).abs() < 0.05, "{c:?}");
    }

    #[test]
    fn more_clusters_reduce_mse() {
        let values: Vec<f32> = (0..2000)
            .map(|i| ((i * 37 % 997) as f32 / 997.0) - 0.5)
            .collect();
        let mse4 = quantization_mse(&values, &kmeans_1d(&values, 4, 25));
        let mse32 = quantization_mse(&values, &kmeans_1d(&values, 32, 25));
        assert!(mse32 < mse4 / 4.0, "mse4={mse4} mse32={mse32}");
    }

    #[test]
    fn assignment_maps_to_nearest_centroid() {
        let values: Vec<f32> = (0..500).map(|i| (i as f32 * 0.613).sin()).collect();
        let km = kmeans_1d(&values, 8, 20);
        for (&v, &a) in values.iter().zip(&km.assignment) {
            let da = (v - km.centroids[a as usize]).abs();
            for &c in &km.centroids {
                assert!(da <= (v - c).abs() + 1e-6);
            }
        }
    }

    #[test]
    fn degenerate_inputs() {
        let km = kmeans_1d(&[], 4, 10);
        assert!(km.assignment.is_empty());
        let km1 = kmeans_1d(&[0.7; 100], 4, 10);
        assert!(km1.assignment.iter().all(|&a| (a as usize) < 4));
        assert!((km1.centroids[km1.assignment[0] as usize] - 0.7).abs() < 1e-6);
    }
}
