//! Weightless (Reagen et al. 2018): lossy weight encoding with a Bloomier
//! filter, reconstructed from the paper's description (§4.2, §6).
//!
//! Surviving weights are k-means-quantized to `2^q` clusters; the map
//! `position → cluster index` is stored in a [`Bloomier`] filter. Decoding
//! must query *every* matrix position (four hash evaluations each), which is
//! why the paper finds Weightless decode 1–2 orders of magnitude slower
//! than DeepSZ. False-positive queries at zero positions materialize
//! spurious weights — the method's characteristic loss — at a rate set by
//! the checksum width.

use crate::bloomier::{Bloomier, BuildError};
use crate::kmeans::kmeans_1d;

/// Weightless encoding parameters.
#[derive(Debug, Clone, Copy)]
pub struct WlConfig {
    /// Bits per quantized weight (codebook = 2^bits).
    pub quant_bits: u8,
    /// Checksum bits controlling the false-positive rate (2^-bits).
    pub check_bits: u8,
    /// Table slots per key (≥ 1.23 for reliable peeling).
    pub load: f64,
    /// Lloyd iterations for the codebook.
    pub kmeans_iters: usize,
}

impl Default for WlConfig {
    fn default() -> Self {
        Self {
            quant_bits: 4,
            check_bits: 8,
            load: 1.30,
            kmeans_iters: 25,
        }
    }
}

/// An encoded layer.
#[derive(Debug, Clone)]
pub struct WlLayer {
    /// The position → cluster filter.
    pub filter: Bloomier,
    /// Cluster centroids.
    pub centroids: Vec<f32>,
    /// Matrix rows.
    pub rows: usize,
    /// Matrix cols.
    pub cols: usize,
}

/// Encodes a pruned dense layer. Fails only if Bloomier peeling fails
/// repeatedly (practically never at load ≥ 1.25).
pub fn encode_layer(
    dense: &[f32],
    rows: usize,
    cols: usize,
    cfg: &WlConfig,
) -> Result<WlLayer, BuildError> {
    assert_eq!(dense.len(), rows * cols, "dense shape mismatch");
    let positions: Vec<u64> = dense
        .iter()
        .enumerate()
        .filter(|(_, &w)| w != 0.0)
        .map(|(p, _)| p as u64)
        .collect();
    let values: Vec<f32> = dense.iter().copied().filter(|&w| w != 0.0).collect();
    let km = kmeans_1d(&values, 1 << cfg.quant_bits, cfg.kmeans_iters);
    let pairs: Vec<(u64, u64)> = positions
        .iter()
        .zip(&km.assignment)
        .map(|(&p, &a)| (p, u64::from(a)))
        .collect();
    let filter = Bloomier::build(&pairs, cfg.quant_bits, cfg.check_bits, cfg.load)?;
    Ok(WlLayer {
        filter,
        centroids: km.centroids,
        rows,
        cols,
    })
}

/// Decodes the full dense matrix by querying every position.
pub fn decode_layer(layer: &WlLayer) -> Vec<f32> {
    let mut out = vec![0f32; layer.rows * layer.cols];
    for (p, w) in out.iter_mut().enumerate() {
        if let Some(sym) = layer.filter.query(p as u64) {
            if let Some(&c) = layer.centroids.get(sym as usize) {
                *w = c;
            }
        }
    }
    out
}

/// Compressed size in bytes (filter table + codebook + header words).
pub fn compressed_bytes(layer: &WlLayer) -> usize {
    layer.filter.storage_bits().div_ceil(8) + layer.centroids.len() * 4 + 16
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pruned_matrix(rows: usize, cols: usize, density: f64, seed: u64) -> Vec<f32> {
        let mut s = seed;
        (0..rows * cols)
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                let u = (s >> 11) as f64 / (1u64 << 53) as f64;
                if u < density {
                    (((s >> 33) as f32 / (1u64 << 31) as f32) - 0.5) * 0.2
                } else {
                    0.0
                }
            })
            .collect()
    }

    #[test]
    fn nonzero_weights_survive_with_codebook_precision() {
        let dense = pruned_matrix(64, 100, 0.1, 3);
        let enc = encode_layer(&dense, 64, 100, &WlConfig::default()).unwrap();
        let back = decode_layer(&enc);
        for (i, (&o, &d)) in dense.iter().zip(&back).enumerate() {
            if o != 0.0 {
                assert!((o - d).abs() < 0.05, "weight {i}: {o} vs {d}");
            }
        }
    }

    #[test]
    fn false_positive_rate_matches_check_bits() {
        let dense = pruned_matrix(128, 128, 0.08, 5);
        let enc = encode_layer(&dense, 128, 128, &WlConfig::default()).unwrap();
        let back = decode_layer(&enc);
        let spurious = dense
            .iter()
            .zip(&back)
            .filter(|(&o, &d)| o == 0.0 && d != 0.0)
            .count();
        let zeros = dense.iter().filter(|&&o| o == 0.0).count();
        // Expected ≈ zeros × 2^-8; allow 4× slack.
        assert!(
            spurious < zeros / 64,
            "spurious {spurious} of {zeros} zeros"
        );
    }

    #[test]
    fn fewer_check_bits_smaller_but_noisier() {
        let dense = pruned_matrix(128, 128, 0.08, 7);
        let tight = encode_layer(
            &dense,
            128,
            128,
            &WlConfig {
                check_bits: 8,
                ..Default::default()
            },
        )
        .unwrap();
        let loose = encode_layer(
            &dense,
            128,
            128,
            &WlConfig {
                check_bits: 2,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(compressed_bytes(&loose) < compressed_bytes(&tight));
        let spurious = |l: &WlLayer| {
            decode_layer(l)
                .iter()
                .zip(&dense)
                .filter(|(&d, &o)| o == 0.0 && d != 0.0)
                .count()
        };
        assert!(spurious(&loose) > spurious(&tight));
    }

    #[test]
    fn compression_beats_pair_array_at_low_bits() {
        let dense = pruned_matrix(256, 256, 0.1, 9);
        let pa = dsz_sparse::PairArray::from_dense(&dense, 256, 256);
        let enc = encode_layer(&dense, 256, 256, &WlConfig::default()).unwrap();
        // (4+8) bits × 1.3 per nonzero ≪ 40 bits per entry.
        assert!(compressed_bytes(&enc) < pa.size_bytes() / 2);
    }
}
