//! Deep Compression (Han et al. 2015) — pruning + codebook quantization +
//! Huffman coding, as characterized in the paper's §4.3 and Tables 4/5.
//!
//! The pruning stage is shared with DeepSZ (both start from the same pruned
//! network); this module implements the downstream stages: k-means codebook
//! quantization of surviving weights at `b` bits per weight, and Huffman
//! coding of both the codebook-index stream and the 8-bit position-gap
//! stream.

use crate::kmeans::kmeans_1d;
use dsz_lossless::bits::{read_varint, write_varint};
use dsz_lossless::{huffman, CodecError};
use dsz_sparse::{PairArray, PAD_MARKER};

/// Configuration for Deep Compression encoding.
#[derive(Debug, Clone, Copy)]
pub struct DcConfig {
    /// Bits per quantized weight (codebook has `2^bits` entries). The
    /// paper's Deep Compression uses 5 for fc layers.
    pub bits: u8,
    /// Lloyd iterations for the codebook fit.
    pub kmeans_iters: usize,
}

impl Default for DcConfig {
    fn default() -> Self {
        Self {
            bits: 5,
            kmeans_iters: 25,
        }
    }
}

/// One encoded layer.
#[derive(Debug, Clone)]
pub struct DcLayer {
    /// Serialized bytes (self-describing).
    pub bytes: Vec<u8>,
}

/// Encodes a pruned dense layer.
pub fn encode_layer(dense: &[f32], rows: usize, cols: usize, cfg: &DcConfig) -> DcLayer {
    let pa = PairArray::from_dense(dense, rows, cols);
    // Quantize only the real weights; padding entries carry a PAD symbol.
    let real: Vec<f32> = pa
        .index
        .iter()
        .zip(&pa.data)
        .filter(|(&g, _)| g != PAD_MARKER)
        .map(|(_, &v)| v)
        .collect();
    let k = 1usize << cfg.bits;
    let km = kmeans_1d(&real, k, cfg.kmeans_iters);
    let pad_symbol = k as u32;

    let mut symbols = Vec::with_capacity(pa.stored_entries());
    let mut ri = 0usize;
    for &g in &pa.index {
        if g == PAD_MARKER {
            symbols.push(pad_symbol);
        } else {
            symbols.push(km.assignment[ri]);
            ri += 1;
        }
    }

    let mut bytes = Vec::new();
    bytes.extend_from_slice(b"DCL1");
    write_varint(&mut bytes, rows as u64);
    write_varint(&mut bytes, cols as u64);
    bytes.push(cfg.bits);
    write_varint(&mut bytes, km.centroids.len() as u64);
    for &c in &km.centroids {
        bytes.extend_from_slice(&c.to_le_bytes());
    }
    // Huffman-coded codebook indices (incl. PAD symbol) and gap bytes.
    let idx_blob = huffman::encode_stream(&symbols);
    write_varint(&mut bytes, idx_blob.len() as u64);
    bytes.extend_from_slice(&idx_blob);
    let gaps: Vec<u32> = pa.index.iter().map(|&g| u32::from(g)).collect();
    let gap_blob = huffman::encode_stream(&gaps);
    write_varint(&mut bytes, gap_blob.len() as u64);
    bytes.extend_from_slice(&gap_blob);
    DcLayer { bytes }
}

/// Decodes a layer back to its dense matrix.
pub fn decode_layer(layer: &DcLayer) -> Result<(Vec<f32>, usize, usize), CodecError> {
    let bytes = &layer.bytes;
    if bytes.len() < 4 || &bytes[..4] != b"DCL1" {
        return Err(CodecError::corrupt("bad DC magic"));
    }
    let mut pos = 4usize;
    let rows = read_varint(bytes, &mut pos)? as usize;
    let cols = read_varint(bytes, &mut pos)? as usize;
    let bits = *bytes.get(pos).ok_or(CodecError::Truncated)?;
    pos += 1;
    let k = read_varint(bytes, &mut pos)? as usize;
    if k > 1 << bits {
        return Err(CodecError::corrupt("codebook larger than 2^bits"));
    }
    let mut centroids = Vec::with_capacity(k);
    for _ in 0..k {
        let c = f32::from_le_bytes(
            bytes
                .get(pos..pos + 4)
                .ok_or(CodecError::Truncated)?
                .try_into()
                .expect("len 4"),
        );
        centroids.push(c);
        pos += 4;
    }
    let idx_len = read_varint(bytes, &mut pos)? as usize;
    let mut ip = pos;
    let symbols = huffman::decode_stream(bytes, &mut ip)?;
    if ip - pos != idx_len {
        return Err(CodecError::corrupt("index stream length mismatch"));
    }
    pos = ip;
    let gap_len = read_varint(bytes, &mut pos)? as usize;
    let mut gp = pos;
    let gaps = huffman::decode_stream(bytes, &mut gp)?;
    if gp - pos != gap_len {
        return Err(CodecError::corrupt("gap stream length mismatch"));
    }
    if gaps.len() != symbols.len() {
        return Err(CodecError::corrupt("stream length disagreement"));
    }

    let pad_symbol = 1u32 << bits;
    let mut data = Vec::with_capacity(symbols.len());
    let mut index = Vec::with_capacity(symbols.len());
    for (&s, &g) in symbols.iter().zip(&gaps) {
        if g > 255 {
            return Err(CodecError::corrupt("gap out of byte range"));
        }
        index.push(g as u8);
        if s >= pad_symbol {
            data.push(0.0);
        } else {
            data.push(
                *centroids
                    .get(s as usize)
                    .ok_or_else(|| CodecError::corrupt("symbol out of codebook"))?,
            );
        }
    }
    let pa = PairArray {
        rows,
        cols,
        data,
        index,
    };
    let dense = pa
        .to_dense()
        .map_err(|e| CodecError::corrupt(e.to_string()))?;
    Ok((dense, rows, cols))
}

/// Compressed size in bytes.
pub fn compressed_bytes(layer: &DcLayer) -> usize {
    layer.bytes.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pruned_matrix(rows: usize, cols: usize, density: f64, seed: u64) -> Vec<f32> {
        let mut s = seed;
        (0..rows * cols)
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                let u = (s >> 11) as f64 / (1u64 << 53) as f64;
                if u < density {
                    (((s >> 33) as f32 / (1u64 << 31) as f32) - 0.5) * 0.2
                } else {
                    0.0
                }
            })
            .collect()
    }

    #[test]
    fn roundtrip_preserves_sparsity_pattern() {
        let dense = pruned_matrix(64, 100, 0.1, 3);
        let enc = encode_layer(&dense, 64, 100, &DcConfig::default());
        let (back, r, c) = decode_layer(&enc).unwrap();
        assert_eq!((r, c), (64, 100));
        for (i, (&orig, &dec)) in dense.iter().zip(&back).enumerate() {
            if orig == 0.0 {
                assert_eq!(dec, 0.0, "zero weight {i} became nonzero");
            } else {
                assert_ne!(dec, 0.0, "nonzero weight {i} vanished");
            }
        }
    }

    #[test]
    fn quantization_error_bounded_by_codebook_granularity() {
        let dense = pruned_matrix(100, 100, 0.1, 5);
        let enc = encode_layer(
            &dense,
            100,
            100,
            &DcConfig {
                bits: 5,
                kmeans_iters: 30,
            },
        );
        let (back, ..) = decode_layer(&enc).unwrap();
        let max_err = dense
            .iter()
            .zip(&back)
            .filter(|(&o, _)| o != 0.0)
            .map(|(&o, &d)| (o - d).abs())
            .fold(0f32, f32::max);
        // Range ≈ 0.2 over 32 clusters → worst-case error well under range/16.
        assert!(max_err < 0.02, "max err {max_err}");
    }

    #[test]
    fn fewer_bits_smaller_but_lossier() {
        let dense = pruned_matrix(128, 128, 0.1, 7);
        let e5 = encode_layer(
            &dense,
            128,
            128,
            &DcConfig {
                bits: 5,
                kmeans_iters: 20,
            },
        );
        let e2 = encode_layer(
            &dense,
            128,
            128,
            &DcConfig {
                bits: 2,
                kmeans_iters: 20,
            },
        );
        assert!(compressed_bytes(&e2) < compressed_bytes(&e5));
        let err = |enc: &DcLayer| -> f64 {
            let (back, ..) = decode_layer(enc).unwrap();
            dense
                .iter()
                .zip(&back)
                .map(|(&o, &d)| (o as f64 - d as f64).powi(2))
                .sum::<f64>()
        };
        assert!(err(&e2) > 4.0 * err(&e5), "2-bit must be much lossier");
    }

    #[test]
    fn five_bits_beats_forty_bit_csr() {
        let dense = pruned_matrix(256, 256, 0.1, 9);
        let pa = dsz_sparse::PairArray::from_dense(&dense, 256, 256);
        let enc = encode_layer(&dense, 256, 256, &DcConfig::default());
        // Huffman-coded 5-bit indices ≪ 40-bit pair entries.
        assert!(compressed_bytes(&enc) < pa.size_bytes() / 2);
    }

    #[test]
    fn corrupt_stream_errors() {
        let dense = pruned_matrix(16, 16, 0.2, 11);
        let mut enc = encode_layer(&dense, 16, 16, &DcConfig::default());
        enc.bytes[0] = b'X';
        assert!(decode_layer(&enc).is_err());
    }
}
