//! Class-conditional ReLU feature vectors — the ImageNet-feature surrogate.
//!
//! In AlexNet/VGG-16 the conv stack (which DeepSZ never compresses) maps an
//! image to a non-negative feature vector that feeds `fc6`. This module
//! generates such vectors directly: each class has a sparse non-negative
//! prototype, and samples are `relu(prototype + noise)`. The `noise` knob
//! controls class overlap and therefore the ceiling accuracy, which lets the
//! experiments calibrate base accuracy into the paper's 57–68% regime.

use dsz_nn::Dataset;
use dsz_tensor::VolShape;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for the feature generator.
#[derive(Debug, Clone, Copy)]
pub struct FeatureSpec {
    /// Feature dimensionality (the fc6 input width).
    pub dim: usize,
    /// Number of classes.
    pub classes: usize,
    /// Fraction of dimensions active in each class prototype.
    pub proto_density: f64,
    /// Std-dev of the additive Gaussian noise (class-overlap knob).
    pub noise: f32,
}

impl FeatureSpec {
    /// A spec sized for the reduced AlexNet head (1152-d features,
    /// 100 classes) with noise tuned near the paper's AlexNet accuracy.
    pub fn alexnet_reduced() -> Self {
        Self {
            dim: 1152,
            classes: 100,
            proto_density: 0.12,
            noise: 1.05,
        }
    }

    /// A spec sized for the reduced VGG-16 head (3136-d features,
    /// 100 classes) with noise tuned near the paper's VGG-16 accuracy.
    pub fn vgg16_reduced() -> Self {
        Self {
            dim: 3136,
            classes: 100,
            proto_density: 0.08,
            noise: 1.38,
        }
    }
}

/// Box–Muller standard normal.
fn normal(rng: &mut StdRng) -> f32 {
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
}

/// Class prototypes: sparse non-negative activation patterns.
fn prototypes(spec: &FeatureSpec, rng: &mut StdRng) -> Vec<Vec<f32>> {
    (0..spec.classes)
        .map(|_| {
            (0..spec.dim)
                .map(|_| {
                    if rng.gen_bool(spec.proto_density) {
                        rng.gen_range(0.6..1.6)
                    } else {
                        0.0
                    }
                })
                .collect()
        })
        .collect()
}

/// Generates matched train and test datasets drawn from the same class
/// prototypes (prototype draw is part of `seed`).
pub fn train_test(
    spec: &FeatureSpec,
    n_train: usize,
    n_test: usize,
    seed: u64,
) -> (Dataset, Dataset) {
    let mut rng = StdRng::seed_from_u64(seed);
    let protos = prototypes(spec, &mut rng);
    let mut gen = |n: usize| -> Dataset {
        let mut x = Vec::with_capacity(n * spec.dim);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % spec.classes;
            let p = &protos[class];
            for &pd in p.iter().take(spec.dim) {
                x.push((pd + spec.noise * normal(&mut rng)).max(0.0));
            }
            labels.push(class as u16);
        }
        Dataset {
            shape: VolShape {
                c: spec.dim,
                h: 1,
                w: 1,
            },
            x,
            labels,
        }
    };
    (gen(n_train), gen(n_test))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn features_are_nonnegative_relu_like() {
        let spec = FeatureSpec {
            dim: 64,
            classes: 10,
            proto_density: 0.2,
            noise: 0.5,
        };
        let (tr, te) = train_test(&spec, 100, 50, 3);
        assert_eq!(tr.len(), 100);
        assert_eq!(te.len(), 50);
        assert!(tr.x.iter().all(|&v| v >= 0.0));
        // ReLU sparsity: plenty of exact zeros.
        let zeros = tr.x.iter().filter(|&&v| v == 0.0).count();
        assert!(zeros > tr.x.len() / 10, "{zeros}");
    }

    #[test]
    fn noise_controls_separability() {
        // Nearest-prototype accuracy should fall as noise rises.
        let near = |noise: f32| -> f64 {
            let spec = FeatureSpec {
                dim: 128,
                classes: 10,
                proto_density: 0.2,
                noise,
            };
            let mut rng = StdRng::seed_from_u64(9);
            let protos = prototypes(&spec, &mut rng);
            let (_, te) = train_test(&spec, 1, 400, 9);
            let mut hit = 0usize;
            for i in 0..te.len() {
                let xi = &te.x[i * spec.dim..(i + 1) * spec.dim];
                let best = (0..spec.classes)
                    .min_by(|&a, &b| {
                        let da: f32 = xi
                            .iter()
                            .zip(&protos[a])
                            .map(|(x, p)| (x - p).powi(2))
                            .sum();
                        let db: f32 = xi
                            .iter()
                            .zip(&protos[b])
                            .map(|(x, p)| (x - p).powi(2))
                            .sum();
                        da.partial_cmp(&db).expect("finite distances")
                    })
                    .expect("nonempty classes");
                if best == te.labels[i] as usize {
                    hit += 1;
                }
            }
            hit as f64 / te.len() as f64
        };
        let low_noise = near(0.2);
        let high_noise = near(2.5);
        assert!(low_noise > 0.95, "{low_noise}");
        assert!(high_noise < low_noise - 0.2, "{high_noise} vs {low_noise}");
    }

    #[test]
    fn train_and_test_share_prototypes() {
        // Same seed → same prototypes → class means correlate across splits.
        let spec = FeatureSpec {
            dim: 64,
            classes: 4,
            proto_density: 0.3,
            noise: 0.3,
        };
        let (tr, te) = train_test(&spec, 200, 200, 5);
        for class in 0..4usize {
            let mean = |d: &Dataset| -> Vec<f32> {
                let mut m = vec![0f32; 64];
                let mut cnt = 0;
                for i in 0..d.len() {
                    if d.labels[i] as usize == class {
                        for (mm, &v) in m.iter_mut().zip(&d.x[i * 64..(i + 1) * 64]) {
                            *mm += v;
                        }
                        cnt += 1;
                    }
                }
                m.iter_mut().for_each(|v| *v /= cnt as f32);
                m
            };
            let (ma, mb) = (mean(&tr), mean(&te));
            let dot: f32 = ma.iter().zip(&mb).map(|(a, b)| a * b).sum();
            let na: f32 = ma.iter().map(|a| a * a).sum::<f32>().sqrt();
            let nb: f32 = mb.iter().map(|b| b * b).sum::<f32>().sqrt();
            assert!(dot / (na * nb) > 0.9, "class {class} means diverge");
        }
    }
}
