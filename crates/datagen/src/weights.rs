//! Synthesized "trained" fc-layer weights for full-size storage experiments.
//!
//! The compression-ratio experiments (Fig. 2, Fig. 4, Table 2's size
//! columns) depend only on the *value distribution* of trained weights, not
//! on what the network computes. Trained fc layers empirically have
//! zero-centred, heavy-tailed weights; the paper notes values typically in
//! [−0.3, 0.3] (§5.1). We synthesize a Laplace distribution scaled to that
//! range, with mild column-wise scale variation so the data is not i.i.d.
//! (real layers show per-neuron scale structure that SZ's block regression
//! can exploit).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Laplace(0, b) sample via inverse CDF.
fn laplace(rng: &mut StdRng, b: f64) -> f64 {
    let u: f64 = rng.gen_range(-0.5..0.5);
    -b * u.signum() * (1.0 - 2.0 * u.abs()).ln()
}

/// Synthesizes a dense `rows × cols` trained-like weight matrix.
///
/// Values are Laplace-distributed with scale ≈ `0.35 / √cols` (matching the
/// `std ≈ 1/√fan_in` magnitude regime of real trained fc layers — AlexNet
/// fc6's weights have std ≈ 0.01), clamped to ±0.3 like the paper's
/// observed range.
pub fn trained_fc_weights(rows: usize, cols: usize, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    // Per-column (input-neuron) scale factors: mild structure.
    let col_scale: Vec<f64> = (0..cols).map(|_| rng.gen_range(0.6..1.4)).collect();
    let base = 0.35 / (cols as f64).sqrt();
    let mut out = Vec::with_capacity(rows * cols);
    for _ in 0..rows {
        for cs in &col_scale {
            let w = laplace(&mut rng, base * cs).clamp(-0.3, 0.3);
            out.push(w as f32);
        }
    }
    out
}

/// Convenience: the condensed nonzero-weight array of a pruned layer at the
/// given kept `density` — i.e. the `data` stream SZ compresses, without
/// building the full sparse structure. Returns `(values, threshold)`.
pub fn pruned_nonzeros(rows: usize, cols: usize, density: f64, seed: u64) -> (Vec<f32>, f32) {
    let dense = trained_fc_weights(rows, cols, seed);
    let keep = ((rows * cols) as f64 * density).round() as usize;
    let mut mags: Vec<f32> = dense.iter().map(|w| w.abs()).collect();
    let k = (rows * cols)
        .saturating_sub(keep)
        .min(mags.len().saturating_sub(1));
    mags.select_nth_unstable_by(k, |a, b| a.partial_cmp(b).expect("finite"));
    let threshold = mags[k];
    let values: Vec<f32> = dense
        .iter()
        .copied()
        .filter(|w| w.abs() >= threshold && *w != 0.0)
        .collect();
    (values, threshold)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_are_in_paper_range() {
        let w = trained_fc_weights(100, 200, 3);
        assert_eq!(w.len(), 20_000);
        assert!(w.iter().all(|&v| (-0.3..=0.3).contains(&v)));
        // Zero-centred.
        let mean: f64 = w.iter().map(|&v| v as f64).sum::<f64>() / w.len() as f64;
        assert!(mean.abs() < 5e-3, "{mean}");
    }

    #[test]
    fn distribution_is_heavy_tailed() {
        // Laplace kurtosis ≈ 6 > Gaussian 3; check excess kurtosis > 0.5.
        let w = trained_fc_weights(200, 500, 5);
        let n = w.len() as f64;
        let mean: f64 = w.iter().map(|&v| v as f64).sum::<f64>() / n;
        let m2: f64 = w.iter().map(|&v| (v as f64 - mean).powi(2)).sum::<f64>() / n;
        let m4: f64 = w.iter().map(|&v| (v as f64 - mean).powi(4)).sum::<f64>() / n;
        let kurt = m4 / (m2 * m2);
        assert!(kurt > 3.5, "kurtosis {kurt}");
    }

    #[test]
    fn pruned_nonzeros_hits_density() {
        let (vals, thr) = pruned_nonzeros(300, 400, 0.1, 7);
        let want = (300.0 * 400.0 * 0.1) as usize;
        let got = vals.len();
        assert!(
            (got as i64 - want as i64).unsigned_abs() < want as u64 / 20,
            "kept {got}, wanted ≈{want}"
        );
        assert!(vals.iter().all(|&v| v.abs() >= thr));
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(trained_fc_weights(10, 10, 1), trained_fc_weights(10, 10, 1));
        assert_ne!(trained_fc_weights(10, 10, 1), trained_fc_weights(10, 10, 2));
    }
}
