//! Deterministic fault injection for serialized streams and containers.
//!
//! The robustness harness (`crates/core/tests/fault_injection.rs`,
//! `docs/ROBUSTNESS.md`) feeds thousands of seeded mutations of valid
//! artifacts to the decoders and requires an `Err` — never a panic, an
//! unbounded allocation, or (for checksummed formats) a silent success.
//! This module is the mutation side: a [`Corruptor`] is a small seeded
//! PRNG plus a catalogue of the corruption shapes that actually happen to
//! bytes at rest or in transit — single-bit flips, byte stomps,
//! truncations, splices, and targeted length-field mutations. Everything
//! is a pure function of the seed, so a failing case replays exactly from
//! the seed printed by the harness.

/// SplitMix64 — tiny, seedable, and with a full-period 64-bit state walk,
/// so distinct seeds give distinct mutation streams.
#[derive(Debug, Clone)]
pub struct Corruptor {
    state: u64,
}

/// One applied mutation, for harness diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Mutation {
    /// Flipped a single bit: (byte offset, bit index).
    BitFlip(usize, u8),
    /// Overwrote a byte with an arbitrary value: (offset, new value).
    ByteSet(usize, u8),
    /// Truncated the buffer to the given length.
    Truncate(usize),
    /// Replaced the range `start..start+len` with bytes copied from
    /// another offset of the same buffer (a torn-write / misdirected-read
    /// model): (dst start, src start, len).
    Splice(usize, usize, usize),
    /// Rewrote the varint at the given offset to a new value — the
    /// length-field attack: (offset, new value).
    VarintRewrite(usize, u64),
}

impl Corruptor {
    /// A corruptor whose whole mutation stream is determined by `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            // Avoid the all-zero fixpoint-ish start for seed 0.
            state: seed.wrapping_add(0x9e37_79b9_7f4a_7c15),
        }
    }

    /// Next raw 64-bit draw (SplitMix64 output function).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `0..n` (`n > 0`).
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n.max(1) as u64) as usize
    }

    /// Applies one randomly shaped mutation to `bytes`, returning what was
    /// done. The buffer is never left byte-identical to the input unless
    /// it was empty (a flip of its own output is re-rolled by the caller
    /// comparing bytes — splices can no-op when source equals
    /// destination content, so harnesses should skip unchanged buffers).
    pub fn mutate(&mut self, bytes: &mut Vec<u8>) -> Mutation {
        if bytes.is_empty() {
            return Mutation::Truncate(0);
        }
        match self.below(5) {
            0 => {
                let off = self.below(bytes.len());
                let bit = (self.next_u64() % 8) as u8;
                bytes[off] ^= 1 << bit;
                Mutation::BitFlip(off, bit)
            }
            1 => {
                let off = self.below(bytes.len());
                let val = (self.next_u64() & 0xff) as u8;
                bytes[off] = val;
                Mutation::ByteSet(off, val)
            }
            2 => {
                let keep = self.below(bytes.len());
                bytes.truncate(keep);
                Mutation::Truncate(keep)
            }
            3 => {
                let len = 1 + self.below(bytes.len().min(64));
                let dst = self.below(bytes.len() - len + 1);
                let src = self.below(bytes.len() - len + 1);
                let copied: Vec<u8> = bytes[src..src + len].to_vec();
                bytes[dst..dst + len].copy_from_slice(&copied);
                Mutation::Splice(dst, src, len)
            }
            _ => {
                // Length-field attack: find a plausible varint start and
                // rewrite it to a adversarial value (huge, zero, or small).
                let off = self.below(bytes.len());
                let val = match self.below(3) {
                    0 => self.next_u64(),          // huge
                    1 => 0,                        // zero
                    _ => self.next_u64() & 0xffff, // small-but-wrong
                };
                rewrite_varint(bytes, off, val);
                Mutation::VarintRewrite(off, val)
            }
        }
    }
}

/// Overwrites whatever is at `off` with the LEB128 varint encoding of
/// `val`, replacing the varint-shaped run that was there (bytes with the
/// continuation bit set, plus one terminator). The buffer grows or
/// shrinks as needed, which also perturbs every downstream offset — the
/// most realistic form of a corrupted length field.
pub fn rewrite_varint(bytes: &mut Vec<u8>, off: usize, val: u64) {
    let mut end = off;
    while end < bytes.len() && bytes[end] & 0x80 != 0 {
        end += 1;
    }
    end = (end + 1).min(bytes.len());
    let mut enc = Vec::with_capacity(10);
    let mut v = val;
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            enc.push(b);
            break;
        }
        enc.push(b | 0x80);
    }
    bytes.splice(off..end, enc);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_mutations() {
        let base: Vec<u8> = (0..=255u8).collect();
        for seed in [0u64, 1, 0xdead_beef] {
            let mut a = base.clone();
            let mut b = base.clone();
            let ma = Corruptor::new(seed).mutate(&mut a);
            let mb = Corruptor::new(seed).mutate(&mut b);
            assert_eq!(ma, mb);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let base: Vec<u8> = (0..=255u8).collect();
        let distinct: std::collections::HashSet<Vec<u8>> = (0..32u64)
            .map(|seed| {
                let mut v = base.clone();
                Corruptor::new(seed).mutate(&mut v);
                v
            })
            .collect();
        assert!(distinct.len() > 16, "seeds barely diverge");
    }

    #[test]
    fn varint_rewrite_roundtrips_through_reader() {
        let mut bytes = vec![0xff, 0x01, 0xaa, 0xbb]; // varint 255, then data
        rewrite_varint(&mut bytes, 0, 5);
        assert_eq!(bytes, vec![0x05, 0xaa, 0xbb]);
        rewrite_varint(&mut bytes, 0, 300);
        assert_eq!(bytes, vec![0xac, 0x02, 0xaa, 0xbb]);
    }

    #[test]
    fn mutations_stay_in_bounds() {
        for seed in 0..200u64 {
            let mut c = Corruptor::new(seed);
            let mut v: Vec<u8> = (0..97u8).collect();
            for _ in 0..16 {
                c.mutate(&mut v);
                assert!(v.len() <= 97 + 160, "unexpected growth");
                if v.is_empty() {
                    break;
                }
            }
        }
    }
}
