//! Procedural MNIST-like digit rendering.
//!
//! Each digit class has a 7×5 glyph; rendering upscales it to 28×28,
//! applies a random sub-cell offset, per-pixel intensity jitter, and
//! background noise. The task is learnable to ≈98–99% by LeNet-class
//! models, matching the regime the paper reports on MNIST.

use dsz_nn::Dataset;
use dsz_tensor::VolShape;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// 7 rows × 5 cols glyphs for digits 0–9.
const GLYPHS: [[&str; 7]; 10] = [
    [
        " ### ", "#   #", "#  ##", "# # #", "##  #", "#   #", " ### ",
    ], // 0
    [
        "  #  ", " ##  ", "  #  ", "  #  ", "  #  ", "  #  ", " ### ",
    ], // 1
    [
        " ### ", "#   #", "    #", "   # ", "  #  ", " #   ", "#####",
    ], // 2
    [
        " ### ", "#   #", "    #", "  ## ", "    #", "#   #", " ### ",
    ], // 3
    [
        "   # ", "  ## ", " # # ", "#  # ", "#####", "   # ", "   # ",
    ], // 4
    [
        "#####", "#    ", "#### ", "    #", "    #", "#   #", " ### ",
    ], // 5
    [
        " ### ", "#    ", "#    ", "#### ", "#   #", "#   #", " ### ",
    ], // 6
    [
        "#####", "    #", "   # ", "  #  ", "  #  ", " #   ", " #   ",
    ], // 7
    [
        " ### ", "#   #", "#   #", " ### ", "#   #", "#   #", " ### ",
    ], // 8
    [
        " ### ", "#   #", "#   #", " ####", "    #", "    #", " ### ",
    ], // 9
];

/// Image side length.
pub const SIDE: usize = 28;

/// Renders one sample of `class` into a 784-long buffer.
pub fn render_digit(class: usize, rng: &mut StdRng, out: &mut [f32]) {
    assert!(class < 10, "digit class out of range");
    assert_eq!(out.len(), SIDE * SIDE);
    out.fill(0.0);
    let glyph = &GLYPHS[class];
    // Glyph cell size 3×4 → 15×28 wide body placed with random offset.
    let cell_h = 3usize;
    let cell_w = 4usize;
    let body_h = 7 * cell_h; // 21
    let body_w = 5 * cell_w; // 20
    let oy = rng.gen_range(0..=(SIDE - body_h));
    let ox = rng.gen_range(0..=(SIDE - body_w));
    let intensity: f32 = rng.gen_range(0.7..1.0);
    for (gy, row) in glyph.iter().enumerate() {
        for (gx, ch) in row.bytes().enumerate() {
            if ch != b'#' {
                continue;
            }
            for dy in 0..cell_h {
                for dx in 0..cell_w {
                    let y = oy + gy * cell_h + dy;
                    let x = ox + gx * cell_w + dx;
                    let jitter: f32 = rng.gen_range(-0.15..0.15);
                    out[y * SIDE + x] = (intensity + jitter).clamp(0.0, 1.0);
                }
            }
        }
    }
    // Background speckle noise.
    for v in out.iter_mut() {
        if rng.gen_bool(0.02) {
            *v = (*v + rng.gen_range(0.0..0.35)).clamp(0.0, 1.0);
        }
    }
}

/// Generates `n` labelled digit images (classes cycle 0–9).
pub fn dataset(n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut x = vec![0f32; n * SIDE * SIDE];
    let mut labels = Vec::with_capacity(n);
    let mut buf = vec![0f32; SIDE * SIDE];
    for i in 0..n {
        let class = rng.gen_range(0..10usize);
        render_digit(class, &mut rng, &mut buf);
        x[i * SIDE * SIDE..(i + 1) * SIDE * SIDE].copy_from_slice(&buf);
        labels.push(class as u16);
    }
    Dataset {
        shape: VolShape {
            c: 1,
            h: SIDE,
            w: SIDE,
        },
        x,
        labels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn glyphs_are_well_formed() {
        for (d, g) in GLYPHS.iter().enumerate() {
            for row in g {
                assert_eq!(row.len(), 5, "digit {d}");
            }
            // Every glyph has ink.
            assert!(g.iter().any(|r| r.contains('#')), "digit {d} blank");
        }
        // All glyphs pairwise distinct.
        for a in 0..10 {
            for b in a + 1..10 {
                assert_ne!(GLYPHS[a], GLYPHS[b], "digits {a} and {b} identical");
            }
        }
    }

    #[test]
    fn dataset_shape_and_range() {
        let d = dataset(100, 7);
        assert_eq!(d.len(), 100);
        assert_eq!(d.shape.len(), 784);
        assert!(d.x.iter().all(|&v| (0.0..=1.0).contains(&v)));
        assert!(d.labels.iter().all(|&l| l < 10));
        // All ten classes present in 100 samples with overwhelming odds.
        let mut seen = [false; 10];
        for &l in &d.labels {
            seen[l as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(dataset(10, 3).x, dataset(10, 3).x);
        assert_ne!(dataset(10, 3).x, dataset(10, 4).x);
    }

    #[test]
    fn classes_are_visually_distinct() {
        // Mean images of two classes must differ substantially.
        let mut rng = StdRng::seed_from_u64(1);
        let mut mean = vec![vec![0f32; 784]; 10];
        let mut buf = vec![0f32; 784];
        for c in 0..10 {
            for _ in 0..20 {
                render_digit(c, &mut rng, &mut buf);
                for (m, &v) in mean[c].iter_mut().zip(&buf) {
                    *m += v / 20.0;
                }
            }
        }
        for a in 0..10 {
            for b in a + 1..10 {
                let dist: f32 = mean[a]
                    .iter()
                    .zip(&mean[b])
                    .map(|(&x, &y)| (x - y) * (x - y))
                    .sum();
                assert!(dist > 1.0, "classes {a}/{b} too similar: {dist}");
            }
        }
    }
}
