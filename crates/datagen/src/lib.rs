//! Synthetic workload generators.
//!
//! The paper trains/tests on MNIST and ImageNet with pre-trained Caffe
//! models; neither is available offline, so this crate builds the closest
//! synthetic equivalents (substitutions documented in DESIGN.md §2):
//!
//! * [`digits`] — a procedural 28×28 digit renderer: LeNets train on it from
//!   scratch to the high-90s accuracy regime the paper reports on MNIST.
//! * [`features`] — class-conditional ReLU feature vectors standing in for
//!   the conv-stack output that feeds `fc6` in AlexNet/VGG-16, with a noise
//!   knob that controls the achievable (Bayes) accuracy so base accuracy can
//!   be calibrated to the paper's 57–68% regime.
//! * [`weights`] — full-size synthesized "trained" fc-layer weights with a
//!   Laplace-like magnitude distribution in the paper's typical ±0.3 range,
//!   for the storage/ratio experiments that never run inference.
//! * [`corrupt`] — seeded, replayable byte-level fault injection for the
//!   untrusted-container robustness harness (`docs/ROBUSTNESS.md`).

pub mod corrupt;
pub mod digits;
pub mod features;
pub mod weights;

pub use dsz_nn::Dataset;
