//! Streaming operator-pipeline encode — bounded-memory compressed model
//! generation with IO-overlapped container writes.
//!
//! The batch encoder materialized every layer's compressed blobs before
//! serializing any container byte, so peak memory grew with the whole
//! model. This module restructures encoding as a graph of composable
//! streaming **operators**:
//!
//! ```text
//! read_block ─ condense ─ quantize/entropy-code ─ block-align ─ container-write
//!  (PairArray)  (SZ chunk pipeline, dsz_sz::compress_stream)   (ContainerWriter)
//! ```
//!
//! Fixed-size chunks flow through the `dsz_tensor::pool` work queue and
//! finished chunks stream into the container while later chunks (and
//! later layers) are still compressing. Every buffer that outlives the
//! operator that produced it is accounted in a shared
//! [`ByteBudget`] ledger; the caller caps it with
//! [`EncodeStreamConfig::encode_bytes_budget`] (the encode-side analogue
//! of decode's `with_decoded_bytes_budget`) and the ledger's high-water
//! mark is reported as [`EncodeReport::peak_buffered_bytes`].
//!
//! Container bytes are **bit-identical** to the batch encoder's for
//! every worker count, chunk geometry, and budget — pinned by the
//! golden-bytes tests and `tests/streaming_encode.rs`. Buffer-ring
//! ownership and the budget's mandatory-floor rule are documented in
//! `docs/STREAMING_ENCODE.md`.

// The encode path handles caller data, not untrusted containers, but it
// shares the pipeline module's no-panic discipline.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::assessment::LayerAssessment;
use crate::codec::DataCodecKind;
use crate::optimizer::Plan;
use crate::pipeline::{ContainerWriter, EncodeReport, EncodedLayerReport, RecordMeta, VERSION_V4};
use crate::DeepSzError;
use dsz_lossless::{fnv1a, Fnv1a};
use dsz_sz::{ChunkSink, ErrorBound};
use dsz_tensor::budget::{default_window, ordered_pipeline, ByteBudget};
use std::io::Write;
use std::time::Instant;

/// Tuning for the streaming encode path.
#[derive(Debug, Clone, Copy, Default)]
pub struct EncodeStreamConfig {
    /// High-water cap, in bytes, on finished-but-unwritten encode buffers
    /// (chunk slots, retained quantized units, assembled record blobs) —
    /// the buffer-ring ledger. `None` is unbounded: layers fan out across
    /// the worker pool and the ledger merely *measures* the materialized
    /// peak.
    ///
    /// A bound is enforced exactly for every *optional* buffer: chunk
    /// slots and unit retention are admitted by compare-and-swap charges
    /// that never push the ledger above the cap. Buffers the format
    /// *requires* live (the head-of-line chunk slot, one record's
    /// data/index blobs while it is assembled and written) are charged
    /// unconditionally — the documented **mandatory floor** — so the
    /// ledger's high-water mark is at most `cap + floor` where floor is
    /// one record's blobs plus one chunk slot. Bounding the budget also
    /// serializes layer fan-out (window = 1): IO overlap is traded for
    /// the cap, mirroring the decode-side budget precedent.
    pub encode_bytes_budget: Option<usize>,
}

/// A stage in the encode operator graph. Operators receive finished byte
/// spans from the stage upstream; composition is by value (each operator
/// owns its downstream), so a layer's chain is built on the worker that
/// compresses it and torn down into its products when the span ends.
pub trait EncodeOperator {
    /// Accepts the next finished span.
    fn push(&mut self, bytes: &[u8]);
}

/// Adapter that lets an operator chain terminate an SZ chunk stream
/// ([`dsz_sz::SzConfig::compress_stream`] emits into a
/// [`dsz_sz::ChunkSink`]).
struct OperatorSink<'a, O: EncodeOperator>(&'a mut O);

impl<O: EncodeOperator> ChunkSink for OperatorSink<'_, O> {
    fn emit(&mut self, bytes: &[u8]) {
        self.0.push(bytes);
    }
}

/// Operator that folds every span through an incremental FNV-1a digest
/// and forwards it downstream — the container's per-blob checksums are
/// computed while the blob streams past, never by re-walking it.
struct FnvTap<O: EncodeOperator> {
    fnv: Fnv1a,
    inner: O,
}

impl<O: EncodeOperator> FnvTap<O> {
    fn new(inner: O) -> Self {
        Self {
            fnv: Fnv1a::new(),
            inner,
        }
    }

    fn into_parts(self) -> (u64, O) {
        (self.fnv.finish(), self.inner)
    }
}

impl<O: EncodeOperator> EncodeOperator for FnvTap<O> {
    fn push(&mut self, bytes: &[u8]) {
        self.fnv.update(bytes);
        self.inner.push(bytes);
    }
}

/// Terminal operator: collects spans into the record blob, charging the
/// ledger for each as it lands. The charge is unconditional — an
/// assembled record's bytes *must* live until the container writer
/// consumes them, so they are part of the budget's mandatory floor; their
/// arrival throttles the optional (try-charged) buffers upstream instead.
struct ChargedVec<'a> {
    buf: Vec<u8>,
    budget: &'a ByteBudget,
    charged: usize,
}

impl<'a> ChargedVec<'a> {
    fn new(budget: &'a ByteBudget) -> Self {
        Self {
            buf: Vec::new(),
            budget,
            charged: 0,
        }
    }

    /// Returns the collected bytes and how much the ledger was charged
    /// for them (released by the consumer once they are written out).
    fn into_parts(self) -> (Vec<u8>, usize) {
        (self.buf, self.charged)
    }
}

impl EncodeOperator for ChargedVec<'_> {
    fn push(&mut self, bytes: &[u8]) {
        self.budget.charge(bytes.len());
        self.charged += bytes.len();
        self.buf.extend_from_slice(bytes);
    }
}

/// One layer's finished products, handed from the compression workers to
/// the in-order container-write stage.
struct LayerArtifact {
    data_blob: Vec<u8>,
    data_fnv: u64,
    idx_blob: Vec<u8>,
    idx_fnv: u64,
    /// Ledger bytes to release once the record is written.
    charged: usize,
}

/// Streams a DSZM v4 container for `plan` straight into `w` with default
/// SZ configuration and an unbounded buffer budget. The bytes written
/// are exactly [`crate::pipeline::encode_with_plan`]'s container — that
/// function is now a thin wrapper that points this path at a `Vec`.
pub fn encode_to_writer<W: Write>(
    assessments: &[LayerAssessment],
    plan: &Plan,
    w: W,
) -> Result<EncodeReport, DeepSzError> {
    encode_to_writer_config(
        assessments,
        plan,
        &dsz_sz::SzConfig::default(),
        &EncodeStreamConfig::default(),
        w,
    )
}

/// [`encode_to_writer`] with explicit SZ and streaming configuration —
/// pin a stream format or chunk size, or cap the encode buffer ledger
/// with [`EncodeStreamConfig::encode_bytes_budget`].
pub fn encode_to_writer_config<W: Write>(
    assessments: &[LayerAssessment],
    plan: &Plan,
    sz: &dsz_sz::SzConfig,
    cfg: &EncodeStreamConfig,
    w: W,
) -> Result<EncodeReport, DeepSzError> {
    let (_, report) = encode_container_stream(assessments, plan, sz, cfg, VERSION_V4, w)?;
    Ok(report)
}

/// The streaming encode engine, generic over container version and
/// output writer. Layer compression fans out across the worker pool
/// (unbounded budget) or proceeds one layer at a time (bounded budget);
/// the container-write stage consumes artifacts in strict layer order on
/// the calling thread, so the byte stream is deterministic for any
/// worker count.
pub(crate) fn encode_container_stream<W: Write>(
    assessments: &[LayerAssessment],
    plan: &Plan,
    sz: &dsz_sz::SzConfig,
    cfg: &EncodeStreamConfig,
    version: u8,
    w: W,
) -> Result<(W, EncodeReport), DeepSzError> {
    assert_eq!(
        assessments.len(),
        plan.layers.len(),
        "plan/assessment mismatch"
    );
    let t0 = Instant::now();
    let n = plan.layers.len();
    let budget = ByteBudget::new(cfg.encode_bytes_budget);
    // A bounded ledger serializes layer fan-out: with several layers in
    // flight, each would force-charge its record blobs (mandatory floor)
    // and the combined floor could dwarf the cap. One layer at a time
    // keeps the floor at a single record.
    let window = if cfg.encode_bytes_budget.is_some() {
        1
    } else {
        default_window()
    };

    let mut writer = ContainerWriter::new(w, version, n)?;
    let mut reports: Vec<EncodedLayerReport> = Vec::with_capacity(n);
    let mut total_dense = 0usize;

    let produce = |i: usize| -> Result<LayerArtifact, DeepSzError> {
        let a = &assessments[i];
        let c = &plan.layers[i];
        let mut tap = FnvTap::new(ChargedVec::new(&budget));
        match c.codec {
            DataCodecKind::Sz => {
                sz.compress_stream(
                    &a.pair.data,
                    ErrorBound::Abs(c.eb),
                    &budget,
                    &mut OperatorSink(&mut tap),
                )?;
            }
            // Non-chunked codecs (ZFP) encode as one block; route the
            // finished blob through the same tap so checksumming and
            // ledger accounting stay uniform.
            kind => {
                let blob = kind
                    .instance(sz)
                    .encode(&a.pair.data, ErrorBound::Abs(c.eb))?;
                tap.push(&blob);
            }
        }
        let (data_fnv, charged) = tap.into_parts();
        let (data_blob, data_charged) = charged.into_parts();
        let idx_blob = a.index_codec.codec().compress(&a.pair.index);
        // The index blob must also live until the record is written:
        // mandatory floor, forced charge.
        budget.charge(idx_blob.len());
        let idx_fnv = fnv1a(&idx_blob);
        Ok(LayerArtifact {
            charged: data_charged + idx_blob.len(),
            data_fnv,
            idx_fnv,
            data_blob,
            idx_blob,
        })
    };

    let stats = ordered_pipeline(
        n,
        &budget,
        window,
        |_| 0,
        produce,
        |i, art: LayerArtifact| {
            let a = &assessments[i];
            let c = &plan.layers[i];
            writer.write_record(
                &RecordMeta {
                    name: &a.fc.name,
                    layer_index: a.fc.layer_index,
                    rows: a.pair.rows,
                    cols: a.pair.cols,
                    eb: c.eb,
                    data_codec: c.codec,
                    index_codec: a.index_codec,
                },
                &art.data_blob,
                art.data_fnv,
                &art.idx_blob,
                art.idx_fnv,
            )?;
            budget.release(art.charged);
            total_dense += a.pair.dense_bytes();
            reports.push(EncodedLayerReport {
                name: a.fc.name.clone(),
                eb: c.eb,
                data_codec: c.codec,
                index_codec: a.index_codec,
                data_bytes: art.data_blob.len(),
                index_bytes: art.idx_blob.len(),
                dense_bytes: a.pair.dense_bytes(),
                pair_bytes: a.pair.size_bytes(),
            });
            Ok(())
        },
    )?;

    let (w, total_bytes) = writer.finish()?;
    Ok((
        w,
        EncodeReport {
            layers: reports,
            total_bytes,
            total_dense_bytes: total_dense,
            compress_ms: t0.elapsed().as_secs_f64() * 1e3,
            peak_buffered_bytes: budget.high_water(),
            io_overlap_ratio: stats.overlap_ratio(),
        },
    ))
}
