//! Quota-accounted disk spill for decoded dense layers.
//!
//! Streaming inference ([`crate::streaming`]) re-decodes a layer every
//! forward pass; with a decoded-bytes budget it cannot even keep hot
//! layers around. [`SpillCache`] completes the larger-than-RAM story:
//! decoded layers live in an in-memory map bounded by a bytes quota, and
//! when the quota forces an eviction the dense payload is written to
//! disk — FNV-stamped — instead of being thrown away. The next access
//! re-loads the spill file (one read + one hash, typically far cheaper
//! than lossless + lossy decompression + reconstruction) rather than
//! re-decoding.
//!
//! # Integrity
//!
//! A spill file is trusted exactly as much as a container record: not at
//! all. Every file carries a header `"DSPL" | key u64 LE | element count
//! u64 LE | payload FNV-1a u64 LE` followed by the raw little-endian f32
//! payload, and is verified on read — a stomped, truncated, or swapped
//! file surfaces as [`DeepSzError::Corrupt`] with stage `"spill"`, never
//! as wrong weights (`docs/ROBUSTNESS.md`). Writes go to a temp file and
//! are renamed into place so a crash mid-spill leaves no plausible file.
//!
//! # Accounting
//!
//! The quota bounds the *cached* live bytes. Callers that are about to
//! materialize a layer call [`SpillCache::reserve`] first, so
//! `executing + cached ≤ quota` holds throughout a forward pass (a
//! single layer larger than the whole quota still has to materialize
//! alone to execute — it just never parks in the cache). Eviction is
//! LRU: the layer touched longest ago spills first.

// Spill files are untrusted input: every malformed byte must surface as
// a `DeepSzError`, never a panic (`docs/ROBUSTNESS.md`).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::pipeline::{corrupt, read_u64_le};
use crate::DeepSzError;
use dsz_lossless::fnv1a;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

const SPILL_MAGIC: &[u8; 4] = b"DSPL";
const SPILL_HEADER_LEN: usize = 4 + 8 + 8 + 8;
/// Hard cap on elements accepted from a spill-file header, mirroring the
/// container's dims cap: a corrupt length field must not size an
/// allocation.
const MAX_SPILL_ELEMS: usize = 1 << 28;

/// Counters describing what the cache did (monotonic since creation).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpillStats {
    /// Fetches served straight from the in-memory map.
    pub live_hits: u64,
    /// Fetches served by reading + verifying a spill file.
    pub rehydrates: u64,
    /// Evictions written to disk.
    pub spills: u64,
    /// Fetches that found nothing (caller must decode).
    pub misses: u64,
    /// Spill files that failed verification on read. The bad file is
    /// deleted and its key unregistered on the way out, so the *next*
    /// fetch is a clean miss and the caller's retry decodes from the
    /// container — which is what makes a spill-stage
    /// [`DeepSzError::Corrupt`] transient
    /// ([`DeepSzError::transient`](crate::DeepSzError::transient)).
    pub poisoned: u64,
}

#[derive(Debug, Default)]
struct Inner {
    /// Decoded payloads resident in memory, keyed by layer index.
    live: HashMap<usize, Vec<f32>>,
    /// Keys in recency order, oldest first (entries may be stale; the
    /// `live` map is authoritative).
    lru: VecDeque<usize>,
    live_bytes: usize,
    /// Keys with a spill file on disk.
    spilled: std::collections::HashSet<usize>,
    stats: SpillStats,
}

/// An LRU cache of decoded dense layers that evicts to FNV-stamped disk
/// files instead of discarding. See the module docs for the quota
/// contract.
#[derive(Debug)]
pub struct SpillCache {
    dir: PathBuf,
    quota: usize,
    inner: Mutex<Inner>,
}

impl SpillCache {
    /// Creates a cache spilling into `dir` (created if absent) with at
    /// most `bytes_quota` bytes of decoded payloads held in memory.
    pub fn new(dir: impl AsRef<Path>, bytes_quota: usize) -> Result<Self, DeepSzError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)
            .map_err(|e| DeepSzError::BadContainer(format!("spill dir {}: {e}", dir.display())))?;
        Ok(Self {
            dir,
            quota: bytes_quota,
            inner: Mutex::new(Inner::default()),
        })
    }

    /// Bytes of decoded payloads currently held in memory (≤ quota).
    pub fn live_bytes(&self) -> usize {
        self.lock().live_bytes
    }

    /// Snapshot of the activity counters.
    pub fn stats(&self) -> SpillStats {
        self.lock().stats
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A panic while holding the lock can only come from a bug in this
        // module, not from bad input; the data is still consistent enough
        // to read, so recover rather than propagate the poison.
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn file_for(&self, key: usize) -> PathBuf {
        self.dir.join(format!("layer-{key}.dspill"))
    }

    /// Removes and returns the cached payload for `key`, if any — from
    /// memory if live, else by reading and verifying its spill file. A
    /// hit transfers ownership (and its bytes) to the caller; re-park it
    /// with [`store`](Self::store) when done. Returns `Ok(None)` when the
    /// layer was never stored (or its spill file was already consumed),
    /// meaning the caller must decode from the container.
    pub fn fetch(&self, key: usize) -> Result<Option<Vec<f32>>, DeepSzError> {
        {
            let mut inner = self.lock();
            if let Some(payload) = inner.live.remove(&key) {
                inner.live_bytes -= payload.len() * 4;
                inner.stats.live_hits += 1;
                return Ok(Some(payload));
            }
            if !inner.spilled.contains(&key) {
                inner.stats.misses += 1;
                return Ok(None);
            }
        }
        // Rehydrate outside the lock; the file read dominates.
        let payload = match self.read_spill_file(key) {
            Ok(p) => p,
            Err(e) => {
                // Self-heal: a poisoned file would fail identically on
                // every future read, so delete it and forget the key.
                // The error still surfaces (the caller's current fetch
                // *did* fail), but a retry now misses cleanly and
                // decodes from the verified container instead.
                std::fs::remove_file(self.file_for(key)).ok();
                let mut inner = self.lock();
                inner.spilled.remove(&key);
                inner.stats.poisoned += 1;
                return Err(e);
            }
        };
        let mut inner = self.lock();
        inner.spilled.remove(&key);
        inner.stats.rehydrates += 1;
        std::fs::remove_file(self.file_for(key)).ok();
        Ok(Some(payload))
    }

    /// Evicts live entries (oldest first, spilling each to disk) until
    /// `incoming` more bytes would fit under the quota. Call before
    /// materializing a layer so `executing + cached` stays bounded.
    pub fn reserve(&self, incoming: usize) -> Result<(), DeepSzError> {
        loop {
            let victim = {
                let mut inner = self.lock();
                if inner.live_bytes + incoming <= self.quota || inner.live.is_empty() {
                    return Ok(());
                }
                loop {
                    match inner.lru.pop_front() {
                        Some(k) => {
                            if let Some(payload) = inner.live.remove(&k) {
                                inner.live_bytes -= payload.len() * 4;
                                break Some((k, payload));
                            }
                            // Stale recency entry for a key already taken.
                        }
                        None => break None,
                    }
                }
            };
            match victim {
                Some((key, payload)) => self.spill_to_disk(key, payload)?,
                None => return Ok(()),
            }
        }
    }

    /// Parks a decoded payload in the cache under `key`, evicting (to
    /// disk) as needed to respect the quota. A payload larger than the
    /// whole quota bypasses memory and spills straight to disk.
    pub fn store(&self, key: usize, payload: Vec<f32>) -> Result<(), DeepSzError> {
        let bytes = payload.len() * 4;
        if bytes > self.quota {
            // Drop any stale in-memory copy so a later fetch cannot serve
            // bytes that this store superseded.
            let mut inner = self.lock();
            if let Some(old) = inner.live.remove(&key) {
                inner.live_bytes -= old.len() * 4;
            }
            drop(inner);
            return self.spill_to_disk(key, payload);
        }
        self.reserve(bytes)?;
        let mut inner = self.lock();
        inner.spilled.remove(&key); // memory copy supersedes any old file
        if let Some(old) = inner.live.insert(key, payload) {
            inner.live_bytes -= old.len() * 4;
        }
        inner.live_bytes += bytes;
        inner.lru.push_back(key);
        Ok(())
    }

    fn spill_to_disk(&self, key: usize, payload: Vec<f32>) -> Result<(), DeepSzError> {
        let mut bytes = Vec::with_capacity(SPILL_HEADER_LEN + payload.len() * 4);
        bytes.extend_from_slice(SPILL_MAGIC);
        bytes.extend_from_slice(&(key as u64).to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        let mut body = Vec::with_capacity(payload.len() * 4);
        for v in &payload {
            body.extend_from_slice(&v.to_le_bytes());
        }
        bytes.extend_from_slice(&fnv1a(&body).to_le_bytes());
        bytes.extend_from_slice(&body);

        let path = self.file_for(key);
        let tmp = self.dir.join(format!("layer-{key}.dspill.tmp"));
        std::fs::write(&tmp, &bytes)
            .and_then(|()| std::fs::rename(&tmp, &path))
            .map_err(|e| {
                DeepSzError::BadContainer(format!("spill write {}: {e}", path.display()))
            })?;
        let mut inner = self.lock();
        inner.spilled.insert(key);
        inner.stats.spills += 1;
        Ok(())
    }

    fn read_spill_file(&self, key: usize) -> Result<Vec<f32>, DeepSzError> {
        let label = format!("<spill {key}>");
        let path = self.file_for(key);
        let bytes = std::fs::read(&path)
            .map_err(|e| corrupt(&label, "spill", format!("read {}: {e}", path.display())))?;
        if bytes.len() < SPILL_HEADER_LEN || &bytes[..4] != SPILL_MAGIC {
            return Err(corrupt(&label, "spill", "bad spill file header"));
        }
        let file_key =
            read_u64_le(&bytes, 4).ok_or_else(|| corrupt(&label, "spill", "truncated"))?;
        if file_key != key as u64 {
            return Err(corrupt(
                &label,
                "spill",
                format!("file stamped for layer {file_key}, expected {key}"),
            ));
        }
        let elems = read_u64_le(&bytes, 12)
            .and_then(|v| usize::try_from(v).ok())
            .filter(|&n| n <= MAX_SPILL_ELEMS)
            .ok_or_else(|| corrupt(&label, "spill", "element count out of range"))?;
        let want_fnv =
            read_u64_le(&bytes, 20).ok_or_else(|| corrupt(&label, "spill", "truncated"))?;
        let body = &bytes[SPILL_HEADER_LEN..];
        if body.len() != elems * 4 {
            return Err(corrupt(
                &label,
                "spill",
                format!(
                    "payload is {} bytes, header declares {}",
                    body.len(),
                    elems * 4
                ),
            ));
        }
        if fnv1a(body) != want_fnv {
            return Err(corrupt(&label, "spill", "payload fnv mismatch"));
        }
        let mut payload = Vec::with_capacity(elems);
        for chunk in body.chunks_exact(4) {
            let b: [u8; 4] = match chunk.try_into() {
                Ok(b) => b,
                Err(_) => return Err(corrupt(&label, "spill", "truncated payload")),
            };
            payload.push(f32::from_le_bytes(b));
        }
        Ok(payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn test_dir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "dsz-spill-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ))
    }

    #[test]
    fn store_fetch_roundtrips_in_memory() {
        let dir = test_dir("mem");
        let cache = SpillCache::new(&dir, 1 << 20).unwrap();
        let payload = vec![1.0f32, -2.5, 3.25];
        cache.store(7, payload.clone()).unwrap();
        assert_eq!(cache.live_bytes(), 12);
        assert_eq!(cache.fetch(7).unwrap().unwrap(), payload);
        assert_eq!(cache.live_bytes(), 0, "fetch transfers ownership");
        assert_eq!(cache.stats().live_hits, 1);
        assert_eq!(cache.stats().spills, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn quota_forces_spill_and_rehydrate_is_bit_identical() {
        let dir = test_dir("evict");
        // Quota fits exactly one 4-element payload.
        let cache = SpillCache::new(&dir, 16).unwrap();
        let a: Vec<f32> = vec![0.1, 0.2, 0.3, 0.4];
        let b: Vec<f32> = vec![9.0, 8.0, 7.0, 6.0];
        cache.store(0, a.clone()).unwrap();
        cache.store(1, b.clone()).unwrap(); // evicts 0 to disk
        assert!(cache.live_bytes() <= 16);
        assert_eq!(cache.stats().spills, 1);
        let back = cache.fetch(0).unwrap().unwrap();
        assert_eq!(
            back.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "rehydrated payload must be bit-identical"
        );
        assert_eq!(cache.stats().rehydrates, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn oversized_payload_spills_straight_to_disk() {
        let dir = test_dir("oversize");
        let cache = SpillCache::new(&dir, 8).unwrap();
        let big: Vec<f32> = (0..64).map(|i| i as f32).collect();
        cache.store(3, big.clone()).unwrap();
        assert_eq!(
            cache.live_bytes(),
            0,
            "oversized payload must not park in memory"
        );
        assert_eq!(cache.fetch(3).unwrap().unwrap(), big);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn poisoned_spill_file_is_rejected() {
        let dir = test_dir("poison");
        let cache = SpillCache::new(&dir, 8).unwrap();
        cache
            .store(5, (0..32).map(|i| i as f32 * 0.5).collect())
            .unwrap();
        let path = dir.join("layer-5.dspill");
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40; // stomp a payload byte
        std::fs::write(&path, &bytes).unwrap();
        let err = cache.fetch(5).unwrap_err();
        match err {
            DeepSzError::Corrupt { stage, .. } => assert_eq!(stage, "spill"),
            other => panic!("expected Corrupt at spill stage, got {other}"),
        }
        assert!(err.transient(), "spill corruption is the retryable kind");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn poisoned_spill_file_self_heals_to_a_clean_miss() {
        let dir = test_dir("heal");
        let cache = SpillCache::new(&dir, 8).unwrap();
        cache
            .store(5, (0..32).map(|i| i as f32 * 0.5).collect())
            .unwrap();
        let path = dir.join("layer-5.dspill");
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        assert!(cache.fetch(5).is_err(), "first fetch reports the damage");
        assert_eq!(cache.stats().poisoned, 1);
        assert!(!path.exists(), "the bad file must be deleted");
        // The retry is a clean miss: the caller re-decodes from the
        // container rather than re-reading a file that can never verify.
        assert_eq!(cache.fetch(5).unwrap(), None);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn spill_file_for_wrong_layer_is_rejected() {
        let dir = test_dir("swap");
        let cache = SpillCache::new(&dir, 0).unwrap();
        cache.store(1, vec![1.0f32; 8]).unwrap();
        cache.store(2, vec![2.0f32; 8]).unwrap();
        // Swap the files on disk: each now vouches for the other's key.
        let p1 = dir.join("layer-1.dspill");
        let p2 = dir.join("layer-2.dspill");
        let b1 = std::fs::read(&p1).unwrap();
        let b2 = std::fs::read(&p2).unwrap();
        std::fs::write(&p1, &b2).unwrap();
        std::fs::write(&p2, &b1).unwrap();
        for key in [1usize, 2] {
            match cache.fetch(key).unwrap_err() {
                DeepSzError::Corrupt { stage, .. } => assert_eq!(stage, "spill"),
                other => panic!("expected Corrupt at spill stage, got {other}"),
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reserve_keeps_headroom_under_quota() {
        let dir = test_dir("reserve");
        let cache = SpillCache::new(&dir, 64).unwrap();
        for k in 0..4 {
            cache.store(k, vec![k as f32; 4]).unwrap(); // 16 bytes each
        }
        assert_eq!(cache.live_bytes(), 64);
        cache.reserve(32).unwrap();
        assert!(cache.live_bytes() + 32 <= 64, "reserve must make room");
        assert!(cache.stats().spills >= 2);
        // Everything evicted is still reachable.
        for k in 0..4 {
            assert_eq!(cache.fetch(k).unwrap().unwrap(), vec![k as f32; 4]);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn zero_quota_spills_everything_and_still_serves() {
        let dir = test_dir("zero");
        let cache = SpillCache::new(&dir, 0).unwrap();
        for k in 0..3 {
            cache.store(k, vec![k as f32 + 0.5; 16]).unwrap();
        }
        assert_eq!(cache.live_bytes(), 0);
        assert_eq!(cache.stats().spills, 3);
        for k in 0..3 {
            assert_eq!(cache.fetch(k).unwrap().unwrap(), vec![k as f32 + 0.5; 16]);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
