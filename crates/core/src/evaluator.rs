//! Accuracy evaluation plumbing.
//!
//! Algorithm 1 needs many forward-pass accuracy tests. Because DeepSZ never
//! touches conv layers, the conv features of the test set can be computed
//! once and cached; every subsequent test only runs the fc head. This is the
//! same reason the paper's per-test cost is a forward pass, not a retrain.

use dsz_nn::{accuracy, Dataset, Network};

/// Something that can score a network's top-1 accuracy on the test set.
pub trait AccuracyEvaluator: Sync {
    /// Top-1 accuracy in `[0, 1]`.
    fn evaluate(&self, net: &Network) -> f64;

    /// Top-1 and top-k accuracy (k = 5 by default, like the paper).
    fn evaluate_topk(&self, net: &Network) -> (f64, f64);
}

/// Evaluates on a held-out [`Dataset`] in fixed-size batches.
#[derive(Debug, Clone)]
pub struct DatasetEvaluator {
    /// Test data (inputs must match the network's input shape).
    pub data: Dataset,
    /// Evaluation batch size.
    pub batch: usize,
    /// k for the top-k metric.
    pub topk: usize,
}

impl DatasetEvaluator {
    /// Standard configuration: batch 256, top-5.
    pub fn new(data: Dataset) -> Self {
        Self {
            data,
            batch: 256,
            topk: 5,
        }
    }
}

impl AccuracyEvaluator for DatasetEvaluator {
    fn evaluate(&self, net: &Network) -> f64 {
        accuracy(net, &self.data, self.batch, self.topk).0
    }

    fn evaluate_topk(&self, net: &Network) -> (f64, f64) {
        accuracy(net, &self.data, self.batch, self.topk)
    }
}

/// Splits `net` into conv prefix + fc head, runs the prefix over `data`
/// once, and returns the head network together with the cached feature
/// dataset. Evaluating the head on the features equals evaluating the full
/// network on the images.
pub fn cache_features(net: &Network, data: &Dataset, batch: usize) -> (Network, Dataset) {
    let (prefix, head) = net.split_feature_head();
    if prefix.layers.is_empty() {
        return (head, data.clone());
    }
    let feat_dim = prefix.output_shape();
    let mut x = Vec::with_capacity(data.len() * feat_dim.len());
    let mut lo = 0usize;
    while lo < data.len() {
        let hi = (lo + batch).min(data.len());
        let out = prefix.forward(&data.batch(lo, hi));
        x.extend_from_slice(&out.data);
        lo = hi;
    }
    let features = Dataset {
        shape: feat_dim,
        x,
        labels: data.labels.clone(),
    };
    (head, features)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsz_nn::{zoo, Arch, Scale};

    #[test]
    fn cached_features_reproduce_full_network_accuracy() {
        let net = zoo::build(Arch::LeNet5, Scale::Full, 3);
        let data = dsz_datagen_digits(200);
        let full_eval = DatasetEvaluator::new(data.clone());
        let (a_full, k_full) = full_eval.evaluate_topk(&net);
        let (head, features) = cache_features(&net, &data, 64);
        let head_eval = DatasetEvaluator::new(features);
        let (a_head, k_head) = head_eval.evaluate_topk(&head);
        assert!((a_full - a_head).abs() < 1e-9, "{a_full} vs {a_head}");
        assert!((k_full - k_head).abs() < 1e-9);
    }

    #[test]
    fn mlp_prefix_is_identity() {
        let net = zoo::build(Arch::LeNet300, Scale::Full, 5);
        let data = dsz_datagen_digits(50);
        let (head, features) = cache_features(&net, &data, 32);
        assert_eq!(features.x, data.x);
        assert_eq!(head.layers.len(), net.layers.len() - 1); // Flatten peeled off
    }

    // Tiny local digit generator to avoid a dev-dependency cycle.
    fn dsz_datagen_digits(n: usize) -> Dataset {
        use dsz_tensor::VolShape;
        let mut s = 42u64;
        let mut x = Vec::with_capacity(n * 784);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            for _ in 0..784 {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                x.push(((s >> 33) as f32 / (1u64 << 31) as f32).abs().min(1.0));
            }
            labels.push((i % 10) as u16);
        }
        Dataset {
            shape: VolShape { c: 1, h: 28, w: 28 },
            x,
            labels,
        }
    }
}
