//! Accuracy evaluation plumbing.
//!
//! Algorithm 1 needs many forward-pass accuracy tests. Because DeepSZ never
//! touches conv layers, the conv features of the test set can be computed
//! once and cached; every subsequent test only runs the fc head. This is the
//! same reason the paper's per-test cost is a forward pass, not a retrain.
//!
//! [`IncrementalEvaluator`] pushes the idea one layer further: *within* the
//! fc head, a test that perturbs layer ℓ leaves every activation upstream
//! of ℓ unchanged, so those are cached too ([`dsz_nn::PrefixCache`]) and a
//! test pays only the suffix from ℓ onward, into caller-owned scratch —
//! the engine behind incremental assessment (see `docs/ASSESSMENT.md`).

use dsz_nn::{accuracy, count_topk_hits, Dataset, DenseLayer, Network, PrefixCache, SuffixScratch};

/// Something that can score a network's top-1 accuracy on the test set.
pub trait AccuracyEvaluator: Sync {
    /// Top-1 accuracy in `[0, 1]`.
    fn evaluate(&self, net: &Network) -> f64;

    /// Top-1 and top-k accuracy (k = 5 by default, like the paper).
    fn evaluate_topk(&self, net: &Network) -> (f64, f64);

    /// The dataset and batch size behind this evaluator, when
    /// [`AccuracyEvaluator::evaluate`] is exactly a batched top-1 sweep of
    /// a dataset (`dsz_nn::accuracy` semantics). Assessment uses this to
    /// build its incremental engine; the `None` default keeps custom
    /// evaluators opaque and routes them through the full-evaluation
    /// reference path. Implementations returning `Some` promise that
    /// `evaluate(net)` equals the batched sweep bit for bit — incremental
    /// and full assessment are interchangeable only under that contract.
    fn dataset(&self) -> Option<(&Dataset, usize)> {
        None
    }
}

/// Evaluates on a held-out [`Dataset`] in fixed-size batches.
#[derive(Debug, Clone)]
pub struct DatasetEvaluator {
    /// Test data (inputs must match the network's input shape).
    pub data: Dataset,
    /// Evaluation batch size.
    pub batch: usize,
    /// k for the top-k metric.
    pub topk: usize,
}

impl DatasetEvaluator {
    /// Standard configuration: batch 256, top-5.
    pub fn new(data: Dataset) -> Self {
        Self {
            data,
            batch: 256,
            topk: 5,
        }
    }
}

impl AccuracyEvaluator for DatasetEvaluator {
    fn evaluate(&self, net: &Network) -> f64 {
        accuracy(net, &self.data, self.batch, self.topk).0
    }

    fn evaluate_topk(&self, net: &Network) -> (f64, f64) {
        accuracy(net, &self.data, self.batch, self.topk)
    }

    fn dataset(&self) -> Option<(&Dataset, usize)> {
        Some((&self.data, self.batch))
    }
}

/// Incremental accuracy evaluation for single-layer perturbations.
///
/// Built once per assessment: one full forward sweep over the evaluation
/// set records the activations entering every fc layer (and the baseline
/// outputs). Scoring a candidate reconstruction of layer ℓ then replays
/// only the suffix from ℓ, with the candidate's weights substituted by
/// reference — no network clone, no per-test allocation beyond the
/// caller's scratch growth. Results are bit-identical to evaluating a
/// mutated clone of the full network, because prefix activations are
/// byte-equal by construction and the suffix runs the same kernels
/// ([`dsz_nn::Network::forward_from`]).
pub struct IncrementalEvaluator<'a> {
    net: &'a Network,
    data: &'a Dataset,
    cache: PrefixCache,
    baseline_top1: f64,
}

impl<'a> IncrementalEvaluator<'a> {
    /// Runs the prefix sweep over `data` in batches of `batch`, caching
    /// activations at every fc-layer input boundary of `net`.
    pub fn new(net: &'a Network, data: &'a Dataset, batch: usize) -> Self {
        let boundaries: Vec<usize> = net.fc_layers().iter().map(|fc| fc.layer_index).collect();
        let cache = PrefixCache::build(net, data, batch, &boundaries);
        let baseline_top1 = if data.is_empty() {
            0.0
        } else {
            let mut hits = 0usize;
            let mut lo = 0usize;
            for bi in 0..cache.batch_count() {
                let (bn, feats, out) = cache.batch_output(bi);
                hits += count_topk_hits(out, feats, data.label_slice(lo, lo + bn), 1);
                lo += bn;
            }
            hits as f64 / data.len() as f64
        };
        Self {
            net,
            data,
            cache,
            baseline_top1,
        }
    }

    /// Baseline top-1 accuracy of the unperturbed network, measured from
    /// the cached outputs (identical to `evaluate(net)` on the dataset).
    pub fn baseline(&self) -> f64 {
        self.baseline_top1
    }

    /// Bytes held by the cached prefix activations.
    pub fn cached_bytes(&self) -> usize {
        self.cache.cached_bytes()
    }

    /// Top-1 accuracy with `candidate` substituted for the dense layer at
    /// `layer_index`. `scratch` is caller-owned so concurrent tests of
    /// different candidates each bring their own buffers.
    pub fn evaluate_candidate(
        &self,
        layer_index: usize,
        candidate: &DenseLayer,
        scratch: &mut SuffixScratch,
    ) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        let mut hits = 0usize;
        let mut lo = 0usize;
        for bi in 0..self.cache.batch_count() {
            let (bn, shape, input) = self.cache.batch_input(layer_index, bi);
            let out =
                self.net
                    .forward_from(layer_index, Some(candidate), bn, shape, input, scratch);
            let feats = self.cache.batch_output(bi).1;
            hits += count_topk_hits(out, feats, self.data.label_slice(lo, lo + bn), 1);
            lo += bn;
        }
        hits as f64 / self.data.len() as f64
    }
}

/// Splits `net` into conv prefix + fc head, runs the prefix over `data`
/// once, and returns the head network together with the cached feature
/// dataset. Evaluating the head on the features equals evaluating the full
/// network on the images.
pub fn cache_features(net: &Network, data: &Dataset, batch: usize) -> (Network, Dataset) {
    let (prefix, head) = net.split_feature_head();
    if prefix.layers.is_empty() {
        return (head, data.clone());
    }
    let feat_dim = prefix.output_shape();
    let mut x = Vec::with_capacity(data.len() * feat_dim.len());
    let mut lo = 0usize;
    while lo < data.len() {
        let hi = (lo + batch).min(data.len());
        let out = prefix.forward(&data.batch(lo, hi));
        x.extend_from_slice(&out.data);
        lo = hi;
    }
    let features = Dataset {
        shape: feat_dim,
        x,
        labels: data.labels.clone(),
    };
    (head, features)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsz_nn::{zoo, Arch, Scale};

    #[test]
    fn cached_features_reproduce_full_network_accuracy() {
        let net = zoo::build(Arch::LeNet5, Scale::Full, 3);
        let data = dsz_datagen_digits(200);
        let full_eval = DatasetEvaluator::new(data.clone());
        let (a_full, k_full) = full_eval.evaluate_topk(&net);
        let (head, features) = cache_features(&net, &data, 64);
        let head_eval = DatasetEvaluator::new(features);
        let (a_head, k_head) = head_eval.evaluate_topk(&head);
        assert!((a_full - a_head).abs() < 1e-9, "{a_full} vs {a_head}");
        assert!((k_full - k_head).abs() < 1e-9);
    }

    #[test]
    fn incremental_candidate_matches_full_clone_evaluation() {
        let net = zoo::build(Arch::LeNet5, Scale::Full, 7);
        let data = dsz_datagen_digits(120);
        let eval = DatasetEvaluator::new(data.clone());
        let ie = IncrementalEvaluator::new(&net, &data, eval.batch);
        assert_eq!(ie.baseline().to_bits(), eval.evaluate(&net).to_bits());
        let mut scratch = SuffixScratch::default();
        for fc in net.fc_layers() {
            let mut candidate = net.dense(fc.layer_index).clone();
            for (i, w) in candidate.w.data.iter_mut().enumerate() {
                *w += ((i % 5) as f32 - 2.0) * 2e-3;
            }
            let incr = ie.evaluate_candidate(fc.layer_index, &candidate, &mut scratch);
            let mut mutated = net.clone();
            *mutated.dense_mut(fc.layer_index) = candidate;
            assert_eq!(
                incr.to_bits(),
                eval.evaluate(&mutated).to_bits(),
                "layer {}",
                fc.name
            );
        }
    }

    #[test]
    fn mlp_prefix_is_identity() {
        let net = zoo::build(Arch::LeNet300, Scale::Full, 5);
        let data = dsz_datagen_digits(50);
        let (head, features) = cache_features(&net, &data, 32);
        assert_eq!(features.x, data.x);
        assert_eq!(head.layers.len(), net.layers.len() - 1); // Flatten peeled off
    }

    // Tiny local digit generator to avoid a dev-dependency cycle.
    fn dsz_datagen_digits(n: usize) -> Dataset {
        use dsz_tensor::VolShape;
        let mut s = 42u64;
        let mut x = Vec::with_capacity(n * 784);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            for _ in 0..784 {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                x.push(((s >> 33) as f32 / (1u64 << 31) as f32).abs().min(1.0));
            }
            labels.push((i % 10) as u16);
        }
        Dataset {
            shape: VolShape { c: 1, h: 28, w: 28 },
            x,
            labels,
        }
    }
}
