//! DeepSZ — the paper's primary contribution.
//!
//! An *accuracy-loss expected* DNN compression framework (§3) with four
//! steps:
//!
//! 1. **Network pruning** (delegated to [`dsz_prune`]).
//! 2. **Error bound assessment** ([`assessment`], Algorithm 1): per fc
//!    layer, find the feasible error-bound range by testing inference
//!    accuracy with only that layer reconstructed from a lossy
//!    compression, and collect `(error bound → accuracy degradation,
//!    compressed size)` samples — at each bound the candidate
//!    [`codec::DataCodec`]s (SZ, ZFP) compete and the smaller stream
//!    wins the point, making the paper's Fig. 2 comparison per layer.
//!    The default engine is *incremental* (prefix-activation caching +
//!    scratch-arena suffix evaluation, bit-identical to the preserved
//!    full path — `docs/ASSESSMENT.md`), since assessment is the
//!    pipeline's dominant cost.
//! 3. **Optimization of the error-bound configuration** ([`optimizer`],
//!    Algorithm 2): a knapsack-style dynamic program picks per-layer error
//!    bounds minimizing total size under the user's expected accuracy loss
//!    (or maximizing accuracy under a size budget — the expected-ratio
//!    mode), justified by the approximate additivity of per-layer
//!    degradations (Eq. 1, [`linearity`]).
//! 4. **Compressed model generation** ([`pipeline`]): each layer's
//!    `data` array compressed with its chosen codec at its chosen bound,
//!    best-fit lossless coding of the `index` array, packed into a
//!    self-describing container (DSZM v4: checksummed footer index over
//!    64-byte-aligned records) that records the per-layer codec id.
//!    Decoding reverses the three stages with per-stage timing
//!    (Fig. 7b); [`seek::SeekableContainer`] random-accesses single
//!    layers, and [`streaming::CompressedFcModel`] can spill decoded
//!    layers to disk under a memory quota ([`spill`]).

pub mod assessment;
pub mod codec;
pub mod encode_stream;
pub mod evaluator;
pub mod layer_cache;
pub mod linearity;
pub mod optimizer;
pub mod pipeline;
pub mod seek;
pub mod spill;
pub mod streaming;

pub use assessment::{
    assess_network, assess_network_full, AssessmentConfig, EbPoint, LayerAssessment,
};
pub use codec::{compete, DataCodec, DataCodecKind, SzCodec, ZfpCodec};
pub use encode_stream::{encode_to_writer, encode_to_writer_config, EncodeStreamConfig};
pub use evaluator::{cache_features, AccuracyEvaluator, DatasetEvaluator, IncrementalEvaluator};
pub use layer_cache::{CacheHandle, CacheStats, SharedLayerCache};
pub use linearity::{linearity_experiment, LinearityPoint};
pub use optimizer::{optimize_for_accuracy, optimize_for_size, ChosenLayer, Plan};
pub use pipeline::{
    apply_decoded, decode_model, encode_with_plan, encode_with_plan_config, encode_with_plan_v1,
    encode_with_plan_v2, encode_with_plan_v3, rewrite_layer_data, verify_container,
    CompressedModel, DecodeTiming, DecodedLayer, EncodeReport,
};
pub use seek::{ByteSource, FileSource, SeekableContainer};
pub use spill::{SpillCache, SpillStats};
pub use streaming::{CompressedFcModel, DecodePolicy, ForwardHook, StreamingStats};

use std::fmt;

/// Errors surfaced by the framework.
#[derive(Debug)]
pub enum DeepSzError {
    /// Underlying SZ codec failure.
    Sz(dsz_sz::SzError),
    /// Underlying lossless codec failure.
    Codec(dsz_lossless::CodecError),
    /// Underlying sparse-format failure.
    Sparse(dsz_sparse::SparseError),
    /// Invalid container bytes.
    BadContainer(String),
    /// A layer's record failed validation or decoding at a specific stage
    /// of the decode pipeline, so callers of untrusted containers learn
    /// *which* layer and *where* it broke (`docs/ROBUSTNESS.md` lists the
    /// stage vocabulary).
    Corrupt {
        /// Name of the layer whose record failed.
        layer: String,
        /// Decode stage that rejected it: `"validate"`, `"checksum"`,
        /// `"cross-check"`, `"lossless-index"`, `"lossy-data"`,
        /// `"reconstruct"`, or `"spill"` (a damaged on-disk spill file,
        /// [`spill::SpillCache`]).
        stage: &'static str,
        /// Underlying cause.
        detail: String,
    },
    /// Several layers failed to decode — the aggregate report produced by
    /// [`streaming::DecodePolicy::ReportBadLayers`]. Each element is the
    /// per-layer failure (usually [`DeepSzError::Corrupt`]).
    BadLayers(Vec<DeepSzError>),
    /// No feasible configuration under the requested constraint.
    Infeasible(String),
    /// A cancellable forward pass observed its abort flag between layers
    /// and stopped ([`streaming::CompressedFcModel::forward_cancellable`]);
    /// no output was produced. The serving layer maps this to its own
    /// cancellation error.
    Cancelled,
    /// The output writer failed while a container was being streamed to
    /// it ([`encode_stream::encode_to_writer`]); the container is
    /// incomplete and must be discarded.
    Io(std::io::Error),
}

impl fmt::Display for DeepSzError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeepSzError::Sz(e) => write!(f, "sz: {e}"),
            DeepSzError::Codec(e) => write!(f, "lossless: {e}"),
            DeepSzError::Sparse(e) => write!(f, "sparse: {e}"),
            DeepSzError::BadContainer(m) => write!(f, "container: {m}"),
            DeepSzError::Corrupt {
                layer,
                stage,
                detail,
            } => {
                write!(f, "layer {layer}: corrupt at {stage} stage: {detail}")
            }
            DeepSzError::BadLayers(errs) => {
                write!(f, "{} layer(s) failed to decode: ", errs.len())?;
                for (i, e) in errs.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{e}")?;
                }
                Ok(())
            }
            DeepSzError::Infeasible(m) => write!(f, "infeasible: {m}"),
            DeepSzError::Cancelled => write!(f, "forward pass cancelled"),
            DeepSzError::Io(e) => write!(f, "container write: {e}"),
        }
    }
}

impl DeepSzError {
    /// Whether retrying the failed operation could plausibly succeed
    /// without any external repair — the serving layer's retry gate
    /// (`docs/ROBUSTNESS.md` has the full classification table).
    ///
    /// Transient today:
    /// * [`DeepSzError::Corrupt`] at stage `"spill"` — a damaged on-disk
    ///   spill file. [`spill::SpillCache::fetch`] deletes the poisoned
    ///   file on the way out, so the retry decodes from the (verified)
    ///   container instead of re-reading the bad file.
    /// * [`DeepSzError::Cancelled`] — a cooperative abort, not a fault;
    ///   a live request caught in a batch whose *other* members all hung
    ///   up may legitimately re-run.
    ///
    /// Everything else (container corruption, codec failures, shape
    /// mismatches, I/O) is deterministic against the same bytes and
    /// retrying cannot help.
    pub fn transient(&self) -> bool {
        matches!(
            self,
            DeepSzError::Corrupt { stage: "spill", .. } | DeepSzError::Cancelled
        )
    }

    /// `!self.transient()` — retrying is pointless; the input itself is
    /// bad.
    pub fn permanent(&self) -> bool {
        !self.transient()
    }
}

impl std::error::Error for DeepSzError {}

impl From<std::io::Error> for DeepSzError {
    fn from(e: std::io::Error) -> Self {
        DeepSzError::Io(e)
    }
}

impl From<dsz_sz::SzError> for DeepSzError {
    fn from(e: dsz_sz::SzError) -> Self {
        DeepSzError::Sz(e)
    }
}

impl From<dsz_lossless::CodecError> for DeepSzError {
    fn from(e: dsz_lossless::CodecError) -> Self {
        DeepSzError::Codec(e)
    }
}

impl From<dsz_sparse::SparseError> for DeepSzError {
    fn from(e: dsz_sparse::SparseError) -> Self {
        DeepSzError::Sparse(e)
    }
}
