//! The accuracy-loss linearity experiment (Eq. 1, §3.4, Figure 6).
//!
//! DeepSZ's optimizer rests on the observation that per-layer accuracy
//! degradations add approximately linearly when every fc layer is
//! compressed simultaneously (for overall loss ≲ 2%). This module measures
//! both sides: the *expected* loss (Σ of single-layer degradations) and the
//! *actual* loss (all layers reconstructed at once), for arbitrary
//! error-bound combinations.

use crate::evaluator::AccuracyEvaluator;
use crate::DeepSzError;
use dsz_nn::Network;
use dsz_sparse::PairArray;
use dsz_sz::{ErrorBound, SzConfig};

/// One (expected, actual) accuracy-loss sample — a point in Figure 6.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearityPoint {
    /// Σ of the measured single-layer degradations.
    pub expected: f64,
    /// Measured degradation with all layers compressed together.
    pub actual: f64,
    /// The per-layer error bounds that produced this point.
    pub eb_index: usize,
}

/// Reconstructs one layer of `net` through an SZ round trip at `eb`.
fn reconstructed_dense(
    net: &Network,
    layer_index: usize,
    eb: f64,
    sz: &SzConfig,
) -> Result<Vec<f32>, DeepSzError> {
    let d = net.dense(layer_index);
    let pair = PairArray::from_dense(&d.w.data, d.w.rows, d.w.cols);
    let blob = sz.compress(&pair.data, ErrorBound::Abs(eb))?;
    let data = dsz_sz::decompress(&blob)?;
    Ok(pair.with_data(data)?.to_dense()?)
}

/// Runs the Figure-6 experiment: for each combination (one error bound per
/// fc layer), measure expected vs actual loss.
///
/// `combos[i]` holds one eb per fc layer (ordered like `net.fc_layers()`).
pub fn linearity_experiment(
    net: &Network,
    eval: &dyn AccuracyEvaluator,
    combos: &[Vec<f64>],
    sz: &SzConfig,
) -> Result<Vec<LinearityPoint>, DeepSzError> {
    let fcs = net.fc_layers();
    let baseline = eval.evaluate(net);

    // Memoize single-layer degradations per (layer, eb).
    let mut single: Vec<Vec<(f64, f64)>> = vec![Vec::new(); fcs.len()];
    let mut points = Vec::with_capacity(combos.len());
    for (ci, combo) in combos.iter().enumerate() {
        assert_eq!(combo.len(), fcs.len(), "one eb per fc layer");
        let mut expected = 0f64;
        let mut joint = net.clone();
        for (li, (&eb, fc)) in combo.iter().zip(&fcs).enumerate() {
            let dense = reconstructed_dense(net, fc.layer_index, eb, sz)?;
            // Single-layer degradation (cached).
            let cached = single[li].iter().find(|(e, _)| (*e - eb).abs() < 1e-15);
            let delta = match cached {
                Some(&(_, d)) => d,
                None => {
                    let mut solo = net.clone();
                    solo.dense_mut(fc.layer_index).w.data = dense.clone();
                    let d = baseline - eval.evaluate(&solo);
                    single[li].push((eb, d));
                    d
                }
            };
            expected += delta.max(0.0);
            joint.dense_mut(fc.layer_index).w.data = dense;
        }
        let actual = baseline - eval.evaluate(&joint);
        points.push(LinearityPoint {
            expected,
            actual,
            eb_index: ci,
        });
    }
    Ok(points)
}

/// Least-squares slope and R² of actual vs expected — the Figure 6 check
/// that the relationship is ≈ the identity line.
pub fn fit_line(points: &[LinearityPoint]) -> (f64, f64) {
    let n = points.len() as f64;
    if points.is_empty() {
        return (0.0, 0.0);
    }
    let mx = points.iter().map(|p| p.expected).sum::<f64>() / n;
    let my = points.iter().map(|p| p.actual).sum::<f64>() / n;
    let mut sxx = 0f64;
    let mut sxy = 0f64;
    let mut syy = 0f64;
    for p in points {
        let dx = p.expected - mx;
        let dy = p.actual - my;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    // Degenerate spreads (including identical points whose variance is
    // only rounding noise) have no meaningful fit.
    let scale = (mx * mx + my * my).max(1e-30);
    if sxx <= 1e-12 * scale || syy <= 1e-12 * scale {
        return (0.0, 0.0);
    }
    let slope = sxy / sxx;
    let r2 = (sxy * sxy) / (sxx * syy);
    (slope, r2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_line_on_perfect_identity() {
        let pts: Vec<LinearityPoint> = (0..10)
            .map(|i| LinearityPoint {
                expected: i as f64 * 0.001,
                actual: i as f64 * 0.001,
                eb_index: i,
            })
            .collect();
        let (slope, r2) = fit_line(&pts);
        assert!((slope - 1.0).abs() < 1e-12);
        assert!((r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fit_line_degenerate() {
        assert_eq!(fit_line(&[]), (0.0, 0.0));
        let flat = vec![
            LinearityPoint {
                expected: 0.1,
                actual: 0.1,
                eb_index: 0
            };
            3
        ];
        assert_eq!(fit_line(&flat), (0.0, 0.0));
    }
}
