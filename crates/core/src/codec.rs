//! The codec-agnostic lossy data path: [`DataCodec`] and its registry.
//!
//! The paper picks SZ over ZFP after a head-to-head per-layer comparison
//! (§4, Fig. 2) — but that comparison is made *once, globally*. This
//! module turns the data-array compressor into the same pluggable shape
//! the lossless index path already has ([`dsz_lossless::best_fit`]):
//! every error-bounded compressor of condensed `f32` arrays implements
//! [`DataCodec`], streams are self-describing, and a stable one-byte
//! [`DataCodecKind`] id recorded per layer in the DSZM container (v2+) lets
//! *each layer* keep whichever codec wins its own comparison
//! (Weightless-style encodings differ enough per layer that the global
//! winner is not always the local one).
//!
//! * [`SzCodec`] wraps [`dsz_sz`] — every stream format ([`SzFormat`])
//!   behind one `SzConfig`, decode dispatching on the stream's own
//!   version byte.
//! * [`ZfpCodec`] wraps [`dsz_zfp`] — the paper's competing
//!   fixed-accuracy compressor.
//!
//! Encode-side callers ([`crate::assessment`], [`crate::pipeline`])
//! instantiate codecs via [`DataCodecKind::instance`] so the SZ candidate
//! inherits the caller's [`SzConfig`]; decode-side callers
//! ([`crate::pipeline`], [`crate::streaming`]) dispatch through
//! [`DataCodecKind::codec`], which needs no configuration because every
//! stream is self-describing.

// Decode dispatches on untrusted stream bytes: malformed input must
// surface as an error, never a panic (`docs/ROBUSTNESS.md`).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::DeepSzError;
use dsz_sz::{ErrorBound, SzConfig};
use std::sync::OnceLock;

/// An error-bounded lossy compressor for condensed 1-D `f32` arrays.
///
/// Implementations must be self-describing on the wire (decode takes only
/// bytes) and must honour the resolved absolute bound pointwise:
/// `|x − x'| ≤ eb` for every finite element.
pub trait DataCodec: Sync + Send {
    /// Which registry entry this codec is (its stable wire id).
    fn kind(&self) -> DataCodecKind;
    /// Compresses `data` under `bound`.
    fn encode(&self, data: &[f32], bound: ErrorBound) -> Result<Vec<u8>, DeepSzError>;
    /// Decompresses a stream produced by [`DataCodec::encode`].
    fn decode(&self, bytes: &[u8]) -> Result<Vec<f32>, DeepSzError>;
    /// [`DataCodec::decode`] into a caller-owned buffer (cleared and
    /// refilled, capacity reused) so repeated-decode loops — the
    /// incremental assessment engine decodes one stream per sampled
    /// `(layer, eb)` point — allocate only on buffer growth. Output must
    /// be byte-identical to [`DataCodec::decode`]; the default
    /// implementation guarantees that by delegating to it, at the cost of
    /// the allocation.
    fn decode_into(&self, bytes: &[u8], out: &mut Vec<f32>) -> Result<(), DeepSzError> {
        *out = self.decode(bytes)?;
        Ok(())
    }
    /// Element count the stream's header *declares* it decodes to, read
    /// without decompressing anything. Untrusted-container validation
    /// cross-checks this against the record's dims before any decode work
    /// is scheduled, so a mutated length field is rejected instead of
    /// sizing an allocation (`docs/ROBUSTNESS.md`).
    fn declared_elems(&self, bytes: &[u8]) -> Result<usize, DeepSzError>;
}

/// Identifies a lossy data codec inside serialized containers — the data
/// path's analogue of [`dsz_lossless::LosslessKind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataCodecKind {
    /// [`SzCodec`]
    Sz,
    /// [`ZfpCodec`]
    Zfp,
}

impl DataCodecKind {
    /// All kinds, in assessment's default candidate order (ties on
    /// compressed size keep the earlier entry, so SZ — the paper's
    /// global winner — is the tie-break).
    pub const ALL: [DataCodecKind; 2] = [DataCodecKind::Sz, DataCodecKind::Zfp];

    /// Stable one-byte wire id (the DSZM v2+ per-layer `data_codec` field).
    pub fn id(self) -> u8 {
        match self {
            DataCodecKind::Sz => 0,
            DataCodecKind::Zfp => 1,
        }
    }

    /// Inverse of [`DataCodecKind::id`].
    pub fn from_id(id: u8) -> Result<Self, DeepSzError> {
        match id {
            0 => Ok(DataCodecKind::Sz),
            1 => Ok(DataCodecKind::Zfp),
            _ => Err(DeepSzError::BadContainer(format!(
                "unknown data codec id {id}"
            ))),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            DataCodecKind::Sz => "sz",
            DataCodecKind::Zfp => "zfp",
        }
    }

    /// The default-configuration codec — the decode-side registry.
    /// Streams are self-describing, so decoding never needs more than
    /// this.
    pub fn codec(self) -> &'static dyn DataCodec {
        static SZ: OnceLock<SzCodec> = OnceLock::new();
        static ZFP: ZfpCodec = ZfpCodec;
        match self {
            DataCodecKind::Sz => SZ.get_or_init(|| SzCodec {
                config: SzConfig::default(),
            }),
            DataCodecKind::Zfp => &ZFP,
        }
    }

    /// An encode-side instance carrying the caller's SZ configuration
    /// (ZFP has no tunables beyond the bound).
    pub fn instance(self, sz: &SzConfig) -> Box<dyn DataCodec> {
        match self {
            DataCodecKind::Sz => Box::new(SzCodec { config: *sz }),
            DataCodecKind::Zfp => Box::new(ZfpCodec),
        }
    }
}

/// Runs the per-layer codec competition: every candidate encodes `data`
/// under `bound`, and the smallest stream wins — ties keep the earliest
/// candidate, so with the default ordering SZ (the paper's global
/// winner) is the tie-break. Returns the winner's index in `codecs` and
/// its encoded stream. This is the single definition of the competition
/// rule, shared by [`crate::assessment`] and the bench harness.
/// A candidate whose encode errors is skipped — a codec that cannot
/// represent some input (future Bloomier-style implementations may
/// legitimately refuse) should lose the competition, not abort it. The
/// first error is surfaced only when *every* candidate fails.
pub fn compete(
    codecs: &[Box<dyn DataCodec>],
    data: &[f32],
    bound: ErrorBound,
) -> Result<(usize, Vec<u8>), DeepSzError> {
    let mut best: Option<(usize, Vec<u8>)> = None;
    let mut first_err: Option<DeepSzError> = None;
    for (ci, codec) in codecs.iter().enumerate() {
        match codec.encode(data, bound) {
            Ok(blob) => {
                if best.as_ref().is_none_or(|(_, b)| blob.len() < b.len()) {
                    best = Some((ci, blob));
                }
            }
            Err(e) => first_err = first_err.or(Some(e)),
        }
    }
    match (best, first_err) {
        (Some(win), _) => Ok(win),
        (None, Some(e)) => Err(e),
        (None, None) => Err(DeepSzError::Infeasible(
            "codec competition needs at least one candidate".into(),
        )),
    }
}

/// [`DataCodec`] over the SZ pipeline ([`dsz_sz`]), in whatever stream
/// format and tuning `config` selects. Decode accepts every SZ stream
/// version via the version-byte dispatch.
#[derive(Debug, Clone, Copy)]
pub struct SzCodec {
    /// Full SZ tuning, including [`dsz_sz::SzFormat`] and chunk geometry.
    pub config: SzConfig,
}

impl DataCodec for SzCodec {
    fn kind(&self) -> DataCodecKind {
        DataCodecKind::Sz
    }

    fn encode(&self, data: &[f32], bound: ErrorBound) -> Result<Vec<u8>, DeepSzError> {
        Ok(self.config.compress(data, bound)?)
    }

    fn decode(&self, bytes: &[u8]) -> Result<Vec<f32>, DeepSzError> {
        Ok(dsz_sz::decompress(bytes)?)
    }

    fn decode_into(&self, bytes: &[u8], out: &mut Vec<f32>) -> Result<(), DeepSzError> {
        Ok(dsz_sz::decompress_into(bytes, out)?)
    }

    fn declared_elems(&self, bytes: &[u8]) -> Result<usize, DeepSzError> {
        Ok(dsz_sz::info(bytes)?.n)
    }
}

/// [`DataCodec`] over the ZFP-style fixed-accuracy compressor
/// ([`dsz_zfp`]). The bound resolves to ZFP's absolute tolerance.
#[derive(Debug, Clone, Copy, Default)]
pub struct ZfpCodec;

impl DataCodec for ZfpCodec {
    fn kind(&self) -> DataCodecKind {
        DataCodecKind::Zfp
    }

    fn encode(&self, data: &[f32], bound: ErrorBound) -> Result<Vec<u8>, DeepSzError> {
        Ok(dsz_zfp::compress(data, bound.resolve(data))?)
    }

    fn decode(&self, bytes: &[u8]) -> Result<Vec<f32>, DeepSzError> {
        Ok(dsz_zfp::decompress(bytes)?)
    }

    fn decode_into(&self, bytes: &[u8], out: &mut Vec<f32>) -> Result<(), DeepSzError> {
        Ok(dsz_zfp::decompress_into(bytes, out)?)
    }

    fn declared_elems(&self, bytes: &[u8]) -> Result<usize, DeepSzError> {
        Ok(dsz_zfp::info(bytes)?.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn weights(n: usize, seed: u64) -> Vec<f32> {
        let mut s = seed;
        (0..n)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (((s >> 11) as f64 / (1u64 << 53) as f64) as f32 - 0.5) * 0.2
            })
            .collect()
    }

    #[test]
    fn ids_roundtrip_and_are_stable() {
        assert_eq!(DataCodecKind::Sz.id(), 0);
        assert_eq!(DataCodecKind::Zfp.id(), 1);
        for kind in DataCodecKind::ALL {
            assert_eq!(DataCodecKind::from_id(kind.id()).unwrap(), kind);
            assert_eq!(kind.codec().kind(), kind);
        }
        assert!(DataCodecKind::from_id(7).is_err());
    }

    #[test]
    fn both_codecs_roundtrip_within_bound() {
        let data = weights(5000, 3);
        for kind in DataCodecKind::ALL {
            let codec = kind.codec();
            let blob = codec.encode(&data, ErrorBound::Abs(1e-3)).unwrap();
            let back = codec.decode(&blob).unwrap();
            assert_eq!(back.len(), data.len(), "{}", kind.name());
            let err = dsz_sz::max_abs_error(&data, &back);
            assert!(err <= 1e-3 * (1.0 + 1e-9), "{}: err {err}", kind.name());
        }
    }

    #[test]
    fn decode_into_matches_decode_byte_for_byte() {
        let data = weights(3000, 17);
        let mut out = vec![5.0f32; 7]; // dirty, wrongly sized
        for kind in DataCodecKind::ALL {
            let codec = kind.codec();
            let blob = codec.encode(&data, ErrorBound::Abs(1e-3)).unwrap();
            let want = codec.decode(&blob).unwrap();
            codec.decode_into(&blob, &mut out).unwrap();
            assert_eq!(out.len(), want.len(), "{}", kind.name());
            assert!(
                out.iter()
                    .zip(&want)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "{}: decode_into diverged from decode",
                kind.name()
            );
            let cap = out.capacity();
            codec.decode_into(&blob, &mut out).unwrap();
            assert_eq!(out.capacity(), cap, "{}: steady-state realloc", kind.name());
        }
    }

    #[test]
    fn streams_are_self_describing_not_cross_decodable() {
        // Each codec's magic rejects the other's stream: the per-layer id
        // in the container is authoritative, but a mixed-up dispatch
        // errors instead of producing garbage.
        let data = weights(256, 9);
        let sz = DataCodecKind::Sz
            .codec()
            .encode(&data, ErrorBound::Abs(1e-3))
            .unwrap();
        let zfp = DataCodecKind::Zfp
            .codec()
            .encode(&data, ErrorBound::Abs(1e-3))
            .unwrap();
        assert!(DataCodecKind::Sz.codec().decode(&zfp).is_err());
        assert!(DataCodecKind::Zfp.codec().decode(&sz).is_err());
    }

    #[test]
    fn zfp_rejects_bad_bounds_like_sz() {
        let data = weights(64, 1);
        for kind in DataCodecKind::ALL {
            assert!(kind.codec().encode(&data, ErrorBound::Abs(0.0)).is_err());
            assert!(kind
                .codec()
                .encode(&data, ErrorBound::Abs(f64::NAN))
                .is_err());
        }
    }
}
