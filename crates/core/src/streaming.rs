//! Memory-bounded inference over a compressed model — the paper's stated
//! future-work direction (§7: "use DeepSZ for improving GPU memory
//! utilization").
//!
//! Instead of decoding every fc layer up front, [`CompressedFcModel`] keeps
//! the container bytes resident and materializes one dense layer at a time
//! during the forward pass, dropping it as soon as its matmul is done. Peak
//! weight memory becomes `max(layer)` instead of `sum(layers)` — for
//! VGG-16's fc stack that is a 411 MB high-water mark instead of 494 MB,
//! and with the compressed container as the only persistent copy, resident
//! model state shrinks by the full compression ratio.

use crate::pipeline::{decode_model, CompressedModel, DecodedLayer};
use crate::DeepSzError;
use dsz_lossless::bits::read_varint;
use dsz_lossless::{CodecError, LosslessKind};
use dsz_nn::{Batch, Layer, Network};
use dsz_sparse::PairArray;

/// One fc layer kept in compressed form.
#[derive(Debug, Clone)]
struct CompressedLayer {
    name: String,
    layer_index: usize,
    rows: usize,
    cols: usize,
    codec: LosslessKind,
    sz_blob: Vec<u8>,
    idx_blob: Vec<u8>,
}

impl CompressedLayer {
    fn decode(&self) -> Result<DecodedLayer, DeepSzError> {
        let index = self.codec.codec().decompress(&self.idx_blob)?;
        let data = dsz_sz::decompress(&self.sz_blob)?;
        if data.len() != index.len() {
            return Err(DeepSzError::BadContainer("data/index length mismatch".into()));
        }
        let pair = PairArray { rows: self.rows, cols: self.cols, data, index };
        Ok(DecodedLayer {
            name: self.name.clone(),
            layer_index: self.layer_index,
            dense: pair.to_dense()?,
            rows: self.rows,
            cols: self.cols,
        })
    }

    fn compressed_bytes(&self) -> usize {
        self.sz_blob.len() + self.idx_blob.len()
    }
}

/// A network whose fc weights live in DeepSZ-compressed form; dense
/// weights are materialized per layer only while that layer executes.
#[derive(Debug, Clone)]
pub struct CompressedFcModel {
    /// The non-fc skeleton (fc layers carry empty weight buffers).
    skeleton: Network,
    layers: Vec<CompressedLayer>,
}

/// Memory accounting from a streaming forward pass.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StreamingStats {
    /// Peak bytes of dense fc weights resident at any instant.
    pub peak_dense_bytes: usize,
    /// Sum of dense fc weights (what eager decoding would hold).
    pub total_dense_bytes: usize,
    /// Persistent compressed bytes.
    pub compressed_bytes: usize,
}

impl CompressedFcModel {
    /// Builds a streaming model from a network skeleton and its compressed
    /// container. The skeleton's fc weights are discarded (replaced by
    /// empty buffers) — only shapes and non-fc layers are kept.
    pub fn new(net: &Network, model: &CompressedModel) -> Result<Self, DeepSzError> {
        let mut skeleton = net.clone();
        let layers = parse_layers(model)?;
        for l in &layers {
            if l.layer_index >= skeleton.layers.len() {
                return Err(DeepSzError::BadContainer(format!(
                    "layer index {} out of range",
                    l.layer_index
                )));
            }
            let Layer::Dense(d) = &mut skeleton.layers[l.layer_index] else {
                return Err(DeepSzError::BadContainer(format!(
                    "container layer {} targets a non-dense network layer",
                    l.name
                )));
            };
            if d.name != l.name || d.w.rows != l.rows || d.w.cols != l.cols {
                return Err(DeepSzError::BadContainer(format!(
                    "layer {} does not match network layer {}",
                    l.name, d.name
                )));
            }
            // Release the dense weights; the compressed blob is canonical.
            d.w.data = Vec::new();
        }
        Ok(Self { skeleton, layers })
    }

    /// Forward pass, materializing one fc layer at a time. Returns the
    /// output batch and the memory accounting.
    pub fn forward(&self, x: &Batch) -> Result<(Batch, StreamingStats), DeepSzError> {
        let mut stats = StreamingStats {
            compressed_bytes: self.layers.iter().map(CompressedLayer::compressed_bytes).sum(),
            ..Default::default()
        };
        let mut cur = x.clone();
        for (i, layer) in self.skeleton.layers.iter().enumerate() {
            match layer {
                Layer::Dense(d) if d.w.data.is_empty() => {
                    let c = self
                        .layers
                        .iter()
                        .find(|l| l.layer_index == i)
                        .ok_or_else(|| {
                            DeepSzError::BadContainer(format!("no blob for fc layer {i}"))
                        })?;
                    let decoded = c.decode()?;
                    let dense_bytes = decoded.dense.len() * 4;
                    stats.peak_dense_bytes = stats.peak_dense_bytes.max(dense_bytes);
                    stats.total_dense_bytes += dense_bytes;
                    let mut live = d.clone();
                    live.w.data = decoded.dense;
                    let (next, _) = Layer::Dense(live).forward(&cur);
                    cur = next; // dense weights dropped here
                }
                other => {
                    let (next, _) = other.forward(&cur);
                    cur = next;
                }
            }
        }
        Ok((cur, stats))
    }

    /// Eagerly decodes everything into a plain [`Network`] (the
    /// conventional decode path, for comparison).
    pub fn materialize(&self) -> Result<Network, DeepSzError> {
        let mut net = self.skeleton.clone();
        for c in &self.layers {
            let decoded = c.decode()?;
            let Layer::Dense(d) = &mut net.layers[c.layer_index] else {
                unreachable!("validated at construction")
            };
            d.w.data = decoded.dense;
        }
        Ok(net)
    }
}

/// Parses the container into per-layer compressed records without decoding
/// the payloads (mirrors [`decode_model`]'s framing).
fn parse_layers(model: &CompressedModel) -> Result<Vec<CompressedLayer>, DeepSzError> {
    let bytes = &model.bytes;
    if bytes.len() < 5 || &bytes[..4] != b"DSZM" {
        return Err(DeepSzError::BadContainer("bad magic".into()));
    }
    let mut pos = 5usize;
    let n_layers = read_varint(bytes, &mut pos)? as usize;
    let mut out = Vec::with_capacity(n_layers);
    for _ in 0..n_layers {
        let name_len = read_varint(bytes, &mut pos)? as usize;
        let name_end = pos.checked_add(name_len).ok_or(CodecError::Truncated)?;
        let name = std::str::from_utf8(bytes.get(pos..name_end).ok_or(CodecError::Truncated)?)
            .map_err(|_| DeepSzError::BadContainer("bad layer name".into()))?
            .to_string();
        pos = name_end;
        let layer_index = read_varint(bytes, &mut pos)? as usize;
        let rows = read_varint(bytes, &mut pos)? as usize;
        let cols = read_varint(bytes, &mut pos)? as usize;
        pos += 8; // stored eb, not needed here
        let codec = LosslessKind::from_id(*bytes.get(pos).ok_or(CodecError::Truncated)?)?;
        pos += 1;
        let sz_len = read_varint(bytes, &mut pos)? as usize;
        let sz_end = pos.checked_add(sz_len).ok_or(CodecError::Truncated)?;
        let sz_blob = bytes.get(pos..sz_end).ok_or(CodecError::Truncated)?.to_vec();
        pos = sz_end;
        let idx_len = read_varint(bytes, &mut pos)? as usize;
        let idx_end = pos.checked_add(idx_len).ok_or(CodecError::Truncated)?;
        let idx_blob = bytes.get(pos..idx_end).ok_or(CodecError::Truncated)?.to_vec();
        pos = idx_end;
        out.push(CompressedLayer { name, layer_index, rows, cols, codec, sz_blob, idx_blob });
    }
    Ok(out)
}

/// Consistency check used by tests: streaming and eager decode agree.
pub fn streaming_matches_eager(
    net: &Network,
    model: &CompressedModel,
    probe: &Batch,
) -> Result<bool, DeepSzError> {
    let streaming = CompressedFcModel::new(net, model)?;
    let (out_s, _) = streaming.forward(probe)?;
    let mut eager = net.clone();
    let (decoded, _) = decode_model(model)?;
    crate::pipeline::apply_decoded(&mut eager, &decoded)?;
    Ok(out_s == eager.forward(probe))
}
