//! Memory-bounded inference over a compressed model — the paper's stated
//! future-work direction (§7: "use DeepSZ for improving GPU memory
//! utilization").
//!
//! Instead of decoding every fc layer up front, [`CompressedFcModel`] keeps
//! the container bytes resident and materializes one dense layer at a time
//! during the forward pass, dropping it as soon as its matmul is done. Peak
//! weight memory becomes `max(layer)` instead of `sum(layers)` — for
//! VGG-16's fc stack that is a 411 MB high-water mark instead of 494 MB,
//! and with the compressed container as the only persistent copy, resident
//! model state shrinks by the full compression ratio.
//!
//! # Prefetch
//!
//! By default the forward pass **prefetch-decodes layer *k+1* on a worker
//! thread while layer *k*'s matmul runs**, hiding decode latency behind
//! compute (the same overlap the paper uses across GPUs). Prefetch holds at
//! most two dense layers at once, so the peak becomes
//! `max(layer_k + layer_{k+1})`; call [`CompressedFcModel::with_prefetch`]
//! with `false` to trade the overlap back for the strict `max(layer)`
//! bound.

use crate::pipeline::{
    decode_model, decode_record, parse_records, CompressedModel, DecodedLayer, RawLayerRecord,
};
use crate::DeepSzError;
use dsz_lossless::LosslessKind;
use dsz_nn::{Batch, Layer, Network};

/// One fc layer kept in compressed form.
#[derive(Debug, Clone)]
struct CompressedLayer {
    name: String,
    layer_index: usize,
    rows: usize,
    cols: usize,
    codec: LosslessKind,
    sz_blob: Vec<u8>,
    idx_blob: Vec<u8>,
}

impl CompressedLayer {
    fn decode(&self) -> Result<DecodedLayer, DeepSzError> {
        // Same three-stage decode as the eager path; timing discarded.
        let record = RawLayerRecord {
            name: &self.name,
            layer_index: self.layer_index,
            rows: self.rows,
            cols: self.cols,
            codec: self.codec,
            sz_blob: &self.sz_blob,
            idx_blob: &self.idx_blob,
        };
        decode_record(&record).map(|(layer, _)| layer)
    }

    fn compressed_bytes(&self) -> usize {
        self.sz_blob.len() + self.idx_blob.len()
    }

    fn dense_bytes(&self) -> usize {
        self.rows * self.cols * 4
    }
}

/// A network whose fc weights live in DeepSZ-compressed form; dense
/// weights are materialized per layer only while that layer executes.
#[derive(Debug, Clone)]
pub struct CompressedFcModel {
    /// The non-fc skeleton (fc layers carry empty weight buffers).
    skeleton: Network,
    layers: Vec<CompressedLayer>,
    prefetch: bool,
}

/// Memory accounting from a streaming forward pass.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StreamingStats {
    /// Peak bytes of dense fc weights resident at any instant (with
    /// prefetch on, the executing layer plus the one being decoded).
    pub peak_dense_bytes: usize,
    /// Sum of dense fc weights (what eager decoding would hold).
    pub total_dense_bytes: usize,
    /// Persistent compressed bytes.
    pub compressed_bytes: usize,
}

impl CompressedFcModel {
    /// Builds a streaming model from a network skeleton and its compressed
    /// container. The skeleton's fc weights are discarded (replaced by
    /// empty buffers) — only shapes and non-fc layers are kept. Prefetch
    /// is on by default.
    pub fn new(net: &Network, model: &CompressedModel) -> Result<Self, DeepSzError> {
        let mut skeleton = net.clone();
        let layers: Vec<CompressedLayer> = parse_records(&model.bytes)?
            .into_iter()
            .map(|r| CompressedLayer {
                name: r.name.to_string(),
                layer_index: r.layer_index,
                rows: r.rows,
                cols: r.cols,
                codec: r.codec,
                sz_blob: r.sz_blob.to_vec(),
                idx_blob: r.idx_blob.to_vec(),
            })
            .collect();
        for l in &layers {
            if l.layer_index >= skeleton.layers.len() {
                return Err(DeepSzError::BadContainer(format!(
                    "layer index {} out of range",
                    l.layer_index
                )));
            }
            let Layer::Dense(d) = &mut skeleton.layers[l.layer_index] else {
                return Err(DeepSzError::BadContainer(format!(
                    "container layer {} targets a non-dense network layer",
                    l.name
                )));
            };
            if d.name != l.name || d.w.rows != l.rows || d.w.cols != l.cols {
                return Err(DeepSzError::BadContainer(format!(
                    "layer {} does not match network layer {}",
                    l.name, d.name
                )));
            }
            // Release the dense weights; the compressed blob is canonical.
            d.w.data = Vec::new();
        }
        Ok(Self {
            skeleton,
            layers,
            prefetch: true,
        })
    }

    /// Enables or disables decode prefetch (see the module docs for the
    /// memory/latency trade).
    pub fn with_prefetch(mut self, on: bool) -> Self {
        self.prefetch = on;
        self
    }

    /// Forward pass, materializing fc layers on demand. Returns the output
    /// batch and the memory accounting.
    pub fn forward(&self, x: &Batch) -> Result<(Batch, StreamingStats), DeepSzError> {
        if self.prefetch {
            self.forward_prefetch(x)
        } else {
            self.forward_serial(x)
        }
    }

    /// Looks up the compressed blob backing skeleton layer `i`.
    fn compressed_for(&self, i: usize) -> Result<&CompressedLayer, DeepSzError> {
        self.layers
            .iter()
            .find(|l| l.layer_index == i)
            .ok_or_else(|| DeepSzError::BadContainer(format!("no blob for fc layer {i}")))
    }

    /// One-layer-at-a-time forward: strict `max(layer)` dense peak.
    fn forward_serial(&self, x: &Batch) -> Result<(Batch, StreamingStats), DeepSzError> {
        let mut stats = StreamingStats {
            compressed_bytes: self
                .layers
                .iter()
                .map(CompressedLayer::compressed_bytes)
                .sum(),
            ..Default::default()
        };
        let mut cur = x.clone();
        for (i, layer) in self.skeleton.layers.iter().enumerate() {
            match layer {
                Layer::Dense(d) if d.w.data.is_empty() => {
                    let decoded = self.compressed_for(i)?.decode()?;
                    let dense_bytes = decoded.dense.len() * 4;
                    stats.peak_dense_bytes = stats.peak_dense_bytes.max(dense_bytes);
                    stats.total_dense_bytes += dense_bytes;
                    let mut live = d.clone();
                    live.w.data = decoded.dense;
                    let (next, _) = Layer::Dense(live).forward(&cur);
                    cur = next; // dense weights dropped here
                }
                other => {
                    let (next, _) = other.forward(&cur);
                    cur = next;
                }
            }
        }
        Ok((cur, stats))
    }

    /// Pipelined forward: while layer *k*'s matmul runs, a scoped worker
    /// thread decodes layer *k+1* (lossless + SZ + reconstruction — the SZ
    /// chunks additionally fan out internally). Peak dense residency is
    /// one executing layer plus one in-flight decode.
    fn forward_prefetch(&self, x: &Batch) -> Result<(Batch, StreamingStats), DeepSzError> {
        let mut stats = StreamingStats {
            compressed_bytes: self
                .layers
                .iter()
                .map(CompressedLayer::compressed_bytes)
                .sum(),
            ..Default::default()
        };
        // Compressed fc layers in execution order.
        let order: Vec<usize> = self
            .skeleton
            .layers
            .iter()
            .enumerate()
            .filter_map(|(i, l)| match l {
                Layer::Dense(d) if d.w.data.is_empty() => Some(i),
                _ => None,
            })
            .collect();
        for &i in &order {
            self.compressed_for(i)?; // fail before spawning anything
        }

        // The decode worker runs concurrently with the matmul thread, so
        // the caller's worker budget is split between them (each side at
        // least 1). Setting the pin inside the spawned thread also
        // propagates a `with_workers` override, whose thread-local would
        // otherwise be unset there.
        let budget = dsz_tensor::parallel::worker_count();
        if budget < 2 {
            // No second thread to overlap with: honoring a 1-thread pin
            // means not spawning a concurrent decode at all.
            return self.forward_serial(x);
        }
        let decode_budget = budget / 2;
        let compute_budget = budget - decode_budget;
        std::thread::scope(|s| {
            let mut pending: Option<
                std::thread::ScopedJoinHandle<'_, Result<DecodedLayer, DeepSzError>>,
            > = None;
            let mut next_ord = 0usize;
            if let Some(&i0) = order.first() {
                let c = self.compressed_for(i0).expect("validated above");
                pending = Some(s.spawn(move || {
                    dsz_tensor::parallel::with_workers(decode_budget, || c.decode())
                }));
                next_ord = 1;
            }
            let mut cur = x.clone();
            for layer in &self.skeleton.layers {
                match layer {
                    Layer::Dense(d) if d.w.data.is_empty() => {
                        let handle = pending.take().expect("prefetch scheduled");
                        let decoded = handle.join().map_err(|_| {
                            DeepSzError::BadContainer("decode worker panicked".into())
                        })??;
                        // Kick off the next decode before this matmul.
                        let mut inflight = 0usize;
                        if let Some(&inext) = order.get(next_ord) {
                            let c = self.compressed_for(inext).expect("validated above");
                            pending = Some(s.spawn(move || {
                                dsz_tensor::parallel::with_workers(decode_budget, || c.decode())
                            }));
                            inflight = c.dense_bytes();
                            next_ord += 1;
                        }
                        let dense_bytes = decoded.dense.len() * 4;
                        stats.peak_dense_bytes = stats.peak_dense_bytes.max(dense_bytes + inflight);
                        stats.total_dense_bytes += dense_bytes;
                        let mut live = d.clone();
                        live.w.data = decoded.dense;
                        cur = forward_sharing_budget(
                            &Layer::Dense(live),
                            &cur,
                            pending.is_some(),
                            compute_budget,
                        ); // dense weights dropped here
                    }
                    other => {
                        // Non-fc layers also share cores with an in-flight
                        // decode (e.g. the conv stack before the first fc).
                        cur =
                            forward_sharing_budget(other, &cur, pending.is_some(), compute_budget);
                    }
                }
            }
            Ok((cur, stats))
        })
    }

    /// Eagerly decodes everything into a plain [`Network`] (the
    /// conventional decode path, for comparison).
    pub fn materialize(&self) -> Result<Network, DeepSzError> {
        let mut net = self.skeleton.clone();
        for c in &self.layers {
            let decoded = c.decode()?;
            let Layer::Dense(d) = &mut net.layers[c.layer_index] else {
                unreachable!("validated at construction")
            };
            d.w.data = decoded.dense;
        }
        Ok(net)
    }
}

/// Runs one layer forward, pinned to `compute_budget` workers while a
/// prefetch decode is in flight (the decode side holds the rest of the
/// budget) and at full width otherwise.
fn forward_sharing_budget(
    layer: &Layer,
    cur: &Batch,
    decode_in_flight: bool,
    compute_budget: usize,
) -> Batch {
    if decode_in_flight {
        dsz_tensor::parallel::with_workers(compute_budget, || layer.forward(cur)).0
    } else {
        layer.forward(cur).0
    }
}

/// Consistency check used by tests: streaming and eager decode agree.
pub fn streaming_matches_eager(
    net: &Network,
    model: &CompressedModel,
    probe: &Batch,
) -> Result<bool, DeepSzError> {
    let streaming = CompressedFcModel::new(net, model)?;
    let (out_s, _) = streaming.forward(probe)?;
    let mut eager = net.clone();
    let (decoded, _) = decode_model(model)?;
    crate::pipeline::apply_decoded(&mut eager, decoded)?;
    Ok(out_s == eager.forward(probe))
}
