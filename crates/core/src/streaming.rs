//! Memory-bounded inference over a compressed model — the paper's stated
//! future-work direction (§7: "use DeepSZ for improving GPU memory
//! utilization").
//!
//! Instead of decoding every fc layer up front, [`CompressedFcModel`] keeps
//! the container bytes resident and materializes dense layers during the
//! forward pass, dropping each as soon as its matmul is done. Peak weight
//! memory becomes `max(layer)` instead of `sum(layers)` — for VGG-16's fc
//! stack that is a 411 MB high-water mark instead of 494 MB, and with the
//! compressed container as the only persistent copy, resident model state
//! shrinks by the full compression ratio.
//!
//! # Prefetch
//!
//! By default the forward pass **prefetch-decodes the next fc layer on a
//! pool worker while the current layer's matmul runs**, hiding decode
//! latency behind compute (the same overlap the paper uses across GPUs).
//! Prefetch is budgeted on two axes:
//!
//! * [`CompressedFcModel::with_prefetch_depth`] — how many layers ahead may
//!   be decoding/decoded beyond the executing one (default 1; deep fc
//!   stacks hide more latency at depth ≥ 2). Depth 0 is fully serial and
//!   preserves the strict `max(layer)` bound.
//! * [`CompressedFcModel::with_decoded_bytes_budget`] — a cap on the dense
//!   bytes live at once (executing layer + every in-flight prefetch). A
//!   prefetch that would exceed the cap is simply not scheduled; the layer
//!   decodes inline when its turn comes, so the cap is never violated by
//!   prefetching (a single layer larger than the cap still has to
//!   materialize alone to execute).
//!
//! Decode tasks run on the persistent worker pool
//! ([`dsz_tensor::pool::scope`]); joining a task that no pool worker picked
//! up steals it inline, so prefetch degrades gracefully to serial order on
//! busy or single-core hosts. [`CompressedFcModel::with_prefetch`] with
//! `false` is shorthand for depth 0.

// Streaming decodes untrusted container blobs on pool workers: malformed
// input must come back as an `Err`, never a panic (`docs/ROBUSTNESS.md`).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::codec::DataCodecKind;
use crate::layer_cache::CacheHandle;
use crate::pipeline::{
    decode_model, decode_record, parse_records, CompressedModel, DecodedLayer, RawLayerRecord,
};
use crate::spill::{SpillCache, SpillStats};
use crate::DeepSzError;
use dsz_lossless::{Fnv1a, LosslessKind};
use dsz_nn::{dense_forward_with_weights, Batch, Layer, Network};
use dsz_tensor::pool;
use std::collections::VecDeque;
use std::path::Path;
use std::sync::Arc;

/// Between-layer abort probe for [`CompressedFcModel::forward_cancellable`]
/// — returns `true` when the pass should stop.
pub type AbortFlag<'a> = &'a (dyn Fn() -> bool + Sync);

/// `Err(Cancelled)` when the abort probe fires.
fn check_abort(abort: Option<AbortFlag<'_>>) -> Result<(), DeepSzError> {
    match abort {
        Some(f) if f() => Err(DeepSzError::Cancelled),
        _ => Ok(()),
    }
}

/// Test/harness instrumentation point on the forward path: probed once
/// per fc layer, right before that layer's weights are resolved, on
/// every forward schedule (serial, spill, shared-cache, prefetch). An
/// `Err` aborts the pass with that error, exactly as a real decode
/// failure at that layer would — which is the point: a seeded fault plan
/// (`dsz_serve::chaos`) implements this trait to inject decode errors,
/// slow layers, and mid-batch cancellations deterministically, without
/// touching container bytes. Production models simply leave the hook
/// unset ([`CompressedFcModel::with_forward_hook`]); the happy path pays
/// one `Option` check per layer.
pub trait ForwardHook: std::fmt::Debug + Send + Sync {
    /// Called before skeleton layer `layer_index` executes. Returning an
    /// `Err` fails the forward pass with it.
    fn before_layer(&self, layer_index: usize) -> Result<(), DeepSzError>;
}

/// What a forward pass (or [`CompressedFcModel::materialize`]) does when a
/// layer's record fails to decode.
///
/// Inference cannot proceed without the layer either way — the policy
/// controls how much the caller learns from the failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DecodePolicy {
    /// Return the first layer's error immediately (default).
    #[default]
    FailFast,
    /// After the first failure, decode every remaining layer too (on the
    /// error path only — the happy path pays nothing) and return
    /// [`DeepSzError::BadLayers`] aggregating *all* failures, so one pass
    /// over a damaged container enumerates every bad layer.
    ReportBadLayers,
}

/// One fc layer kept in compressed form.
#[derive(Debug, Clone)]
struct CompressedLayer {
    name: String,
    layer_index: usize,
    rows: usize,
    cols: usize,
    /// Error bound the layer was encoded at (metadata; decode ignores it).
    eb: f64,
    data_codec: DataCodecKind,
    codec: LosslessKind,
    data_blob: Vec<u8>,
    idx_blob: Vec<u8>,
    /// FNV-1a over `layer_index ‖ data_blob ‖ idx_blob` — the
    /// content-addressed part of this layer's shared-cache key, computed
    /// once at construction (`crate::layer_cache`).
    record_fnv: u64,
}

impl CompressedLayer {
    fn decode(&self) -> Result<DecodedLayer, DeepSzError> {
        // Same three-stage decode as the eager path (the data stage
        // dispatches through the DataCodec registry); timing discarded.
        let record = RawLayerRecord {
            name: &self.name,
            layer_index: self.layer_index,
            rows: self.rows,
            cols: self.cols,
            eb: self.eb,
            data_codec: self.data_codec,
            codec: self.codec,
            data_blob: &self.data_blob,
            idx_blob: &self.idx_blob,
        };
        decode_record(&record).map(|(layer, _)| layer)
    }

    fn compressed_bytes(&self) -> usize {
        self.data_blob.len() + self.idx_blob.len()
    }

    fn dense_bytes(&self) -> usize {
        self.rows * self.cols * 4
    }
}

/// A network whose fc weights live in DeepSZ-compressed form; dense
/// weights are materialized per layer only while that layer executes.
#[derive(Debug, Clone)]
pub struct CompressedFcModel {
    /// The non-fc skeleton (fc layers carry empty weight buffers).
    skeleton: Network,
    layers: Vec<CompressedLayer>,
    /// Layers ahead of the executing one that may be decoding/decoded.
    prefetch_depth: usize,
    /// Cap on live dense bytes (executing + in-flight prefetches).
    decoded_bytes_budget: Option<usize>,
    /// What to do when a layer fails to decode.
    decode_policy: DecodePolicy,
    /// Disk-backed cache for decoded layers ([`Self::with_spill_dir`]);
    /// shared across clones so forwards reuse each other's spills.
    spill: Option<Arc<SpillCache>>,
    /// Handle into the process-wide decoded-layer cache
    /// ([`Self::with_shared_cache`]); when set, forwards run the shared
    /// serial schedule and hot layers decode once across all tenants.
    shared: Option<CacheHandle>,
    /// Test/harness fault-injection hook, probed once per fc layer on
    /// every forward schedule ([`Self::with_forward_hook`]).
    hook: Option<Arc<dyn ForwardHook>>,
}

/// Memory accounting from a streaming forward pass.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StreamingStats {
    /// Peak bytes of dense fc weights resident at any instant (the
    /// executing layer plus every in-flight prefetch decode).
    pub peak_dense_bytes: usize,
    /// Sum of dense fc weights (what eager decoding would hold).
    pub total_dense_bytes: usize,
    /// Persistent compressed bytes.
    pub compressed_bytes: usize,
}

impl CompressedFcModel {
    /// Builds a streaming model from a network skeleton and its compressed
    /// container. The skeleton's fc weights are discarded (replaced by
    /// empty buffers) — only shapes and non-fc layers are kept. Prefetch
    /// depth defaults to 1 with no decoded-bytes cap.
    pub fn new(net: &Network, model: &CompressedModel) -> Result<Self, DeepSzError> {
        let mut skeleton = net.clone();
        let layers: Vec<CompressedLayer> = parse_records(&model.bytes)?
            .into_iter()
            .map(|r| {
                let mut fnv = Fnv1a::with_tag(r.layer_index as u64);
                fnv.update(r.data_blob);
                fnv.update(r.idx_blob);
                CompressedLayer {
                    name: r.name.to_string(),
                    layer_index: r.layer_index,
                    rows: r.rows,
                    cols: r.cols,
                    eb: r.eb,
                    data_codec: r.data_codec,
                    codec: r.codec,
                    data_blob: r.data_blob.to_vec(),
                    idx_blob: r.idx_blob.to_vec(),
                    record_fnv: fnv.finish(),
                }
            })
            .collect();
        for l in &layers {
            if l.layer_index >= skeleton.layers.len() {
                return Err(DeepSzError::BadContainer(format!(
                    "layer index {} out of range",
                    l.layer_index
                )));
            }
            let Layer::Dense(d) = &mut skeleton.layers[l.layer_index] else {
                return Err(DeepSzError::BadContainer(format!(
                    "container layer {} targets a non-dense network layer",
                    l.name
                )));
            };
            if d.name != l.name || d.w.rows != l.rows || d.w.cols != l.cols {
                return Err(DeepSzError::BadContainer(format!(
                    "layer {} does not match network layer {}",
                    l.name, d.name
                )));
            }
            // Release the dense weights; the compressed blob is canonical.
            d.w.data = Vec::new();
        }
        Ok(Self {
            skeleton,
            layers,
            prefetch_depth: 1,
            decoded_bytes_budget: None,
            decode_policy: DecodePolicy::default(),
            spill: None,
            shared: None,
            hook: None,
        })
    }

    /// Enables (depth 1) or disables (depth 0) decode prefetch — shorthand
    /// for [`Self::with_prefetch_depth`].
    pub fn with_prefetch(self, on: bool) -> Self {
        self.with_prefetch_depth(usize::from(on))
    }

    /// Sets how many fc layers ahead of the executing one may be
    /// decoding/decoded concurrently. Depth 0 decodes inline (strict
    /// `max(layer)` dense peak); depth `d ≥ 1` holds at most the executing
    /// layer plus `d` prefetches, subject to the decoded-bytes budget.
    pub fn with_prefetch_depth(mut self, depth: usize) -> Self {
        self.prefetch_depth = depth;
        self
    }

    /// Caps the dense bytes live at once (executing layer + in-flight
    /// prefetches). `None` removes the cap. Prefetches that would exceed
    /// the cap wait; execution itself is never blocked.
    pub fn with_decoded_bytes_budget(mut self, bytes: Option<usize>) -> Self {
        self.decoded_bytes_budget = bytes;
        self
    }

    /// Sets the per-layer decode failure policy (see [`DecodePolicy`]).
    pub fn with_decode_policy(mut self, policy: DecodePolicy) -> Self {
        self.decode_policy = policy;
        self
    }

    /// Attaches a disk spill cache: decoded layers are parked in memory up
    /// to `bytes_quota` bytes, evicted layers are written FNV-stamped into
    /// `dir` and re-loaded instead of re-decoded on the next use
    /// ([`crate::spill`]). Forward passes run the serial path — the cache
    /// itself bounds live dense bytes at `quota + executing layer`, which
    /// is the point — and stay bit-identical to the in-RAM path
    /// (spill files round-trip exact f32 bits). Typically paired with a
    /// quota sized to the hot layers of a model larger than RAM.
    pub fn with_spill_dir(
        mut self,
        dir: impl AsRef<Path>,
        bytes_quota: usize,
    ) -> Result<Self, DeepSzError> {
        self.spill = Some(Arc::new(SpillCache::new(dir, bytes_quota)?));
        Ok(self)
    }

    /// Activity counters of the attached spill cache, if any.
    pub fn spill_stats(&self) -> Option<SpillStats> {
        self.spill.as_deref().map(SpillCache::stats)
    }

    /// Attaches a handle into a process-wide
    /// [`SharedLayerCache`](crate::layer_cache::SharedLayerCache):
    /// forwards run the serial schedule and each fc layer's decoded
    /// weights are looked up under `(model, layer, record_fnv)` — hot
    /// layers decode **once across every model and request** sharing the
    /// cache, cold layers fall back to the spill cache (when attached)
    /// and then to a container decode. Results are bit-identical to the
    /// uncached serial path at every quota, including 0 (the cache hands
    /// back the same decoded bits or nothing). This is the constructor
    /// the serving layer (`dsz_serve`) uses; `docs/SERVING.md` has the
    /// quota semantics.
    pub fn with_shared_cache(mut self, handle: CacheHandle) -> Self {
        self.shared = Some(handle);
        self
    }

    /// The shared-cache handle, if one is attached.
    pub fn shared_cache(&self) -> Option<&CacheHandle> {
        self.shared.as_ref()
    }

    /// Attaches (or with `None`, detaches) a [`ForwardHook`] — the
    /// deterministic fault-injection point the chaos harness uses.
    /// Clones share the hook; a model loaded for production leaves it
    /// unset.
    pub fn with_forward_hook(mut self, hook: Option<Arc<dyn ForwardHook>>) -> Self {
        self.hook = hook;
        self
    }

    /// Probes the attached hook for layer `i`; a hook error fails the
    /// pass exactly as a decode failure at that layer would (it does
    /// *not* route through [`Self::decode_failure`] — the injected error
    /// is the report).
    fn probe_hook(&self, i: usize) -> Result<(), DeepSzError> {
        match &self.hook {
            Some(h) => h.before_layer(i),
            None => Ok(()),
        }
    }

    /// Error path of [`DecodePolicy::ReportBadLayers`]: given the first
    /// failure, decode every *other* layer (results discarded) and fold
    /// every failure into one [`DeepSzError::BadLayers`] report. Under
    /// [`DecodePolicy::FailFast`] the first error passes through as-is.
    fn decode_failure(&self, failed_layer_index: usize, first: DeepSzError) -> DeepSzError {
        if self.decode_policy == DecodePolicy::FailFast {
            return first;
        }
        let mut errs = vec![first];
        for c in &self.layers {
            if c.layer_index == failed_layer_index {
                continue;
            }
            if let Err(e) = c.decode() {
                errs.push(e);
            }
        }
        DeepSzError::BadLayers(errs)
    }

    /// Forward pass, materializing fc layers on demand. Returns the output
    /// batch and the memory accounting.
    pub fn forward(&self, x: &Batch) -> Result<(Batch, StreamingStats), DeepSzError> {
        self.forward_inner(x, None)
    }

    /// [`Self::forward`] with a between-layer abort probe: `abort` is
    /// evaluated before each layer executes, and a `true` stops the pass
    /// with [`DeepSzError::Cancelled`]. The serving layer's micro-batcher
    /// passes "every request in this batch is cancelled" here, so a
    /// batch whose tenants all hung up stops paying for decodes and
    /// matmuls at the next layer boundary.
    pub fn forward_cancellable(
        &self,
        x: &Batch,
        abort: AbortFlag<'_>,
    ) -> Result<(Batch, StreamingStats), DeepSzError> {
        self.forward_inner(x, Some(abort))
    }

    fn forward_inner(
        &self,
        x: &Batch,
        abort: Option<AbortFlag<'_>>,
    ) -> Result<(Batch, StreamingStats), DeepSzError> {
        if let Some(handle) = self.shared.clone() {
            // Shared cache implies the serial schedule: cross-request
            // reuse, not prefetch, is what hides decode latency here.
            self.forward_shared(x, &handle, abort)
        } else if let Some(cache) = self.spill.clone() {
            // Spill implies the serial schedule: the cache, not prefetch,
            // is what bounds live dense bytes.
            self.forward_spill(x, &cache, abort)
        } else if self.prefetch_depth == 0 {
            self.forward_serial(x, abort)
        } else {
            self.forward_prefetch(x, abort)
        }
    }

    /// Looks up the compressed blob backing skeleton layer `i`.
    fn compressed_for(&self, i: usize) -> Result<&CompressedLayer, DeepSzError> {
        self.layers
            .iter()
            .find(|l| l.layer_index == i)
            .ok_or_else(|| DeepSzError::BadContainer(format!("no blob for fc layer {i}")))
    }

    /// One-layer-at-a-time forward: strict `max(layer)` dense peak.
    fn forward_serial(
        &self,
        x: &Batch,
        abort: Option<AbortFlag<'_>>,
    ) -> Result<(Batch, StreamingStats), DeepSzError> {
        let mut stats = StreamingStats {
            compressed_bytes: self
                .layers
                .iter()
                .map(CompressedLayer::compressed_bytes)
                .sum(),
            ..Default::default()
        };
        let mut cur = x.clone();
        for (i, layer) in self.skeleton.layers.iter().enumerate() {
            check_abort(abort)?;
            match layer {
                Layer::Dense(d) if d.w.data.is_empty() => {
                    self.probe_hook(i)?;
                    let decoded = self
                        .compressed_for(i)?
                        .decode()
                        .map_err(|e| self.decode_failure(i, e))?;
                    let dense_bytes = decoded.dense.len() * 4;
                    stats.peak_dense_bytes = stats.peak_dense_bytes.max(dense_bytes);
                    stats.total_dense_bytes += dense_bytes;
                    let mut live = d.clone();
                    live.w.data = decoded.dense;
                    let (next, _) = Layer::Dense(live).forward(&cur);
                    cur = next; // dense weights dropped here
                }
                other => {
                    let (next, _) = other.forward(&cur);
                    cur = next;
                }
            }
        }
        Ok((cur, stats))
    }

    /// Serial forward through the spill cache: each fc layer's dense
    /// weights come from the cache when parked (in memory or as a
    /// verified spill file) and from a container decode only on a true
    /// miss; after its matmul the buffer is parked back, evicting older
    /// layers to disk as the quota demands. Live dense bytes are thus
    /// bounded by `quota + executing layer` at every instant, and repeat
    /// forwards replace re-decoding with (much cheaper) file rehydration.
    fn forward_spill(
        &self,
        x: &Batch,
        cache: &SpillCache,
        abort: Option<AbortFlag<'_>>,
    ) -> Result<(Batch, StreamingStats), DeepSzError> {
        let mut stats = StreamingStats {
            compressed_bytes: self
                .layers
                .iter()
                .map(CompressedLayer::compressed_bytes)
                .sum(),
            ..Default::default()
        };
        let mut cur = x.clone();
        for (i, layer) in self.skeleton.layers.iter().enumerate() {
            check_abort(abort)?;
            match layer {
                Layer::Dense(d) if d.w.data.is_empty() => {
                    self.probe_hook(i)?;
                    let c = self.compressed_for(i)?;
                    // Make room for this layer before it materializes, so
                    // cached + executing never exceeds quota + one layer.
                    cache.reserve(c.dense_bytes())?;
                    let dense = match cache.fetch(i)? {
                        Some(parked) => parked,
                        None => {
                            self.compressed_for(i)?
                                .decode()
                                .map_err(|e| self.decode_failure(i, e))?
                                .dense
                        }
                    };
                    let dense_bytes = dense.len() * 4;
                    stats.peak_dense_bytes =
                        stats.peak_dense_bytes.max(dense_bytes + cache.live_bytes());
                    stats.total_dense_bytes += dense_bytes;
                    let mut live = d.clone();
                    live.w.data = dense;
                    let wrapped = Layer::Dense(live);
                    let (next, _) = wrapped.forward(&cur);
                    cur = next;
                    // Recover the buffer from the wrapper and park it for
                    // the next forward pass instead of dropping it.
                    let Layer::Dense(spent) = wrapped else {
                        unreachable!("constructed as Dense above")
                    };
                    cache.store(i, spent.w.data)?;
                }
                other => {
                    let (next, _) = other.forward(&cur);
                    cur = next;
                }
            }
        }
        Ok((cur, stats))
    }

    /// Serial forward through the process-wide shared layer cache: each
    /// fc layer's dense weights come from the cache when resident (an
    /// `Arc` clone — zero copy, shared with every other request holding
    /// them), from the spill cache when attached and parked there, and
    /// from a container decode on a true miss, after which they are
    /// parked for the next tenant (quota permitting). The cache ledger
    /// never exceeds the global quota; live dense bytes at any instant
    /// are bounded by `quota + this pass's executing layer`
    /// (`crate::layer_cache`).
    fn forward_shared(
        &self,
        x: &Batch,
        handle: &CacheHandle,
        abort: Option<AbortFlag<'_>>,
    ) -> Result<(Batch, StreamingStats), DeepSzError> {
        let mut stats = StreamingStats {
            compressed_bytes: self
                .layers
                .iter()
                .map(CompressedLayer::compressed_bytes)
                .sum(),
            ..Default::default()
        };
        let mut cur = x.clone();
        for (i, layer) in self.skeleton.layers.iter().enumerate() {
            check_abort(abort)?;
            match layer {
                Layer::Dense(d) if d.w.data.is_empty() => {
                    self.probe_hook(i)?;
                    let c = self.compressed_for(i)?;
                    let weights = handle.get_or_decode(
                        i,
                        c.record_fnv,
                        || -> Result<Vec<f32>, DeepSzError> {
                            // Cold layer: prefer a (cheap) spill
                            // rehydrate over a container re-decode.
                            if let Some(spill) = &self.spill {
                                if let Some(parked) = spill.fetch(i)? {
                                    return Ok(parked);
                                }
                            }
                            c.decode()
                                .map(|decoded| decoded.dense)
                                .map_err(|e| self.decode_failure(i, e))
                        },
                    )?;
                    let dense_bytes = weights.len() * 4;
                    stats.peak_dense_bytes = stats
                        .peak_dense_bytes
                        .max(dense_bytes + handle.cache().live_bytes());
                    stats.total_dense_bytes += dense_bytes;
                    cur = dense_forward_with_weights(d, &weights, &cur);
                    // `weights` drops here: cached layers stay resident
                    // (one copy, shared), uncached ones free immediately.
                }
                other => {
                    let (next, _) = other.forward(&cur);
                    cur = next;
                }
            }
        }
        Ok((cur, stats))
    }

    /// Pipelined forward: while layer *k*'s matmul runs, pool tasks decode
    /// up to `prefetch_depth` upcoming layers (lossless + lossy data via
    /// the layer's codec — SZ chunks additionally fan out internally —
    /// + reconstruction), bounded by the decoded-bytes budget.
    fn forward_prefetch(
        &self,
        x: &Batch,
        abort: Option<AbortFlag<'_>>,
    ) -> Result<(Batch, StreamingStats), DeepSzError> {
        let mut stats = StreamingStats {
            compressed_bytes: self
                .layers
                .iter()
                .map(CompressedLayer::compressed_bytes)
                .sum(),
            ..Default::default()
        };
        // Compressed fc layers in execution order.
        let order: Vec<usize> = self
            .skeleton
            .layers
            .iter()
            .enumerate()
            .filter_map(|(i, l)| match l {
                Layer::Dense(d) if d.w.data.is_empty() => Some(i),
                _ => None,
            })
            .collect();
        // Resolve every blob up front: fails before scheduling anything,
        // and the later lookups become infallible indexing.
        let blobs: Vec<&CompressedLayer> = order
            .iter()
            .map(|&i| self.compressed_for(i))
            .collect::<Result<_, _>>()?;

        // Decode tasks run concurrently with the matmul thread, so the
        // caller's worker budget is split between the two sides (each side
        // at least 1). Pinning inside the spawned task also propagates a
        // `with_workers` override, whose thread-local would otherwise be
        // unset on a pool worker.
        let budget = dsz_tensor::parallel::worker_count();
        if budget < 2 {
            // No second thread to overlap with: honoring a 1-thread pin
            // means not running any concurrent decode at all.
            return self.forward_serial(x, abort);
        }
        let depth = self.prefetch_depth;
        let bytes_budget = self.decoded_bytes_budget.unwrap_or(usize::MAX);
        let decode_budget = budget / 2;
        let compute_budget = budget - decode_budget;
        // The decode half of the budget is shared by all in-flight decodes.
        let per_decode_budget = (decode_budget / depth).max(1);

        // In-flight prefetch bookkeeping: (position in execution `order`,
        // decode task handle, target dense bytes).
        type Prefetch<'scope> = (
            usize,
            pool::TaskHandle<'scope, Result<DecodedLayer, DeepSzError>>,
            usize,
        );
        pool::scope(|s| {
            let mut pending: VecDeque<Prefetch<'_>> = VecDeque::new();
            let mut pending_bytes = 0usize;
            let mut next_ord = 0usize;

            // Schedules prefetch decodes while depth and the bytes budget
            // allow, given the dense bytes currently held by execution.
            // (A macro rather than a closure: the spawned handles carry the
            // scope lifetime, which a closure signature cannot name.)
            macro_rules! schedule {
                ($executing_bytes:expr) => {
                    while pending.len() < depth && next_ord < order.len() {
                        let c = blobs[next_ord];
                        let bytes = c.dense_bytes();
                        if $executing_bytes + pending_bytes + bytes > bytes_budget {
                            break;
                        }
                        let handle = s.spawn(move || {
                            dsz_tensor::parallel::with_workers(per_decode_budget, || c.decode())
                        });
                        pending.push_back((next_ord, handle, bytes));
                        pending_bytes += bytes;
                        next_ord += 1;
                    }
                };
            }

            // Warm the pipeline so leading non-fc layers (e.g. a conv
            // stack) overlap with the first decodes.
            schedule!(0);

            let mut cur_ord = 0usize;
            let mut cur = x.clone();
            for layer in &self.skeleton.layers {
                check_abort(abort)?;
                match layer {
                    Layer::Dense(d) if d.w.data.is_empty() => {
                        self.probe_hook(order[cur_ord])?;
                        let decoded = match pending.front() {
                            Some(&(ord, _, _)) if ord == cur_ord => {
                                let Some((_, handle, bytes)) = pending.pop_front() else {
                                    unreachable!("front checked above")
                                };
                                pending_bytes -= bytes;
                                handle
                                    .join()
                                    .map_err(|e| self.decode_failure(order[cur_ord], e))?
                            }
                            // Not prefetched (depth exhausted by the bytes
                            // budget): decode inline, like the serial path.
                            _ => {
                                next_ord = next_ord.max(cur_ord + 1);
                                blobs[cur_ord]
                                    .decode()
                                    .map_err(|e| self.decode_failure(order[cur_ord], e))?
                            }
                        };
                        cur_ord += 1;
                        let dense_bytes = decoded.dense.len() * 4;
                        stats.total_dense_bytes += dense_bytes;
                        // Top the pipeline back up now that the executing
                        // layer's footprint is known.
                        schedule!(dense_bytes);
                        stats.peak_dense_bytes =
                            stats.peak_dense_bytes.max(dense_bytes + pending_bytes);
                        let mut live = d.clone();
                        live.w.data = decoded.dense;
                        cur = forward_sharing_budget(
                            &Layer::Dense(live),
                            &cur,
                            !pending.is_empty(),
                            compute_budget,
                        ); // dense weights dropped here
                    }
                    other => {
                        // Non-fc layers also share cores with in-flight
                        // decodes (e.g. the conv stack before the first fc).
                        cur = forward_sharing_budget(
                            other,
                            &cur,
                            !pending.is_empty(),
                            compute_budget,
                        );
                    }
                }
            }
            Ok((cur, stats))
        })
    }

    /// Eagerly decodes everything into a plain [`Network`] (the
    /// conventional decode path, for comparison).
    pub fn materialize(&self) -> Result<Network, DeepSzError> {
        let mut net = self.skeleton.clone();
        for c in &self.layers {
            let decoded = c
                .decode()
                .map_err(|e| self.decode_failure(c.layer_index, e))?;
            let Layer::Dense(d) = &mut net.layers[c.layer_index] else {
                unreachable!("validated at construction")
            };
            d.w.data = decoded.dense;
        }
        Ok(net)
    }
}

/// Runs one layer forward, pinned to `compute_budget` workers while a
/// prefetch decode is in flight (the decode side holds the rest of the
/// budget) and at full width otherwise.
fn forward_sharing_budget(
    layer: &Layer,
    cur: &Batch,
    decode_in_flight: bool,
    compute_budget: usize,
) -> Batch {
    if decode_in_flight {
        dsz_tensor::parallel::with_workers(compute_budget, || layer.forward(cur)).0
    } else {
        layer.forward(cur).0
    }
}

/// Consistency check used by tests: streaming and eager decode agree.
pub fn streaming_matches_eager(
    net: &Network,
    model: &CompressedModel,
    probe: &Batch,
) -> Result<bool, DeepSzError> {
    let streaming = CompressedFcModel::new(net, model)?;
    let (out_s, _) = streaming.forward(probe)?;
    let mut eager = net.clone();
    let (decoded, _) = decode_model(model)?;
    crate::pipeline::apply_decoded(&mut eager, decoded)?;
    Ok(out_s == eager.forward(probe))
}
