//! Random-access container reading — the consumer the v3/v4 footer was
//! designed for (`docs/FORMAT.md`, "Footer-driven random access").
//!
//! [`decode_model`](crate::pipeline::decode_model) walks a container
//! sequentially and authenticates every byte before decoding anything.
//! That is the right posture for a bulk decode, but edge serving (§6 of
//! the paper) wants the opposite: open a multi-hundred-MB container in
//! microseconds and decode *one* layer on demand without touching the
//! rest. [`SeekableContainer`] does exactly that:
//!
//! * **Open** reads only the 5-byte header, the 20-byte trailer, the
//!   layer-count varint, and the footer — O(layers), not O(bytes). The
//!   footer's spans are validated structurally (monotonic, non-
//!   overlapping, in bounds, v4-aligned) but no record byte is hashed.
//! * **`layer(i)`** slices record `i` via its footer entry, verifies
//!   *that record's* checksums lazily — the v4 ordinal-tagged full-span
//!   FNV when present, always the per-blob FNVs — and decodes it through
//!   the [`DataCodec`](crate::codec::DataCodec) registry.
//!
//! The byte source is abstracted behind [`ByteSource`] so the same
//! reader serves borrowed in-memory bytes (zero-copy slicing, the
//! mmap-style path) and an on-disk file ([`FileSource`], positional
//! reads, no mmap dependency). What the lazy path does and does not
//! guarantee per container version is spelled out in
//! `docs/ROBUSTNESS.md` ("Lazy per-layer verification").

// Containers are untrusted input: every malformed byte must surface as a
// `DeepSzError`, never a panic (`docs/ROBUSTNESS.md`).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::pipeline::{
    corrupt, decode_record, fnv1a_tagged, parse_one_record, read_u64_le, read_varint_len,
    DecodedLayer, MAGIC, RECORD_ALIGN, TRAILER_LEN, TRAILER_MAGIC_V3, TRAILER_MAGIC_V4, VERSION_V3,
    VERSION_V4,
};
use crate::DeepSzError;
use dsz_lossless::fnv1a;
use std::borrow::Cow;
use std::fs::File;
use std::path::Path;

/// Positional access to container bytes.
///
/// `read_at` returns exactly `len` bytes starting at `off` — borrowed
/// when the source is already in memory (the `&[u8]` impl never copies),
/// owned when it has to be fetched (files). Implementations must treat
/// short reads as errors; the reader's bounds come from an untrusted
/// footer, so "off the end" is a corruption signal, not EOF.
pub trait ByteSource {
    /// Total size of the container in bytes.
    fn len(&self) -> usize;

    /// Whether the source is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Exactly `len` bytes starting at `off`.
    fn read_at(&self, off: usize, len: usize) -> Result<Cow<'_, [u8]>, DeepSzError>;
}

impl ByteSource for &[u8] {
    fn len(&self) -> usize {
        (**self).len()
    }

    fn read_at(&self, off: usize, len: usize) -> Result<Cow<'_, [u8]>, DeepSzError> {
        let end = off
            .checked_add(len)
            .ok_or_else(|| DeepSzError::BadContainer("read span overflows".into()))?;
        self.get(off..end)
            .map(Cow::Borrowed)
            .ok_or_else(|| DeepSzError::BadContainer("read past end of container".into()))
    }
}

/// A container file read with positional I/O (`pread`), so concurrent
/// `layer(i)` calls need no seek coordination and nothing is mapped or
/// buffered beyond the requested spans.
#[derive(Debug)]
pub struct FileSource {
    file: File,
    len: usize,
}

impl FileSource {
    /// Opens `path` read-only and snapshots its length.
    pub fn open(path: &Path) -> Result<Self, DeepSzError> {
        let file = File::open(path)
            .map_err(|e| DeepSzError::BadContainer(format!("open {}: {e}", path.display())))?;
        let meta = file
            .metadata()
            .map_err(|e| DeepSzError::BadContainer(format!("stat {}: {e}", path.display())))?;
        let len = usize::try_from(meta.len())
            .map_err(|_| DeepSzError::BadContainer("container larger than address space".into()))?;
        Ok(Self { file, len })
    }
}

impl ByteSource for FileSource {
    fn len(&self) -> usize {
        self.len
    }

    fn read_at(&self, off: usize, len: usize) -> Result<Cow<'_, [u8]>, DeepSzError> {
        let end = off
            .checked_add(len)
            .ok_or_else(|| DeepSzError::BadContainer("read span overflows".into()))?;
        if end > self.len {
            return Err(DeepSzError::BadContainer(
                "read past end of container".into(),
            ));
        }
        let mut buf = vec![0u8; len];
        {
            #[cfg(unix)]
            {
                use std::os::unix::fs::FileExt;
                self.file
                    .read_exact_at(&mut buf, off as u64)
                    .map_err(|e| DeepSzError::BadContainer(format!("read at {off}: {e}")))?;
            }
            #[cfg(not(unix))]
            {
                use std::io::{Read, Seek, SeekFrom};
                let mut f = (&self.file)
                    .try_clone()
                    .map_err(|e| DeepSzError::BadContainer(format!("clone file handle: {e}")))?;
                f.seek(SeekFrom::Start(off as u64))
                    .and_then(|_| f.read_exact(&mut buf))
                    .map_err(|e| DeepSzError::BadContainer(format!("read at {off}: {e}")))?;
            }
        }
        Ok(Cow::Owned(buf))
    }
}

/// One footer entry, resolved to native offsets at open time.
#[derive(Debug, Clone, Copy)]
struct FooterEntry {
    off: usize,
    len: usize,
    /// v4 only: ordinal-tagged FNV over the record's full span.
    rec_fnv: Option<u64>,
    data_fnv: u64,
    idx_fnv: u64,
}

/// A checksummed container opened for per-layer random access.
///
/// Open cost is O(layers); each [`layer`](Self::layer) call reads,
/// verifies, and decodes exactly one record. Only v3 and v4 containers
/// are seekable (v1/v2 have no footer index — use
/// [`decode_model`](crate::decode_model) for those).
#[derive(Debug)]
pub struct SeekableContainer<S: ByteSource> {
    source: S,
    version: u8,
    entries: Vec<FooterEntry>,
}

impl<'a> SeekableContainer<&'a [u8]> {
    /// Opens a container borrowed in memory (the mmap-style zero-copy
    /// path): record slices are served straight out of `bytes`.
    pub fn open_slice(bytes: &'a [u8]) -> Result<Self, DeepSzError> {
        Self::open(bytes)
    }
}

impl SeekableContainer<FileSource> {
    /// Opens a container file for positional-read random access.
    pub fn open_file(path: &Path) -> Result<Self, DeepSzError> {
        Self::open(FileSource::open(path)?)
    }
}

impl<S: ByteSource> SeekableContainer<S> {
    /// Validates the header, trailer, and footer index — and nothing
    /// else. No record byte is read or hashed here; integrity of each
    /// record is established lazily by [`layer`](Self::layer).
    pub fn open(source: S) -> Result<Self, DeepSzError> {
        let total = source.len();
        if total < 5 + 1 + TRAILER_LEN {
            return Err(DeepSzError::BadContainer(
                "container shorter than header + trailer".into(),
            ));
        }
        let header = source.read_at(0, 5)?;
        if &header[..4] != MAGIC {
            return Err(DeepSzError::BadContainer("bad magic".into()));
        }
        let version = header[4];
        if !(VERSION_V3..=VERSION_V4).contains(&version) {
            return Err(DeepSzError::BadContainer(
                "container version has no footer index (only v3/v4 are seekable)".into(),
            ));
        }

        let trailer = source.read_at(total - TRAILER_LEN, TRAILER_LEN)?;
        let want_magic = if version >= VERSION_V4 {
            TRAILER_MAGIC_V4
        } else {
            TRAILER_MAGIC_V3
        };
        if &trailer[TRAILER_LEN - 4..] != want_magic {
            return Err(DeepSzError::BadContainer("trailer magic missing".into()));
        }
        let footer_start = read_u64_le(&trailer, 0)
            .and_then(|v| usize::try_from(v).ok())
            .ok_or_else(|| DeepSzError::BadContainer("footer offset overflows".into()))?;
        if footer_start < 6 || footer_start > total - TRAILER_LEN {
            return Err(DeepSzError::BadContainer(
                "footer offset out of bounds".into(),
            ));
        }

        // Layer count: the varint straight after the header. At most 10
        // bytes, clipped to the records region.
        let count_span = (footer_start - 5).min(10);
        let count_bytes = source.read_at(5, count_span)?;
        let mut cpos = 0usize;
        let n_layers = read_varint_len(&count_bytes, &mut cpos, "layer count")?;
        if n_layers > total {
            return Err(DeepSzError::BadContainer(
                "layer count exceeds container size".into(),
            ));
        }
        let records_start = 5 + cpos;

        let footer = source.read_at(footer_start, total - TRAILER_LEN - footer_start)?;
        let mut fpos = 0usize;
        let mut entries = Vec::with_capacity(n_layers);
        let mut prev_end = records_start;
        for _ in 0..n_layers {
            let off = read_varint_len(&footer, &mut fpos, "footer record offset")?;
            let len = read_varint_len(&footer, &mut fpos, "footer record length")?;
            let rec_fnv = if version >= VERSION_V4 {
                let v = read_u64_le(&footer, fpos)
                    .ok_or(DeepSzError::BadContainer("footer truncated".into()))?;
                fpos += 8;
                Some(v)
            } else {
                None
            };
            let data_fnv = read_u64_le(&footer, fpos)
                .ok_or(DeepSzError::BadContainer("footer truncated".into()))?;
            fpos += 8;
            let idx_fnv = read_u64_le(&footer, fpos)
                .ok_or(DeepSzError::BadContainer("footer truncated".into()))?;
            fpos += 8;
            // Spans must march strictly forward without overlap and stay
            // inside the records region; v4 spans must be aligned. This
            // (plus the ordinal tag inside `rec_fnv`) is what stops a
            // spliced footer from serving record j as layer i.
            let end = off
                .checked_add(len)
                .ok_or_else(|| DeepSzError::BadContainer("footer span overflows".into()))?;
            if off < prev_end || end > footer_start || len == 0 {
                return Err(DeepSzError::BadContainer(
                    "footer spans out of order or out of bounds".into(),
                ));
            }
            if version >= VERSION_V4 && off % RECORD_ALIGN != 0 {
                return Err(DeepSzError::BadContainer(
                    "v4 record not aligned to the record boundary".into(),
                ));
            }
            prev_end = end;
            entries.push(FooterEntry {
                off,
                len,
                rec_fnv,
                data_fnv,
                idx_fnv,
            });
        }
        if fpos != footer.len() {
            return Err(DeepSzError::BadContainer(
                "footer has trailing bytes".into(),
            ));
        }
        if prev_end != footer_start && version < VERSION_V4 {
            // v3 packs records back to back; v4 may end with alignment
            // padding that `parse_records` (not this lazy path) verifies.
            return Err(DeepSzError::BadContainer(
                "records do not end at the footer".into(),
            ));
        }

        Ok(Self {
            source,
            version,
            entries,
        })
    }

    /// Number of layer records in the container.
    pub fn layer_count(&self) -> usize {
        self.entries.len()
    }

    /// Container format version (3 or 4).
    pub fn version(&self) -> u8 {
        self.version
    }

    /// Reads, verifies, and decodes layer `i` — and only layer `i`.
    ///
    /// Verification order mirrors the sequential decoder's: the v4
    /// full-span digest first (cheap, covers every header field), then
    /// the record parse with exact-span consumption, then the per-blob
    /// FNVs, and only then decompression. On v3 the span digest does not
    /// exist on the wire, so corruption of non-blob header fields is
    /// caught by parse/decode cross-checks rather than a checksum — see
    /// `docs/ROBUSTNESS.md` for the exact guarantee ladder.
    pub fn layer(&self, i: usize) -> Result<DecodedLayer, DeepSzError> {
        let entry = *self.entries.get(i).ok_or_else(|| {
            DeepSzError::BadContainer(format!(
                "layer {i} out of range ({} layers)",
                self.entries.len()
            ))
        })?;
        let bytes = self.source.read_at(entry.off, entry.len)?;
        let label = format!("<record {i}>");
        if let Some(want) = entry.rec_fnv {
            let got = fnv1a_tagged(i as u64, &bytes);
            if got != want {
                return Err(corrupt(&label, "checksum", "record span fnv mismatch"));
            }
        }
        let mut pos = 0usize;
        let record = parse_one_record(&bytes, &mut pos, self.version)?;
        if pos != entry.len {
            return Err(corrupt(
                record.name,
                "checksum",
                "record does not fill its footer span",
            ));
        }
        if fnv1a(record.data_blob) != entry.data_fnv {
            return Err(corrupt(record.name, "checksum", "data blob fnv mismatch"));
        }
        if fnv1a(record.idx_blob) != entry.idx_fnv {
            return Err(corrupt(record.name, "checksum", "index blob fnv mismatch"));
        }
        decode_record(&record).map(|(layer, _)| layer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_source_is_zero_copy() {
        let bytes = [1u8, 2, 3, 4];
        let src: &[u8] = &bytes;
        match src.read_at(1, 2).unwrap() {
            Cow::Borrowed(s) => assert_eq!(s, &[2, 3]),
            Cow::Owned(_) => panic!("slice source must borrow"),
        }
    }

    #[test]
    fn slice_source_rejects_out_of_bounds_reads() {
        let bytes = [0u8; 8];
        let src: &[u8] = &bytes;
        assert!(src.read_at(4, 8).is_err());
        assert!(src.read_at(usize::MAX, 2).is_err());
    }

    #[test]
    fn garbage_is_rejected_at_open() {
        assert!(SeekableContainer::open_slice(&[0u8; 64]).is_err());
        assert!(SeekableContainer::open_slice(b"DSZM").is_err());
    }
}
