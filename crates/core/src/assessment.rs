//! Error bound assessment — Algorithm 1 (§3.3).
//!
//! For every fc layer, find the feasible error-bound range and sample
//! `(eb → accuracy degradation Δ, compressed size σ)` points:
//!
//! * The outer scan walks β ∈ {start, 10·start, …} until a bound first
//!   distorts the network (Δ > the 0.1% distortion criterion); the range
//!   then starts at β/10.
//! * `Check` walks the range in steps of the current decade (8e-3, 9e-3,
//!   1e-2, 2e-2, …) and stops at the first bound whose Δ exceeds the user's
//!   expected accuracy loss ε★ — the range's end point.
//!
//! Each test compresses *one* layer's condensed data array with every
//! candidate [`DataCodec`] (SZ, ZFP, … — the smaller stream wins the
//! point, making the paper's Fig. 2 SZ-vs-ZFP comparison per layer and
//! per bound instead of once globally), reconstructs the network with
//! only that layer replaced, and measures inference accuracy — linear in
//! layers instead of exponential in the brute-force combination search.
//!
//! Assessment is the dominant cost of the whole pipeline (it is why the
//! paper reaches for multi-GPU encoding, §5.2), so two engines exist:
//!
//! * **Incremental** (default whenever the evaluator exposes its dataset,
//!   [`AccuracyEvaluator::dataset`]): activations upstream of the mutated
//!   layer never change between tests, so they are cached once
//!   ([`crate::evaluator::IncrementalEvaluator`]) and each point replays
//!   only the suffix — with the decoded values, the reconstructed dense
//!   matrix, and every activation living in per-worker scratch arenas
//!   that are reused across all points of a layer. Within a decade walk
//!   the sampled bounds are known before their outcomes, so batches of
//!   points run concurrently on [`dsz_tensor::pool`] (results past a stop
//!   condition are discarded speculation); together with the per-layer
//!   fan-out this parallelizes the whole `(layer × point)` frontier while
//!   keeping each layer's point sequence deterministic.
//! * **Full** ([`assess_network_full`]): the reference path — clone the
//!   network, overwrite one layer, evaluate end to end. Kept for opaque
//!   evaluators, as the equivalence oracle (both engines produce
//!   bit-identical assessments), and as the baseline the
//!   `assessment_incremental_speedup` benchmark measures against.
//!
//! `docs/ASSESSMENT.md` walks the algorithm, the prefix-cache memory
//! model, and the scratch-buffer ownership rules.

use crate::codec::{DataCodec, DataCodecKind};
use crate::evaluator::{AccuracyEvaluator, IncrementalEvaluator};
use crate::DeepSzError;
use dsz_lossless::best_fit;
use dsz_nn::{DenseLayer, FcLayerRef, Network, SuffixScratch};
use dsz_sparse::PairArray;
use dsz_sz::{ErrorBound, SzConfig};
use dsz_tensor::parallel::{parallel_map, worker_count};
use std::sync::Mutex;

/// Assessment parameters (defaults mirror §3.3/§5.1).
#[derive(Debug, Clone)]
pub struct AssessmentConfig {
    /// First error bound of the outer scan (paper default 10⁻³; push to
    /// 10⁻⁴ for very sensitive nets).
    pub start_eb: f64,
    /// Largest decade scanned (paper stops at 10⁻¹, where accuracy
    /// collapses for weight-scale data).
    pub max_eb: f64,
    /// Distortion criterion: Δ above this marks the range start (0.1%).
    pub distortion_criterion: f64,
    /// ε★ — the user's expected accuracy loss (absolute fraction).
    pub expected_loss: f64,
    /// SZ configuration used by the SZ candidate in every compression
    /// test.
    pub sz: SzConfig,
    /// Candidate data codecs competed at every sampled bound; the
    /// smallest stream wins the point (ties keep the earlier entry).
    /// Restrict to `vec![DataCodecKind::Sz]` to reproduce the paper's
    /// SZ-only pipeline exactly.
    pub candidates: Vec<DataCodecKind>,
}

impl Default for AssessmentConfig {
    fn default() -> Self {
        Self {
            start_eb: 1e-3,
            max_eb: 1e-1,
            distortion_criterion: 0.001,
            expected_loss: 0.004,
            sz: SzConfig::default(),
            candidates: DataCodecKind::ALL.to_vec(),
        }
    }
}

/// One sampled error bound for one layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EbPoint {
    /// Absolute error bound tested.
    pub eb: f64,
    /// Accuracy degradation Δ(ℓ; eb) = baseline − accuracy (may be
    /// slightly negative when noise helps).
    pub degradation: f64,
    /// Compressed size of the layer's data array at this bound, under
    /// the winning codec.
    pub data_bytes: usize,
    /// The codec that won this bound's size competition (Δ is measured
    /// on its reconstruction).
    pub codec: DataCodecKind,
}

/// Assessment result for one fc layer.
#[derive(Debug, Clone)]
pub struct LayerAssessment {
    /// Which layer.
    pub fc: FcLayerRef,
    /// The layer's sparse two-array form (shared by later pipeline steps).
    pub pair: PairArray,
    /// Best-fit lossless codec and compressed size of the index array
    /// (independent of the error bound).
    pub index_codec: dsz_lossless::LosslessKind,
    /// Compressed index-array bytes.
    pub index_bytes: usize,
    /// Sampled `(eb, Δ, σ)` points, ascending in eb.
    pub points: Vec<EbPoint>,
}

impl LayerAssessment {
    /// Total compressed layer size at point `i` (data + index streams).
    pub fn total_bytes(&self, i: usize) -> usize {
        self.points[i].data_bytes + self.index_bytes
    }
}

/// Float-tolerant error-bound identity. The decade walk regenerates
/// bounds arithmetically (`eb + base`, `beta / 10`), so two visits to the
/// same nominal bound can differ by a rounding step — every comparison of
/// sampled bounds goes through this one predicate.
fn same_eb(a: f64, b: f64) -> bool {
    (a - b).abs() < 1e-12
}

/// Tests Δ and σ for `layer` at `eb` through the full-evaluation
/// reference path: every candidate codec compresses the data array and
/// the smallest stream wins; the network is cloned with only this layer
/// reconstructed from the winner and evaluated end to end.
///
/// Only the winner is decoded and evaluated — the losers' blobs are
/// dropped unmeasured, so adding candidates scales the (cheap) compress
/// cost but not the (dominant) inference cost.
fn test_point_full(
    net: &Network,
    baseline: f64,
    fc: &FcLayerRef,
    pair: &PairArray,
    eb: f64,
    codecs: &[Box<dyn DataCodec>],
    eval: &dyn AccuracyEvaluator,
) -> Result<EbPoint, DeepSzError> {
    let (winner, blob) = crate::codec::compete(codecs, &pair.data, ErrorBound::Abs(eb))?;
    let data_bytes = blob.len();
    let restored = codecs[winner].decode(&blob)?;
    let dense = pair.with_data(restored)?.to_dense()?;
    let mut candidate = net.clone();
    candidate.dense_mut(fc.layer_index).w.data = dense;
    let acc = eval.evaluate(&candidate);
    Ok(EbPoint {
        eb,
        degradation: baseline - acc,
        data_bytes,
        codec: codecs[winner].kind(),
    })
}

/// Decade-stepped successor of `eb` (8e-3 → 9e-3 → 1e-2 → 2e-2 → …),
/// matching Algorithm 1's `eb += base; base ×= 10 at decade boundaries`.
fn next_eb(eb: f64, base: f64) -> (f64, f64) {
    let next = eb + base;
    // Floating-point-safe decade check.
    if next >= 10.0 * base * (1.0 - 1e-9) {
        (next, base * 10.0)
    } else {
        (next, base)
    }
}

/// One layer's point-evaluation engine: either the preserved full-clone
/// reference path or the incremental suffix path. The driver hands an
/// engine batches of *untested* bounds; an engine may evaluate a batch
/// concurrently but must return one result per bound, in input order,
/// with every point independent of batch composition. Errors stay
/// per-point so the driver can discard everything past a stop condition
/// — results *and* failures — as wasted speculation; a serial walk would
/// never have evaluated those bounds, so their errors must not surface.
trait PointEngine {
    fn test_points(&self, ebs: &[f64]) -> Vec<Result<EbPoint, DeepSzError>>;
}

/// Reference engine: full clone + end-to-end evaluation per point. Only
/// ever driven with batches of one, so its work matches the pre-engine
/// implementation exactly — it is the baseline that
/// `assessment_incremental_speedup` measures against.
struct FullEngine<'x> {
    net: &'x Network,
    baseline: f64,
    fc: &'x FcLayerRef,
    pair: &'x PairArray,
    codecs: &'x [Box<dyn DataCodec>],
    eval: &'x dyn AccuracyEvaluator,
}

impl PointEngine for FullEngine<'_> {
    fn test_points(&self, ebs: &[f64]) -> Vec<Result<EbPoint, DeepSzError>> {
        ebs.iter()
            .map(|&eb| {
                test_point_full(
                    self.net,
                    self.baseline,
                    self.fc,
                    self.pair,
                    eb,
                    self.codecs,
                    self.eval,
                )
            })
            .collect()
    }
}

/// Per-worker scratch arena for incremental test points, reused across
/// all points of a layer: after the first point of a layer, a test
/// allocates nothing but codec-internal encode buffers (and scratch
/// growth when a bigger layer arrives).
struct PointCtx {
    /// Scratch candidate: a copy of the assessed layer whose weight
    /// buffer is overwritten in place per point — the arena's one dense
    /// matrix. The original network is never touched.
    layer: DenseLayer,
    /// Decode target — the arena's one decode buffer.
    decoded: Vec<f32>,
    /// Suffix activation ping-pong buffers.
    fwd: SuffixScratch,
}

impl PointCtx {
    fn new(layer: &DenseLayer) -> Self {
        Self {
            layer: layer.clone(),
            decoded: Vec::new(),
            fwd: SuffixScratch::default(),
        }
    }
}

/// Incremental engine: decode into scratch, rebuild the dense matrix in
/// the scratch candidate's weight buffer, score via the cached-prefix
/// suffix pass. Batches fan out over [`dsz_tensor::pool`] with one
/// scratch context per concurrent job.
struct IncrementalEngine<'x> {
    ie: &'x IncrementalEvaluator<'x>,
    baseline: f64,
    fc: &'x FcLayerRef,
    pair: &'x PairArray,
    codecs: &'x [Box<dyn DataCodec>],
    ctxs: Vec<Mutex<PointCtx>>,
}

impl IncrementalEngine<'_> {
    fn test_one(&self, eb: f64, ctx: &mut PointCtx) -> Result<EbPoint, DeepSzError> {
        let (winner, blob) =
            crate::codec::compete(self.codecs, &self.pair.data, ErrorBound::Abs(eb))?;
        let data_bytes = blob.len();
        self.codecs[winner].decode_into(&blob, &mut ctx.decoded)?;
        self.pair
            .to_dense_with(&ctx.decoded, &mut ctx.layer.w.data)?;
        let acc = self
            .ie
            .evaluate_candidate(self.fc.layer_index, &ctx.layer, &mut ctx.fwd);
        Ok(EbPoint {
            eb,
            degradation: self.baseline - acc,
            data_bytes,
            codec: self.codecs[winner].kind(),
        })
    }
}

impl PointEngine for IncrementalEngine<'_> {
    fn test_points(&self, ebs: &[f64]) -> Vec<Result<EbPoint, DeepSzError>> {
        let k = self.ctxs.len().min(ebs.len()).min(worker_count());
        if k <= 1 {
            let ctx = &mut *self.ctxs[0].lock().expect("point ctx");
            return ebs.iter().map(|&eb| self.test_one(eb, ctx)).collect();
        }
        // Contiguous slices, one per scratch context; each mutex is taken
        // by exactly one job, so the locks never contend — they only
        // launder the `&mut PointCtx` across the pool boundary. Every
        // point keeps its own result (no short-circuit): whether an error
        // matters is the driver's walk-order decision.
        let per = ebs.len().div_ceil(k);
        let jobs: Vec<(&[f64], &Mutex<PointCtx>)> = ebs.chunks(per).zip(&self.ctxs).collect();
        let results = parallel_map(&jobs, |&(chunk, ctx)| {
            let ctx = &mut *ctx.lock().expect("point ctx");
            chunk
                .iter()
                .map(|&eb| self.test_one(eb, ctx))
                .collect::<Vec<Result<EbPoint, DeepSzError>>>()
        });
        results.into_iter().flatten().collect()
    }
}

/// Runs Algorithm 1's two walks for one layer through `engine`.
///
/// `max_batch` is the speculation width: how many untested bounds are
/// handed to the engine at once. Bounds within a walk are known before
/// their outcomes, so a batch's points are independent; the walk replays
/// the batch in order and discards everything past the first stop
/// condition, which keeps the returned sequence identical to a strict
/// serial walk (`max_batch = 1` *is* the strict serial walk, and what the
/// reference engine always gets).
fn run_algorithm1(
    cfg: &AssessmentConfig,
    engine: &dyn PointEngine,
    max_batch: usize,
) -> Result<Vec<EbPoint>, DeepSzError> {
    let max_batch = max_batch.max(1);
    let mut points: Vec<EbPoint> = Vec::new();

    // Outer scan: the decade ladder is known upfront; batches of it are
    // evaluated speculatively and everything past the first distorted
    // bound is discarded.
    let mut decades: Vec<f64> = Vec::new();
    let mut beta = cfg.start_eb;
    while beta <= cfg.max_eb * (1.0 + 1e-9) {
        decades.push(beta);
        beta *= 10.0;
    }
    let mut range_start = None;
    let mut di = 0usize;
    'outer: while di < decades.len() {
        let hi = (di + max_batch).min(decades.len());
        for r in engine.test_points(&decades[di..hi]) {
            // An error only surfaces once the walk actually reaches its
            // position — a failure in a speculated point past the stop is
            // discarded along with the result, as serial never ran it.
            let p = r?;
            let distorted = p.degradation > cfg.distortion_criterion;
            let eb = p.eb;
            points.push(p);
            if distorted {
                range_start = Some(eb / 10.0);
                break 'outer;
            }
        }
        di = hi;
    }

    // Check procedure: walk from the range start in decade steps until Δ
    // exceeds ε★ (the range end). Bounds already tested by the outer scan
    // are consulted, not re-evaluated.
    if let Some(start) = range_start {
        let mut cursor = Some((start, start));
        'walk: while let Some((mut eb, mut base)) = cursor {
            // Collect one batch: consecutive walk bounds, at most
            // `max_batch` of them untested, never past max_eb.
            let mut batch: Vec<(f64, Option<bool>)> = Vec::new();
            let mut fresh = 0usize;
            loop {
                let tested = points
                    .iter()
                    .find(|p| same_eb(p.eb, eb))
                    .map(|p| p.degradation > cfg.expected_loss);
                if tested.is_none() {
                    fresh += 1;
                }
                batch.push((eb, tested));
                let (e2, b2) = next_eb(eb, base);
                eb = e2;
                base = b2;
                if eb > cfg.max_eb * (1.0 + 1e-9) {
                    cursor = None;
                    break;
                }
                if fresh >= max_batch {
                    cursor = Some((eb, base));
                    break;
                }
            }
            let fresh_ebs: Vec<f64> = batch
                .iter()
                .filter(|(_, tested)| tested.is_none())
                .map(|&(eb, _)| eb)
                .collect();
            let mut evald = engine.test_points(&fresh_ebs).into_iter();
            // Replay the walk order, applying the stop rule; trailing
            // results past a stop — including failures — are discarded
            // speculation (serial would never have evaluated them).
            for (_, tested) in batch {
                match tested {
                    Some(stops) => {
                        if stops {
                            break 'walk;
                        }
                    }
                    None => {
                        let p = evald.next().expect("one result per fresh bound")?;
                        let stop = p.degradation > cfg.expected_loss;
                        points.push(p);
                        if stop {
                            break 'walk;
                        }
                    }
                }
            }
        }
    }

    points.sort_by(|a, b| a.eb.partial_cmp(&b.eb).expect("finite eb"));
    points.dedup_by(|a, b| same_eb(a.eb, b.eb));
    Ok(points)
}

/// The per-layer work shared by both engines: the sparse two-array form
/// and the (bound-independent) best-fit lossless coding of its index.
fn layer_pair_and_index(
    net: &Network,
    fc: &FcLayerRef,
) -> (PairArray, dsz_lossless::LosslessKind, usize) {
    let dense = &net.dense(fc.layer_index).w;
    let pair = PairArray::from_dense(&dense.data, dense.rows, dense.cols);
    let (index_codec, index_blob) = best_fit(&pair.index);
    (pair, index_codec, index_blob.len())
}

/// Runs Algorithm 1 for one layer through the full-evaluation reference
/// engine (strict serial walk).
fn assess_layer_full(
    net: &Network,
    baseline: f64,
    fc: &FcLayerRef,
    cfg: &AssessmentConfig,
    eval: &dyn AccuracyEvaluator,
) -> Result<LayerAssessment, DeepSzError> {
    let (pair, index_codec, index_bytes) = layer_pair_and_index(net, fc);
    let codecs: Vec<Box<dyn DataCodec>> =
        cfg.candidates.iter().map(|k| k.instance(&cfg.sz)).collect();
    let engine = FullEngine {
        net,
        baseline,
        fc,
        pair: &pair,
        codecs: &codecs,
        eval,
    };
    let points = run_algorithm1(cfg, &engine, 1)?;
    Ok(LayerAssessment {
        fc: fc.clone(),
        pair,
        index_codec,
        index_bytes,
        points,
    })
}

/// Runs Algorithm 1 for one layer through the incremental engine, with
/// one scratch context per worker available at this nesting level.
fn assess_layer_incremental(
    net: &Network,
    ie: &IncrementalEvaluator<'_>,
    baseline: f64,
    fc: &FcLayerRef,
    cfg: &AssessmentConfig,
) -> Result<LayerAssessment, DeepSzError> {
    let (pair, index_codec, index_bytes) = layer_pair_and_index(net, fc);
    let codecs: Vec<Box<dyn DataCodec>> =
        cfg.candidates.iter().map(|k| k.instance(&cfg.sz)).collect();
    let width = worker_count();
    let ctxs: Vec<Mutex<PointCtx>> = (0..width)
        .map(|_| Mutex::new(PointCtx::new(net.dense(fc.layer_index))))
        .collect();
    let engine = IncrementalEngine {
        ie,
        baseline,
        fc,
        pair: &pair,
        codecs: &codecs,
        ctxs,
    };
    let points = run_algorithm1(cfg, &engine, width)?;
    Ok(LayerAssessment {
        fc: fc.clone(),
        pair,
        index_codec,
        index_bytes,
        points,
    })
}

fn validate(cfg: &AssessmentConfig) -> Result<(), DeepSzError> {
    if cfg.candidates.is_empty() {
        return Err(DeepSzError::Infeasible(
            "AssessmentConfig::candidates must name at least one data codec".into(),
        ));
    }
    Ok(())
}

/// Runs Algorithm 1 over every fc layer of `net` (already pruned).
/// Returns per-layer assessments plus the measured baseline accuracy.
///
/// When the evaluator exposes its dataset ([`AccuracyEvaluator::dataset`],
/// which [`crate::DatasetEvaluator`] does), assessment runs on the
/// incremental engine — prefix activations cached once, per-point cost
/// only the suffix from the mutated layer, scratch arenas reused across
/// points. Otherwise it falls back to [`assess_network_full`]. Both paths
/// return bit-identical assessments.
pub fn assess_network(
    net: &Network,
    cfg: &AssessmentConfig,
    eval: &dyn AccuracyEvaluator,
) -> Result<(Vec<LayerAssessment>, f64), DeepSzError> {
    validate(cfg)?;
    let Some((data, batch)) = eval.dataset() else {
        return assess_network_full(net, cfg, eval);
    };
    let ie = IncrementalEvaluator::new(net, data, batch);
    let baseline = ie.baseline();
    let fcs = net.fc_layers();
    let results = parallel_map(&fcs, |fc| {
        assess_layer_incremental(net, &ie, baseline, fc, cfg)
    });
    let mut out = Vec::with_capacity(results.len());
    for r in results {
        out.push(r?);
    }
    Ok((out, baseline))
}

/// [`assess_network`] through the full-evaluation reference path: every
/// point clones the network and evaluates it end to end via
/// [`AccuracyEvaluator::evaluate`]. This is the implementation every
/// evaluator gets when it cannot expose a dataset, the oracle the
/// incremental engine's equivalence suite compares against, and the
/// baseline of the `assessment_incremental_speedup` benchmark.
pub fn assess_network_full(
    net: &Network,
    cfg: &AssessmentConfig,
    eval: &dyn AccuracyEvaluator,
) -> Result<(Vec<LayerAssessment>, f64), DeepSzError> {
    validate(cfg)?;
    let baseline = eval.evaluate(net);
    let fcs = net.fc_layers();
    let results = parallel_map(&fcs, |fc| assess_layer_full(net, baseline, fc, cfg, eval));
    let mut out = Vec::with_capacity(results.len());
    for r in results {
        out.push(r?);
    }
    Ok((out, baseline))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_eb_walks_decades_like_the_paper() {
        // 8e-3 → 9e-3 → 1e-2 → 2e-2 → 3e-2 (the paper's §3.3 example).
        let (e1, b1) = next_eb(8e-3, 1e-3);
        assert!((e1 - 9e-3).abs() < 1e-12 && b1 == 1e-3);
        let (e2, b2) = next_eb(e1, b1);
        assert!((e2 - 1e-2).abs() < 1e-12 && b2 == 1e-2, "{e2} {b2}");
        let (e3, b3) = next_eb(e2, b2);
        assert!((e3 - 2e-2).abs() < 1e-12 && b3 == 1e-2);
    }

    #[test]
    fn next_eb_from_decade_start() {
        // 1e-3 with base 1e-3 → 2e-3 … 9e-3 → 1e-2 (base 1e-2).
        let mut eb = 1e-3;
        let mut base = 1e-3;
        let mut seen = vec![eb];
        for _ in 0..9 {
            let (e, b) = next_eb(eb, base);
            eb = e;
            base = b;
            seen.push(eb);
        }
        assert!((seen[8] - 9e-3).abs() < 1e-12);
        assert!((seen[9] - 1e-2).abs() < 1e-12);
    }

    #[test]
    fn same_eb_tolerates_rounding_but_separates_neighbors() {
        assert!(same_eb(1e-2, 1e-2 + 1e-15));
        assert!(!same_eb(1e-2, 2e-2));
        assert!(!same_eb(1e-3, 2e-3));
    }

    /// A scripted engine that records which bounds were requested and
    /// returns canned degradations (or errors, past `fail_above`); proves
    /// the speculative driver visits and keeps exactly the serial walk's
    /// points, and discards speculated failures with the results.
    struct Scripted {
        /// Δ returned for a bound: distorting decades and the stop bound.
        delta: fn(f64) -> f64,
        /// Bounds for which evaluation errors instead of producing a point.
        fails: fn(f64) -> bool,
        asked: Mutex<Vec<f64>>,
    }

    impl PointEngine for Scripted {
        fn test_points(&self, ebs: &[f64]) -> Vec<Result<EbPoint, DeepSzError>> {
            self.asked.lock().unwrap().extend_from_slice(ebs);
            ebs.iter()
                .map(|&eb| {
                    if (self.fails)(eb) {
                        return Err(DeepSzError::Infeasible(format!("scripted failure at {eb}")));
                    }
                    Ok(EbPoint {
                        eb,
                        degradation: (self.delta)(eb),
                        data_bytes: (eb * 1e6) as usize,
                        codec: DataCodecKind::Sz,
                    })
                })
                .collect()
        }
    }

    fn scripted_delta(eb: f64) -> f64 {
        // One threshold covers both walks: the 1e-2 decade distorts the
        // outer scan (range starts at 1e-3) and 6e-3 stops the check walk.
        if eb >= 6e-3 - 1e-15 {
            0.05
        } else {
            0.0
        }
    }

    #[test]
    fn speculative_batches_keep_the_serial_point_sequence() {
        let cfg = AssessmentConfig {
            expected_loss: 0.004,
            ..Default::default()
        };
        let mut sequences = Vec::new();
        for max_batch in [1usize, 2, 4, 9] {
            let engine = Scripted {
                delta: scripted_delta,
                fails: |_| false,
                asked: Mutex::new(Vec::new()),
            };
            let points = run_algorithm1(&cfg, &engine, max_batch).unwrap();
            sequences.push(points);
        }
        for s in &sequences[1..] {
            assert_eq!(s, &sequences[0], "speculation changed the output");
        }
        // Serial expectation: decades 1e-3 (clean), 1e-2 (distorted) →
        // range starts at 1e-3; walk 2e-3..6e-3 stops at 6e-3.
        let ebs: Vec<f64> = sequences[0].iter().map(|p| p.eb).collect();
        assert_eq!(ebs.len(), 7, "{ebs:?}");
        for (got, want) in ebs.iter().zip([1e-3, 2e-3, 3e-3, 4e-3, 5e-3, 6e-3, 1e-2]) {
            assert!(same_eb(*got, want), "{ebs:?}");
        }
    }

    #[test]
    fn serial_driver_never_overfetches() {
        // With max_batch = 1 the engine must be asked exactly the bounds
        // the original serial loop would have tested, in the same order.
        let cfg = AssessmentConfig {
            expected_loss: 0.004,
            ..Default::default()
        };
        let engine = Scripted {
            delta: scripted_delta,
            fails: |_| false,
            asked: Mutex::new(Vec::new()),
        };
        run_algorithm1(&cfg, &engine, 1).unwrap();
        let asked = engine.asked.into_inner().unwrap();
        for (got, want) in asked.iter().zip([1e-3, 1e-2, 2e-3, 3e-3, 4e-3, 5e-3, 6e-3]) {
            assert!(same_eb(*got, want), "{asked:?}");
        }
        assert_eq!(asked.len(), 7, "{asked:?}");
    }

    #[test]
    fn discarded_speculation_errors_do_not_surface() {
        // The walk stops at 6e-3; 7e-3..9e-3 are only ever evaluated as
        // speculation. Failing exactly those bounds must not abort the
        // assessment at any speculation width — serial never runs them —
        // while a failure at a bound the walk *does* reach must surface.
        let cfg = AssessmentConfig {
            expected_loss: 0.004,
            ..Default::default()
        };
        for max_batch in [1usize, 4, 9] {
            let engine = Scripted {
                delta: scripted_delta,
                fails: |eb| eb > 6e-3 + 1e-15 && eb < 1e-2 - 1e-15,
                asked: Mutex::new(Vec::new()),
            };
            let points = run_algorithm1(&cfg, &engine, max_batch)
                .unwrap_or_else(|e| panic!("max_batch={max_batch}: {e}"));
            assert_eq!(points.len(), 7, "max_batch={max_batch}");
        }
        for max_batch in [1usize, 4] {
            let engine = Scripted {
                delta: scripted_delta,
                fails: |eb| same_eb(eb, 5e-3), // before the stop: reachable
                asked: Mutex::new(Vec::new()),
            };
            assert!(
                run_algorithm1(&cfg, &engine, max_batch).is_err(),
                "max_batch={max_batch}: reachable failure must surface"
            );
        }
    }
}
