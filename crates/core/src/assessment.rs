//! Error bound assessment — Algorithm 1 (§3.3).
//!
//! For every fc layer, find the feasible error-bound range and sample
//! `(eb → accuracy degradation Δ, compressed size σ)` points:
//!
//! * The outer scan walks β ∈ {start, 10·start, …} until a bound first
//!   distorts the network (Δ > the 0.1% distortion criterion); the range
//!   then starts at β/10.
//! * `Check` walks the range in steps of the current decade (8e-3, 9e-3,
//!   1e-2, 2e-2, …) and stops at the first bound whose Δ exceeds the user's
//!   expected accuracy loss ε★ — the range's end point.
//!
//! Each test compresses *one* layer's condensed data array with every
//! candidate [`DataCodec`] (SZ, ZFP, … — the smaller stream wins the
//! point, making the paper's Fig. 2 SZ-vs-ZFP comparison per layer and
//! per bound instead of once globally), reconstructs the network with
//! only that layer replaced, and measures inference accuracy — linear in
//! layers instead of exponential in the brute-force combination search.
//! Tests for different layers are independent and run through a work
//! queue ([`dsz_tensor::parallel`]), the thread-level analogue of the
//! paper's multi-GPU encoding; each test's SZ compression additionally
//! fans out over the chunked stream formats, so single-layer assessments
//! scale past one core too.

use crate::codec::{DataCodec, DataCodecKind};
use crate::evaluator::AccuracyEvaluator;
use crate::DeepSzError;
use dsz_lossless::best_fit;
use dsz_nn::{FcLayerRef, Network};
use dsz_sparse::PairArray;
use dsz_sz::{ErrorBound, SzConfig};
use dsz_tensor::parallel::parallel_map;

/// Assessment parameters (defaults mirror §3.3/§5.1).
#[derive(Debug, Clone)]
pub struct AssessmentConfig {
    /// First error bound of the outer scan (paper default 10⁻³; push to
    /// 10⁻⁴ for very sensitive nets).
    pub start_eb: f64,
    /// Largest decade scanned (paper stops at 10⁻¹, where accuracy
    /// collapses for weight-scale data).
    pub max_eb: f64,
    /// Distortion criterion: Δ above this marks the range start (0.1%).
    pub distortion_criterion: f64,
    /// ε★ — the user's expected accuracy loss (absolute fraction).
    pub expected_loss: f64,
    /// SZ configuration used by the SZ candidate in every compression
    /// test.
    pub sz: SzConfig,
    /// Candidate data codecs competed at every sampled bound; the
    /// smallest stream wins the point (ties keep the earlier entry).
    /// Restrict to `vec![DataCodecKind::Sz]` to reproduce the paper's
    /// SZ-only pipeline exactly.
    pub candidates: Vec<DataCodecKind>,
}

impl Default for AssessmentConfig {
    fn default() -> Self {
        Self {
            start_eb: 1e-3,
            max_eb: 1e-1,
            distortion_criterion: 0.001,
            expected_loss: 0.004,
            sz: SzConfig::default(),
            candidates: DataCodecKind::ALL.to_vec(),
        }
    }
}

/// One sampled error bound for one layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EbPoint {
    /// Absolute error bound tested.
    pub eb: f64,
    /// Accuracy degradation Δ(ℓ; eb) = baseline − accuracy (may be
    /// slightly negative when noise helps).
    pub degradation: f64,
    /// Compressed size of the layer's data array at this bound, under
    /// the winning codec.
    pub data_bytes: usize,
    /// The codec that won this bound's size competition (Δ is measured
    /// on its reconstruction).
    pub codec: DataCodecKind,
}

/// Assessment result for one fc layer.
#[derive(Debug, Clone)]
pub struct LayerAssessment {
    /// Which layer.
    pub fc: FcLayerRef,
    /// The layer's sparse two-array form (shared by later pipeline steps).
    pub pair: PairArray,
    /// Best-fit lossless codec and compressed size of the index array
    /// (independent of the error bound).
    pub index_codec: dsz_lossless::LosslessKind,
    /// Compressed index-array bytes.
    pub index_bytes: usize,
    /// Sampled `(eb, Δ, σ)` points, ascending in eb.
    pub points: Vec<EbPoint>,
}

impl LayerAssessment {
    /// Total compressed layer size at point `i` (data + index streams).
    pub fn total_bytes(&self, i: usize) -> usize {
        self.points[i].data_bytes + self.index_bytes
    }
}

/// Tests Δ and σ for `layer` at `eb`: every candidate codec compresses
/// the data array and the smallest stream wins; the network is rebuilt
/// with only this layer reconstructed from the winner and evaluated.
///
/// Only the winner is decoded and evaluated — the losers' blobs are
/// dropped unmeasured, so adding candidates scales the (cheap) compress
/// cost but not the (dominant) inference cost.
fn test_point(
    net: &Network,
    baseline: f64,
    fc: &FcLayerRef,
    pair: &PairArray,
    eb: f64,
    codecs: &[Box<dyn DataCodec>],
    eval: &dyn AccuracyEvaluator,
) -> Result<EbPoint, DeepSzError> {
    let (winner, blob) = crate::codec::compete(codecs, &pair.data, ErrorBound::Abs(eb))?;
    let data_bytes = blob.len();
    let restored = codecs[winner].decode(&blob)?;
    let dense = pair.with_data(restored)?.to_dense()?;
    let mut candidate = net.clone();
    candidate.dense_mut(fc.layer_index).w.data = dense;
    let acc = eval.evaluate(&candidate);
    Ok(EbPoint {
        eb,
        degradation: baseline - acc,
        data_bytes,
        codec: codecs[winner].kind(),
    })
}

/// Decade-stepped successor of `eb` (8e-3 → 9e-3 → 1e-2 → 2e-2 → …),
/// matching Algorithm 1's `eb += base; base ×= 10 at decade boundaries`.
fn next_eb(eb: f64, base: f64) -> (f64, f64) {
    let next = eb + base;
    // Floating-point-safe decade check.
    if next >= 10.0 * base * (1.0 - 1e-9) {
        (next, base * 10.0)
    } else {
        (next, base)
    }
}

/// Runs Algorithm 1 for one layer.
fn assess_layer(
    net: &Network,
    baseline: f64,
    fc: &FcLayerRef,
    cfg: &AssessmentConfig,
    eval: &dyn AccuracyEvaluator,
) -> Result<LayerAssessment, DeepSzError> {
    let dense = &net.dense(fc.layer_index).w;
    let pair = PairArray::from_dense(&dense.data, dense.rows, dense.cols);
    let index_blob_input = pair.index.clone();
    let (index_codec, index_blob) = best_fit(&index_blob_input);
    let codecs: Vec<Box<dyn DataCodec>> =
        cfg.candidates.iter().map(|k| k.instance(&cfg.sz)).collect();

    // Outer scan: find the decade where distortion first appears.
    let mut points: Vec<EbPoint> = Vec::new();
    let mut range_start = None;
    let mut beta = cfg.start_eb;
    while beta <= cfg.max_eb * (1.0 + 1e-9) {
        let p = test_point(net, baseline, fc, &pair, beta, &codecs, eval)?;
        let distorted = p.degradation > cfg.distortion_criterion;
        points.push(p);
        if distorted {
            range_start = Some(beta / 10.0);
            break;
        }
        beta *= 10.0;
    }

    match range_start {
        None => {
            // Even the loosest bound keeps accuracy: the feasible range is
            // the whole scan; the collected decade points suffice.
        }
        Some(start) => {
            // Check procedure: walk from the range start in decade steps
            // until Δ exceeds ε★ (the range end).
            let mut eb = start;
            let mut base = start;
            loop {
                // Skip bounds already tested in the outer scan.
                if !points.iter().any(|p| (p.eb - eb).abs() < 1e-12) {
                    let p = test_point(net, baseline, fc, &pair, eb, &codecs, eval)?;
                    let stop = p.degradation > cfg.expected_loss;
                    points.push(p);
                    if stop {
                        break;
                    }
                } else if points
                    .iter()
                    .find(|p| (p.eb - eb).abs() < 1e-12)
                    .is_some_and(|p| p.degradation > cfg.expected_loss)
                {
                    break;
                }
                let (e2, b2) = next_eb(eb, base);
                eb = e2;
                base = b2;
                if eb > cfg.max_eb * (1.0 + 1e-9) {
                    break;
                }
            }
        }
    }

    points.sort_by(|a, b| a.eb.partial_cmp(&b.eb).expect("finite eb"));
    points.dedup_by(|a, b| (a.eb - b.eb).abs() < 1e-12);
    Ok(LayerAssessment {
        fc: fc.clone(),
        pair,
        index_codec,
        index_bytes: index_blob.len(),
        points,
    })
}

/// Runs Algorithm 1 over every fc layer of `net` (already pruned).
/// Returns per-layer assessments plus the measured baseline accuracy.
pub fn assess_network(
    net: &Network,
    cfg: &AssessmentConfig,
    eval: &dyn AccuracyEvaluator,
) -> Result<(Vec<LayerAssessment>, f64), DeepSzError> {
    if cfg.candidates.is_empty() {
        return Err(DeepSzError::Infeasible(
            "AssessmentConfig::candidates must name at least one data codec".into(),
        ));
    }
    let baseline = eval.evaluate(net);
    let fcs = net.fc_layers();
    let results = parallel_map(&fcs, |fc| assess_layer(net, baseline, fc, cfg, eval));
    let mut out = Vec::with_capacity(results.len());
    for r in results {
        out.push(r?);
    }
    Ok((out, baseline))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_eb_walks_decades_like_the_paper() {
        // 8e-3 → 9e-3 → 1e-2 → 2e-2 → 3e-2 (the paper's §3.3 example).
        let (e1, b1) = next_eb(8e-3, 1e-3);
        assert!((e1 - 9e-3).abs() < 1e-12 && b1 == 1e-3);
        let (e2, b2) = next_eb(e1, b1);
        assert!((e2 - 1e-2).abs() < 1e-12 && b2 == 1e-2, "{e2} {b2}");
        let (e3, b3) = next_eb(e2, b2);
        assert!((e3 - 2e-2).abs() < 1e-12 && b3 == 1e-2);
    }

    #[test]
    fn next_eb_from_decade_start() {
        // 1e-3 with base 1e-3 → 2e-3 … 9e-3 → 1e-2 (base 1e-2).
        let mut eb = 1e-3;
        let mut base = 1e-3;
        let mut seen = vec![eb];
        for _ in 0..9 {
            let (e, b) = next_eb(eb, base);
            eb = e;
            base = b;
            seen.push(eb);
        }
        assert!((seen[8] - 9e-3).abs() < 1e-12);
        assert!((seen[9] - 1e-2).abs() < 1e-12);
    }
}
